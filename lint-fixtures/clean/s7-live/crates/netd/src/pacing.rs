//! Clean S7 counterpart: the actor runtime reads real time through the
//! sanctioned seam and otherwise handles only durations.

use obiwan_net::clock::RealClock;
use std::time::Duration;

/// Microseconds since the runtime's origin, via the one real-time seam.
pub fn elapsed_us(clock: &RealClock) -> u64 {
    clock.now().as_micros()
}

/// A pacing delay scaled down by a divisor (no wall-clock types named).
pub fn scaled(cost_us: u64, divisor: u64) -> Duration {
    Duration::from_micros(cost_us / divisor.max(1))
}
