//! Clean counterpart of the S13 fixture: the manager guard covers only
//! the bookkeeping; the airtime is paid after it drops.

use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// Swap-cluster bookkeeping (stand-in).
pub struct Manager {
    /// Next blob epoch.
    pub epoch: u32,
}

fn manager_cell() -> &'static Mutex<Manager> {
    static CELL: OnceLock<Mutex<Manager>> = OnceLock::new();
    CELL.get_or_init(|| Mutex::new(Manager { epoch: 0 }))
}

/// The middleware's manager-lock helper.
pub fn lock_manager() -> MutexGuard<'static, Manager> {
    manager_cell().lock().expect("manager lock poisoned")
}

/// Pay the modelled airtime in wall time (stand-in pacing).
fn charge_airtime(cost_us: u64) {
    std::thread::sleep(Duration::from_micros(cost_us));
}

/// Swap out: finish the bookkeeping, drop the guard, then pay airtime.
pub fn swap_out(cost_us: u64) -> u32 {
    let epoch = {
        let mut manager = lock_manager();
        manager.epoch += 1;
        manager.epoch
    };
    charge_airtime(cost_us);
    epoch
}
