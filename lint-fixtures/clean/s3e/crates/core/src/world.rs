//! Clean S3 counterpart: core receives an assembled world and dispatches
//! over the Transport trait; it never names the live backends.

use obiwan_net::NetFabric;

/// The transport in play, read off the fabric a caller assembled.
pub fn kind(net: &NetFabric) -> obiwan_net::TransportKind {
    net.kind()
}
