//! Clean counterpart of the S14 fixture: the drain loop only applies
//! work locally, and the mailbox verb is called from ordinary caller
//! threads that drain no mailbox of their own.

use std::sync::mpsc;
use std::time::Duration;

/// A device actor handle (stand-in): an inbox plus a reply channel.
pub struct Actor {
    inbox: mpsc::Sender<u32>,
    replies: mpsc::Receiver<u32>,
}

impl Actor {
    /// Ship `op` to the actor and wait for its reply.
    pub fn call(&self, op: u32) -> Result<u32, String> {
        self.inbox.send(op).map_err(|e| e.to_string())?;
        self.replies
            .recv_timeout(Duration::from_secs(10))
            .map_err(|e| e.to_string())
    }
}

/// Forward one operation to the peer actor — fine from a caller thread.
pub fn forward(peer: &Actor, op: u32) -> Result<u32, String> {
    peer.call(op)
}

/// The relay actor's drain loop: applies ops locally, never re-enters.
fn relay_main(rx: &mpsc::Receiver<u32>, acc: &mut Vec<u32>) {
    while let Ok(op) = rx.recv() {
        acc.push(op);
    }
}

/// Spawn the relay actor.
pub fn spawn_relay(rx: mpsc::Receiver<u32>) -> std::thread::JoinHandle<Vec<u32>> {
    std::thread::spawn(move || {
        let mut acc = Vec::new();
        relay_main(&rx, &mut acc);
        acc
    })
}
