//! Clean counterpart of the S1 interprocedural fixture: the shim reads
//! what it needs, drops the guard, and only then re-enters replication.

use std::sync::{Mutex, MutexGuard, OnceLock};

/// Swap-cluster bookkeeping (stand-in).
pub struct Manager {
    /// Next blob epoch.
    pub epoch: u32,
}

fn manager_cell() -> &'static Mutex<Manager> {
    static CELL: OnceLock<Mutex<Manager>> = OnceLock::new();
    CELL.get_or_init(|| Mutex::new(Manager { epoch: 0 }))
}

/// The middleware's manager-lock helper.
pub fn lock_manager() -> MutexGuard<'static, Manager> {
    manager_cell().lock().expect("manager lock poisoned")
}

/// Rebuild the cursor tables (stand-in replication re-entry).
fn rebuild_cursor() -> u32 {
    let mut manager = lock_manager();
    manager.epoch += 1;
    manager.epoch
}

/// Interceptor shim: the guard drops before replication is re-entered.
pub fn intercept_build() -> u32 {
    let epoch = {
        let manager = lock_manager();
        manager.epoch
    };
    let rebuilt = rebuild_cursor();
    epoch.max(rebuilt)
}
