//! Clean S6 counterpart: every counting method emits exactly one paired
//! event, so the trace fold reproduces the counters.

/// Lifecycle counters (stand-in).
#[derive(Default)]
pub struct SwapStats {
    /// Completed swap-outs.
    pub swap_outs: u64,
}

/// One trace event (stand-in).
pub enum EventKind {
    /// A cluster left the device.
    SwapOut {
        /// The swap-cluster id.
        sc: u32,
    },
}

/// The stats-and-events choke point (stand-in).
#[derive(Default)]
pub struct Recorder {
    stats: SwapStats,
    sink: Vec<EventKind>,
}

impl Recorder {
    /// Count a swap-out and emit its paired event in the same motion.
    pub fn note_swap_out(&mut self, sc: u32) {
        self.stats.swap_outs += 1;
        self.emit(EventKind::SwapOut { sc });
    }

    fn emit(&mut self, event: EventKind) {
        self.sink.push(event);
    }
}
