//! Clean counterpart of the S11 fixture: shard locks are taken in a
//! canonical key order, so concurrent migrations cannot deadlock.

use std::sync::{Mutex, MutexGuard, OnceLock};

/// One shard of the swap-cluster table (stand-in).
pub struct Shard {
    /// Clusters homed on this shard.
    pub clusters: Vec<u32>,
}

fn shard_cells() -> &'static (Mutex<Shard>, Mutex<Shard>) {
    static CELLS: OnceLock<(Mutex<Shard>, Mutex<Shard>)> = OnceLock::new();
    CELLS.get_or_init(|| {
        (
            Mutex::new(Shard { clusters: Vec::new() }),
            Mutex::new(Shard { clusters: Vec::new() }),
        )
    })
}

/// Lock shard `which` of the cluster table.
pub fn lock_shard(which: usize) -> MutexGuard<'static, Shard> {
    let cells = shard_cells();
    let cell = if which == 0 { &cells.0 } else { &cells.1 };
    cell.lock().expect("shard lock poisoned")
}

/// Move cluster `sc` from shard `from` to shard `to`.
pub fn migrate(sc: u32, from: usize, to: usize) {
    let (mut a, mut b) = if from < to {
        (lock_shard(from), lock_shard(to))
    } else {
        (lock_shard(to), lock_shard(from))
    };
    a.clusters.retain(|c| *c != sc);
    b.clusters.push(sc);
}

/// Lock shards `a` and `b` in ascending index order — the canonical
/// cross-shard discipline, encapsulated so no caller can get it wrong.
pub fn lock_shard_pair(
    a: usize,
    b: usize,
) -> (MutexGuard<'static, Shard>, MutexGuard<'static, Shard>) {
    let lo = a.min(b);
    let hi = a.max(b);
    (lock_shard(lo), lock_shard(hi))
}

/// Merge cluster `sc`'s roster from shard `from` into shard `to`. The
/// caller shows no ordering evidence of its own: the pair helper is the
/// evidence.
pub fn merge(sc: u32, from: usize, to: usize) {
    let (mut a, mut b) = lock_shard_pair(from, to);
    a.clusters.retain(|c| *c != sc);
    b.clusters.push(sc);
}
