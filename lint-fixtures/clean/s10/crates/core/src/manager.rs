//! Clean counterpart of the S10 fixture: the deferred task captures the
//! data it needs, not the lock protecting it.

use std::sync::{Mutex, MutexGuard, OnceLock};

/// Swap-cluster bookkeeping (stand-in).
pub struct Manager {
    /// Next blob epoch.
    pub epoch: u32,
}

fn manager_cell() -> &'static Mutex<Manager> {
    static CELL: OnceLock<Mutex<Manager>> = OnceLock::new();
    CELL.get_or_init(|| Mutex::new(Manager { epoch: 0 }))
}

/// The middleware's manager-lock helper.
pub fn lock_manager() -> MutexGuard<'static, Manager> {
    manager_cell().lock().expect("manager lock poisoned")
}

/// Queue a deferred epoch read for the pump to run later.
pub fn queue_epoch_probe(tasks: &mut Vec<Box<dyn FnOnce() -> u32 + Send>>) {
    let epoch = lock_manager().epoch;
    tasks.push(Box::new(move || epoch));
}
