//! Clean S3 counterpart: the daemon stays on obiwan_net's façade — the
//! store it wraps and the error vocabulary it answers in.

use obiwan_net::{BlobStore, MemStore};

/// Bytes currently charged against the daemon store's quota.
pub fn used(store: &MemStore) -> usize {
    store.used_bytes()
}
