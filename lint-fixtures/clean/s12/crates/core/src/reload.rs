//! Clean counterpart of the S12 fixture: every drop outcome is examined
//! on every path before the function decides what to report.

/// The shared world (stand-in transport).
pub struct Net;

impl Net {
    /// Ask `device` to discard its copy of `key`.
    pub fn drop_blob(&mut self, _device: u32, _key: &str) -> Result<(), String> {
        Ok(())
    }
}

/// Reclaim the shipped copies of `key` from the primary and backup
/// holders; report whether every reachable holder honoured the drop.
pub fn reclaim(net: &mut Net, primary: u32, backup: u32, key: &str) -> bool {
    let first = net.drop_blob(primary, key).is_ok();
    if backup != primary {
        return first && net.drop_blob(backup, key).is_ok();
    }
    first
}
