//! Clean S5 counterpart: the same raw blob verb, but in `manager.rs` —
//! one of the sanctioned fan-out files, where the placement table is
//! updated in the same motion.

/// Manager-side placement fan-out (stand-in types).
pub struct Manager {
    net: Net,
    placed: Vec<(u32, u64)>,
}

/// Network façade (stand-in).
pub struct Net;

impl Net {
    /// Raw store verb (stand-in).
    pub fn send_blob(&mut self, _device: u32, _blob: Vec<u8>) {}
}

impl Manager {
    /// Fan a blob out to a holder and record the placement atomically.
    pub fn place(&mut self, device: u32, oid: u64, blob: Vec<u8>) {
        self.net.send_blob(device, blob);
        self.placed.push((device, oid));
    }
}
