//! Clean S4 counterpart: the same computation with the misses handled —
//! no unwraps, no panicking indexing.

/// One measured row.
pub struct Row {
    /// Milliseconds per iteration.
    pub ms: f64,
}

/// Speedup of the first row over a baseline; `None` when there are no
/// rows to report.
pub fn speedup(rows: &[Row], baseline: f64) -> Option<f64> {
    let first = rows.first()?;
    let last = rows.last().map(|r| r.ms).unwrap_or(0.0);
    Some(baseline / (first.ms + last))
}
