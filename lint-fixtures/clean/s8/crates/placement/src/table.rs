//! Clean S8 counterpart: the PR 4 fix — ordered `BTreeMap` iteration, so
//! the emitted repair sequence is a pure function of the table contents.

use std::collections::BTreeMap;

/// Recording sink (stand-in).
pub struct Recorder;

impl Recorder {
    /// Record one repair (stand-in).
    pub fn note_repair(&mut self, _oid: u64, _holder: u32) {}
}

/// Blob → holder assignments, ordered (stand-in).
pub struct PlacementTable {
    assignments: BTreeMap<u64, u32>,
}

impl PlacementTable {
    /// Emit a repair event per placement — in key order.
    pub fn emit_repairs(&self, recorder: &mut Recorder) {
        for (oid, holder) in self.assignments.iter() {
            recorder.note_repair(*oid, *holder);
        }
    }
}
