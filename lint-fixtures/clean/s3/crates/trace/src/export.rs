//! Clean S3 counterpart: the leaf crate consumes plain data handed in by
//! its callers instead of importing their types.

/// Render counters passed down as plain integers.
pub fn render(swap_outs: u64, swap_ins: u64) -> String {
    format!("swap_outs={swap_outs} swap_ins={swap_ins}")
}
