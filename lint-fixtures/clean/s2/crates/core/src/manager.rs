//! Clean S2 counterpart: reading `SwapStats` outside the Recorder is
//! fine — only mutation (and event emission) is confined to the choke
//! point.

/// Swap-cluster manager (stand-in).
pub struct Manager {
    stats: SwapStats,
}

/// Lifecycle counters (stand-in).
#[derive(Default)]
pub struct SwapStats {
    /// Completed swap-outs.
    pub swap_outs: u64,
    /// Completed reloads.
    pub swap_ins: u64,
}

impl Manager {
    /// Total lifecycle transitions — a read-only fold over the counters.
    pub fn transitions(&self) -> u64 {
        self.stats.swap_outs + self.stats.swap_ins
    }
}
