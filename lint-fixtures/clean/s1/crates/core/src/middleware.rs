//! Clean S1 counterpart: the post-fix `make_cursor` shape — resolve under
//! the guard, drop it, then call into the interceptor shim lock-free.

use std::sync::{Mutex, MutexGuard, OnceLock};

/// Swap-cluster bookkeeping (stand-in).
pub struct Manager {
    /// Currently loaded swap-clusters.
    pub loaded: Vec<u32>,
}

fn manager_cell() -> &'static Mutex<Manager> {
    static CELL: OnceLock<Mutex<Manager>> = OnceLock::new();
    CELL.get_or_init(|| Mutex::new(Manager { loaded: Vec::new() }))
}

/// The middleware's manager-lock helper.
pub fn lock_manager() -> MutexGuard<'static, Manager> {
    manager_cell().lock().expect("manager lock poisoned")
}

/// Re-mediate a member handle through a fresh cursor proxy, releasing the
/// manager guard before re-entering the interceptor.
pub fn make_cursor_safe(target: u32) -> u32 {
    let resolved = {
        let manager = lock_manager();
        manager.loaded.first().copied().unwrap_or(target)
    };
    intercept_build_safe(resolved)
}

/// Interceptor shim: acquires the manager only after the caller let go.
fn intercept_build_safe(target: u32) -> u32 {
    let manager = lock_manager();
    manager.loaded.iter().filter(|&&sc| sc != target).count() as u32
}
