//! Clean S7 counterpart: a genuine host-side measurement, documented
//! with a `lint:allow` directive — codec timing that never enters a
//! trace.

use std::time::Instant;

/// Time one closure in host milliseconds (never recorded into a trace).
pub fn time_ms(f: impl FnOnce()) -> f64 {
    // lint:allow(S7, host-side codec timing; never enters a trace)
    let t = Instant::now();
    f();
    t.elapsed().as_secs_f64() * 1e3
}
