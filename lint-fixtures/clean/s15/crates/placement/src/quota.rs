//! Clean counterpart of the S15 fixture: the counters move only through
//! saturating arithmetic, so a full device can never read as empty.

/// Per-device storage accounting (stand-in).
pub struct Ledger {
    /// Bytes currently charged against the quota.
    pub used: usize,
    /// Storage quota.
    pub quota: usize,
}

impl Ledger {
    /// Admit `size` bytes if they fit.
    pub fn admit(&mut self, size: usize) -> bool {
        if self.used.saturating_add(size) > self.quota {
            return false;
        }
        self.used = self.used.saturating_add(size);
        true
    }

    /// Release `size` bytes.
    pub fn release(&mut self, size: usize) {
        self.used = self.used.saturating_sub(size);
    }
}
