//! S5 fixture: raw blob traffic from a file that is not part of the
//! placement fan-out. The write never lands in `PlacementTable`, so the
//! k-way durability view silently desyncs from the network.

/// Cursor-side spill (stand-in types).
pub struct Cursor {
    net: Net,
}

/// Network façade (stand-in).
pub struct Net;

impl Net {
    /// Raw store verb (stand-in).
    pub fn send_blob(&mut self, _device: u32, _blob: Vec<u8>) {}
}

impl Cursor {
    /// Spill the cursor's cluster directly, bypassing the manager.
    pub fn spill(&mut self, device: u32, blob: Vec<u8>) {
        self.net.send_blob(device, blob);
    }
}
