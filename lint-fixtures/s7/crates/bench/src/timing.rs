//! S7 fixture: a wall-clock read on a measurement path. The timestamp
//! diverges run-over-run, turning golden-trace comparisons into flakes.

use std::time::Instant;

/// Time one closure in host milliseconds.
pub fn time_ms(f: impl FnOnce()) -> f64 {
    let t = Instant::now();
    f();
    t.elapsed().as_secs_f64() * 1e3
}
