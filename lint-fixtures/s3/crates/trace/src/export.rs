//! S3 fixture: a leaf crate reaching up the workspace graph. `trace` must
//! stay importable by everything, so it can depend on nothing.

use obiwan_core::SwapStats;

/// Render counters (pulled from a crate `trace` must not know about).
pub fn render(stats: &SwapStats) -> String {
    format!("swap_outs={}", stats.swap_outs)
}
