//! S3 fixture (transport layering): the daemon reaching up into the
//! swapping core. A storage process must not drag the whole stack in.

use obiwan_core::SwapStats;

/// Report swap counters from inside the daemon (wrong layer entirely).
pub fn report(stats: &SwapStats) -> String {
    format!("outs={}", stats.swap_outs)
}
