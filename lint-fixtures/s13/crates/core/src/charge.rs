//! S13 regression fixture: airtime is paid in wall time while the
//! manager guard is held — and the lock and the sleep live in different
//! functions, so only an interprocedural summary connects them.

use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// Swap-cluster bookkeeping (stand-in).
pub struct Manager {
    /// Next blob epoch.
    pub epoch: u32,
}

fn manager_cell() -> &'static Mutex<Manager> {
    static CELL: OnceLock<Mutex<Manager>> = OnceLock::new();
    CELL.get_or_init(|| Mutex::new(Manager { epoch: 0 }))
}

/// The middleware's manager-lock helper.
pub fn lock_manager() -> MutexGuard<'static, Manager> {
    manager_cell().lock().expect("manager lock poisoned")
}

/// Pay the modelled airtime in wall time (stand-in pacing).
fn charge_airtime(cost_us: u64) {
    std::thread::sleep(Duration::from_micros(cost_us));
}

/// Swap out: charges airtime inside the manager critical section.
pub fn swap_out(cost_us: u64) -> u32 {
    let mut manager = lock_manager();
    manager.epoch += 1;
    // BUG: the sleep is buried in the callee; the guard is live here.
    charge_airtime(cost_us);
    manager.epoch
}
