//! S6 fixture: a Recorder method whose counter bump has no paired event.
//! `verify-trace`'s fold can no longer reproduce the counters from the
//! event stream.

/// Lifecycle counters (stand-in).
#[derive(Default)]
pub struct SwapStats {
    /// Completed swap-outs.
    pub swap_outs: u64,
}

/// One trace event (stand-in).
pub enum EventKind {
    /// A cluster left the device.
    SwapOut {
        /// The swap-cluster id.
        sc: u32,
    },
}

/// The stats-and-events choke point (stand-in).
#[derive(Default)]
pub struct Recorder {
    stats: SwapStats,
    sink: Vec<EventKind>,
}

impl Recorder {
    /// Count a swap-out — but emit nothing, so the trace fold drifts.
    pub fn note_swap_out(&mut self, _sc: u32) {
        self.stats.swap_outs += 1;
    }

    fn emit(&mut self, event: EventKind) {
        self.sink.push(event);
    }
}
