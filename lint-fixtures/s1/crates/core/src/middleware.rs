//! S1 regression fixture: the PR 1 `make_cursor` deadlock shape.
//!
//! `make_cursor` binds the manager guard and then calls into the
//! interceptor shim, which re-enters `lock_manager` — the exact
//! re-acquisition of a non-reentrant `std::sync::Mutex` that hung the
//! original cursor path.

use std::sync::{Mutex, MutexGuard, OnceLock};

/// Swap-cluster bookkeeping (stand-in).
pub struct Manager {
    /// Currently loaded swap-clusters.
    pub loaded: Vec<u32>,
}

fn manager_cell() -> &'static Mutex<Manager> {
    static CELL: OnceLock<Mutex<Manager>> = OnceLock::new();
    CELL.get_or_init(|| Mutex::new(Manager { loaded: Vec::new() }))
}

/// The middleware's manager-lock helper.
pub fn lock_manager() -> MutexGuard<'static, Manager> {
    manager_cell().lock().expect("manager lock poisoned")
}

/// Re-mediate a member handle through a fresh cursor proxy.
pub fn make_cursor(target: u32) -> u32 {
    let manager = lock_manager();
    // BUG: the interceptor shim re-enters `lock_manager` while the guard
    // above is still live — a self-deadlock on a non-reentrant Mutex.
    let proxy = intercept_build(target);
    manager.loaded.first().copied().unwrap_or(proxy)
}

/// Interceptor shim: builds the proxy, consulting the manager.
fn intercept_build(target: u32) -> u32 {
    let manager = lock_manager();
    manager.loaded.iter().filter(|&&sc| sc != target).count() as u32
}
