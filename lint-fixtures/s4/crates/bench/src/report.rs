//! S4 fixture: panic paths in measurement library code. A figure run
//! should degrade to a structured error, not abort mid-sweep.

/// One measured row.
pub struct Row {
    /// Milliseconds per iteration.
    pub ms: f64,
}

/// Speedup of the first row over a baseline — on the panic path twice.
pub fn speedup(rows: &[Row], baseline: f64) -> f64 {
    let first = rows.first().unwrap();
    let last = rows[rows.len() - 1].ms;
    baseline / (first.ms + last)
}
