//! S3 fixture (inverted transport dependency): core constructing a live
//! daemon directly instead of dispatching over the Transport trait.

use obiwan_blobd::Blobd;

/// Boot a daemon from inside the middleware (the wall runs the other way).
pub fn boot() -> std::io::Result<obiwan_blobd::BlobdHandle> {
    Blobd::spawn_local(1 << 20)
}
