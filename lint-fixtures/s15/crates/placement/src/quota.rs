//! S15 regression fixture: raw arithmetic on the accounting counters a
//! placement decision pivots on. In release builds the `+` wraps and the
//! `-` underflows, turning a full device into an infinitely roomy one.

/// Per-device storage accounting (stand-in).
pub struct Ledger {
    /// Bytes currently charged against the quota.
    pub used: usize,
    /// Storage quota.
    pub quota: usize,
}

impl Ledger {
    /// Admit `size` bytes if they fit.
    pub fn admit(&mut self, size: usize) -> bool {
        // BUG: wraps on overflow in release builds.
        if self.used + size > self.quota {
            return false;
        }
        self.used += size;
        true
    }

    /// Release `size` bytes.
    pub fn release(&mut self, size: usize) {
        // BUG: underflows silently on a double-drop.
        self.used -= size;
    }
}
