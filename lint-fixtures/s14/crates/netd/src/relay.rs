//! S14 regression fixture: the relay actor's own drain loop re-enters a
//! device-actor verb. The enqueue targets a mailbox of the very shape
//! this thread is supposed to be draining, so the reply can only burn
//! the actor timeout (or deadlock outright with a rendezvous channel).

use std::sync::mpsc;
use std::time::Duration;

/// A device actor handle (stand-in): an inbox plus a reply channel.
pub struct Actor {
    inbox: mpsc::Sender<u32>,
    replies: mpsc::Receiver<u32>,
}

impl Actor {
    /// Ship `op` to the actor and wait for its reply.
    pub fn call(&self, op: u32) -> Result<u32, String> {
        self.inbox.send(op).map_err(|e| e.to_string())?;
        self.replies
            .recv_timeout(Duration::from_secs(10))
            .map_err(|e| e.to_string())
    }
}

/// Forward one operation to the peer actor.
fn forward(peer: &Actor, op: u32) -> Result<u32, String> {
    peer.call(op)
}

/// The relay actor's drain loop.
fn relay_main(rx: &mpsc::Receiver<u32>, peer: &Actor) {
    while let Ok(op) = rx.recv() {
        // BUG: the drain loop re-enters a mailbox verb.
        let _cost = forward(peer, op);
    }
}

/// Spawn the relay actor.
pub fn spawn_relay(rx: mpsc::Receiver<u32>, peer: Actor) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || relay_main(&rx, &peer))
}
