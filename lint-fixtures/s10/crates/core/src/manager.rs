//! S10 regression fixture: a lock guard smuggled out of its function by
//! a `move` closure.
//!
//! The queued task captures the live manager guard, so the lock is
//! released whenever the task queue gets around to running (or dropping)
//! it — the critical section has no lexical end any more. The clean
//! counterpart captures the data instead.

use std::sync::{Mutex, MutexGuard, OnceLock};

/// Swap-cluster bookkeeping (stand-in).
pub struct Manager {
    /// Next blob epoch.
    pub epoch: u32,
}

fn manager_cell() -> &'static Mutex<Manager> {
    static CELL: OnceLock<Mutex<Manager>> = OnceLock::new();
    CELL.get_or_init(|| Mutex::new(Manager { epoch: 0 }))
}

/// The middleware's manager-lock helper.
pub fn lock_manager() -> MutexGuard<'static, Manager> {
    manager_cell().lock().expect("manager lock poisoned")
}

/// Queue a deferred epoch read for the pump to run later.
pub fn queue_epoch_probe(tasks: &mut Vec<Box<dyn FnOnce() -> u32 + Send>>) {
    let manager = lock_manager();
    // BUG: the task captures the live guard; the manager stays locked
    // until the queue drains.
    tasks.push(Box::new(move || manager.epoch));
}
