//! S11 regression fixture: two shards of the same lock family taken in
//! argument order.
//!
//! `migrate(a, b)` and a concurrent `migrate(b, a)` acquire the shard
//! locks in opposite orders and deadlock. The clean counterpart sorts
//! the keys before locking so every caller agrees on the order.

use std::sync::{Mutex, MutexGuard, OnceLock};

/// One shard of the swap-cluster table (stand-in).
pub struct Shard {
    /// Clusters homed on this shard.
    pub clusters: Vec<u32>,
}

fn shard_cells() -> &'static (Mutex<Shard>, Mutex<Shard>) {
    static CELLS: OnceLock<(Mutex<Shard>, Mutex<Shard>)> = OnceLock::new();
    CELLS.get_or_init(|| {
        (
            Mutex::new(Shard { clusters: Vec::new() }),
            Mutex::new(Shard { clusters: Vec::new() }),
        )
    })
}

/// Lock shard `which` of the cluster table.
pub fn lock_shard(which: usize) -> MutexGuard<'static, Shard> {
    let cells = shard_cells();
    let cell = if which == 0 { &cells.0 } else { &cells.1 };
    cell.lock().expect("shard lock poisoned")
}

/// Move cluster `sc` from shard `from` to shard `to`.
pub fn migrate(sc: u32, from: usize, to: usize) {
    let mut a = lock_shard(from);
    // BUG: a concurrent migrate(sc, to, from) locks in the opposite
    // order and the two calls deadlock.
    let mut b = lock_shard(to);
    a.clusters.retain(|c| *c != sc);
    b.clusters.push(sc);
}

/// BUG: a "pair" helper that locks in the order given — it encapsulates
/// nothing, and two callers passing swapped arguments still deadlock.
pub fn lock_shard_pair(
    a: usize,
    b: usize,
) -> (MutexGuard<'static, Shard>, MutexGuard<'static, Shard>) {
    (lock_shard(a), lock_shard(b))
}

/// Merge cluster `sc`'s roster from shard `from` into shard `to`.
pub fn merge(sc: u32, from: usize, to: usize) {
    let (mut a, mut b) = lock_shard_pair(from, to);
    a.clusters.retain(|c| *c != sc);
    b.clusters.push(sc);
}
