//! S12 regression fixture: a swap-protocol result silently discarded on
//! one path.
//!
//! The first `drop_blob` outcome is bound but never examined when a
//! distinct backup holder exists — the function returns early on that
//! branch, so a failed reclamation on the primary goes unnoticed and
//! the remote copy leaks. The clean counterpart inspects the outcome
//! before branching.

/// The shared world (stand-in transport).
pub struct Net;

impl Net {
    /// Ask `device` to discard its copy of `key`.
    pub fn drop_blob(&mut self, _device: u32, _key: &str) -> Result<(), String> {
        Ok(())
    }
}

/// Reclaim the shipped copies of `key` from the primary and backup
/// holders; report whether every reachable holder honoured the drop.
pub fn reclaim(net: &mut Net, primary: u32, backup: u32, key: &str) -> bool {
    // BUG: when a distinct backup exists we return before ever looking
    // at the primary's outcome, so a refused drop leaks the remote copy.
    let first = net.drop_blob(primary, key);
    if backup != primary {
        return net.drop_blob(backup, key).is_ok();
    }
    first.is_ok()
}
