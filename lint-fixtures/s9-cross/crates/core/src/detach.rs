//! S9 interprocedural regression fixture: the blob transfer is buried in
//! a helper, so only the callee's summary connects the manager guard to
//! the bytes moving over the radio.

use std::sync::{Mutex, MutexGuard, OnceLock};

/// Swap-cluster bookkeeping (stand-in).
pub struct Manager {
    /// Next blob epoch.
    pub epoch: u32,
}

/// The shared world (stand-in transport).
pub struct Net;

impl Net {
    /// Store `blob` under `key` on `device`; returns the airtime cost.
    pub fn send_blob(&mut self, _device: u32, _key: &str, blob: Vec<u8>) -> Result<u64, String> {
        Ok(blob.len() as u64)
    }
}

fn manager_cell() -> &'static Mutex<Manager> {
    static CELL: OnceLock<Mutex<Manager>> = OnceLock::new();
    CELL.get_or_init(|| Mutex::new(Manager { epoch: 0 }))
}

fn net_cell() -> &'static Mutex<Net> {
    static CELL: OnceLock<Mutex<Net>> = OnceLock::new();
    CELL.get_or_init(|| Mutex::new(Net))
}

/// The middleware's manager-lock helper.
pub fn lock_manager() -> MutexGuard<'static, Manager> {
    manager_cell().lock().expect("manager lock poisoned")
}

/// The world-lock helper.
pub fn lock_net() -> MutexGuard<'static, Net> {
    net_cell().lock().expect("net lock poisoned")
}

/// Ship one blob to its holder (stand-in replication path).
fn ship_blob(key: &str, blob: Vec<u8>) -> Result<u64, String> {
    let mut net = lock_net();
    net.send_blob(7, key, blob)
}

/// Swap out: the manager guard is live across the buried transfer.
pub fn swap_out(sc: u32, blob: Vec<u8>) -> Result<usize, String> {
    let mut manager = lock_manager();
    manager.epoch += 1;
    let key = format!("sc{sc}-e{}", manager.epoch);
    // BUG: ship_blob transmits while our manager guard is held.
    ship_blob(&key, blob)?;
    Ok(key.len())
}
