//! S2 fixture: a `SwapStats` counter bumped outside the Recorder choke
//! point. The bump and the matching trace event drift apart — exactly the
//! rot the PR 4 Recorder was introduced to stop.

/// Swap-cluster manager (stand-in).
pub struct Manager {
    stats: SwapStats,
}

/// Lifecycle counters (stand-in).
#[derive(Default)]
pub struct SwapStats {
    /// Completed swap-outs.
    pub swap_outs: u64,
}

impl Manager {
    /// Detach a swap-cluster, counting it by hand instead of going
    /// through a Recorder method.
    pub fn detach(&mut self, _sc: u32) {
        self.stats.swap_outs += 1;
    }
}
