//! S7 fixture (live-transport): the actor runtime holding a raw Instant.
//! Real time must enter only through obiwan_net::clock::real().

use std::time::Instant;

/// Spin until a deadline computed from a raw wall-clock read.
pub fn pace(deadline: Instant) {
    while Instant::now() < deadline {
        std::thread::yield_now();
    }
}
