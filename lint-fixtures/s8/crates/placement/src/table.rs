//! S8 fixture: the PR 4 `PlacementTable` bug shape — repair events
//! emitted in `HashMap` iteration order, so hasher state leaks into the
//! trace.

use std::collections::HashMap;

/// Recording sink (stand-in).
pub struct Recorder;

impl Recorder {
    /// Record one repair (stand-in).
    pub fn note_repair(&mut self, _oid: u64, _holder: u32) {}
}

/// Blob → holder assignments (stand-in).
pub struct PlacementTable {
    placements: HashMap<u64, u32>,
}

impl PlacementTable {
    /// Emit a repair event per placement — in hash order.
    pub fn emit_repairs(&self, recorder: &mut Recorder) {
        for (oid, holder) in self.placements.iter() {
            recorder.note_repair(*oid, *holder);
        }
    }
}
