//! S1 interprocedural regression fixture: the historical `make_cursor`
//! deadlock with the re-acquisition buried one call deep. The shim holds
//! the manager guard and calls into replication, whose cursor rebuild
//! takes `lock_manager` again — only the callee's summary shows it.

use std::sync::{Mutex, MutexGuard, OnceLock};

/// Swap-cluster bookkeeping (stand-in).
pub struct Manager {
    /// Next blob epoch.
    pub epoch: u32,
}

fn manager_cell() -> &'static Mutex<Manager> {
    static CELL: OnceLock<Mutex<Manager>> = OnceLock::new();
    CELL.get_or_init(|| Mutex::new(Manager { epoch: 0 }))
}

/// The middleware's manager-lock helper.
pub fn lock_manager() -> MutexGuard<'static, Manager> {
    manager_cell().lock().expect("manager lock poisoned")
}

/// Rebuild the cursor tables (stand-in replication re-entry).
fn rebuild_cursor() -> u32 {
    let mut manager = lock_manager();
    manager.epoch += 1;
    manager.epoch
}

/// Interceptor shim: re-enters replication with the guard still live.
pub fn intercept_build() -> u32 {
    let manager = lock_manager();
    let epoch = manager.epoch;
    // BUG: rebuild_cursor re-takes `manager` while our guard is live.
    let rebuilt = rebuild_cursor();
    epoch.max(rebuilt)
}
