//! # OBIWAN Object-Swapping — facade crate
//!
//! This crate re-exports the whole reproduction of *Object-Swapping for
//! Resource-Constrained Devices* (Veiga & Ferreira, ICDCS 2007) so examples,
//! integration tests and downstream users can depend on a single crate.
//!
//! The interesting entry point is [`core::Middleware`] (re-exported at
//! [`Middleware`]), which wires together the managed heap, the replication
//! runtime, the policy engine, the simulated wireless world and the
//! object-swapping machinery.
//!
//! ```
//! use obiwan::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Build a tiny master graph on the "server".
//! let mut server = Server::new(standard_classes());
//! let list = server.build_list("Node", 100, 64)?;
//!
//! // A PDA replicates it with clusters of 20 objects and swapping enabled.
//! let mut mw = Middleware::builder()
//!     .cluster_size(20)
//!     .device_memory(256 * 1024)
//!     .build(server);
//! let root = mw.replicate_root(list)?;
//!
//! // Traverse: faults and swaps are transparent.
//! let len = mw.process_mut().invoke_i64(root, "length", vec![])?;
//! assert_eq!(len, 100);
//! # Ok(())
//! # }
//! ```

pub use obiwan_baselines as baselines;
pub use obiwan_blobd as blobd;
pub use obiwan_core as core;
pub use obiwan_heap as heap;
pub use obiwan_net as net;
pub use obiwan_netd as netd;
pub use obiwan_policy as policy;
pub use obiwan_replication as replication;
pub use obiwan_trace as trace;
pub use obiwan_xml as xml;

pub use obiwan_core::{Middleware, MiddlewareBuilder, SwapConfig};

/// Commonly used items, for `use obiwan::prelude::*`.
pub mod prelude {
    pub use obiwan_core::{
        Middleware, MiddlewareBuilder, StoreSpec, SwapConfig, SwapError, SwappingManager,
        VictimPolicy,
    };
    pub use obiwan_heap::{ClassBuilder, ClassRegistry, Heap, ObjRef, ObjectKind, Oid, Value};
    pub use obiwan_net::{DeviceId, DeviceKind, LinkSpec, NetFabric, SimNet, TransportKind};
    pub use obiwan_policy::{ContextManager, PolicyEngine, Watermarks};
    pub use obiwan_replication::{
        standard_classes, ClusterStrategy, Process, Server, UniverseBuilder,
    };
    pub use obiwan_trace::{EventKind, Trace, TraceRecord, TraceSink};
}
