//! Generation of strings from a small regex subset.
//!
//! `&str` strategies in proptest interpret the string as a regular
//! expression and generate matching strings. This stand-in supports the
//! subset the workspace's tests use: literals, `\PC` (any printable,
//! i.e. non-control, character), character classes `[a-z0-9_-]`, groups
//! `( ... )`, and the quantifiers `*`, `+`, `?`, `{n}` and `{n,m}`.
//! Unbounded quantifiers repeat up to 8 times.

use crate::test_runner::TestRng;

const UNBOUNDED_MAX: u32 = 8;

#[derive(Debug, Clone)]
enum Node {
    Lit(char),
    /// `\PC`: any char outside Unicode category C (control and friends).
    AnyPrintable,
    /// Inclusive ranges; single chars are `(c, c)`.
    Class(Vec<(char, char)>),
    Group(Vec<Node>),
    Repeat(Box<Node>, u32, u32),
}

/// Generate one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut rest: &[char] = &chars;
    let nodes = parse_sequence(&mut rest, pattern);
    let mut out = String::new();
    for node in &nodes {
        emit(node, rng, &mut out);
    }
    out
}

fn emit(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Lit(c) => out.push(*c),
        Node::AnyPrintable => out.push(printable(rng)),
        Node::Class(ranges) => {
            let total: u64 = ranges
                .iter()
                .map(|(lo, hi)| (*hi as u64) - (*lo as u64) + 1)
                .sum();
            let mut pick = rng.below(total);
            for (lo, hi) in ranges {
                let span = (*hi as u64) - (*lo as u64) + 1;
                if pick < span {
                    out.push(char::from_u32(*lo as u32 + pick as u32).unwrap_or(*lo));
                    return;
                }
                pick -= span;
            }
        }
        Node::Group(nodes) => {
            for n in nodes {
                emit(n, rng, out);
            }
        }
        Node::Repeat(inner, min, max) => {
            let n = *min + rng.below(u64::from(*max - *min + 1)) as u32;
            for _ in 0..n {
                emit(inner, rng, out);
            }
        }
    }
}

fn printable(rng: &mut TestRng) -> char {
    // Mostly ASCII printable; occasionally multibyte, to exercise UTF-8
    // handling the way the real `\PC` class does.
    const EXOTIC: [char; 6] = ['é', 'ω', '—', '中', '✓', 'ß'];
    if rng.below(8) == 0 {
        EXOTIC[rng.below(EXOTIC.len() as u64) as usize]
    } else {
        char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap_or(' ')
    }
}

/// Parse a sequence of terms until end of input or a closing parenthesis
/// (which is left unconsumed for the caller).
fn parse_sequence(chars: &mut &[char], pattern: &str) -> Vec<Node> {
    let mut nodes = Vec::new();
    while let Some(&c) = chars.first() {
        if c == ')' {
            break;
        }
        *chars = &chars[1..];
        let atom = match c {
            '\\' => parse_escape(chars, pattern),
            '[' => parse_class(chars, pattern),
            '(' => {
                let inner = parse_sequence(chars, pattern);
                match chars.first() {
                    Some(')') => *chars = &chars[1..],
                    _ => panic!("unclosed group in regex strategy {pattern:?}"),
                }
                Node::Group(inner)
            }
            other => Node::Lit(other),
        };
        nodes.push(parse_quantifier(atom, chars, pattern));
    }
    nodes
}

fn parse_escape(chars: &mut &[char], pattern: &str) -> Node {
    match chars.first() {
        Some('P') if chars.get(1) == Some(&'C') => {
            *chars = &chars[2..];
            Node::AnyPrintable
        }
        Some(&c) => {
            *chars = &chars[1..];
            match c {
                'n' => Node::Lit('\n'),
                't' => Node::Lit('\t'),
                'r' => Node::Lit('\r'),
                other => Node::Lit(other),
            }
        }
        None => panic!("dangling backslash in regex strategy {pattern:?}"),
    }
}

fn parse_class(chars: &mut &[char], pattern: &str) -> Node {
    let mut ranges = Vec::new();
    loop {
        match chars.first() {
            None => panic!("unclosed character class in regex strategy {pattern:?}"),
            Some(']') => {
                *chars = &chars[1..];
                break;
            }
            Some(&lo) => {
                *chars = &chars[1..];
                let lo = if lo == '\\' {
                    match chars.first() {
                        Some(&esc) => {
                            *chars = &chars[1..];
                            esc
                        }
                        None => panic!("dangling backslash in regex strategy {pattern:?}"),
                    }
                } else {
                    lo
                };
                // `a-z` range (a `-` before `]` is a literal dash).
                if chars.first() == Some(&'-') && chars.get(1).is_some_and(|&c| c != ']') {
                    let hi = chars[1];
                    *chars = &chars[2..];
                    assert!(
                        lo <= hi,
                        "inverted class range in regex strategy {pattern:?}"
                    );
                    ranges.push((lo, hi));
                } else {
                    ranges.push((lo, lo));
                }
            }
        }
    }
    assert!(
        !ranges.is_empty(),
        "empty character class in regex strategy {pattern:?}"
    );
    Node::Class(ranges)
}

fn parse_quantifier(atom: Node, chars: &mut &[char], pattern: &str) -> Node {
    match chars.first() {
        Some('*') => {
            *chars = &chars[1..];
            Node::Repeat(Box::new(atom), 0, UNBOUNDED_MAX)
        }
        Some('+') => {
            *chars = &chars[1..];
            Node::Repeat(Box::new(atom), 1, UNBOUNDED_MAX)
        }
        Some('?') => {
            *chars = &chars[1..];
            Node::Repeat(Box::new(atom), 0, 1)
        }
        Some('{') => {
            *chars = &chars[1..];
            let mut digits = String::new();
            while let Some(&c) = chars.first() {
                *chars = &chars[1..];
                if c == ',' || c == '}' {
                    let min: u32 = digits
                        .parse()
                        .unwrap_or_else(|_| panic!("bad repetition in regex strategy {pattern:?}"));
                    if c == '}' {
                        return Node::Repeat(Box::new(atom), min, min);
                    }
                    let mut max_digits = String::new();
                    while let Some(&m) = chars.first() {
                        *chars = &chars[1..];
                        if m == '}' {
                            let max: u32 = max_digits.parse().unwrap_or_else(|_| {
                                panic!("bad repetition in regex strategy {pattern:?}")
                            });
                            assert!(min <= max, "inverted repetition in {pattern:?}");
                            return Node::Repeat(Box::new(atom), min, max);
                        }
                        max_digits.push(m);
                    }
                    panic!("unclosed repetition in regex strategy {pattern:?}");
                }
                digits.push(c);
            }
            panic!("unclosed repetition in regex strategy {pattern:?}")
        }
        _ => atom,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case("regex_gen", 0)
    }

    #[test]
    fn literals_pass_through() {
        assert_eq!(generate("abc", &mut rng()), "abc");
    }

    #[test]
    fn classes_and_bounded_repeats() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate("[a-z][a-z0-9]{0,6}", &mut r);
            let mut cs = s.chars();
            let first = cs.next().unwrap();
            assert!(first.is_ascii_lowercase());
            assert!(s.chars().count() <= 7);
            assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn printable_class_has_no_controls() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate("\\PC{0,16}", &mut r);
            assert!(s.chars().count() <= 16);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }

    #[test]
    fn star_is_bounded() {
        let mut r = rng();
        for _ in 0..100 {
            assert!(generate("\\PC*", &mut r).chars().count() <= UNBOUNDED_MAX as usize);
        }
    }

    #[test]
    fn groups_with_repetition() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate("(<[a-c]{1,3} oid=\"[0-9]{1,4}\"/>){0,3}", &mut r);
            if !s.is_empty() {
                assert!(s.starts_with('<') && s.ends_with("/>"), "{s:?}");
                assert!(s.contains(" oid=\""), "{s:?}");
            }
        }
    }

    #[test]
    fn escaped_metacharacters_are_literal() {
        assert_eq!(generate("a\\{b\\}", &mut rng()), "a{b}");
        assert_eq!(generate("x\\\\y", &mut rng()), "x\\y");
    }
}
