//! Test execution support: configuration, RNG, and failure reporting.

use std::fmt;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed assertion with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic pseudo-random generator (splitmix64).
///
/// Each `(test, case)` pair seeds its own stream, so failures are
/// reproducible run-to-run and independent of test execution order.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The RNG for one generated case of one test.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case number.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A value uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_default_and_with_cases() {
        assert_eq!(ProptestConfig::default().cases, 256);
        assert_eq!(ProptestConfig::with_cases(7).cases, 7);
    }

    #[test]
    fn rng_streams_differ_by_test_and_case() {
        let a = TestRng::for_case("x", 0).next_u64();
        let b = TestRng::for_case("x", 1).next_u64();
        let c = TestRng::for_case("y", 0).next_u64();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::for_case("bound", 0);
        for _ in 0..1000 {
            assert!(rng.below(17) < 17);
        }
    }
}
