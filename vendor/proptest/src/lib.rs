//! Offline stand-in for the crates.io `proptest` crate.
//!
//! The build environment for this repository has no network access and no
//! registry cache, so the workspace patches `proptest` to this vendored
//! implementation. It reproduces the API subset the workspace's property
//! tests use — `proptest!`, `prop_oneof!`, `prop_assert*`, `any`, `Just`,
//! ranges / tuples / `&str`-regex / `collection::vec` strategies, `prop_map`
//! / `prop_filter` / `prop_recursive`, `ProptestConfig` and
//! `sample::Index` — with deterministic pseudo-random generation and **no
//! shrinking**: a failing case reports its seed and input instead of a
//! minimized counterexample.

#![forbid(unsafe_code)]

use std::rc::Rc;

pub mod test_runner;

mod regex_gen;

pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

// ---------------------------------------------------------------------------
// The Strategy trait and its adapters
// ---------------------------------------------------------------------------

/// A recipe for generating values of type `Self::Value`.
///
/// Unlike the real proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic function of the test RNG.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keep only values for which `f` returns true (rejection sampling).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: impl Into<String>,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            f,
        }
    }

    /// Build recursive values: `recurse` receives a strategy for the
    /// previous level and wraps it one level deeper, up to `depth` levels.
    /// The `desired_size` and `expected_branch_size` hints are accepted for
    /// API compatibility but unused.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = self.boxed();
        let mut current = base.clone();
        for _ in 0..depth {
            let deeper = recurse(current).boxed();
            // Mix in the base so generation terminates with leaves at
            // every level, not only at maximum depth.
            current = Union {
                arms: vec![(1, base.clone()), (2, deeper)],
            }
            .boxed();
        }
        current
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

trait ErasedStrategy<V> {
    fn generate_erased(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> ErasedStrategy<S::Value> for S {
    fn generate_erased(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<V>(Rc<dyn ErasedStrategy<V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_erased(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({:?}) rejected 10000 consecutive candidates",
            self.reason
        );
    }
}

/// Weighted choice between strategies, the engine behind [`prop_oneof!`].
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
}

impl<V> Union<V> {
    /// Build from `(weight, strategy)` arms. Panics if empty or all-zero.
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        assert!(
            arms.iter().map(|(w, _)| u64::from(*w)).sum::<u64>() > 0,
            "prop_oneof! needs at least one arm with nonzero weight"
        );
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let total: u64 = self.arms.iter().map(|(w, _)| u64::from(*w)).sum();
        let mut pick = rng.below(total);
        for (w, s) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights changed during generation")
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies: ranges, tuples, regex strings
// ---------------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128) - (self.start as i128);
                let off = (rng.below(u64::MAX) as i128).rem_euclid(span);
                (self.start as i128 + off) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                let off = (rng.below(u64::MAX) as i128).rem_euclid(span);
                (*self.start() as i128 + off) as $t
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        regex_gen::generate(self, rng)
    }
}

// ---------------------------------------------------------------------------
// Arbitrary and `any`
// ---------------------------------------------------------------------------

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized {
    /// Produce an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct ArbitraryStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for ArbitraryStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
    ArbitraryStrategy(std::marker::PhantomData)
}

macro_rules! int_arbitrary {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        match rng.below(4) {
            // Mostly "ordinary" magnitudes, exact and representable.
            0 | 1 => (rng.next_u64() as i64 % 1_000_000_000) as f64 / 1024.0,
            // Specials (a filter on finiteness rejects the last two).
            2 => [0.0, -0.0, 1.0, -1.0, f64::MIN_POSITIVE, f64::MAX][rng.below(6) as usize],
            // Raw bit patterns: subnormals, infinities, NaNs.
            _ => f64::from_bits(rng.next_u64()),
        }
    }
}

// ---------------------------------------------------------------------------
// Submodules mirroring the real crate layout
// ---------------------------------------------------------------------------

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Number-of-elements bounds for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_inclusive - self.size.min + 1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling helpers.
pub mod sample {
    use super::{Arbitrary, Strategy, TestRng};

    /// Strategy choosing uniformly among the given values.
    pub fn select<T: Clone + 'static>(values: Vec<T>) -> Select<T> {
        assert!(
            !values.is_empty(),
            "sample::select needs at least one value"
        );
        Select { values }
    }

    /// See [`select`].
    pub struct Select<T> {
        values: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.values[rng.below(self.values.len() as u64) as usize].clone()
        }
    }

    /// An index into a collection of not-yet-known size.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// Map this abstract index into `0..size`.
        pub fn index(&self, size: usize) -> usize {
            assert!(size > 0, "Index::index requires a nonempty collection");
            (self.0 % size as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Weighted (`w => strategy`) or uniform choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// Assert within a property test; failure reports the case and input seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion within a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)+), left, right
        );
    }};
}

/// Inequality assertion within a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Define property tests: each `fn name(binding in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `ProptestConfig::cases`
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            for case in 0..config.cases {
                let mut __proptest_rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $pat = $crate::Strategy::generate(&$strat, &mut __proptest_rng);)+
                #[allow(clippy::redundant_closure_call)]
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("property failed on case {case}/{}: {e}", config.cases);
                }
            }
        }
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    (cfg = ($cfg:expr);) => {};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        A,
        B(u8),
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 10u32..20, y in 1u64..=3, z in -5i64..5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((1..=3).contains(&y));
            prop_assert!((-5..5).contains(&z));
        }

        #[test]
        fn vec_and_oneof_compose(ops in prop::collection::vec(
            prop_oneof![3 => Just(Op::A), 1 => any::<u8>().prop_map(Op::B)], 1..10,
        )) {
            prop_assert!(!ops.is_empty() && ops.len() < 10);
        }

        #[test]
        fn tuples_and_index(pair in (any::<prop::sample::Index>(), 0usize..100)) {
            let (idx, bound) = pair;
            prop_assert!(idx.index(bound + 1) <= bound);
        }

        #[test]
        fn filters_reject(v in any::<f64>().prop_filter("finite", |f| f.is_finite())) {
            prop_assert!(v.is_finite());
        }

        #[test]
        fn regex_strings_match_shape(s in "[a-c]{2,4}") {
            prop_assert!((2..=4).contains(&s.chars().count()), "got {:?}", s);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        struct Tree(Vec<Tree>);
        let strat = Just(Tree(vec![])).prop_recursive(4, 24, 3, |inner| {
            prop::collection::vec(inner, 0..3).prop_map(Tree)
        });
        let mut rng = TestRng::for_case("recursive", 0);
        for _ in 0..100 {
            fn depth(t: &Tree) -> u32 {
                1 + t.0.iter().map(depth).max().unwrap_or(0)
            }
            // Depth is bounded by the recursion depth plus the leaf level.
            prop_assert_capped(depth(&strat.generate(&mut rng)));
        }
    }

    fn prop_assert_capped(d: u32) {
        assert!(d <= 6, "runaway recursion depth {d}");
    }

    #[test]
    fn deterministic_per_case() {
        let a = ("[a-z]{1,8}", 0u32..1000).generate(&mut TestRng::for_case("t", 3));
        let b = ("[a-z]{1,8}", 0u32..1000).generate(&mut TestRng::for_case("t", 3));
        assert_eq!(a, b);
    }
}
