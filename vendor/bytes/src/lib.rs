//! Offline stand-in for the crates.io `bytes` crate.
//!
//! The build environment for this repository has no network access and no
//! registry cache, so the workspace patches `bytes` to this vendored
//! implementation. It provides the (small) API subset the workspace uses:
//! a cheaply-clonable, immutable byte buffer.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, immutable contiguous slice of memory.
///
/// Unlike the real `bytes::Bytes` this does not support zero-copy
/// sub-slicing; the workspace only stores, clones, compares and reads whole
/// buffers.
#[derive(Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// Wrap a static slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes(Arc::from(bytes))
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::from_static(v.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.0[..] == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self.0[..] == other.as_slice()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_len() {
        assert_eq!(Bytes::new().len(), 0);
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from_static(b"abc").len(), 3);
        assert_eq!(
            Bytes::from(vec![1u8, 2, 3]),
            Bytes::copy_from_slice(&[1, 2, 3])
        );
    }

    #[test]
    fn deref_and_iter() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b.iter().copied().sum::<u8>(), 6);
        let collected: Bytes = (0u8..4).collect();
        assert_eq!(collected, Bytes::from(vec![0u8, 1, 2, 3]));
    }

    #[test]
    fn clone_is_cheap_and_equal() {
        let a = Bytes::from(vec![9u8; 1000]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(format!("{:?}", Bytes::from_static(b"a\"b")), "b\"a\\\"b\"");
    }
}
