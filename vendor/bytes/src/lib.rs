//! Offline stand-in for the crates.io `bytes` crate.
//!
//! The build environment for this repository has no network access and no
//! registry cache, so the workspace patches `bytes` to this vendored
//! implementation. It provides the (small) API subset the workspace uses:
//! a cheaply-clonable, immutable byte buffer with zero-copy sub-slicing —
//! [`Bytes::slice`] returns a view sharing the same backing allocation,
//! which is what lets the swap codec materialize byte payloads straight
//! out of a fetched wire buffer without copying them.

#![forbid(unsafe_code)]

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply clonable, immutable contiguous slice of memory.
///
/// Like the real `bytes::Bytes`, a value is a refcounted view (offset +
/// length) into a shared backing buffer: [`Bytes::slice`] is O(1) and
/// allocation-free. Equality, ordering and hashing are by content, so two
/// views of different buffers with the same bytes compare equal.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    offset: u32,
    len: u32,
}

impl Bytes {
    fn from_arc(data: Arc<[u8]>) -> Self {
        let len = u32::try_from(data.len()).unwrap_or_else(|_| {
            // The workspace only moves device-sized blobs (kilobytes);
            // a 4 GiB buffer here is a programming error.
            panic!("Bytes buffer of {} bytes exceeds u32 range", data.len())
        });
        Bytes {
            data,
            offset: 0,
            len,
        }
    }

    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::from_arc(Arc::from(&[][..]))
    }

    /// Wrap a static slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from_arc(Arc::from(bytes))
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from_arc(Arc::from(data))
    }

    /// Length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the buffer is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A zero-copy sub-view of this buffer: the returned `Bytes` shares the
    /// backing allocation, no bytes are moved.
    ///
    /// # Panics
    ///
    /// Panics when the range falls outside `0..=len` (mirroring slice
    /// indexing).
    #[inline]
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            start <= end && end <= self.len(),
            "slice {start}..{end} out of range for Bytes of length {}",
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            offset: self.offset + start as u32,
            len: (end - start) as u32,
        }
    }

    #[inline]
    fn as_slice(&self) -> &[u8] {
        let start = self.offset as usize;
        &self.data[start..start + self.len as usize]
    }
}

impl Deref for Bytes {
    type Target = [u8];

    #[inline]
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::from_arc(Arc::from(v.into_boxed_slice()))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::from_static(v.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_len() {
        assert_eq!(Bytes::new().len(), 0);
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from_static(b"abc").len(), 3);
        assert_eq!(
            Bytes::from(vec![1u8, 2, 3]),
            Bytes::copy_from_slice(&[1, 2, 3])
        );
    }

    #[test]
    fn deref_and_iter() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b.iter().copied().sum::<u8>(), 6);
        let collected: Bytes = (0u8..4).collect();
        assert_eq!(collected, Bytes::from(vec![0u8, 1, 2, 3]));
    }

    #[test]
    fn clone_is_cheap_and_equal() {
        let a = Bytes::from(vec![9u8; 1000]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(format!("{:?}", Bytes::from_static(b"a\"b")), "b\"a\\\"b\"");
    }

    #[test]
    fn slice_is_zero_copy_and_content_equal() {
        let base = Bytes::from(vec![0u8, 1, 2, 3, 4, 5, 6, 7]);
        let mid = base.slice(2..6);
        assert_eq!(&mid[..], &[2, 3, 4, 5]);
        // Views share the backing allocation.
        assert!(Arc::ptr_eq(&base.data, &mid.data));
        // Sub-slicing a view composes offsets.
        let inner = mid.slice(1..3);
        assert_eq!(&inner[..], &[3, 4]);
        // Content equality across different backings and offsets.
        assert_eq!(inner, Bytes::copy_from_slice(&[3, 4]));
        // Open-ended ranges.
        assert_eq!(&base.slice(..3)[..], &[0, 1, 2]);
        assert_eq!(&base.slice(5..)[..], &[5, 6, 7]);
        assert_eq!(base.slice(..), base);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slice_out_of_range_panics() {
        let _ = Bytes::from_static(b"abc").slice(1..5);
    }

    #[test]
    fn hash_and_ord_follow_content() {
        use std::collections::hash_map::DefaultHasher;
        let whole = Bytes::from(vec![7u8, 8, 9]);
        let view = Bytes::from(vec![0u8, 7, 8, 9, 0]).slice(1..4);
        let h = |b: &Bytes| {
            let mut s = DefaultHasher::new();
            b.hash(&mut s);
            s.finish()
        };
        assert_eq!(whole, view);
        assert_eq!(h(&whole), h(&view));
        assert_eq!(whole.cmp(&view), std::cmp::Ordering::Equal);
        assert!(Bytes::from_static(b"a") < Bytes::from_static(b"b"));
    }
}
