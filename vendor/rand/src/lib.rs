//! Offline stand-in for the crates.io `rand` crate.
//!
//! The build environment for this repository has no network access and no
//! registry cache, so the workspace patches `rand` to this vendored
//! implementation: a small xorshift-based generator with the `Rng` /
//! `SeedableRng` surface benchmarks and workload generators need.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Random number generation methods (subset of `rand::Rng`).
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random value in `[range.start, range.end)`.
    fn gen_range(&mut self, range: Range<u64>) -> u64 {
        let span = range.end - range.start;
        assert!(span > 0, "gen_range called with an empty range");
        range.start + self.next_u64() % span
    }

    /// A uniformly random `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A random `bool` that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }
}

/// Construction from a seed (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Commonly used generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, non-cryptographic generator (splitmix64 core).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }

    /// The standard generator is the same small generator here.
    pub type StdRng = SmallRng;
}

/// A generator seeded from ambient process entropy (address-space layout
/// and a monotonic counter) — *not* cryptographically random.
pub fn thread_rng() -> rngs::SmallRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0x243f_6a88_85a3_08d3);
    let tick = COUNTER.fetch_add(0x9e37_79b9, Ordering::Relaxed);
    SeedableRng::seed_from_u64(tick)
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let f = rng.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
