//! Offline stand-in for the crates.io `criterion` crate.
//!
//! The build environment for this repository has no network access and no
//! registry cache, so the workspace patches `criterion` to this vendored
//! implementation. It keeps the benchmark sources compiling and runnable:
//! each benchmark is timed with `std::time::Instant` over `sample_size`
//! iterations and a mean per-iteration time is printed — no statistics,
//! no plots, no comparison to saved baselines.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of the standard optimization barrier under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark (printed, not analyzed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: function name plus parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    /// Identify a benchmark as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: name.into(),
            param: parameter.to_string(),
        }
    }

    /// Identify a benchmark by parameter only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: String::new(),
            param: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.name.is_empty() {
            write!(f, "{}", self.param)
        } else {
            write!(f, "{}/{}", self.name, self.param)
        }
    }
}

/// Timing helper handed to benchmark closures.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call outside the timed window.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            iterations: self.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut b, input);
        self.report(&id.to_string(), &b);
        self
    }

    /// Run one benchmark without an input value.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iterations: self.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        self.report(&id.to_string(), &b);
        self
    }

    fn report(&mut self, id: &str, b: &Bencher) {
        let per_iter = if b.iterations == 0 {
            Duration::ZERO
        } else {
            b.elapsed / b.iterations as u32
        };
        let mut line = format!(
            "{}/{}: {:?}/iter over {} iters",
            self.name, id, per_iter, b.iterations
        );
        if let Some(tp) = self.throughput {
            let secs = per_iter.as_secs_f64();
            if secs > 0.0 {
                match tp {
                    Throughput::Bytes(n) => {
                        line.push_str(&format!(
                            " ({:.1} MiB/s)",
                            n as f64 / secs / (1 << 20) as f64
                        ));
                    }
                    Throughput::Elements(n) => {
                        line.push_str(&format!(" ({:.0} elem/s)", n as f64 / secs));
                    }
                }
            }
        }
        self.criterion.lines.push(line);
    }

    /// Finish the group (prints the collected lines).
    pub fn finish(self) {
        for line in self.criterion.lines.drain(..) {
            println!("{line}");
        }
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    lines: Vec<String>,
}

impl Criterion {
    /// Accept (and ignore) command-line arguments that the real criterion
    /// would parse — cargo bench passes `--bench` by default.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Print the final summary (a no-op here; groups print on `finish`).
    pub fn final_summary(&mut self) {}
}

/// Compatibility macro: collects benchmark functions into a runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

/// Compatibility macro: the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_times_and_prints() {
        let mut c = Criterion::default().configure_from_args();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.throughput(Throughput::Bytes(100));
        let mut calls = 0u64;
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| {
                calls += 1;
                (0..n).sum::<u64>()
            })
        });
        group.finish();
        // warm-up + 3 timed iterations
        assert_eq!(calls, 4);
        c.final_summary();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("visit", 50).to_string(), "visit/50");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
