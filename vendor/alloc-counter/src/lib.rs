//! Offline stand-in for a crates.io allocation-counting test helper.
//!
//! Wraps the system allocator and counts every `alloc` / `alloc_zeroed` /
//! `realloc` call, so tests can assert that a hot path performs a bounded
//! number of heap allocations. A test binary installs it with:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: alloc_counter::CountingAllocator = alloc_counter::CountingAllocator;
//! ```
//!
//! and then measures a region with [`count`]. The counter is global to the
//! process, so measuring tests must run the measured region on a single
//! thread with no concurrent tests in the same binary (or accept the
//! noise). This workspace forbids `unsafe_code` in its own crates; the
//! `GlobalAlloc` impl lives here because `vendor/*` mirrors external APIs
//! and is exempt from that wall.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A `#[global_allocator]` that delegates to [`System`] and counts calls.
pub struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

/// Total allocation calls since process start.
pub fn allocation_count() -> usize {
    ALLOCATIONS.load(Ordering::SeqCst)
}

/// Run `f` and return how many allocation calls it performed alongside its
/// result. Only meaningful when [`CountingAllocator`] is installed as the
/// `#[global_allocator]` and nothing else allocates concurrently.
pub fn count<R>(f: impl FnOnce() -> R) -> (usize, R) {
    let before = allocation_count();
    let result = f();
    (allocation_count() - before, result)
}
