//! A small LZ77-style compressor shared by the compressed wire format
//! (`obiwan-core`) and the heap-compression baseline (`obiwan-baselines`).
//!
//! Deliberately simple (greedy hash-chain matching, byte-oriented token
//! stream) — the users need *representative* compression cost and
//! ratio on XML-ish object data, not a production codec. No external
//! dependencies, fully deterministic.
//!
//! Token stream format:
//!
//! * `0x00 len  bytes…` — literal run of `len` (1–255) bytes;
//! * `0x01 len d_hi d_lo` — match of `len` (4–255) bytes at distance
//!   `d` (1–65535) back from the current output position.

/// Compress `input`. The output always decompresses to `input` exactly
/// (see [`decompress`] and the property test).
pub fn compress(input: &[u8]) -> Vec<u8> {
    const MIN_MATCH: usize = 4;
    const MAX_MATCH: usize = 255;
    const WINDOW: usize = 65_535;
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    // Head of the hash chain: position of the latest occurrence of each
    // 4-byte prefix hash.
    let mut table = vec![usize::MAX; 1 << 14];
    let hash = |window: &[u8]| -> usize {
        let v = u32::from_le_bytes([window[0], window[1], window[2], window[3]]);
        (v.wrapping_mul(2654435761) >> 18) as usize
    };
    let mut literals_start = 0;
    let mut i = 0;
    let flush_literals = |out: &mut Vec<u8>, from: usize, to: usize, input: &[u8]| {
        let mut s = from;
        while s < to {
            let run = (to - s).min(255);
            out.push(0x00);
            out.push(run as u8);
            out.extend_from_slice(&input[s..s + run]);
            s += run;
        }
    };
    while i + MIN_MATCH <= input.len() {
        let h = hash(&input[i..]);
        let candidate = table[h];
        table[h] = i;
        let mut match_len = 0;
        if candidate != usize::MAX && i - candidate <= WINDOW {
            let max = (input.len() - i).min(MAX_MATCH);
            while match_len < max && input[candidate + match_len] == input[i + match_len] {
                match_len += 1;
            }
        }
        if match_len >= MIN_MATCH {
            flush_literals(&mut out, literals_start, i, input);
            let distance = i - candidate;
            out.push(0x01);
            out.push(match_len as u8);
            out.push((distance >> 8) as u8);
            out.push((distance & 0xff) as u8);
            i += match_len;
            literals_start = i;
        } else {
            i += 1;
        }
    }
    flush_literals(&mut out, literals_start, input.len(), input);
    out
}

/// Decompress a [`compress`] token stream.
///
/// # Errors
///
/// Returns a description of the corruption for truncated or malformed
/// streams.
pub fn decompress(input: &[u8]) -> Result<Vec<u8>, String> {
    let mut out = Vec::with_capacity(input.len() * 2);
    let mut i = 0;
    while i < input.len() {
        match input[i] {
            0x00 => {
                let len = *input.get(i + 1).ok_or("truncated literal header")? as usize;
                if len == 0 {
                    return Err("zero-length literal run".into());
                }
                let start = i + 2;
                let end = start + len;
                if end > input.len() {
                    return Err("truncated literal run".into());
                }
                out.extend_from_slice(&input[start..end]);
                i = end;
            }
            0x01 => {
                if i + 4 > input.len() {
                    return Err("truncated match token".into());
                }
                let len = input[i + 1] as usize;
                let distance = ((input[i + 2] as usize) << 8) | input[i + 3] as usize;
                if distance == 0 || distance > out.len() {
                    return Err(format!(
                        "match distance {distance} out of range (output {})",
                        out.len()
                    ));
                }
                let from = out.len() - distance;
                // Overlapping copies are legal (distance < len).
                for k in 0..len {
                    let b = out[from + k];
                    out.push(b);
                }
                i += 4;
            }
            other => return Err(format!("unknown token 0x{other:02x}")),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    // Tests assert on known-good setups; panicking on failure is the point.
    #![allow(clippy::disallowed_methods)]
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_roundtrip() {
        assert_eq!(decompress(&compress(b"")).unwrap(), b"");
    }

    #[test]
    fn repetitive_data_shrinks() {
        let data = b"<object oid=\"1\"/><object oid=\"2\"/>".repeat(50);
        let c = compress(&data);
        assert!(c.len() < data.len() / 3, "{} vs {}", c.len(), data.len());
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn incompressible_data_grows_bounded() {
        let data: Vec<u8> = (0..1000u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        let c = compress(&data);
        // Worst case overhead: 2 bytes per 255-byte literal run.
        assert!(c.len() <= data.len() + 2 * (data.len() / 255 + 1));
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn overlapping_match_roundtrip() {
        let data = b"abcabcabcabcabcabcabcabcabc".to_vec();
        assert_eq!(decompress(&compress(&data)).unwrap(), data);
    }

    #[test]
    fn corrupt_streams_are_rejected() {
        assert!(decompress(&[0x00]).is_err()); // truncated header
        assert!(decompress(&[0x00, 5, 1, 2]).is_err()); // truncated run
        assert!(decompress(&[0x01, 4, 0, 1]).is_err()); // distance > output
        assert!(decompress(&[0x07]).is_err()); // unknown token
        assert!(decompress(&[0x00, 0]).is_err()); // zero-length run
    }

    proptest! {
        #[test]
        fn roundtrip_arbitrary(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
            prop_assert_eq!(decompress(&compress(&data)).unwrap(), data);
        }

        #[test]
        fn roundtrip_xmlish(s in "(<[a-c]{1,3} oid=\"[0-9]{1,4}\"/>){0,60}") {
            let data = s.as_bytes();
            prop_assert_eq!(decompress(&compress(data)).unwrap(), data);
        }
    }
}
