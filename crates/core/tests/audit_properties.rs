//! Property-based audit: under arbitrary interleavings of traversals,
//! explicit swap-outs, reloads, victim evictions and collections, the
//! whole-graph auditor finds zero error-severity violations after *every*
//! operation — the machinery never leaves the graph in a corrupt
//! intermediate state, not even transiently between public API calls.

#![allow(clippy::disallowed_methods)]

use obiwan_core::{Middleware, SwapConfig, SwapError};
use obiwan_heap::Value;
use obiwan_replication::{standard_classes, Server};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Walk(usize),
    SwapOut(u32),
    SwapIn(u32),
    SwapOutVictim,
    Gc,
    Sweep,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (1usize..30).prop_map(Op::Walk),
        2 => (1u32..=10).prop_map(Op::SwapOut),
        2 => (1u32..=10).prop_map(Op::SwapIn),
        2 => Just(Op::SwapOutVictim),
        1 => Just(Op::Gc),
        1 => Just(Op::Sweep),
    ]
}

/// Advance a swap-cluster-0 cursor `steps` hops (wrapping at the end),
/// reloading swapped clusters transparently. Each hop is re-mediated
/// through `make_cursor` so the parked global survives swap-outs of the
/// cluster it points into (a raw handle would dangle — the W1 hazard).
fn walk(mw: &mut Middleware, steps: usize) {
    for _ in 0..steps {
        let cur = mw
            .global("cursor")
            .expect("cursor global")
            .expect_ref()
            .expect("ref");
        match mw.invoke_resilient(cur, "next", vec![], 200).expect("step") {
            Value::Ref(next) => {
                let cursor = mw.make_cursor(next).expect("cursor");
                mw.set_global("cursor", Value::Ref(cursor));
            }
            _ => {
                let root = mw
                    .global("head")
                    .expect("head global")
                    .expect_ref()
                    .expect("ref");
                mw.set_global("cursor", Value::Ref(root));
            }
        }
    }
}

fn assert_no_errors(mw: &Middleware, after: &str) {
    let report = mw.audit();
    assert!(
        !report.has_errors(),
        "graph invariants violated after {after}:\n{report}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn audit_is_error_free_after_every_operation(
        ops in proptest::collection::vec(arb_op(), 1..32),
        payload in 4usize..32,
        collect_after in any::<bool>(),
        // Small heaps add organic memory-pressure evictions to the
        // scripted ones.
        memory_kb in 16usize..64,
    ) {
        const N: usize = 90;
        let mut server = Server::new(standard_classes());
        let head = server.build_list("Node", N, payload).expect("build");
        let mut mw = Middleware::builder()
            .cluster_size(10)
            .device_memory(memory_kb << 10)
            .swap_config(SwapConfig::default().collect_after_swap_out(collect_after))
            .build(server);
        let root = mw.replicate_root(head).expect("replicate");
        mw.set_global("head", Value::Ref(root));
        mw.set_global("cursor", Value::Ref(root));
        assert_no_errors(&mw, "setup");

        for op in ops {
            match &op {
                Op::Walk(steps) => walk(&mut mw, *steps),
                Op::SwapOut(sc) => match mw.swap_out(*sc) {
                    Ok(_)
                    | Err(SwapError::BadState { .. })
                    | Err(SwapError::UnknownSwapCluster { .. })
                    | Err(SwapError::NothingToSwap { .. }) => {}
                    Err(e) => panic!("swap_out({sc}): {e}"),
                },
                Op::SwapIn(sc) => match mw.swap_in(*sc) {
                    Ok(_)
                    | Err(SwapError::BadState { .. })
                    | Err(SwapError::UnknownSwapCluster { .. })
                    | Err(SwapError::DataLost { .. }) => {}
                    Err(e) => panic!("swap_in({sc}): {e}"),
                },
                Op::SwapOutVictim => {
                    mw.swap_out_victim().expect("victim eviction");
                }
                Op::Gc => {
                    mw.run_gc().expect("gc");
                }
                Op::Sweep => {
                    mw.manager().sweep_orphaned_blobs();
                }
            }
            assert_no_errors(&mw, &format!("{op:?}"));
        }
    }
}
