//! End-to-end tests of the blob durability subsystem: k-way placement
//! fan-out, failover reload, GC drop fan-out, and the churn repair sweep.
//!
//! The paper ships each swapped-out cluster to exactly one neighbour;
//! `SwapConfig::replication_factor` generalizes that to k copies placed by
//! a pluggable policy, with reload failing over between holders and a
//! repair sweep re-replicating when a holder walks away.

#![allow(clippy::disallowed_methods)] // tests may panic on impossible states

use obiwan_core::{Middleware, PlacementKind, StoreSpec, SwapConfig, SwapError};
use obiwan_heap::Value;
use obiwan_net::{DeviceId, DeviceKind, LinkSpec};
use obiwan_replication::{standard_classes, Server};

/// A PDA over a 40-node list with `stores` storage devices in the room and
/// the given replication factor. Builtin policies stay on when `policies`
/// is true (the repair sweep rides the policy pump).
fn k_world(
    stores: usize,
    k: usize,
    policies: bool,
) -> (Middleware, obiwan_heap::ObjRef, Vec<DeviceId>) {
    let mut server = Server::new(standard_classes());
    let head = server.build_list("Node", 40, 16).unwrap();
    let mut builder = Middleware::builder()
        .cluster_size(10)
        .device_memory(1 << 20)
        .replication_factor(k)
        .stores(
            (0..stores)
                .map(|i| StoreSpec::new(format!("store-{i}"), DeviceKind::Laptop, 1 << 20))
                .collect(),
        );
    if !policies {
        builder = builder.no_builtin_policies();
    }
    let mut mw = builder.build(server);
    let root = mw.replicate_root(head).unwrap();
    mw.set_global("head", Value::Ref(root));
    assert_eq!(mw.invoke_i64(root, "length", vec![]).unwrap(), 40);
    let devices = {
        let net = mw.net();
        let net = net.lock().unwrap();
        net.nearby(mw.home_device())
    };
    assert_eq!(devices.len(), stores);
    (mw, root, devices)
}

/// The active `(key, holders)` of a swapped-out cluster.
fn holders(mw: &Middleware, sc: u32) -> (String, Vec<DeviceId>) {
    let manager = mw.manager();
    let (_, key, holders) = manager.holders_of(sc).expect("cluster is swapped out");
    (key, holders)
}

#[test]
fn k2_swap_out_stores_identical_copies_on_two_holders() {
    let (mut mw, _root, devices) = k_world(3, 2, false);
    let blob_bytes = mw.swap_out(2).unwrap();
    let (key, held) = holders(&mw, 2);
    assert_eq!(held.len(), 2, "two holders recorded");
    assert!(held.iter().all(|d| devices.contains(d)));
    let net = mw.net();
    let net = net.lock().unwrap();
    let copies: Vec<_> = held
        .iter()
        .map(|&d| net.blob_data(d, &key).expect("copy present"))
        .collect();
    assert_eq!(copies[0], copies[1], "both holders store identical bytes");
    assert_eq!(copies[0].len(), blob_bytes);
    // Fan-out traffic is accounted per copy.
    assert_eq!(mw.swap_stats().bytes_swapped_out, 2 * blob_bytes as u64);
}

#[test]
fn reload_fails_over_past_the_departed_primary() {
    let (mut mw, root, _devices) = k_world(2, 2, false);
    mw.swap_out(2).unwrap();
    let (_, held) = holders(&mw, 2);
    mw.net().lock().unwrap().depart(held[0]).unwrap();
    mw.swap_in(2)
        .expect("failover reload from the second holder");
    assert_eq!(mw.invoke_i64(root, "length", vec![]).unwrap(), 40);
    let stats = mw.swap_stats();
    assert_eq!(stats.swap_ins, 1);
    assert_eq!(stats.reload_failovers, 1);
}

#[test]
fn all_holders_gone_is_blob_unavailable_naming_every_holder_tried() {
    let (mut mw, root, _devices) = k_world(2, 2, false);
    mw.swap_out(2).unwrap();
    let (_, held) = holders(&mw, 2);
    for &d in &held {
        mw.net().lock().unwrap().depart(d).unwrap();
    }
    let err = mw.swap_in(2).expect_err("no holder reachable");
    match err {
        SwapError::BlobUnavailable {
            swap_cluster: 2,
            ref tried,
            ..
        } => assert_eq!(tried, &held, "every holder was tried, in order"),
        other => panic!("expected BlobUnavailable, got {other:?}"),
    }
    // Transient, not fatal: a holder returning makes the reload succeed.
    mw.net().lock().unwrap().arrive(held[1]).unwrap();
    mw.swap_in(2).expect("reload from the returned holder");
    assert_eq!(mw.invoke_i64(root, "length", vec![]).unwrap(), 40);
}

#[test]
fn repair_sweep_restores_k_holders_with_byte_identical_copies() {
    let (mut mw, root, _devices) = k_world(3, 2, true);
    mw.swap_out(2).unwrap();
    let (key, before) = holders(&mw, 2);
    assert_eq!(before.len(), 2);
    let original = mw
        .net()
        .lock()
        .unwrap()
        .blob_data(before[1], &key)
        .expect("copy");
    // One holder walks away while the cluster is swapped out.
    mw.net().lock().unwrap().depart(before[0]).unwrap();
    // The policy pump notices the loss (HolderLost) and runs the builtin
    // repair rule — no explicit repair call.
    mw.pump().unwrap();
    let (_, after) = holders(&mw, 2);
    assert_eq!(after.len(), 2, "repair restored the replication factor");
    assert!(
        !after.contains(&before[0]),
        "the departed holder was pruned from the placement"
    );
    let stats = mw.swap_stats();
    assert!(stats.repairs >= 1, "repair pass counted: {stats:?}");
    assert!(stats.repair_bytes > 0, "repair traffic accounted");
    {
        let net = mw.net();
        let net = net.lock().unwrap();
        for &d in &after {
            assert_eq!(
                net.blob_data(d, &key).expect("copy present"),
                original,
                "re-replicated copy is byte-identical"
            );
        }
    }
    // A subsequent reload succeeds and materializes the original graph.
    mw.swap_in(2).expect("reload after repair");
    assert_eq!(mw.invoke_i64(root, "length", vec![]).unwrap(), 40);
}

#[test]
fn repair_readopts_a_returning_holder_without_airtime() {
    let (mut mw, _root, _devices) = k_world(2, 2, false);
    mw.swap_out(2).unwrap();
    let (key, before) = holders(&mw, 2);
    mw.net().lock().unwrap().depart(before[0]).unwrap();
    // Prune the departed holder (its stale copy becomes a tracked orphan).
    mw.manager().repair_placements().unwrap();
    let (_, pruned) = holders(&mw, 2);
    assert_eq!(pruned, vec![before[1]], "down to the surviving holder");
    // The holder returns with its copy intact: the next sweep re-adopts the
    // existing copy instead of shipping a new one.
    mw.net().lock().unwrap().arrive(before[0]).unwrap();
    let (sent_before, _) = mw.net().lock().unwrap().traffic();
    mw.manager().repair_placements().unwrap();
    let (sent_after, _) = mw.net().lock().unwrap().traffic();
    let (_, restored) = holders(&mw, 2);
    assert_eq!(restored.len(), 2, "back to k holders");
    assert!(restored.contains(&before[0]));
    assert_eq!(sent_after, sent_before, "re-adoption shipped no bytes");
    assert!(mw.net().lock().unwrap().holds_blob(before[0], &key));
}

#[test]
fn reload_and_gc_drop_every_copy() {
    // Reload path: drop_blob_on_reload fans out to both holders.
    let (mut mw, root, devices) = k_world(2, 2, false);
    mw.swap_out(2).unwrap();
    mw.swap_in(2).unwrap();
    {
        let net = mw.net();
        let net = net.lock().unwrap();
        for &d in &devices {
            assert_eq!(net.stored_bytes(d).unwrap(), 0, "no copy survives reload");
        }
    }
    assert_eq!(mw.swap_stats().blobs_dropped, 2);

    // GC path: sever cluster 2 (nodes 10..20) after swapping it out; the
    // finalizer must instruct *every* holder to drop its copy.
    let mut cur = root;
    for _ in 0..9 {
        cur = mw.invoke_ref(cur, "next", vec![]).unwrap();
    }
    mw.set_global("cut", Value::Ref(cur));
    mw.swap_out(2).unwrap();
    assert_eq!(holders(&mw, 2).1.len(), 2);
    let cut = mw.global("cut").unwrap().expect_ref().unwrap();
    let handle = match obiwan_core::identity_key(mw.process(), cut).unwrap() {
        obiwan_core::IdentityKey::Oid(oid) => mw.process().lookup_replica(oid).unwrap(),
        obiwan_core::IdentityKey::Handle(h) => h,
    };
    mw.process_mut()
        .set_field_value(handle, "next", Value::Null)
        .unwrap();
    mw.run_gc().unwrap();
    mw.run_gc().unwrap();
    {
        let net = mw.net();
        let net = net.lock().unwrap();
        for &d in &devices {
            assert_eq!(net.stored_bytes(d).unwrap(), 0, "GC dropped every copy");
        }
    }
    assert_eq!(
        mw.swap_stats().blobs_dropped,
        4,
        "two reload + two GC drops"
    );
}

#[test]
fn short_room_stores_what_it_can_and_repairs_up_when_a_device_appears() {
    // Only one store for k = 2: the swap-out proceeds under-replicated
    // (durability degraded, not refused) and the auditor warns (D7).
    let (mut mw, _root, devices) = k_world(1, 2, true);
    mw.swap_out(2).unwrap();
    assert_eq!(
        holders(&mw, 2).1,
        devices,
        "one copy is all the room allows"
    );
    let report = mw.audit();
    assert!(!report.has_errors(), "under-replication is a warning");
    assert!(
        report
            .warnings()
            .any(|v| v.rule == obiwan_core::Rule::UnderReplicated),
        "D7 fires while under-replicated:\n{report}"
    );
    // A second device joins the room; the device-discovered policy tops
    // the placement back up to k on the next pump.
    {
        let net = mw.net();
        let mut net = net.lock().unwrap();
        let newcomer = net.add_device("latecomer", DeviceKind::Laptop, 1 << 20);
        net.connect(mw.home_device(), newcomer, LinkSpec::bluetooth())
            .unwrap();
    }
    mw.pump().unwrap();
    assert_eq!(holders(&mw, 2).1.len(), 2, "repair used the newcomer");
    let report = mw.audit();
    assert!(
        !report
            .warnings()
            .any(|v| v.rule == obiwan_core::Rule::UnderReplicated),
        "D7 clears once k holders exist:\n{report}"
    );
}

#[test]
fn placement_strategies_rank_holders_differently() {
    // A near laptop with little space vs. a big desktop two hops away:
    // link-cost-aware stays near, spread-by-free-storage goes where the
    // space is.
    let build = |kind: PlacementKind| {
        let mut server = Server::new(standard_classes());
        let head = server.build_list("Node", 40, 16).unwrap();
        let mut mw = Middleware::builder()
            .cluster_size(10)
            .device_memory(1 << 20)
            .no_builtin_policies()
            .placement(kind)
            .swap_config(SwapConfig::default().allow_relays(true).placement(kind))
            .stores(vec![StoreSpec::new(
                "near-laptop",
                DeviceKind::Laptop,
                64 << 10,
            )])
            .build(server);
        let (laptop, desktop) = {
            let net = mw.net();
            let mut net = net.lock().unwrap();
            let laptop = net.nearby(mw.home_device())[0];
            let mote = net.add_device("mote", DeviceKind::Mote, 0);
            let desktop = net.add_device("far-desktop", DeviceKind::Desktop, 1 << 20);
            net.connect(mw.home_device(), mote, LinkSpec::mote_radio())
                .unwrap();
            net.connect(mote, desktop, LinkSpec::wifi()).unwrap();
            (laptop, desktop)
        };
        let root = mw.replicate_root(head).unwrap();
        mw.set_global("head", Value::Ref(root));
        mw.invoke_i64(root, "length", vec![]).unwrap();
        mw.swap_out(2).unwrap();
        let (_, held) = holders(&mw, 2);
        (held[0], laptop, desktop)
    };
    let (primary, laptop, _) = build(PlacementKind::LinkCostAware);
    assert_eq!(
        primary, laptop,
        "link-cost-aware keeps the blob one hop out"
    );
    let (primary, _, desktop) = build(PlacementKind::SpreadByFreeStorage);
    assert_eq!(primary, desktop, "spread chases the emptiest store");
}

#[test]
fn single_copy_default_behaves_exactly_like_the_paper() {
    // replication_factor = 1 (the default): one holder, one copy, and the
    // wire carries exactly one blob's bytes — the paper's semantics.
    let (mut mw, root, _devices) = k_world(2, 1, false);
    let shipped = mw.swap_out(2).unwrap();
    let (key, held) = holders(&mw, 2);
    assert_eq!(held.len(), 1);
    {
        let net = mw.net();
        let net = net.lock().unwrap();
        let copies = net
            .device_ids()
            .into_iter()
            .filter(|&d| net.holds_blob(d, &key))
            .count();
        assert_eq!(copies, 1, "exactly one copy in the room");
        assert_eq!(net.traffic().0, shipped as u64, "single-copy wire bytes");
    }
    assert_eq!(mw.swap_stats().bytes_swapped_out, shipped as u64);
    mw.swap_in(2).unwrap();
    assert_eq!(mw.invoke_i64(root, "length", vec![]).unwrap(), 40);
}
