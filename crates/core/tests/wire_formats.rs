//! Property-based tests of the pluggable wire formats: arbitrary blobs
//! round-trip identically through every format, foreign frames are
//! rejected, and corrupt or truncated input never decodes to a blob.

#![allow(clippy::disallowed_methods)] // tests may panic on impossible states

use obiwan_core::codec::{Blob, BlobField, BlobObject};
use obiwan_core::wire::{self, BinaryFormat, Lz, WireFormat, WireFormatKind, XmlFormat};
use obiwan_heap::{Oid, Value};
use proptest::prelude::*;

fn arb_scalar() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        // Finite doubles only: NaN breaks equality.
        any::<f64>()
            .prop_filter("finite", |f| f.is_finite())
            .prop_map(Value::Double),
        any::<bool>().prop_map(Value::Bool),
        "\\PC{0,24}".prop_map(Value::from),
        proptest::collection::vec(any::<u8>(), 0..64)
            .prop_map(|v| Value::Bytes(bytes::Bytes::from(v))),
    ]
}

fn arb_field() -> impl Strategy<Value = BlobField> {
    prop_oneof![
        3 => arb_scalar().prop_map(BlobField::Scalar),
        1 => (1u64..100).prop_map(|o| BlobField::ProxyRef(Oid(o))),
        1 => (1u64..100).prop_map(|o| BlobField::FaultRef(Oid(o))),
    ]
}

fn arb_blob() -> impl Strategy<Value = Blob> {
    (
        1u32..1000,
        0u32..10,
        proptest::collection::vec(
            (1u64..10_000, proptest::collection::vec(arb_field(), 0..5)),
            1..12,
        ),
    )
        .prop_map(|(swap_cluster, epoch, raw_objects)| {
            let mut seen = std::collections::HashSet::new();
            let mut objects: Vec<BlobObject> = Vec::new();
            for (i, (oid, fields)) in raw_objects.into_iter().enumerate() {
                let oid = if seen.insert(oid) {
                    oid
                } else {
                    20_000 + i as u64
                };
                seen.insert(oid);
                objects.push(BlobObject {
                    oid: Oid(oid),
                    class: "Node".to_string(),
                    repl_cluster: i as u32,
                    fields: fields.into_iter().enumerate().collect(),
                });
            }
            let member_oids: Vec<Oid> = objects.iter().map(|o| o.oid).collect();
            if member_oids.len() > 1 {
                let target = member_oids[member_oids.len() - 1];
                let next_idx = objects[0].fields.len();
                objects[0]
                    .fields
                    .push((next_idx, BlobField::MemberRef(target)));
            }
            Blob {
                swap_cluster,
                epoch,
                objects,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn xml_format_roundtrips(blob in arb_blob()) {
        let data = XmlFormat.encode(&blob).expect("encode");
        prop_assert_eq!(XmlFormat.decode(&data).expect("decode"), blob);
    }

    #[test]
    fn binary_format_roundtrips(blob in arb_blob()) {
        let data = BinaryFormat.encode(&blob).expect("encode");
        prop_assert_eq!(BinaryFormat.decode(&data).expect("decode"), blob);
    }

    #[test]
    fn lz_binary_format_roundtrips(blob in arb_blob()) {
        let f = Lz(BinaryFormat);
        let data = f.encode(&blob).expect("encode");
        prop_assert_eq!(f.decode(&data).expect("decode"), blob);
    }

    #[test]
    fn self_describing_dispatch_decodes_every_kind(blob in arb_blob()) {
        // A device fetching a blob does not know its format up front: the
        // frame header (or its absence, for XML text) carries it.
        for kind in WireFormatKind::ALL {
            let data = wire::encode_blob(kind, &blob).expect("encode");
            prop_assert_eq!(wire::decode_blob(&data).expect("decode"), blob.clone());
            let header = wire::peek_header(&data).expect("peek");
            prop_assert_eq!(header.format_id, kind.format_id());
            prop_assert_eq!(header.swap_cluster, blob.swap_cluster);
            prop_assert_eq!(header.epoch, blob.epoch);
        }
    }

    #[test]
    fn framed_formats_reject_truncation_anywhere(blob in arb_blob()) {
        // Cutting a framed encoding at ANY point must fail decode, never
        // silently yield a different blob.
        for kind in [WireFormatKind::Binary, WireFormatKind::LzBinary] {
            let data = wire::encode_blob(kind, &blob).expect("encode");
            for cut in 0..data.len() {
                prop_assert!(
                    wire::decode_blob(&data[..cut]).is_err(),
                    "{kind} truncated at {cut}/{} decoded",
                    data.len()
                );
            }
        }
    }

    #[test]
    fn corrupt_headers_are_rejected(blob in arb_blob()) {
        for kind in [WireFormatKind::Binary, WireFormatKind::LzBinary] {
            let data = wire::encode_blob(kind, &blob).expect("encode");
            // A mangled format-id byte must not decode.
            let mut bad = data.to_vec();
            bad[4] = 0x7e; // no format has this id
            prop_assert!(wire::decode_blob(&bad).is_err());
            // Trailing garbage after a well-formed frame must not decode.
            let mut long = data.to_vec();
            long.push(0);
            prop_assert!(wire::decode_blob(&long).is_err());
        }
    }

    #[test]
    fn binary_never_loses_to_xml_on_the_wire(blob in arb_blob()) {
        // The compact format's reason to exist: no angle brackets, no hex
        // doubling of payload bytes.
        let xml = wire::encode_blob(WireFormatKind::Xml, &blob).expect("xml");
        let bin = wire::encode_blob(WireFormatKind::Binary, &blob).expect("binary");
        prop_assert!(
            bin.len() < xml.len(),
            "binary {} B >= xml {} B",
            bin.len(),
            xml.len()
        );
    }
}

#[test]
fn truncated_xml_is_rejected() {
    let blob = Blob {
        swap_cluster: 7,
        epoch: 2,
        objects: vec![BlobObject {
            oid: Oid(42),
            class: "Node".to_string(),
            repl_cluster: 0,
            fields: vec![(0, BlobField::Scalar(Value::Int(-5)))],
        }],
    };
    let data = wire::encode_blob(WireFormatKind::Xml, &blob).expect("encode");
    // XML is headerless text; cutting it mid-document must still error.
    assert!(wire::decode_blob(&data[..data.len() - 4]).is_err());
    // Cutting into the magic-free prefix must not be mistaken for a frame.
    assert!(wire::decode_blob(&data[..3]).is_err());
}

#[test]
fn format_ids_are_stable_wire_constants() {
    // Ids are persisted inside stored blobs: they can never be renumbered.
    assert_eq!(WireFormatKind::Xml.format_id(), 0);
    assert_eq!(WireFormatKind::Binary.format_id(), 1);
    assert_eq!(WireFormatKind::LzBinary.format_id(), 0x81);
    assert_eq!(XmlFormat.format_id(), 0);
    assert_eq!(BinaryFormat.format_id(), 1);
    assert_eq!(Lz(BinaryFormat).format_id(), 0x81);
    assert_eq!(Lz(XmlFormat).format_id(), 0x80);
}
