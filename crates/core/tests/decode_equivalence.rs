//! Equivalence battery for the decode-into-arena path: for random object
//! graphs × every wire format, the streaming [`ClusterMaterializer`]
//! produces a heap state observationally identical to the legacy
//! decode-to-`Blob`-then-allocate path — same handle sequence, same
//! objects, same accounting, same re-encode bytes — and rejects
//! truncated/corrupted frames exactly when the legacy decoder does.

#![allow(clippy::disallowed_methods)] // tests may panic on impossible states

use obiwan_core::codec::{Blob, BlobField, BlobObject};
use obiwan_core::materialize::{ClusterMaterializer, Fixup, FixupKind};
use obiwan_core::wire::{decode_blob, decode_blob_into, encode_blob, BlobHeader, WireFormatKind};
use obiwan_heap::{ClassBuilder, ClassRegistry, Heap, ObjRef, ObjectKind, Oid, Value};
use proptest::prelude::*;

/// A six-field "Node" layout — wide enough for every index the generator
/// emits, and wide enough to exercise the spilled field store.
fn registry() -> ClassRegistry {
    let mut reg = ClassRegistry::new();
    reg.register(
        ClassBuilder::new("Node")
            .ref_field("f0")
            .int_field("f1")
            .double_field("f2")
            .bool_field("f3")
            .str_field("f4")
            .bytes_field("f5"),
    );
    reg
}

fn arb_scalar() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        any::<f64>()
            .prop_filter("finite", |f| f.is_finite())
            .prop_map(Value::Double),
        any::<bool>().prop_map(Value::Bool),
        "\\PC{0,24}".prop_map(Value::from),
        proptest::collection::vec(any::<u8>(), 0..64)
            .prop_map(|v| Value::Bytes(bytes::Bytes::from(v))),
    ]
}

fn arb_field() -> impl Strategy<Value = BlobField> {
    prop_oneof![
        3 => arb_scalar().prop_map(BlobField::Scalar),
        1 => (1u64..100).prop_map(|o| BlobField::ProxyRef(Oid(o))),
        1 => (1u64..100).prop_map(|o| BlobField::FaultRef(Oid(o))),
    ]
}

fn arb_blob() -> impl Strategy<Value = Blob> {
    (
        1u32..1000,
        0u32..10,
        proptest::collection::vec(
            (1u64..10_000, proptest::collection::vec(arb_field(), 0..5)),
            1..12,
        ),
    )
        .prop_map(|(swap_cluster, epoch, raw_objects)| {
            let mut seen = std::collections::HashSet::new();
            let mut objects: Vec<BlobObject> = Vec::new();
            for (i, (oid, fields)) in raw_objects.into_iter().enumerate() {
                let oid = if seen.insert(oid) {
                    oid
                } else {
                    20_000 + i as u64
                };
                seen.insert(oid);
                objects.push(BlobObject {
                    oid: Oid(oid),
                    class: "Node".to_string(),
                    repl_cluster: i as u32,
                    fields: fields.into_iter().enumerate().collect(),
                });
            }
            // Member-to-member edges, valid targets only.
            let member_oids: Vec<Oid> = objects.iter().map(|o| o.oid).collect();
            if member_oids.len() > 1 {
                let target = member_oids[member_oids.len() - 1];
                let next_idx = objects[0].fields.len();
                objects[0]
                    .fields
                    .push((next_idx, BlobField::MemberRef(target)));
            }
            Blob {
                swap_cluster,
                epoch,
                objects,
            }
        })
}

/// What the legacy reload did with a decoded [`Blob`]: alloc per object
/// (layout-sized, null fields), stamp the header, write each captured
/// scalar through the accounting. Reference fields stay `Null` (both
/// paths defer them to the reconnect pass).
fn legacy_materialize(reg: &ClassRegistry, blob: &Blob) -> (Heap, Vec<ObjRef>) {
    let mut heap = Heap::new(reg.clone(), 1 << 24);
    let mut refs = Vec::new();
    for bo in &blob.objects {
        let class = reg.class_id(&bo.class).unwrap();
        let r = heap.alloc(class, ObjectKind::App).unwrap();
        {
            let h = heap.get_mut(r).unwrap().header_mut();
            h.oid = bo.oid;
            h.repl_cluster = bo.repl_cluster;
            h.swap_cluster = blob.swap_cluster;
        }
        for (i, f) in &bo.fields {
            if let BlobField::Scalar(v) = f {
                heap.set_any_field(r, *i, v.clone()).unwrap();
            }
        }
        refs.push(r);
    }
    (heap, refs)
}

/// The arena path: stream the wire bytes through the materializer, adopt
/// the detached objects in stream order.
fn arena_materialize(
    reg: &ClassRegistry,
    data: &bytes::Bytes,
    sc: u32,
) -> (Heap, Vec<ObjRef>, Vec<Fixup>, BlobHeader) {
    let mut mat = ClusterMaterializer::new(reg.clone(), sc);
    let header = decode_blob_into(data, &mut mat).unwrap();
    let (objects, fixups) = mat.into_parts();
    let mut heap = Heap::new(reg.clone(), 1 << 24);
    heap.reserve_slots(objects.len());
    let refs = objects
        .into_iter()
        .map(|(_, o)| heap.adopt(o).unwrap())
        .collect();
    (heap, refs, fixups, header)
}

/// The fixups a blob should produce, in stream order.
fn expected_fixups(blob: &Blob) -> Vec<Fixup> {
    let mut out = Vec::new();
    for (ordinal, bo) in blob.objects.iter().enumerate() {
        for (i, f) in &bo.fields {
            let (kind, oid) = match f {
                BlobField::MemberRef(o) => (FixupKind::Member, *o),
                BlobField::ProxyRef(o) => (FixupKind::Proxy, *o),
                BlobField::FaultRef(o) => (FixupKind::Fault, *o),
                BlobField::Scalar(_) => continue,
            };
            out.push(Fixup {
                ordinal: ordinal as u32,
                field: *i as u32,
                kind,
                oid,
            });
        }
    }
    out
}

/// Rebuild the `Blob` IR from the arena heap state + fixups — this is the
/// "re-encode bytes" leg of the observational equivalence.
fn rebuild_blob(heap: &Heap, refs: &[ObjRef], fixups: &[Fixup], sc: u32, epoch: u32) -> Blob {
    let objects = refs
        .iter()
        .enumerate()
        .map(|(ordinal, &r)| {
            let o = heap.get(r).unwrap();
            let mut fields: Vec<(usize, BlobField)> = o
                .fields()
                .iter()
                .enumerate()
                .filter(|(_, v)| !matches!(v, Value::Null))
                .map(|(i, v)| (i, BlobField::Scalar(v.clone())))
                .collect();
            for f in fixups.iter().filter(|f| f.ordinal as usize == ordinal) {
                fields.push((
                    f.field as usize,
                    match f.kind {
                        FixupKind::Member => BlobField::MemberRef(f.oid),
                        FixupKind::Proxy => BlobField::ProxyRef(f.oid),
                        FixupKind::Fault => BlobField::FaultRef(f.oid),
                    },
                ));
            }
            fields.sort_by_key(|(i, _)| *i);
            BlobObject {
                oid: o.header().oid,
                class: heap.classes().class(o.class()).unwrap().name().to_string(),
                repl_cluster: o.header().repl_cluster,
                fields,
            }
        })
        .collect();
    Blob {
        swap_cluster: sc,
        epoch,
        objects,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn arena_decode_is_observationally_identical_to_legacy(blob in arb_blob()) {
        let reg = registry();
        for kind in WireFormatKind::ALL {
            let bytes = encode_blob(kind, &blob).unwrap();

            // Legacy leg: bytes → Blob IR → per-object alloc + field writes.
            let legacy = decode_blob(&bytes).unwrap();
            prop_assert_eq!(&legacy, &blob, "{} roundtrip", kind);
            let (heap_l, refs_l) = legacy_materialize(&reg, &legacy);

            // Arena leg: bytes → materializer → adopt.
            let (heap_a, refs_a, fixups, header) = arena_materialize(&reg, &bytes, blob.swap_cluster);
            prop_assert_eq!(header.swap_cluster, blob.swap_cluster);
            prop_assert_eq!(header.epoch, blob.epoch);

            // Identical handle sequences (index AND generation), identical
            // objects behind them, identical accounting.
            prop_assert_eq!(&refs_a, &refs_l, "{} handle sequence", kind);
            for &r in &refs_a {
                prop_assert_eq!(heap_a.get(r).unwrap(), heap_l.get(r).unwrap(),
                    "{} object state at {}", kind, r);
            }
            prop_assert_eq!(heap_a.bytes_used(), heap_l.bytes_used(), "{} accounting", kind);
            prop_assert_eq!(heap_a.live_objects(), heap_l.live_objects());

            // The deferred reference fields match the blob's, in stream order.
            prop_assert_eq!(&fixups, &expected_fixups(&blob), "{} fixups", kind);

            // Re-encode leg: the arena state + fixups reconstruct the exact
            // original wire bytes.
            let rebuilt = rebuild_blob(&heap_a, &refs_a, &fixups, blob.swap_cluster, blob.epoch);
            prop_assert_eq!(&rebuilt, &blob, "{} rebuild", kind);
            prop_assert_eq!(
                encode_blob(kind, &rebuilt).unwrap(),
                bytes,
                "{} re-encode bytes", kind
            );
        }
    }

    #[test]
    fn truncation_and_corruption_rejection_parity(blob in arb_blob(), seed in any::<u64>()) {
        let reg = registry();
        for kind in WireFormatKind::ALL {
            let bytes = encode_blob(kind, &blob).unwrap().to_vec();

            let parity = |data: &[u8]| {
                let legacy_ok = decode_blob(data).is_ok();
                let mut mat = ClusterMaterializer::new(reg.clone(), blob.swap_cluster);
                let arena_ok =
                    decode_blob_into(&bytes::Bytes::copy_from_slice(data), &mut mat).is_ok();
                (legacy_ok, arena_ok)
            };

            // Both accept the intact frame.
            prop_assert_eq!(parity(&bytes), (true, true), "{} intact", kind);

            // Truncations: acceptance parity at every prefix (XML may shrug
            // off a trailing-whitespace cut — both decoders must agree
            // either way), and the framed formats must hard-reject.
            for cut in [0, 1, 4, bytes.len() / 3, bytes.len() / 2, bytes.len() - 1] {
                let (l, a) = parity(&bytes[..cut]);
                prop_assert_eq!(l, a, "{} truncated at {}", kind, cut);
                if kind != WireFormatKind::Xml {
                    prop_assert!(!l, "{} truncation at {} must be rejected", kind, cut);
                }
            }

            // Header corruption: flip one byte in the self-describing
            // header region; acceptance must agree bit-for-bit.
            let header_len = bytes.len().min(13);
            let at = (seed as usize) % header_len;
            let bit = 1u8 << ((seed >> 8) % 8);
            let mut corrupt = bytes.clone();
            corrupt[at] ^= bit;
            let (l, a) = parity(&corrupt);
            prop_assert_eq!(l, a, "{} header flip at {} bit {:#04x}", kind, at, bit);
        }
    }
}

/// End-to-end: full swap-out → swap-in cycles through every wire format
/// leave an audit-clean middleware and an unchanged application graph —
/// the "same audit report" leg of the equivalence, exercised against the
/// real reload (reconnects, inbound patches, registration) rather than
/// scratch heaps.
#[test]
fn swap_cycles_stay_audit_clean_in_every_format() {
    use obiwan_core::Middleware;
    use obiwan_replication::{Server, UniverseBuilder};

    for kind in WireFormatKind::ALL {
        let mut b = UniverseBuilder::new();
        let cell = b.class(
            ClassBuilder::new("Cell")
                .ref_field("next")
                .int_field("seq")
                .bytes_field("payload"),
        );
        b.method(cell, "value", |p, this, _args| p.field_value(this, "seq"));
        b.method(cell, "next", |p, this, _args| p.field_value(this, "next"));
        let mut server = Server::new(b.build());
        let mut oids = Vec::new();
        for i in 0..60i64 {
            let oid = server.create("Cell").unwrap();
            server
                .set_scalar(oid, "seq", Value::Int(i * 31 + 7))
                .unwrap();
            server
                .set_scalar(
                    oid,
                    "payload",
                    Value::Bytes(bytes::Bytes::from(vec![(i % 251) as u8; 48])),
                )
                .unwrap();
            oids.push(oid);
        }
        for w in oids.windows(2) {
            server.set_ref(w[0], "next", Some(w[1])).unwrap();
        }
        let head = oids[0];
        let mut mw = Middleware::builder()
            .cluster_size(6)
            .device_memory(1 << 20)
            .wire_format(kind)
            .no_builtin_policies()
            .build(server);
        let root = mw.replicate_root(head).unwrap();
        mw.set_global("head", Value::Ref(root));

        let fingerprint = |mw: &mut Middleware| -> Vec<i64> {
            let mut out = Vec::new();
            mw.set_global("cursor", Value::Ref(root));
            loop {
                let cur = mw.global("cursor").unwrap().expect_ref().unwrap();
                out.push(
                    mw.invoke(cur, "value", vec![])
                        .unwrap()
                        .expect_int()
                        .unwrap(),
                );
                match mw.invoke(cur, "next", vec![]).unwrap() {
                    Value::Ref(next) => mw.set_global("cursor", Value::Ref(next)),
                    _ => break,
                }
            }
            out
        };
        let baseline = fingerprint(&mut mw);
        assert_eq!(baseline.len(), 60, "{kind}");

        // Two explicit swap cycles plus a full re-walk (which itself
        // triggers reload-on-access for anything still out).
        for sc in [1u32, 2] {
            mw.swap_out(sc)
                .unwrap_or_else(|e| panic!("{kind}: swap_out({sc}): {e}"));
        }
        let report = mw.audit();
        assert!(report.is_clean(), "{kind} after swap-out: {report:?}");
        for sc in [1u32, 2] {
            mw.swap_in(sc)
                .unwrap_or_else(|e| panic!("{kind}: swap_in({sc}): {e}"));
        }
        assert_eq!(fingerprint(&mut mw), baseline, "{kind} graph changed");
        let report = mw.audit();
        assert!(report.is_clean(), "{kind} after swap-in: {report:?}");
    }
}
