//! Property-based tests of the swap-blob codec: arbitrary decoded blobs
//! round-trip through the XML text exactly, and the full
//! swap-out → reload cycle is lossless for arbitrary cluster shapes.

#![allow(clippy::disallowed_methods)] // tests may panic on impossible states

use obiwan_core::codec::{decode, Blob, BlobField, BlobObject};
use obiwan_heap::{Oid, Value};
use obiwan_xml::{Element, Writer};
use proptest::prelude::*;

fn arb_scalar() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        // Finite doubles only: NaN breaks equality (and the wire format
        // uses Rust's shortest-roundtrip notation, which is exact for
        // finite values).
        any::<f64>()
            .prop_filter("finite", |f| f.is_finite())
            .prop_map(Value::Double),
        any::<bool>().prop_map(Value::Bool),
        "\\PC{0,24}".prop_map(Value::from),
        proptest::collection::vec(any::<u8>(), 0..64)
            .prop_map(|v| Value::Bytes(bytes::Bytes::from(v))),
    ]
}

fn arb_field() -> impl Strategy<Value = BlobField> {
    prop_oneof![
        3 => arb_scalar().prop_map(BlobField::Scalar),
        1 => (1u64..100).prop_map(|o| BlobField::ProxyRef(Oid(o))),
        1 => (1u64..100).prop_map(|o| BlobField::FaultRef(Oid(o))),
    ]
}

fn arb_blob() -> impl Strategy<Value = Blob> {
    (
        1u32..1000,
        0u32..10,
        proptest::collection::vec(
            (1u64..10_000, proptest::collection::vec(arb_field(), 0..5)),
            1..12,
        ),
    )
        .prop_map(|(swap_cluster, epoch, raw_objects)| {
            // Deduplicate oids (an object appears once per blob).
            let mut seen = std::collections::HashSet::new();
            let mut objects: Vec<BlobObject> = Vec::new();
            for (i, (oid, fields)) in raw_objects.into_iter().enumerate() {
                let oid = if seen.insert(oid) {
                    oid
                } else {
                    20_000 + i as u64
                };
                seen.insert(oid);
                objects.push(BlobObject {
                    oid: Oid(oid),
                    class: "Node".to_string(),
                    repl_cluster: i as u32,
                    fields: fields.into_iter().enumerate().collect(),
                });
            }
            // Add member-to-member references (valid targets only).
            let member_oids: Vec<Oid> = objects.iter().map(|o| o.oid).collect();
            if member_oids.len() > 1 {
                let target = member_oids[member_oids.len() - 1];
                let next_idx = objects[0].fields.len();
                objects[0]
                    .fields
                    .push((next_idx, BlobField::MemberRef(target)));
            }
            Blob {
                swap_cluster,
                epoch,
                objects,
            }
        })
}

/// Render a structured blob back to the wire format (the inverse the
/// production code performs from live heap objects).
fn render(blob: &Blob) -> String {
    let mut w = Writer::new();
    w.begin("swap-cluster")
        .unwrap()
        .attr("id", blob.swap_cluster.to_string())
        .unwrap()
        .attr("epoch", blob.epoch.to_string())
        .unwrap()
        .attr("count", blob.objects.len().to_string())
        .unwrap();
    for o in &blob.objects {
        w.begin("object")
            .unwrap()
            .attr("oid", o.oid.0.to_string())
            .unwrap()
            .attr("class", &o.class)
            .unwrap()
            .attr("repl", o.repl_cluster.to_string())
            .unwrap();
        for (i, f) in &o.fields {
            match f {
                BlobField::MemberRef(oid) => {
                    w.begin("field")
                        .unwrap()
                        .attr("i", i.to_string())
                        .unwrap()
                        .attr("kind", "ref")
                        .unwrap()
                        .attr("oid", oid.0.to_string())
                        .unwrap();
                    w.end().unwrap();
                }
                BlobField::ProxyRef(oid) => {
                    w.begin("field")
                        .unwrap()
                        .attr("i", i.to_string())
                        .unwrap()
                        .attr("kind", "proxyref")
                        .unwrap()
                        .attr("oid", oid.0.to_string())
                        .unwrap();
                    w.end().unwrap();
                }
                BlobField::FaultRef(oid) => {
                    w.begin("field")
                        .unwrap()
                        .attr("i", i.to_string())
                        .unwrap()
                        .attr("kind", "faultref")
                        .unwrap()
                        .attr("oid", oid.0.to_string())
                        .unwrap();
                    w.end().unwrap();
                }
                BlobField::Scalar(v) => {
                    w.begin("field").unwrap().attr("i", i.to_string()).unwrap();
                    match v {
                        Value::Int(x) => {
                            w.attr("kind", "int")
                                .unwrap()
                                .attr("v", x.to_string())
                                .unwrap();
                        }
                        Value::Double(x) => {
                            w.attr("kind", "double")
                                .unwrap()
                                .attr("v", format!("{x:?}"))
                                .unwrap();
                        }
                        Value::Bool(x) => {
                            w.attr("kind", "bool")
                                .unwrap()
                                .attr("v", x.to_string())
                                .unwrap();
                        }
                        Value::Str(s) => {
                            w.attr("kind", "str").unwrap();
                            w.text(s).unwrap();
                        }
                        Value::Bytes(b) => {
                            w.attr("kind", "bytes").unwrap();
                            let hex: String = b.iter().map(|x| format!("{x:02x}")).collect();
                            w.text(&hex).unwrap();
                        }
                        Value::Null | Value::Ref(_) => unreachable!("not scalars"),
                    }
                    w.end().unwrap();
                }
            }
        }
        w.end().unwrap();
    }
    w.end().unwrap();
    w.finish().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn structured_blobs_roundtrip_through_xml(blob in arb_blob()) {
        let xml = render(&blob);
        let back = decode(&xml).expect("well-formed by construction");
        prop_assert_eq!(back, blob);
    }

    #[test]
    fn wire_xml_format_is_byte_identical_to_the_reference_renderer(blob in arb_blob()) {
        // The WireFormat refactor must not change a single byte of the XML
        // text: blobs already stored on devices stay decodable, and the
        // paper's portability argument keeps holding verbatim.
        use obiwan_core::{WireFormat, XmlFormat};
        let ours = XmlFormat.encode(&blob).expect("encode");
        let reference = render(&blob);
        prop_assert_eq!(&ours[..], reference.as_bytes());
    }

    #[test]
    fn blob_text_survives_foreign_reformatting(blob in arb_blob()) {
        let xml = render(&blob);
        // A storage device may re-serialize the text with its own XML
        // stack; decode must not care.
        let reformatted = Element::parse(&xml).expect("parse").to_xml();
        let a = decode(&xml).expect("original");
        let b = decode(&reformatted).expect("reformatted");
        prop_assert_eq!(a, b);
    }
}

#[test]
fn live_swap_cycle_is_lossless_for_every_scalar_kind() {
    // End-to-end: a cluster whose objects carry every field kind survives
    // swap-out + reload byte-exactly. Uses a custom class to cover str,
    // double and bool fields that the Node workload lacks.
    use obiwan_core::Middleware;
    use obiwan_heap::ClassBuilder;
    use obiwan_replication::{Server, UniverseBuilder};

    let mut b = UniverseBuilder::new();
    let rec = b.class(
        ClassBuilder::new("Record")
            .ref_field("next")
            .int_field("count")
            .double_field("ratio")
            .bool_field("flag")
            .str_field("label")
            .bytes_field("payload"),
    );
    b.method(rec, "snapshot", |p, this, _args| {
        let label = p.field_value(this, "label")?;
        let count = p.field_value(this, "count")?.expect_int()?;
        let ratio = p.field_value(this, "ratio")?.expect_double()?;
        let flag = p.field_value(this, "flag")?.expect_bool()?;
        let payload_len = match p.field_value(this, "payload")? {
            Value::Bytes(b) => b.len() as i64,
            _ => -1,
        };
        Ok(Value::from(format!(
            "{label}|{count}|{ratio}|{flag}|{payload_len}"
        )))
    });
    b.method(rec, "next", |p, this, _args| p.field_value(this, "next"));
    let u = b.build();
    let mut server = Server::new(u);
    let mut oids = Vec::new();
    for i in 0..8i64 {
        let oid = server.create("Record").unwrap();
        server
            .set_scalar(oid, "count", Value::Int(i * 7 - 3))
            .unwrap();
        server
            .set_scalar(oid, "ratio", Value::Double(0.5 + i as f64 / 3.0))
            .unwrap();
        server
            .set_scalar(oid, "flag", Value::Bool(i % 2 == 0))
            .unwrap();
        server
            .set_scalar(oid, "label", Value::from(format!("récord <{i}> & co")))
            .unwrap();
        server
            .set_scalar(
                oid,
                "payload",
                Value::Bytes(bytes::Bytes::from(vec![i as u8; 16 + i as usize])),
            )
            .unwrap();
        oids.push(oid);
    }
    for w in oids.windows(2) {
        server.set_ref(w[0], "next", Some(w[1])).unwrap();
    }

    let mut mw = Middleware::builder()
        .cluster_size(4)
        .device_memory(1 << 20)
        .no_builtin_policies()
        .build(server);
    let root = mw.replicate_root(oids[0]).unwrap();
    mw.set_global("head", Value::Ref(root));
    let fingerprint = |mw: &mut Middleware| -> Vec<String> {
        let mut out = Vec::new();
        mw.set_global("cursor", Value::Ref(root));
        loop {
            let cur = mw.global("cursor").unwrap().expect_ref().unwrap();
            let snap = mw.invoke(cur, "snapshot", vec![]).unwrap();
            out.push(snap.expect_str().unwrap().to_string());
            match mw.invoke(cur, "next", vec![]).unwrap() {
                Value::Ref(next) => mw.set_global("cursor", Value::Ref(next)),
                _ => break,
            }
        }
        out
    };
    let baseline = fingerprint(&mut mw);
    assert_eq!(baseline.len(), 8);
    mw.swap_out(1).unwrap();
    mw.swap_out(2).unwrap();
    assert_eq!(fingerprint(&mut mw), baseline);
}
