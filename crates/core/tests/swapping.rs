//! End-to-end tests of the Object-Swapping mechanism: swap-out / reload
//! roundtrips, proxy rules, GC cooperation, failure scenarios.

#![allow(clippy::disallowed_methods)] // tests may panic on impossible states

use obiwan_core::{Middleware, StoreSpec, SwapClusterState, SwapError, VictimPolicy};
use obiwan_heap::{ObjectKind, Value};
use obiwan_net::{DeviceKind, FailurePlan};
use obiwan_replication::{standard_classes, Server};

fn list_middleware(n: usize, cluster: usize, memory: usize) -> (Middleware, obiwan_heap::ObjRef) {
    let mut server = Server::new(standard_classes());
    let head = server.build_list("Node", n, 16).unwrap();
    let mut mw = Middleware::builder()
        .cluster_size(cluster)
        .device_memory(memory)
        .no_builtin_policies() // tests drive swapping explicitly
        .build(server);
    let root = mw.replicate_root(head).unwrap();
    mw.set_global("head", Value::Ref(root));
    (mw, root)
}

/// Fully replicate by traversing once.
fn warm(mw: &mut Middleware, root: obiwan_heap::ObjRef, expect_len: i64) {
    let len = mw.invoke_i64(root, "length", vec![]).unwrap();
    assert_eq!(len, expect_len);
}

#[test]
fn root_reference_is_a_swap_proxy_when_swapping_enabled() {
    let (mw, root) = list_middleware(10, 5, 1 << 20);
    assert_eq!(
        mw.process().heap().get(root).unwrap().kind(),
        ObjectKind::SwapProxy
    );
}

#[test]
fn swap_out_releases_memory_and_reload_restores_the_graph() {
    let (mut mw, root) = list_middleware(40, 10, 1 << 20);
    warm(&mut mw, root, 40);
    let before = mw.process().heap().bytes_used();
    let manager = mw.manager();
    assert_eq!(manager.loaded_clusters(), vec![1, 2, 3, 4]);

    // Swap out the second cluster (nodes 10..20).
    let shipped = mw.swap_out(2).unwrap();
    assert!(shipped > 0);
    let after = mw.process().heap().bytes_used();
    assert!(
        after < before,
        "swap-out must release memory: {before} -> {after}"
    );
    assert_eq!(manager.swapped_clusters(), vec![2]);
    assert!(matches!(
        manager.cluster(2).unwrap().state,
        SwapClusterState::SwappedOut { .. }
    ));
    // The blob is on the laptop.
    {
        let net = mw.net();
        let net = net.lock().unwrap();
        let laptop = net.nearby(mw.home_device())[0];
        assert!(net.stored_bytes(laptop).unwrap() > 0);
    }

    // Traversing reloads transparently and the graph is intact.
    warm(&mut mw, root, 40);
    assert!(manager.swapped_clusters().is_empty());
    assert_eq!(manager.stats().swap_ins, 1);
    // Payloads survive byte-exactly.
    let mut cur = root;
    for _ in 0..39 {
        assert_eq!(mw.invoke_i64(cur, "payload_len", vec![]).unwrap(), 16);
        cur = mw.invoke_ref(cur, "next", vec![]).unwrap();
    }
}

#[test]
fn swap_out_and_reload_preserve_identity_semantics() {
    let (mut mw, root) = list_middleware(30, 10, 1 << 20);
    warm(&mut mw, root, 30);
    // Reference to node 15 from application code (crosses into cluster 2).
    let mut cur = root;
    for _ in 0..15 {
        cur = mw.invoke_ref(cur, "next", vec![]).unwrap();
    }
    mw.set_global("mark", Value::Ref(cur));
    mw.swap_out(2).unwrap();
    // The proxy survives the swap (it now targets the replacement object);
    // re-read it from the global (GC-rooted) variable.
    let before_swap = mw.global("mark").unwrap().expect_ref().unwrap();
    assert!(mw.process().heap().is_live(before_swap));
    // Invoking it reloads and still denotes the same object.
    let after = mw
        .invoke_ref(before_swap, "probe_step", vec![Value::Int(0)])
        .unwrap();
    assert!(mw.same_object(before_swap, after).unwrap());
}

#[test]
fn all_clusters_can_be_swapped_out_and_memory_drops_to_proxies_only() {
    let (mut mw, root) = list_middleware(60, 20, 1 << 20);
    warm(&mut mw, root, 60);
    let full = mw.process().heap().bytes_used();
    for sc in [1u32, 2, 3] {
        mw.swap_out(sc).unwrap();
    }
    let empty = mw.process().heap().bytes_used();
    assert!(
        empty < full / 4,
        "almost everything should be gone: {full} -> {empty}"
    );
    // And everything comes back on demand.
    warm(&mut mw, root, 60);
    assert_eq!(mw.swap_stats().swap_ins, 3);
    let _ = root;
}

#[test]
fn double_swap_out_is_a_bad_state() {
    let (mut mw, root) = list_middleware(20, 10, 1 << 20);
    warm(&mut mw, root, 20);
    mw.swap_out(1).unwrap();
    assert!(matches!(mw.swap_out(1), Err(SwapError::BadState { .. })));
    // Reloading twice likewise.
    mw.swap_in(1).unwrap();
    assert!(matches!(mw.swap_in(1), Err(SwapError::BadState { .. })));
}

#[test]
fn unknown_swap_cluster_is_reported() {
    let (mut mw, _root) = list_middleware(10, 5, 1 << 20);
    assert!(matches!(
        mw.swap_out(99),
        Err(SwapError::UnknownSwapCluster { swap_cluster: 99 })
    ));
}

#[test]
fn swap_out_with_no_storage_device_fails_cleanly() {
    let mut server = Server::new(standard_classes());
    let head = server.build_list("Node", 20, 16).unwrap();
    let mut mw = Middleware::builder()
        .cluster_size(10)
        .device_memory(1 << 20)
        .no_builtin_policies()
        .stores(vec![]) // empty room
        .build(server);
    let root = mw.replicate_root(head).unwrap();
    mw.set_global("head", Value::Ref(root));
    warm(&mut mw, root, 20);
    let err = mw.swap_out(1).unwrap_err();
    assert!(matches!(err, SwapError::NoStorageDevice { tried: 0, .. }));
    // Graph untouched.
    warm(&mut mw, root, 20);
}

#[test]
fn swap_out_falls_back_to_second_device_when_first_is_full() {
    let mut server = Server::new(standard_classes());
    let head = server.build_list("Node", 20, 16).unwrap();
    let mut mw = Middleware::builder()
        .cluster_size(10)
        .device_memory(1 << 20)
        .no_builtin_policies()
        .stores(vec![
            StoreSpec::new("tiny-mote", DeviceKind::Mote, 64), // too small
            StoreSpec::new("big-desktop", DeviceKind::Desktop, 1 << 20),
        ])
        .build(server);
    let root = mw.replicate_root(head).unwrap();
    mw.set_global("head", Value::Ref(root));
    warm(&mut mw, root, 20);
    mw.swap_out(1).unwrap();
    let net = mw.net();
    let net = net.lock().unwrap();
    // Device ids: 0 = pda, 1 = mote, 2 = desktop.
    let desktop = net
        .nearby(mw.home_device())
        .into_iter()
        .find(|d| net.profile(*d).unwrap().kind == DeviceKind::Desktop)
        .unwrap();
    assert!(net.stored_bytes(desktop).unwrap() > 0);
}

#[test]
fn reload_after_device_departure_reports_blob_unavailable_and_recovers_on_return() {
    let (mut mw, root) = list_middleware(20, 10, 1 << 20);
    warm(&mut mw, root, 20);
    mw.swap_out(2).unwrap();
    let laptop = {
        let net = mw.net();
        let ids = net.lock().unwrap().nearby(mw.home_device());
        ids[0]
    };
    mw.net().lock().unwrap().depart(laptop).unwrap();
    let err = mw.swap_in(2).unwrap_err();
    match err {
        SwapError::BlobUnavailable {
            swap_cluster: 2,
            ref tried,
            ..
        } => assert_eq!(tried.as_slice(), &[laptop]),
        other => panic!("expected BlobUnavailable for sc2, got {other:?}"),
    }
    // Still swapped out; when the device returns the reload succeeds.
    mw.net().lock().unwrap().arrive(laptop).unwrap();
    mw.swap_in(2).unwrap();
    warm(&mut mw, root, 20);
}

#[test]
fn injected_store_failure_triggers_fallback_or_clean_error() {
    let mut server = Server::new(standard_classes());
    let head = server.build_list("Node", 20, 16).unwrap();
    let mut mw = Middleware::builder()
        .cluster_size(10)
        .device_memory(1 << 20)
        .no_builtin_policies()
        .stores(vec![
            StoreSpec::new("flaky-laptop", DeviceKind::Laptop, 1 << 20),
            StoreSpec::new("solid-desktop", DeviceKind::Desktop, 1 << 20),
        ])
        .build(server);
    let root = mw.replicate_root(head).unwrap();
    mw.set_global("head", Value::Ref(root));
    warm(&mut mw, root, 20);
    // Make the laptop's first store op fail.
    {
        let net = mw.net();
        let mut net = net.lock().unwrap();
        let laptop = net
            .nearby(mw.home_device())
            .into_iter()
            .find(|d| net.profile(*d).unwrap().kind == DeviceKind::Laptop)
            .unwrap();
        net.set_failure_plan(laptop, FailurePlan::fail_once_at(0))
            .unwrap();
    }
    mw.swap_out(1).unwrap();
    // It landed on the desktop instead.
    let net = mw.net();
    let net = net.lock().unwrap();
    let desktop = net
        .nearby(mw.home_device())
        .into_iter()
        .find(|d| net.profile(*d).unwrap().kind == DeviceKind::Desktop)
        .unwrap();
    assert!(net.stored_bytes(desktop).unwrap() > 0);
}

#[test]
fn gc_cooperation_drops_blob_when_replacement_dies() {
    let (mut mw, root) = list_middleware(30, 10, 1 << 20);
    warm(&mut mw, root, 30);
    // Cut the list between node 9 and 10 so clusters 2 and 3 become
    // unreachable, then swap cluster 2 out.
    let mut ninth = root;
    for _ in 0..9 {
        ninth = mw.invoke_ref(ninth, "next", vec![]).unwrap();
    }
    mw.set_global("ninth", Value::Ref(ninth));
    mw.swap_out(2).unwrap();
    let ninth = mw.global("ninth").unwrap().expect_ref().unwrap();
    // Sever: node 9 (cluster 1) no longer points to cluster 2's proxy.
    // We reach node 9 through the swap proxy; mutate its `next` directly.
    let ninth_obj = mw
        .invoke_ref(ninth, "probe_step", vec![Value::Int(0)])
        .unwrap();
    // ninth_obj is a swap-proxy from SC0; resolve to the replica handle by
    // asking the process (identity lets us find it).
    let heap_ref = {
        let p = mw.process();
        let key = obiwan_core::identity_key(p, ninth_obj).unwrap();
        match key {
            obiwan_core::IdentityKey::Oid(oid) => p.lookup_replica(oid).unwrap(),
            obiwan_core::IdentityKey::Handle(h) => h,
        }
    };
    mw.process_mut()
        .set_field_value(heap_ref, "next", Value::Null)
        .unwrap();

    let blobs_before = {
        let net = mw.net();
        let n = net.lock().unwrap();
        let laptop = n.nearby(mw.home_device())[0];
        n.stored_bytes(laptop).unwrap()
    };
    assert!(blobs_before > 0);

    // Collect: the inbound proxy dies, the replacement dies, the finalizer
    // instructs the drop. (Two passes: proxy first, then replacement.)
    mw.run_gc().unwrap();
    mw.run_gc().unwrap();

    let blobs_after = {
        let net = mw.net();
        let n = net.lock().unwrap();
        let laptop = n.nearby(mw.home_device())[0];
        n.stored_bytes(laptop).unwrap()
    };
    assert_eq!(blobs_after, 0, "blob must be dropped after unreachability");
    let manager = mw.manager();
    assert!(matches!(
        manager.cluster(2).unwrap().state,
        SwapClusterState::Dropped
    ));
    assert!(manager.stats().blobs_dropped >= 1);
}

#[test]
fn b1_iteration_creates_proxies_and_b2_assign_reuses_one() {
    let (mut mw, root) = list_middleware(60, 20, 1 << 20);
    warm(&mut mw, root, 60);

    // B1: global-cursor iteration, fresh proxy per cross-cluster step.
    mw.set_global("cursor", Value::Ref(root));
    let created_before = mw.swap_stats().proxies_created;
    let mut steps = 0;
    loop {
        let cur = mw.global("cursor").unwrap().expect_ref().unwrap();
        match mw.invoke(cur, "next", vec![]).unwrap() {
            Value::Ref(next) => {
                mw.set_global("cursor", Value::Ref(next));
                steps += 1;
            }
            _ => break,
        }
    }
    assert_eq!(steps, 59);
    let created_b1 = mw.swap_stats().proxies_created - created_before;
    assert!(
        created_b1 > 40,
        "B1 must create roughly one proxy per step, created {created_b1}"
    );

    // B2: the assign optimization — the cursor proxy patches itself.
    mw.run_gc().unwrap();
    mw.set_global("cursor", Value::Ref(root));
    mw.assign(root).unwrap();
    let created_before = mw.swap_stats().proxies_created;
    let patches_before = mw.swap_stats().assign_patches;
    let mut steps = 0;
    loop {
        let cur = mw.global("cursor").unwrap().expect_ref().unwrap();
        match mw.invoke(cur, "next", vec![]).unwrap() {
            Value::Ref(next) => {
                mw.set_global("cursor", Value::Ref(next));
                steps += 1;
            }
            _ => break,
        }
    }
    assert_eq!(steps, 59);
    let created_b2 = mw.swap_stats().proxies_created - created_before;
    let patches = mw.swap_stats().assign_patches - patches_before;
    assert!(
        created_b2 <= 2,
        "B2 must reuse the marked proxy, created {created_b2}"
    );
    assert!(patches > 50, "self-patches expected, got {patches}");
}

#[test]
fn assign_rejects_non_proxies_and_non_sc0_proxies() {
    let (mut mw, root) = list_middleware(10, 5, 1 << 20);
    warm(&mut mw, root, 10);
    // An app object handle:
    let app = {
        let p = mw.process();
        let key = obiwan_core::identity_key(p, root).unwrap();
        match key {
            obiwan_core::IdentityKey::Oid(oid) => p.lookup_replica(oid).unwrap(),
            obiwan_core::IdentityKey::Handle(h) => h,
        }
    };
    assert!(mw.assign(app).is_err());
}

#[test]
fn victim_policies_select_and_swap() {
    for policy in [
        VictimPolicy::LeastRecentlyUsed,
        VictimPolicy::LeastFrequentlyUsed,
        VictimPolicy::LargestFirst,
        VictimPolicy::RoundRobin,
    ] {
        let mut server = Server::new(standard_classes());
        let head = server.build_list("Node", 40, 16).unwrap();
        let mut mw = Middleware::builder()
            .cluster_size(10)
            .device_memory(1 << 20)
            .victim_policy(policy)
            .no_builtin_policies()
            .build(server);
        let root = mw.replicate_root(head).unwrap();
        mw.set_global("head", Value::Ref(root));
        warm(&mut mw, root, 40);
        let evicted = mw.swap_out_victim().unwrap();
        assert!(evicted.is_some(), "{policy}: a victim must be found");
        assert_eq!(mw.swap_stats().swap_outs, 1, "{policy}");
    }
}

#[test]
fn memory_pressure_policy_swaps_automatically() {
    // Memory for roughly two clusters; built-in policies enabled.
    let mut server = Server::new(standard_classes());
    let head = server.build_list("Node", 200, 16).unwrap();
    let mut mw = Middleware::builder()
        .cluster_size(20)
        .device_memory(12 * 1024)
        .build(server);
    let root = mw.replicate_root(head).unwrap();
    mw.set_global("cursor", Value::Ref(root));
    // The whole list never fits; walking it step by step lets the
    // middleware evict behind the cursor (the paper's scenario: memory
    // reaches the threshold, policies swap a set of objects out).
    let mut len = 1i64;
    loop {
        let cur = mw.global("cursor").unwrap().expect_ref().unwrap();
        match mw.invoke_resilient(cur, "next", vec![], 100).unwrap() {
            Value::Ref(next) => {
                mw.set_global("cursor", Value::Ref(next));
                len += 1;
            }
            _ => break,
        }
    }
    assert_eq!(len, 200);
    let stats = mw.swap_stats();
    assert!(stats.swap_outs > 0, "pressure must have caused evictions");
    assert!(
        mw.process().heap().bytes_used() <= mw.process().heap().capacity(),
        "never exceeded the budget"
    );
}

#[test]
fn no_swap_clusters_baseline_has_no_proxies() {
    let mut server = Server::new(standard_classes());
    let head = server.build_list("Node", 50, 16).unwrap();
    let mut mw = Middleware::builder()
        .cluster_size(10)
        .device_memory(1 << 20)
        .swapping_disabled()
        .no_builtin_policies()
        .build(server);
    let root = mw.replicate_root(head).unwrap();
    mw.set_global("head", Value::Ref(root));
    assert_eq!(mw.invoke_i64(root, "length", vec![]).unwrap(), 50);
    let proxies = mw
        .process()
        .heap()
        .iter_live()
        .filter(|&r| mw.process().heap().get(r).unwrap().kind() == ObjectKind::SwapProxy)
        .count();
    assert_eq!(proxies, 0);
    assert_eq!(mw.swap_stats().proxies_created, 0);
}

#[test]
fn clusters_per_swap_cluster_groups_replication_clusters() {
    let mut server = Server::new(standard_classes());
    let head = server.build_list("Node", 60, 16).unwrap();
    let mut mw = Middleware::builder()
        .cluster_size(10)
        .clusters_per_swap_cluster(3)
        .device_memory(1 << 20)
        .no_builtin_policies()
        .build(server);
    let root = mw.replicate_root(head).unwrap();
    mw.set_global("head", Value::Ref(root));
    assert_eq!(mw.invoke_i64(root, "length", vec![]).unwrap(), 60);
    let manager = mw.manager();
    // 6 replication clusters → 2 swap-clusters.
    assert_eq!(manager.loaded_clusters(), vec![1, 2]);
    assert_eq!(manager.cluster(1).unwrap().member_count(), 30);
    assert_eq!(manager.cluster(2).unwrap().member_count(), 30);
}

#[test]
fn crossing_statistics_accumulate() {
    let (mut mw, root) = list_middleware(40, 10, 1 << 20);
    // First traversal replicates (fault proxies, no swap-proxy crossings);
    // the second actually crosses the now-mediated boundaries.
    warm(&mut mw, root, 40);
    warm(&mut mw, root, 40);
    let manager = mw.manager();
    let crossings: u64 = manager
        .loaded_clusters()
        .iter()
        .map(|&sc| manager.cluster(sc).unwrap().crossings)
        .sum();
    assert!(crossings >= 4, "each boundary crossing counts: {crossings}");
    assert!(mw.swap_stats().crossings >= crossings);
}

#[test]
fn swapped_blob_is_valid_xml_on_the_wire() {
    let (mut mw, root) = list_middleware(20, 10, 1 << 20);
    warm(&mut mw, root, 20);
    mw.swap_out(1).unwrap();
    let xml = {
        let net = mw.net();
        let mut n = net.lock().unwrap();
        let laptop = n.nearby(mw.home_device())[0];
        n.fetch_blob(mw.home_device(), laptop, "dev0-sc1-e0")
            .unwrap()
    };
    let text = std::str::from_utf8(&xml).unwrap();
    let blob = obiwan_core::codec::decode(text).unwrap();
    assert_eq!(blob.swap_cluster, 1);
    assert_eq!(blob.objects.len(), 10);
    assert!(blob.objects.iter().all(|o| o.class == "Node"));
}
