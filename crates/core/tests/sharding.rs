//! Sharded-engine integration tests: operations that genuinely span two
//! shards of the lock table, plus a multi-threaded stress run that bangs
//! maintenance sweeps, trace exports and network churn against a live
//! mutator.
//!
//! The single-threaded suites (swapping, durability, trace_consistency)
//! already cover the lifecycle; what they cannot cover is the sharding
//! seams — a cursor walk whose reloads commit on different shards, a
//! repair sweep whose entries live behind different locks, and true
//! concurrency where `&self` maintenance calls race the mutator. These
//! tests pin those seams. All assertions are scheduling-independent
//! invariants (audit cleanliness, stats==fold, holder counts), never
//! byte-exact traces: multi-threaded interleavings are allowed to reorder
//! events, and the recorder's atomic seq keeps the stream well-formed
//! regardless.

#![allow(clippy::disallowed_methods)] // tests may panic on impossible states

use obiwan_core::{Middleware, SwapError, SwapStats, WireFormatKind};
use obiwan_heap::Value;
use obiwan_net::{DeviceId, DeviceKind};
use obiwan_replication::{standard_classes, Server};
use obiwan_trace::derive::{fold_counts, FoldedCounts};
use std::sync::atomic::{AtomicBool, Ordering};

/// Assert every shared counter matches between the live stats and the
/// fold of the exported events (same contract as trace_consistency, here
/// applied to a multi-threaded run).
fn assert_stats_match_fold(stats: &SwapStats, fold: &FoldedCounts, label: &str) {
    assert_eq!(stats.swap_outs, fold.swap_outs, "{label}: swap_outs");
    assert_eq!(stats.swap_ins, fold.swap_ins, "{label}: swap_ins");
    assert_eq!(
        stats.bytes_swapped_out, fold.bytes_swapped_out,
        "{label}: bytes_swapped_out"
    );
    assert_eq!(
        stats.bytes_swapped_in, fold.bytes_swapped_in,
        "{label}: bytes_swapped_in"
    );
    assert_eq!(
        stats.blobs_dropped, fold.blobs_dropped,
        "{label}: blobs_dropped"
    );
    assert_eq!(
        stats.drop_failures, fold.drop_failures,
        "{label}: drop_failures"
    );
    assert_eq!(
        stats.proxies_created, fold.proxies_created,
        "{label}: proxies_created"
    );
    assert_eq!(
        stats.proxies_reused, fold.proxies_reused,
        "{label}: proxies_reused"
    );
    assert_eq!(
        stats.proxies_dismantled, fold.proxies_dismantled,
        "{label}: proxies_dismantled"
    );
    assert_eq!(
        stats.assign_patches, fold.assign_patches,
        "{label}: assign_patches"
    );
    assert_eq!(
        stats.reload_failovers, fold.reload_failovers,
        "{label}: reload_failovers"
    );
    assert_eq!(stats.repairs, fold.repairs, "{label}: repairs");
    assert_eq!(
        stats.repair_bytes, fold.repair_bytes,
        "{label}: repair_bytes"
    );
}

/// Deterministic splitmix step for workload schedules.
fn next_rand(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Distinct shard indices behind a set of swap-cluster ids.
fn shards_spanned(mw: &Middleware, clusters: &[u32]) -> std::collections::BTreeSet<usize> {
    let manager = mw.manager();
    clusters.iter().map(|&sc| manager.shard_of(sc)).collect()
}

/// An assign-marked cursor walk whose per-step reloads land on different
/// shards: the walk crosses every cluster boundary in the list, and the
/// clusters hash to different shards, so proxy patching, crossing
/// accounting and reload commits all exercise the cross-shard paths
/// (including the ordered two-shard transaction behind `note_crossing`).
#[test]
fn cursor_walk_crosses_shard_boundaries() {
    const N: usize = 60;
    let mut server = Server::new(standard_classes());
    let head = server.build_list("Node", N, 16).expect("build list");
    let mut mw = Middleware::builder()
        .cluster_size(10)
        .device_memory(1 << 20)
        .no_builtin_policies()
        .add_store(obiwan_core::StoreSpec::new(
            "store-0",
            DeviceKind::Laptop,
            16 << 20,
        ))
        .build(server);
    let root = mw.replicate_root(head).expect("replicate");
    mw.set_global("head", Value::Ref(root));
    mw.invoke_i64(root, "length", vec![]).expect("warm");
    mw.run_gc().expect("settle");

    let clusters: Vec<u32> = mw.manager().cluster_ids();
    let walked: Vec<u32> = clusters.iter().copied().filter(|&sc| sc != 0).collect();
    assert!(
        walked.len() >= 5,
        "expected >=5 app clusters, got {walked:?}"
    );
    let spanned = shards_spanned(&mw, &walked);
    assert!(
        spanned.len() >= 2,
        "clusters {walked:?} all hashed to one shard {spanned:?} — the walk \
         would not cross a shard boundary"
    );

    // Swap out every even cluster so half the boundary crossings must
    // reload through a swap-cluster-proxy on a *different* shard than the
    // cluster the cursor is leaving.
    for &sc in walked.iter().filter(|&&sc| sc % 2 == 0) {
        mw.swap_out(sc).expect("swap out");
    }

    let cursor = mw.make_cursor(root).expect("cursor");
    mw.set_global("cursor", Value::Ref(cursor));
    let before = mw.swap_stats();
    let mut steps = 0usize;
    loop {
        let cur = mw.global("cursor").unwrap().expect_ref().unwrap();
        match mw.invoke_resilient(cur, "next", vec![], 200).expect("step") {
            Value::Ref(next) => {
                mw.set_global("cursor", Value::Ref(next));
                steps += 1;
            }
            _ => break,
        }
    }
    assert_eq!(steps, N - 1, "the cursor walks the whole list");

    let after = mw.swap_stats();
    assert!(
        after.swap_ins - before.swap_ins >= 2,
        "the walk must reload the swapped clusters"
    );
    assert!(
        after.assign_patches - before.assign_patches >= (N as u64) / 2,
        "the marked cursor patches itself across shard boundaries"
    );

    // Crossings were recorded against entries living on different shards.
    let manager = mw.manager();
    let mut crossing_shards = std::collections::BTreeSet::new();
    for &sc in &walked {
        let entry = manager.cluster(sc).expect("entry");
        if entry.crossings > 0 || entry.out_crossings > 0 {
            crossing_shards.insert(manager.shard_of(sc));
        }
    }
    assert!(
        crossing_shards.len() >= 2,
        "crossing accounting should touch >=2 shards, touched {crossing_shards:?}"
    );

    let report = mw.audit();
    assert!(
        !report.has_errors(),
        "graph invariants after walk:\n{report}"
    );
}

/// A repair sweep over placements homed on two different shards: depart a
/// holder shared by both placements, pump the loss detection, and the
/// sweep must restore `k` reachable copies for both clusters — each
/// commit landing under its own shard lock.
#[test]
fn repair_sweep_restores_placements_on_two_shards() {
    const N: usize = 50;
    let mut server = Server::new(standard_classes());
    let head = server.build_list("Node", N, 16).expect("build list");
    let mut mw = Middleware::builder()
        .cluster_size(10)
        .device_memory(1 << 20)
        .no_builtin_policies()
        .wire_format(WireFormatKind::Xml)
        .replication_factor(2)
        .stores(
            (0..3)
                .map(|i| {
                    obiwan_core::StoreSpec::new(format!("store-{i}"), DeviceKind::Laptop, 16 << 20)
                })
                .collect(),
        )
        .build(server);
    let root = mw.replicate_root(head).expect("replicate");
    mw.set_global("head", Value::Ref(root));
    mw.invoke_i64(root, "length", vec![]).expect("warm");
    mw.run_gc().expect("settle");

    // Find two swapped-out clusters on different shards that share a
    // holder (with k=2 over 3 stores the pigeonhole guarantees overlap
    // across a handful of clusters).
    let manager = mw.manager();
    let clusters: Vec<u32> = manager
        .cluster_ids()
        .into_iter()
        .filter(|&c| c != 0)
        .collect();
    for &sc in &clusters {
        mw.swap_out(sc).expect("swap out");
    }
    let mut pair: Option<(u32, u32, DeviceId)> = None;
    'outer: for &a in &clusters {
        for &b in &clusters {
            if manager.shard_of(a) == manager.shard_of(b) {
                continue;
            }
            let (_, _, ha) = manager.holders_of(a).expect("holders a");
            let (_, _, hb) = manager.holders_of(b).expect("holders b");
            if let Some(&shared) = ha.iter().find(|d| hb.contains(d)) {
                pair = Some((a, b, shared));
                break 'outer;
            }
        }
    }
    let (a, b, shared) = pair.expect("two swapped clusters on different shards share a holder");

    {
        let net = mw.net();
        let mut net = net.lock().expect("net");
        net.depart(shared).expect("depart shared holder");
    }
    mw.pump().expect("pump detects the loss");
    let (repaired, moved) = manager.repair_placements().expect("repair sweep");
    assert!(
        repaired >= 2,
        "sweep must repair both shards' entries, repaired {repaired}"
    );
    assert!(moved > 0, "repair re-replication must move bytes");

    // Both placements are healed: k holders, none of them the departed
    // device, and the repair counter moved.
    for sc in [a, b] {
        let (_, _, holders) = manager.holders_of(sc).expect("healed placement");
        assert_eq!(holders.len(), 2, "sc{sc}: k copies after repair");
        assert!(
            !holders.contains(&shared),
            "sc{sc}: departed holder pruned from the placement"
        );
    }
    assert!(
        mw.swap_stats().repairs >= 2,
        "both shards' entries repaired"
    );

    // Both clusters reload cleanly from the repaired copies.
    {
        let net = mw.net();
        net.lock().expect("net").arrive(shared).expect("arrive");
    }
    mw.swap_in(a).expect("reload a");
    mw.swap_in(b).expect("reload b");
    let head_ref = mw.global("head").unwrap().expect_ref().unwrap();
    assert_eq!(
        mw.invoke_i64(head_ref, "length", vec![]).expect("len"),
        N as i64
    );
    let report = mw.audit();
    assert!(!report.has_errors(), "after cross-shard repair:\n{report}");
}

/// The stress test the shard refactor exists for: one mutator thread
/// driving the process (swaps, GC, cursor traffic) while three
/// maintenance threads hammer `&self` manager entry points through bare
/// `Arc` clones and a churn thread flaps storage devices. Afterwards the
/// structural audit must be error-free and every stats counter must equal
/// the fold of the exported event stream — the recorder choke point keeps
/// counters and events atomic even under contention.
#[test]
fn concurrent_maintenance_and_churn_stress() {
    const N: usize = 120;
    const STEPS: usize = 500;
    let mut server = Server::new(standard_classes());
    let head = server.build_list("Node", N, 24).expect("build list");
    let mut mw = Middleware::builder()
        .cluster_size(10)
        .device_memory(1 << 20)
        .wire_format(WireFormatKind::Binary)
        .replication_factor(2)
        .shard_count(8)
        .trace_capacity(1 << 17)
        .stores(
            (0..3)
                .map(|i| {
                    obiwan_core::StoreSpec::new(format!("store-{i}"), DeviceKind::Laptop, 16 << 20)
                })
                .collect(),
        )
        .build(server);
    let storage: Vec<DeviceId> = mw
        .net()
        .lock()
        .expect("net")
        .nearby(mw.home_device())
        .into_iter()
        .collect();
    let root = mw.replicate_root(head).expect("replicate");
    mw.set_global("head", Value::Ref(root));
    mw.invoke_i64(root, "length", vec![]).expect("warm");

    let manager = mw.manager();
    assert_eq!(manager.shard_count(), 8);
    let clusters: Vec<u32> = manager
        .cluster_ids()
        .into_iter()
        .filter(|&c| c != 0)
        .collect();
    assert!(
        clusters.len() >= 8,
        "stress needs >=8 app clusters, got {clusters:?}"
    );
    assert!(
        shards_spanned(&mw, &clusters).len() >= 2,
        "clusters must span multiple shards for the stress to mean anything"
    );

    let stop = AtomicBool::new(false);
    let net = mw.net();
    std::thread::scope(|scope| {
        // Three maintenance threads: each a different mix of `&self`
        // manager traffic, all racing the mutator and each other.
        for worker in 0..3u64 {
            let manager = manager.clone();
            let stop = &stop;
            let clusters = clusters.clone();
            scope.spawn(move || {
                let mut rng = 1000 + worker;
                let mut spins = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    spins += 1;
                    match (next_rand(&mut rng) + worker) % 6 {
                        0 => {
                            // Loss detection + repair may race a detach or
                            // a departed device mid-ship; any error is a
                            // tolerated outcome, panics are not.
                            let _ = manager.note_departures();
                            let _ = manager.repair_placements();
                        }
                        1 => {
                            let sc = clusters[(next_rand(&mut rng) as usize) % clusters.len()];
                            let _ = manager.holders_of(sc);
                            let _ = manager.cluster(sc);
                        }
                        2 => {
                            let _ = manager.stats();
                            let _ = manager.loaded_clusters();
                            let _ = manager.swapped_clusters();
                        }
                        3 => {
                            let _ = manager.sweep_orphaned_blobs();
                        }
                        4 => {
                            let _ = manager.placements();
                        }
                        _ => {
                            // Full export while the mutator is emitting:
                            // the snapshot must always be internally
                            // consistent (recorded == dropped + len).
                            let t = manager.export_trace();
                            assert_eq!(
                                t.meta.recorded,
                                t.meta.dropped + t.events.len() as u64,
                                "torn trace export"
                            );
                        }
                    }
                    if spins.is_multiple_of(8) {
                        std::thread::yield_now();
                    }
                }
            });
        }
        // Churn thread: flap one storage device at a time, always
        // restoring it, so holder loss / failover / repair keep firing
        // while every device is back online by the time the scope ends.
        {
            let net = net.clone();
            let stop = &stop;
            let storage = storage.clone();
            scope.spawn(move || {
                let mut i = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let d = storage[i % storage.len()];
                    i += 1;
                    net.lock().expect("net").depart(d).expect("depart");
                    for _ in 0..32 {
                        std::thread::yield_now();
                    }
                    net.lock().expect("net").arrive(d).expect("arrive");
                    std::thread::yield_now();
                }
            });
        }

        // The mutator: the only thread that owns the process. Everything
        // it tolerates is a legitimate race outcome (cluster already
        // swapped, blob on a flapped device, nothing evictable).
        let mut rng = 42u64;
        for _ in 0..STEPS {
            match next_rand(&mut rng) % 8 {
                0..=2 => {
                    let sc = clusters[(next_rand(&mut rng) as usize) % clusters.len()];
                    match mw.swap_out(sc) {
                        Ok(_)
                        | Err(SwapError::BadState { .. })
                        | Err(SwapError::UnknownSwapCluster { .. })
                        | Err(SwapError::NothingToSwap { .. })
                        | Err(SwapError::NoStorageDevice { .. }) => {}
                        Err(e) => panic!("swap_out: {e}"),
                    }
                }
                3..=5 => {
                    let sc = clusters[(next_rand(&mut rng) as usize) % clusters.len()];
                    match mw.swap_in(sc) {
                        Ok(_)
                        | Err(SwapError::BadState { .. })
                        | Err(SwapError::UnknownSwapCluster { .. })
                        | Err(SwapError::DataLost { .. })
                        | Err(SwapError::BlobUnavailable { .. }) => {}
                        Err(e) => panic!("swap_in: {e}"),
                    }
                }
                6 => {
                    mw.run_gc().expect("gc");
                }
                _ => {
                    mw.pump().expect("pump");
                }
            }
        }
        stop.store(true, Ordering::Relaxed);
    });

    // Quiesce: every device is back (the churn thread restores its flap
    // before exiting), one more pump heals any in-flight loss.
    {
        let mut guard = net.lock().expect("net");
        for &d in &storage {
            if !guard.nearby(mw.home_device()).contains(&d) {
                guard.arrive(d).expect("arrive at quiesce");
            }
        }
    }
    mw.pump().expect("final pump");

    let report = mw.audit();
    assert!(
        !report.has_errors(),
        "graph invariants after concurrent stress:\n{report}"
    );
    let stats = mw.swap_stats();
    let trace = mw.export_trace();
    assert_eq!(
        trace.meta.dropped, 0,
        "ring must not truncate: raise trace_capacity if the workload grew"
    );
    let fold = fold_counts(&trace.events);
    assert_stats_match_fold(&stats, &fold, "concurrent stress");
    assert!(stats.swap_outs > 0, "stress produced no swap-outs");
    assert!(stats.swap_ins > 0, "stress produced no reloads");

    // The full list still reads back intact through whatever mixture of
    // loaded and swapped clusters the stress left behind.
    let head_ref = mw.global("head").unwrap().expect_ref().unwrap();
    assert_eq!(
        mw.invoke_i64(head_ref, "length", vec![]).expect("len"),
        N as i64
    );
}
