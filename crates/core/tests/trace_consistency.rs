//! Stats-vs-trace consistency: every counter in [`SwapStats`] must equal
//! the corresponding fold of the exported event stream, exactly. The
//! middleware routes all counter bumps and event emissions through one
//! recorder choke point, so any drift between the two is a wiring bug —
//! an event emitted without its counter, a counter bumped without its
//! event, or fold semantics diverging from the stat semantics.
//!
//! Runs the full wire-format × replication-factor matrix; the workload
//! exercises detach, reload, failover (via scripted churn), GC
//! cooperation, repair sweeps and the proxy rules.

#![allow(clippy::disallowed_methods)] // tests may panic on impossible states

use obiwan_core::{Middleware, SwapError, SwapStats, WireFormatKind};
use obiwan_heap::Value;
use obiwan_net::DeviceKind;
use obiwan_replication::{standard_classes, Server};
use obiwan_trace::derive::{fold_counts, FoldedCounts};

/// Assert every shared counter matches between the live stats and the
/// fold of the exported events.
fn assert_stats_match_fold(stats: &SwapStats, fold: &FoldedCounts, label: &str) {
    assert_eq!(stats.swap_outs, fold.swap_outs, "{label}: swap_outs");
    assert_eq!(stats.swap_ins, fold.swap_ins, "{label}: swap_ins");
    assert_eq!(
        stats.bytes_swapped_out, fold.bytes_swapped_out,
        "{label}: bytes_swapped_out"
    );
    assert_eq!(
        stats.bytes_swapped_in, fold.bytes_swapped_in,
        "{label}: bytes_swapped_in"
    );
    assert_eq!(
        stats.blobs_dropped, fold.blobs_dropped,
        "{label}: blobs_dropped"
    );
    assert_eq!(
        stats.drop_failures, fold.drop_failures,
        "{label}: drop_failures"
    );
    assert_eq!(
        stats.proxies_created, fold.proxies_created,
        "{label}: proxies_created"
    );
    assert_eq!(
        stats.proxies_reused, fold.proxies_reused,
        "{label}: proxies_reused"
    );
    assert_eq!(
        stats.proxies_dismantled, fold.proxies_dismantled,
        "{label}: proxies_dismantled"
    );
    assert_eq!(
        stats.assign_patches, fold.assign_patches,
        "{label}: assign_patches"
    );
    assert_eq!(
        stats.reload_failovers, fold.reload_failovers,
        "{label}: reload_failovers"
    );
    assert_eq!(stats.repairs, fold.repairs, "{label}: repairs");
    assert_eq!(
        stats.repair_bytes, fold.repair_bytes,
        "{label}: repair_bytes"
    );
}

/// Deterministic splitmix step for the workload schedule.
fn next_rand(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Run a mixed workload and return the middleware for inspection.
fn run_workload(wire_format: WireFormatKind, replication_factor: usize) -> Middleware {
    const N: usize = 100;
    let mut server = Server::new(standard_classes());
    let head = server.build_list("Node", N, 32).expect("build");
    let mut mw = Middleware::builder()
        .cluster_size(10)
        .device_memory(1 << 20)
        .wire_format(wire_format)
        .replication_factor(replication_factor)
        .stores(
            (0..3)
                .map(|i| {
                    obiwan_core::StoreSpec::new(format!("store-{i}"), DeviceKind::Laptop, 16 << 20)
                })
                .collect(),
        )
        .build(server);
    let storage: Vec<obiwan_net::DeviceId> = mw
        .net()
        .lock()
        .expect("net")
        .nearby(mw.home_device())
        .into_iter()
        .collect();
    let root = mw.replicate_root(head).expect("replicate");
    mw.set_global("head", Value::Ref(root));
    mw.invoke_i64(root, "length", vec![]).expect("warm");

    let mut rng = 42u64;
    let mut away: Option<obiwan_net::DeviceId> = None;
    let mut churn_cursor = 0usize;
    for step in 0..120usize {
        // Periodic churn so holder-loss, failover and repair all fire.
        if step % 20 == 10 {
            {
                let net = mw.net();
                let mut net = net.lock().expect("net");
                if let Some(back) = away.take() {
                    net.arrive(back).expect("arrive");
                }
                let leaver = storage[churn_cursor % storage.len()];
                churn_cursor += 1;
                net.depart(leaver).expect("depart");
                away = Some(leaver);
            }
            mw.pump().expect("pump after churn");
        }
        match next_rand(&mut rng) % 8 {
            0..=2 => {
                let sc = 1 + (next_rand(&mut rng) % 10) as u32;
                match mw.swap_out(sc) {
                    Ok(_)
                    | Err(SwapError::BadState { .. })
                    | Err(SwapError::UnknownSwapCluster { .. })
                    | Err(SwapError::NothingToSwap { .. })
                    | Err(SwapError::NoStorageDevice { .. }) => {}
                    Err(e) => panic!("swap_out: {e}"),
                }
            }
            3..=5 => {
                let sc = 1 + (next_rand(&mut rng) % 10) as u32;
                match mw.swap_in(sc) {
                    Ok(_)
                    | Err(SwapError::BadState { .. })
                    | Err(SwapError::UnknownSwapCluster { .. })
                    | Err(SwapError::DataLost { .. })
                    | Err(SwapError::BlobUnavailable { .. }) => {}
                    Err(e) => panic!("swap_in: {e}"),
                }
            }
            6 => {
                mw.run_gc().expect("gc");
            }
            _ => {
                mw.pump().expect("pump");
            }
        }
    }
    mw
}

#[test]
fn stats_equal_event_fold_across_formats_and_replication() {
    for wire_format in WireFormatKind::ALL {
        for k in [1usize, 2] {
            let mw = run_workload(wire_format, k);
            let stats = mw.swap_stats();
            let trace = mw.export_trace();
            assert_eq!(
                trace.meta.dropped, 0,
                "{wire_format} k={k}: ring must not truncate this workload"
            );
            let fold = fold_counts(&trace.events);
            let label = format!("{wire_format} k={k}");
            assert_stats_match_fold(&stats, &fold, &label);
            // The workload must actually exercise the lifecycle for the
            // equality to mean anything.
            assert!(stats.swap_outs > 0, "{label}: no swap-outs happened");
            assert!(stats.swap_ins > 0, "{label}: no reloads happened");
        }
    }
}

#[test]
fn fold_survives_the_json_round_trip() {
    let mw = run_workload(WireFormatKind::Xml, 2);
    let trace = mw.export_trace();
    let round =
        obiwan_trace::Trace::from_json(&trace.to_json()).expect("exported trace re-imports");
    assert_eq!(fold_counts(&round.events), fold_counts(&trace.events));
}

#[test]
fn truncated_ring_still_tracks_drop_count() {
    // A tiny ring drops early events; the fold then legitimately
    // disagrees with the stats, and meta.dropped says by how much the
    // stream is short. The conformance checker refuses such traces.
    let mut server = Server::new(standard_classes());
    let head = server.build_list("Node", 60, 32).expect("build");
    let mut mw = Middleware::builder()
        .cluster_size(6)
        .device_memory(1 << 20)
        .trace_capacity(4)
        .build(server);
    let root = mw.replicate_root(head).expect("replicate");
    mw.set_global("head", Value::Ref(root));
    mw.invoke_i64(root, "length", vec![]).expect("warm");
    for sc in 1..=5u32 {
        mw.swap_out(sc).expect("swap out");
    }
    let trace = mw.export_trace();
    assert!(trace.meta.dropped > 0, "tiny ring must have evicted events");
    assert_eq!(trace.events.len(), 4);
    assert_eq!(
        trace.meta.recorded,
        trace.meta.dropped + trace.events.len() as u64
    );
    let report = obiwan_trace::conformance::check(&trace);
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.rule == obiwan_trace::TraceRule::Truncated),
        "truncated trace must be refused"
    );
}
