//! Counting-allocator proof of the zero-copy reload contract: the binary
//! decode-into-arena path performs **zero intermediate heap allocations
//! per object**. The whole materialize-and-adopt sequence costs a small
//! constant number of allocations (the two materializer vectors, the
//! class-name cache, the slab, the oid map) no matter whether the cluster
//! holds 1, 10 or 100 objects.
//!
//! This file deliberately contains a single `#[test]` so nothing else in
//! the binary allocates while a region is being measured.

#![allow(clippy::disallowed_methods)]

use obiwan_core::codec::{Blob, BlobField, BlobObject};
use obiwan_core::materialize::{ClusterMaterializer, OidMap};
use obiwan_core::wire::{decode_blob_into, encode_blob, WireFormatKind};
use obiwan_heap::{ClassBuilder, ClassRegistry, Heap, ObjRef, Oid, Value};

#[global_allocator]
static ALLOC: alloc_counter::CountingAllocator = alloc_counter::CountingAllocator;

fn registry() -> ClassRegistry {
    let mut reg = ClassRegistry::new();
    reg.register(
        ClassBuilder::new("Node")
            .ref_field("next")
            .int_field("n")
            .bytes_field("payload"),
    );
    reg
}

/// A binary frame for a cluster of `n` linked nodes, each carrying an int,
/// a 32-byte payload and a member reference to its successor. No string
/// fields: `Value::Str` interns into an `Arc<str>`, which is a real
/// allocation the wire data forces and not "intermediate" bookkeeping.
fn binary_cluster(n: usize) -> bytes::Bytes {
    let objects = (0..n)
        .map(|i| {
            let mut fields = vec![
                (1, BlobField::Scalar(Value::Int(i as i64 * 3 + 1))),
                (
                    2,
                    BlobField::Scalar(Value::Bytes(bytes::Bytes::from(vec![i as u8; 32]))),
                ),
            ];
            if i + 1 < n {
                fields.insert(0, (0, BlobField::MemberRef(Oid(i as u64 + 2))));
            }
            BlobObject {
                oid: Oid(i as u64 + 1),
                class: "Node".to_string(),
                repl_cluster: i as u32,
                fields,
            }
        })
        .collect();
    encode_blob(
        WireFormatKind::Binary,
        &Blob {
            swap_cluster: 7,
            epoch: 1,
            objects,
        },
    )
    .unwrap()
}

/// The full reload materialization: stream-decode into detached objects,
/// adopt them into the arena in stream order, build the member oid map —
/// exactly what `commit_reload` does before the fixup pass.
fn materialize(reg: &ClassRegistry, heap: &mut Heap, data: &bytes::Bytes) -> usize {
    let mut mat = ClusterMaterializer::new(reg.clone(), 7);
    decode_blob_into(data, &mut mat).unwrap();
    let (objects, fixups) = mat.into_parts();
    heap.reserve_slots(objects.len());
    let mut member_map: OidMap<ObjRef> =
        OidMap::with_capacity_and_hasher(objects.len(), Default::default());
    let count = objects.len();
    for (oid, obj) in objects {
        let r = heap.adopt(obj).unwrap();
        member_map.insert(oid, r);
    }
    assert_eq!(member_map.len(), count);
    assert_eq!(fixups.len(), count.saturating_sub(1));
    count
}

#[test]
fn binary_reload_allocates_nothing_per_object() {
    let reg = registry();
    let sizes = [1usize, 10, 100];
    let frames: Vec<bytes::Bytes> = sizes.iter().map(|&n| binary_cluster(n)).collect();

    let mut measured = Vec::new();
    for (&n, data) in sizes.iter().zip(&frames) {
        // The arena itself is pre-built: its creation cost is paid once per
        // process, not per reload.
        let mut heap = Heap::new(reg.clone(), 1 << 24);
        // Warm-up pass on a throwaway heap so lazy one-time init (class
        // registry probes, etc.) doesn't land in the measured region.
        materialize(&reg, &mut Heap::new(reg.clone(), 1 << 24), data);

        let (allocs, decoded) = alloc_counter::count(|| materialize(&reg, &mut heap, data));
        assert_eq!(decoded, n);
        assert_eq!(heap.live_objects(), n);
        measured.push(allocs);
    }

    // Every reload — regardless of cluster size — costs only the constant
    // bookkeeping: materializer vectors, class cache, slab, oid map.
    for (&n, &allocs) in sizes.iter().zip(&measured) {
        assert!(
            allocs <= 32,
            "reload of {n} objects performed {allocs} allocations — per-object \
             intermediates have crept back into the decode path"
        );
    }
    // And the marginal cost of 99 extra objects is zero per object: any
    // per-object Blob/Vec/Bytes intermediate would show up 99 times here.
    let marginal = measured[2].saturating_sub(measured[0]);
    assert!(
        marginal <= 8,
        "100-object reload costs {} more allocations than a 1-object reload \
         (measured: {measured:?}) — the decode path allocates per object",
        marginal
    );
}
