//! Direct tests of the paper's §4 interception rules, driven through the
//! SwappingManager without the invocation machinery in the way:
//!
//! * **(i)** a cross-cluster reference gets a swap-cluster-proxy;
//! * **(ii)** graph edges across the same (source, target) pair share one
//!   proxy, while transient deliveries mint fresh ones per reference;
//! * **(iii)** a proxy handed back into its target's own cluster is
//!   dismantled.

#![allow(clippy::disallowed_methods)] // tests may panic on impossible states

use obiwan_core::{Middleware, SwapStats};
use obiwan_heap::{ObjectKind, Value};
use obiwan_replication::{standard_classes, Server};

/// Two clusters of ten nodes each, fully replicated.
fn world() -> (Middleware, obiwan_heap::ObjRef) {
    let mut server = Server::new(standard_classes());
    let head = server.build_list("Node", 20, 8).expect("build");
    let mut mw = Middleware::builder()
        .cluster_size(10)
        .device_memory(1 << 20)
        .no_builtin_policies()
        .build(server);
    let root = mw.replicate_root(head).expect("replicate");
    mw.set_global("head", Value::Ref(root));
    mw.invoke_i64(root, "length", vec![]).expect("warm");
    (mw, root)
}

fn stats(mw: &Middleware) -> SwapStats {
    mw.swap_stats()
}

#[test]
fn rule_i_cross_cluster_references_are_mediated() {
    let (mw, root) = world();
    // The root reference handed to the application (swap-cluster-0) is a
    // proxy, and the edge node10 → node11 (cluster 1 → 2) is a proxy.
    let heap = mw.process().heap();
    assert_eq!(heap.get(root).unwrap().kind(), ObjectKind::SwapProxy);
    let node10 = (0..10).fold(
        {
            // resolve through the root proxy to the replica
            mw.process().lookup_replica(obiwan_heap::Oid(1)).unwrap()
        },
        |cur, _| {
            let next = heap
                .field_by_name(cur, "next")
                .unwrap()
                .expect_ref()
                .unwrap();
            match heap.get(next).unwrap().kind() {
                ObjectKind::App => next,
                // stop walking at the boundary proxy
                _ => cur,
            }
        },
    );
    let boundary = heap
        .field_by_name(node10, "next")
        .unwrap()
        .expect_ref()
        .unwrap();
    assert_eq!(heap.get(boundary).unwrap().kind(), ObjectKind::SwapProxy);
}

#[test]
fn rule_ii_graph_edges_share_one_proxy_per_pair() {
    // Three nodes in cluster 1 all pointing at one node in cluster 2:
    // exactly one proxy must mediate all three edges.
    let u = standard_classes();
    let mut server = Server::new(u);
    let a = server.create("Node").unwrap();
    let b = server.create("Node").unwrap();
    let c = server.create("Node").unwrap();
    let shared_target = server.create("Node").unwrap();
    // Chain a→b→c so they land in one BFS cluster, then all point at the
    // shared target via `next` of c and payload-level links… `Node` has
    // only one ref field, so chain c→target and also a second route via
    // b→…: instead, point both a and b at the target through `next` after
    // replication-time clustering: build a→b, b→target, and c→target.
    server.set_ref(a, "next", Some(b)).unwrap();
    server.set_ref(b, "next", Some(shared_target)).unwrap();
    server.set_ref(c, "next", Some(shared_target)).unwrap();
    let mut mw = Middleware::builder()
        .cluster_size(3)
        .device_memory(1 << 20)
        .no_builtin_policies()
        .build(server);
    // Replicate a's cluster: BFS from a with size 3 → {a, b, c? no: BFS
    // order a,b,target…}. Replicate c explicitly afterwards; what matters
    // is that the two edges into the target's cluster share the proxy.
    let ra = mw.replicate_root(a).expect("replicate a");
    mw.set_global("a", Value::Ref(ra));
    mw.invoke_i64(ra, "length", vec![]).expect("walk a");
    let rc = mw.replicate_root(c).expect("replicate c");
    mw.set_global("c", Value::Ref(rc));
    mw.invoke_i64(rc, "length", vec![]).expect("walk c");

    // Count live swap proxies per (source, oid) — no duplicates among
    // *edge* proxies (globals' fresh deliveries may add transients).
    let heap = mw.process().heap();
    let mwc = mw.process().universe().middleware;
    let mut edge_targets = std::collections::HashMap::new();
    for r in heap.iter_live() {
        let o = heap.get(r).unwrap();
        if o.kind() != ObjectKind::App {
            continue;
        }
        for v in o.fields() {
            if let Value::Ref(t) = v {
                if heap.get(*t).unwrap().kind() == ObjectKind::SwapProxy {
                    let src = heap.field(*t, mwc.sp_source).unwrap().expect_int().unwrap();
                    let oid = heap.field(*t, mwc.sp_oid).unwrap().expect_int().unwrap();
                    edge_targets
                        .entry((src, oid))
                        .or_insert_with(Vec::new)
                        .push(*t);
                }
            }
        }
    }
    for ((src, oid), proxies) in edge_targets {
        let mut unique = proxies.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(
            unique.len(),
            1,
            "edges ({src} → {oid}) must share one proxy, found {proxies:?}"
        );
    }
}

#[test]
fn transient_deliveries_mint_fresh_proxies() {
    let (mut mw, root) = world();
    mw.run_gc().expect("settle");
    let before = stats(&mw);
    // Ask for the same cross-cluster reference three times. Each probe's
    // returned reference crosses TWO boundaries on its way out (cluster 2
    // → cluster 1 at the inter-cluster frame, then cluster 1 → SC0), and
    // each crossing mints a fresh transient proxy — the paper's Test A2
    // behaviour ("an additional swap-cluster-proxy is created to mediate
    // the object reference being returned").
    for round in 1..=3u64 {
        let r = mw
            .invoke_ref(root, "probe_step", vec![Value::Int(15)])
            .expect("probe");
        mw.set_global("hold", Value::Ref(r));
        let now = stats(&mw);
        assert_eq!(
            now.proxies_created - before.proxies_created,
            2 * round,
            "two fresh proxies per delivery chain"
        );
    }
}

#[test]
fn rule_iii_references_reentering_their_cluster_are_dismantled() {
    let (mut mw, root) = world();
    mw.run_gc().expect("settle");
    // probe_step(15) hands a reference to node 16 (cluster 2) out to the
    // application; passing it back *into* cluster 2 as an argument must
    // dismantle the proxy: compare as arguments via identity inside the
    // callee's own cluster.
    let to_16 = mw
        .invoke_ref(root, "probe_step", vec![Value::Int(15)])
        .expect("probe");
    mw.set_global("p16", Value::Ref(to_16));
    let to_17 = mw
        .invoke_ref(root, "probe_step", vec![Value::Int(16)])
        .expect("probe 17");
    mw.set_global("p17", Value::Ref(to_17));
    let before = stats(&mw);
    let p16 = mw.global("p16").unwrap().expect_ref().unwrap();
    let p17 = mw.global("p17").unwrap().expect_ref().unwrap();
    // `probe_step(0)` on p16 with p17 as… probe_step takes an int; use the
    // dismantle path through invocation targets instead: invoking p17 and
    // RETURNING `this` to SC0 reuses… simplest observable: transfer of the
    // proxy back into its own cluster happens when node16 reads its own
    // `next` through the mediated route — count dismantles after invoking
    // through both proxies.
    mw.invoke_i64(p16, "ping", vec![]).expect("ping 16");
    mw.invoke_i64(p17, "ping", vec![]).expect("ping 17");
    let after = stats(&mw);
    // The ping returns no references; dismantling is observed through the
    // arguments-path in the property below instead. What must hold here:
    // no *new* proxies were created for plain pings.
    assert_eq!(after.proxies_created, before.proxies_created);
    // And identity agrees the two proxies denote neighbours, not the same
    // object.
    assert!(!mw.same_object(p16, p17).unwrap());
}

#[test]
fn rule_iii_dismantled_arguments_compare_raw_equal() {
    let (mut mw, root) = world();
    mw.run_gc().expect("settle");
    // Hand the application a proxy to node 17 (cluster 2), then pass it
    // as an argument to node 16 (same cluster): rule (iii) dismantles it
    // on the way in, so node 16's *raw* comparison against its own `next`
    // field succeeds — the paper's §4 identity guarantee.
    let p16 = mw
        .invoke_ref(root, "probe_step", vec![Value::Int(15)])
        .expect("node 16");
    mw.set_global("p16", Value::Ref(p16));
    let p17 = mw
        .invoke_ref(root, "probe_step", vec![Value::Int(16)])
        .expect("node 17");
    mw.set_global("p17", Value::Ref(p17));
    let before = stats(&mw);
    let is_next = mw
        .invoke(p16, "is_next", vec![Value::Ref(p17)])
        .expect("is_next")
        .expect_bool()
        .expect("bool");
    assert!(is_next, "the dismantled argument equals the raw field");
    let after = stats(&mw);
    assert!(
        after.proxies_dismantled > before.proxies_dismantled,
        "rule (iii) fired"
    );
    // Passing a reference to a *different* cluster's object is mediated,
    // not dismantled, and compares unequal.
    let far = mw
        .invoke_ref(root, "probe_step", vec![Value::Int(3)])
        .expect("node 4 (cluster 1)");
    mw.set_global("far", Value::Ref(far));
    let is_next = mw
        .invoke(p16, "is_next", vec![Value::Ref(far)])
        .expect("is_next far")
        .expect_bool()
        .expect("bool");
    assert!(!is_next);
}

#[test]
fn fault_proxies_pass_transfer_untouched() {
    let mut server = Server::new(standard_classes());
    let head = server.build_list("Node", 30, 8).expect("build");
    let mut mw = Middleware::builder()
        .cluster_size(10)
        .device_memory(1 << 20)
        .no_builtin_policies()
        .build(server);
    let root = mw.replicate_root(head).expect("replicate");
    mw.set_global("head", Value::Ref(root));
    // Walk to the cluster edge WITHOUT faulting past it: nodes 0..9 are
    // loaded, node 9's `next` is a fault proxy. Returning it to SC0 must
    // hand the fault proxy itself through (no swap mediation yet).
    let mut cur = root;
    for _ in 0..9 {
        cur = mw.invoke_ref(cur, "next", vec![]).expect("walk");
        mw.set_global("cursor", Value::Ref(cur));
    }
    let edge = mw.invoke_ref(cur, "next", vec![]).expect("edge");
    assert_eq!(
        mw.process().heap().get(edge).unwrap().kind(),
        ObjectKind::FaultProxy
    );
}

#[test]
fn proxy_with_matching_source_is_reused_not_rewrapped() {
    let (mut mw, root) = world();
    mw.run_gc().expect("settle");
    // `next()` on the boundary node returns the SAME SC0-destined value
    // twice; the proxy handed out the second time is a fresh transient
    // (per B1 semantics), but handing an SC0 proxy back to SC0 context
    // (e.g. reading a global) performs no work at all: transfer only runs
    // on invocation boundaries. Verify: re-invoking through the SAME
    // proxy does not create or dismantle anything.
    let p = mw
        .invoke_ref(root, "probe_step", vec![Value::Int(15)])
        .expect("probe");
    mw.set_global("p", Value::Ref(p));
    let before = stats(&mw);
    for _ in 0..5 {
        mw.invoke_i64(p, "ping", vec![]).expect("ping");
    }
    let after = stats(&mw);
    assert_eq!(after.proxies_created, before.proxies_created);
    assert_eq!(after.crossings - before.crossings, 5, "each ping crossed");
}
