//! Whole-graph invariant auditor: statically checks swap-cluster
//! referential integrity over the heap, the [`SwappingManager`] tables and
//! the blob stores of the simulated world.
//!
//! The paper's mechanism only works if three families of invariants hold at
//! every quiescent point (between operations):
//!
//! * **Boundary soundness** (paper §4, transfer rules i–iii): every
//!   reference crossing a swap-cluster boundary is mediated by a
//!   swap-cluster-proxy whose `source` is the holder's cluster, and the
//!   proxy-reuse table binds at most one proxy per
//!   (source-cluster, target-identity) pair.
//! * **Detach integrity** (paper §3, swapping-out): for every swapped-out
//!   cluster, inbound proxies target its replacement-object, the
//!   replacement holds exactly the victim's live outbound proxies, and a
//!   blob whose self-describing header names the cluster exists on a
//!   reachable device (any wire format — XML, binary or LZ).
//! * **GC / blob consistency** (paper §3, GC integration): blobs on
//!   neighbours are either backing a swapped-out cluster or tracked as
//!   orphans awaiting a sweep; dropped clusters have released their
//!   members.
//!
//! [`SwappingManager::audit`] first snapshots the sharded manager state
//! (coordinator, then every shard in ascending index order — the lock
//! hierarchy) into one `AuditState`, then walks the whole graph against
//! that snapshot and emits structured [`Violation`] values;
//! [`crate::Middleware::audit`] is the public entry point, and debug
//! builds self-audit after every swap-out / reload / GC
//! (`debug_assert`-gated). The `obiwan-auditor` crate packages the same
//! checks as a standalone CLI (`audit-trace`) plus violation-injection
//! tests.

use crate::proxy;
use crate::swap_cluster::{SwapClusterEntry, SwapClusterState};
use crate::SwappingManager;
use obiwan_heap::{ObjRef, ObjectKind, Oid, Value, WeakRef};
use obiwan_net::{DeviceId, NetFabric};
use obiwan_placement::PlacementTable;
use obiwan_replication::Process;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::sync::PoisonError;

/// How bad a violation is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// A state a correct run can reach through the public API (a departed
    /// storage device, a global set to a raw cross-cluster reference, a
    /// blob drop that could not reach its device). Reported, not asserted.
    Warning,
    /// Graph corruption: no sequence of public-API calls should ever
    /// produce this. Debug self-audit hooks assert none exist.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// The invariant a [`Violation`] breaks. Rule ids are grouped by class:
/// `B*` boundary soundness, `D*` detach integrity, `G*` GC / blob
/// consistency, `W*` tolerated-but-suspect states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// `B1` — a field (or global) holds a direct reference to an
    /// application or replacement object in another swap-cluster, without a
    /// mediating swap-cluster-proxy (transfer rule i violated).
    DirectCrossClusterRef,
    /// `B2` — a field holds a swap-cluster-proxy whose `source` is not the
    /// holder's swap-cluster (the proxy mediates for somebody else).
    ProxySourceMismatch,
    /// `B3` — a swap-cluster-proxy's target is null, dead, another proxy,
    /// or a replacement-object that is not the current stand-in of a
    /// swapped-out cluster.
    BadProxyTarget,
    /// `B4` — two proxy-reuse-table entries resolve to proxies carrying the
    /// same (source-cluster, target-identity) pair (transfer rule ii
    /// violated: the pair must have at most one registered proxy).
    DuplicateProxyPair,
    /// `B5` — a proxy-reuse-table entry resolves to an object that is not a
    /// swap-cluster-proxy, or whose `source` / `oid` fields disagree with
    /// the table key.
    ProxyIndexMismatch,
    /// `B6` — a live proxy listed in a cluster's outbound table has a
    /// `source` field naming a different cluster.
    OutboundSourceMismatch,
    /// `D1` — a live proxy denotes a member of a swapped-out cluster but
    /// does not target that cluster's replacement-object (detach forgot to
    /// patch an inbound proxy).
    InboundNotPatched,
    /// `D2` — a swapped-out cluster's replacement-object handle is dead,
    /// not a replacement-object, or tagged with another cluster.
    ReplacementMissing,
    /// `D3` — the replacement-object does not hold exactly the victim's
    /// live outbound proxies.
    ReplacementOutboundMismatch,
    /// `D4` — the storing device is present but no longer holds the blob
    /// backing a swapped-out cluster.
    MissingBlob,
    /// `D5` — a holder of a swapped-out cluster's blob is not currently
    /// present in the world (reload fails over to the remaining holders,
    /// or reports `BlobUnavailable` when none is left).
    StoreUnreachable,
    /// `D6` — the stored blob backing a swapped-out cluster has a header
    /// that fails to decode, or names a different swap-cluster than the
    /// entry it backs (the wrong bytes would be materialized on reload).
    BlobHeaderMismatch,
    /// `D7` — fewer holders of a swapped-out cluster's blob are currently
    /// reachable (present *and* holding the bytes) than
    /// [`crate::SwapConfig::replication_factor`] asks for; the repair sweep
    /// should top the placement back up.
    UnderReplicated,
    /// `D8` — not a single holder of a swapped-out cluster's blob could
    /// possibly serve it: none is reachable and none is merely departed
    /// (which could return with its copy). Reload will fail with
    /// `BlobUnavailable` forever.
    AllHoldersLost,
    /// `L1` — a loaded cluster's member record resolves to a live object
    /// whose identity, cluster tag or kind disagrees with the registry.
    MemberRecordMismatch,
    /// `G1` — a blob keyed by this device backs no swapped-out cluster and
    /// is not tracked as an orphan (a failed drop left it behind).
    OrphanBlob,
    /// `G2` — a dropped cluster still lists members (GC cooperation did not
    /// release them).
    DroppedNotCleared,
    /// `W1` — a global variable holds a direct reference to an application
    /// object outside swap-cluster-0 (legal via `set_global`, but such a
    /// reference pins the object across swap-outs unmediated).
    UnmediatedGlobal,
}

impl Rule {
    /// Stable short id (`"B1"`, `"D3"`, …) used in reports and CI grep.
    pub fn id(self) -> &'static str {
        match self {
            Rule::DirectCrossClusterRef => "B1",
            Rule::ProxySourceMismatch => "B2",
            Rule::BadProxyTarget => "B3",
            Rule::DuplicateProxyPair => "B4",
            Rule::ProxyIndexMismatch => "B5",
            Rule::OutboundSourceMismatch => "B6",
            Rule::InboundNotPatched => "D1",
            Rule::ReplacementMissing => "D2",
            Rule::ReplacementOutboundMismatch => "D3",
            Rule::MissingBlob => "D4",
            Rule::StoreUnreachable => "D5",
            Rule::BlobHeaderMismatch => "D6",
            Rule::UnderReplicated => "D7",
            Rule::AllHoldersLost => "D8",
            Rule::MemberRecordMismatch => "L1",
            Rule::OrphanBlob => "G1",
            Rule::DroppedNotCleared => "G2",
            Rule::UnmediatedGlobal => "W1",
        }
    }

    /// The severity class of this rule.
    pub fn severity(self) -> Severity {
        match self {
            Rule::StoreUnreachable
            | Rule::UnderReplicated
            | Rule::OrphanBlob
            | Rule::UnmediatedGlobal => Severity::Warning,
            _ => Severity::Error,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One broken invariant, with enough structure for tools to act on it.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Which invariant is broken.
    pub rule: Rule,
    /// The swap-cluster the violation is anchored to, when one is.
    pub swap_cluster: Option<u32>,
    /// The offending heap object (holder, proxy or replacement).
    pub subject: Option<ObjRef>,
    /// The identity involved (proxy target, member oid), when known.
    pub oid: Option<Oid>,
    /// The swap-cluster path of the offending edge, source first (e.g.
    /// `[holder's cluster, target's cluster]` for a boundary violation).
    pub path: Vec<u32>,
    /// Human-readable specifics.
    pub detail: String,
}

impl Violation {
    /// The severity class (delegates to the rule).
    pub fn severity(&self) -> Severity {
        self.rule.severity()
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}/{}] ", self.rule.id(), self.severity())?;
        if let Some(sc) = self.swap_cluster {
            write!(f, "sc{sc}: ")?;
        }
        f.write_str(&self.detail)?;
        if let Some(s) = self.subject {
            write!(f, " (subject {s:?}")?;
            if let Some(oid) = self.oid {
                write!(f, ", oid {oid}")?;
            }
            f.write_str(")")?;
        } else if let Some(oid) = self.oid {
            write!(f, " (oid {oid})")?;
        }
        if !self.path.is_empty() {
            let path: Vec<String> = self.path.iter().map(|sc| format!("sc{sc}")).collect();
            write!(f, " [path {}]", path.join(" -> "))?;
        }
        Ok(())
    }
}

/// The outcome of one whole-graph audit pass.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// Everything found, in discovery order.
    pub violations: Vec<Violation>,
    /// Live heap objects visited.
    pub checked_objects: usize,
    /// Swap-cluster registry entries visited.
    pub checked_clusters: usize,
    /// Live swap-cluster-proxies visited.
    pub checked_proxies: usize,
    /// Globals visited.
    pub checked_globals: usize,
}

impl AuditReport {
    /// No violations of any severity.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Whether any error-severity violation was found (the debug self-audit
    /// hooks assert this is false).
    pub fn has_errors(&self) -> bool {
        self.errors().next().is_some()
    }

    /// Error-severity violations.
    pub fn errors(&self) -> impl Iterator<Item = &Violation> {
        self.violations
            .iter()
            .filter(|v| v.severity() == Severity::Error)
    }

    /// Warning-severity violations.
    pub fn warnings(&self) -> impl Iterator<Item = &Violation> {
        self.violations
            .iter()
            .filter(|v| v.severity() == Severity::Warning)
    }

    /// Render the full human-readable report.
    pub fn render(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let errors = self.errors().count();
        let warnings = self.warnings().count();
        writeln!(
            f,
            "audit: {} object(s), {} cluster(s), {} proxy(ies), {} global(s) checked \
             — {errors} error(s), {warnings} warning(s)",
            self.checked_objects, self.checked_clusters, self.checked_proxies, self.checked_globals,
        )?;
        for v in &self.violations {
            writeln!(f, "  {v}")?;
        }
        Ok(())
    }
}

/// A whole-manager snapshot the rules run against: the coordinator's proxy
/// tables plus every shard's cluster-keyed state, merged back into the
/// pre-sharding single-table view. Snapshotting first keeps the rule walks
/// guard-free (no manager lock is held while the heap is traversed) and
/// the report internally consistent per table.
struct AuditState {
    clusters: BTreeMap<u32, SwapClusterEntry>,
    outbound: BTreeMap<u32, Vec<WeakRef>>,
    proxy_index: BTreeMap<(u32, Oid), WeakRef>,
    orphaned_blobs: Vec<(DeviceId, String)>,
    placements: PlacementTable,
    replication_factor: usize,
    home: DeviceId,
}

impl SwappingManager {
    /// Audit the whole graph: heap boundaries, manager tables, swapped-out
    /// cluster integrity and blob accounting. Read-only; safe to call at
    /// any quiescent point, from any thread (the manager state is
    /// snapshotted coordinator-first, then shard by ascending index, per
    /// the lock hierarchy).
    pub fn audit(&self, p: &Process) -> AuditReport {
        let state = self.audit_state();
        // Diagnostics must survive a panicking peer; recover from poison.
        let net = self.net.lock().unwrap_or_else(PoisonError::into_inner);
        state.run(p, &net)
    }

    /// Snapshot coordinator + shards into one [`AuditState`].
    fn audit_state(&self) -> AuditState {
        let (proxy_index, outbound, replication_factor) = {
            let c = self
                .coordinator
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            (
                c.proxy_index.clone(),
                c.outbound.clone(),
                c.config.replication_factor,
            )
        };
        let mut clusters: BTreeMap<u32, SwapClusterEntry> = BTreeMap::new();
        let mut placements = PlacementTable::new();
        let mut orphaned_blobs: Vec<(DeviceId, String)> = Vec::new();
        for slot in self.shards.iter() {
            let shard = slot.lock().unwrap_or_else(PoisonError::into_inner);
            for (&sc, entry) in &shard.clusters {
                clusters.insert(sc, entry.clone());
            }
            placements.absorb(&shard.placements);
            orphaned_blobs.extend(shard.orphaned_blobs.iter().cloned());
        }
        AuditState {
            clusters,
            outbound,
            proxy_index,
            orphaned_blobs,
            placements,
            replication_factor,
            home: self.home,
        }
    }
}

impl AuditState {
    /// Run every rule family against the snapshot.
    fn run(&self, p: &Process, net: &NetFabric) -> AuditReport {
        let mut report = AuditReport::default();

        // Members of swapped-out clusters: oid -> (cluster, replacement).
        let mut swapped_members: HashMap<Oid, (u32, ObjRef)> = HashMap::new();
        for (&sc, entry) in &self.clusters {
            if let SwapClusterState::SwappedOut { replacement, .. } = entry.state {
                for &(oid, _) in &entry.members {
                    swapped_members.insert(oid, (sc, replacement));
                }
            }
        }

        self.audit_heap(p, &swapped_members, &mut report);
        self.audit_globals(p, &mut report);
        self.audit_proxy_index(p, &mut report);
        self.audit_side_tables(p, &mut report);
        self.audit_clusters(p, &mut report);
        self.audit_blobs(net, &mut report);
        report
    }

    /// The holder set backing swap-cluster `sc` (mirrors
    /// `Shard::holders_of` over the merged tables).
    fn holders_of(&self, sc: u32) -> Option<(u32, String, Vec<DeviceId>)> {
        if let Some((epoch, p)) = self.placements.active(sc) {
            return Some((epoch, p.key.clone(), p.holders.clone()));
        }
        let entry = self.clusters.get(&sc)?;
        if let SwapClusterState::SwappedOut {
            device, ref key, ..
        } = entry.state
        {
            Some((entry.epoch.wrapping_sub(1), key.clone(), vec![device]))
        } else {
            None
        }
    }

    /// Boundary soundness over every live heap object (rules B1–B3, D1).
    fn audit_heap(
        &self,
        p: &Process,
        swapped_members: &HashMap<Oid, (u32, ObjRef)>,
        report: &mut AuditReport,
    ) {
        for r in p.heap().iter_live() {
            let Ok(obj) = p.heap().get(r) else { continue };
            report.checked_objects += 1;
            match obj.kind() {
                ObjectKind::App => {
                    let holder_sc = obj.header().swap_cluster;
                    for (idx, v) in obj.fields().iter().enumerate() {
                        self.audit_app_field(p, r, holder_sc, idx, v, report);
                    }
                }
                ObjectKind::SwapProxy => {
                    report.checked_proxies += 1;
                    self.audit_proxy(p, r, swapped_members, report);
                }
                // Replacement extras are audited per cluster entry (D3);
                // fault proxies carry no references.
                ObjectKind::Replacement | ObjectKind::FaultProxy => {}
            }
        }
    }

    /// One field of an application object (rules B1, B2).
    fn audit_app_field(
        &self,
        p: &Process,
        holder: ObjRef,
        holder_sc: u32,
        idx: usize,
        v: &Value,
        report: &mut AuditReport,
    ) {
        let Value::Ref(t) = v else { return };
        let Ok(target) = p.heap().get(*t) else {
            report.violations.push(Violation {
                rule: Rule::DirectCrossClusterRef,
                swap_cluster: Some(holder_sc),
                subject: Some(holder),
                oid: None,
                path: vec![holder_sc],
                detail: format!("field {idx} holds a dangling reference"),
            });
            return;
        };
        let t_sc = target.header().swap_cluster;
        match target.kind() {
            ObjectKind::App if t_sc != holder_sc => {
                report.violations.push(Violation {
                    rule: Rule::DirectCrossClusterRef,
                    swap_cluster: Some(holder_sc),
                    subject: Some(holder),
                    oid: Some(target.header().oid),
                    path: vec![holder_sc, t_sc],
                    detail: format!(
                        "field {idx} crosses into sc{t_sc} without a swap-cluster-proxy"
                    ),
                });
            }
            ObjectKind::Replacement => {
                report.violations.push(Violation {
                    rule: Rule::DirectCrossClusterRef,
                    swap_cluster: Some(holder_sc),
                    subject: Some(holder),
                    oid: None,
                    path: vec![holder_sc, t_sc],
                    detail: format!(
                        "field {idx} references a replacement-object directly \
                         (must be mediated by a swap-cluster-proxy)"
                    ),
                });
            }
            ObjectKind::SwapProxy => {
                let src = proxy::source_of(p, *t).unwrap_or(u32::MAX);
                if src != holder_sc {
                    report.violations.push(Violation {
                        rule: Rule::ProxySourceMismatch,
                        swap_cluster: Some(holder_sc),
                        subject: Some(*t),
                        oid: proxy::oid_of(p, *t).ok(),
                        path: vec![holder_sc, src],
                        detail: format!(
                            "field {idx} holds a proxy whose source is sc{src}, \
                             not the holder's sc{holder_sc}"
                        ),
                    });
                }
            }
            _ => {}
        }
    }

    /// One live swap-cluster-proxy (rules B3, D1).
    fn audit_proxy(
        &self,
        p: &Process,
        pr: ObjRef,
        swapped_members: &HashMap<Oid, (u32, ObjRef)>,
        report: &mut AuditReport,
    ) {
        let mw = p.universe().middleware;
        let src = proxy::source_of(p, pr).unwrap_or(u32::MAX);
        let oid = proxy::oid_of(p, pr).ok();
        let target = match p.heap().field(pr, mw.sp_target) {
            Ok(Value::Ref(t)) => *t,
            _ => {
                report.violations.push(Violation {
                    rule: Rule::BadProxyTarget,
                    swap_cluster: Some(src),
                    subject: Some(pr),
                    oid,
                    path: vec![src],
                    detail: "proxy target field is not a reference".into(),
                });
                return;
            }
        };
        let Ok(t_obj) = p.heap().get(target) else {
            report.violations.push(Violation {
                rule: Rule::BadProxyTarget,
                swap_cluster: Some(src),
                subject: Some(pr),
                oid,
                path: vec![src],
                detail: "proxy targets a dead object".into(),
            });
            return;
        };
        let t_sc = t_obj.header().swap_cluster;
        match t_obj.kind() {
            ObjectKind::App => {}
            ObjectKind::Replacement => {
                // Must be the current stand-in of its (swapped-out) cluster.
                let current = self.clusters.get(&t_sc).and_then(|e| match e.state {
                    SwapClusterState::SwappedOut { replacement, .. } => Some(replacement),
                    _ => None,
                });
                if current != Some(target) {
                    report.violations.push(Violation {
                        rule: Rule::BadProxyTarget,
                        swap_cluster: Some(t_sc),
                        subject: Some(pr),
                        oid,
                        path: vec![src, t_sc],
                        detail: format!(
                            "proxy targets a replacement-object that is not the \
                             current stand-in of sc{t_sc}"
                        ),
                    });
                }
            }
            other => {
                report.violations.push(Violation {
                    rule: Rule::BadProxyTarget,
                    swap_cluster: Some(src),
                    subject: Some(pr),
                    oid,
                    path: vec![src, t_sc],
                    detail: format!("proxy targets a {other} object"),
                });
            }
        }
        // D1: a proxy denoting a swapped-out member must target the
        // replacement (detach patches every inbound proxy).
        if let Some(o) = oid {
            if let Some(&(sc, replacement)) = swapped_members.get(&o) {
                if target != replacement {
                    report.violations.push(Violation {
                        rule: Rule::InboundNotPatched,
                        swap_cluster: Some(sc),
                        subject: Some(pr),
                        oid,
                        path: vec![src, sc],
                        detail: format!(
                            "proxy denotes member {o} of swapped-out sc{sc} but does \
                             not target its replacement-object"
                        ),
                    });
                }
            }
        }
    }

    /// Globals are swap-cluster-0 roots (rules B1, B2, W1).
    fn audit_globals(&self, p: &Process, report: &mut AuditReport) {
        for (name, v) in p.heap().globals() {
            report.checked_globals += 1;
            let Value::Ref(t) = v else { continue };
            let Ok(t_obj) = p.heap().get(*t) else {
                report.violations.push(Violation {
                    rule: Rule::DirectCrossClusterRef,
                    swap_cluster: Some(0),
                    subject: None,
                    oid: None,
                    path: vec![0],
                    detail: format!("global `{name}` holds a dangling reference"),
                });
                continue;
            };
            let t_sc = t_obj.header().swap_cluster;
            match t_obj.kind() {
                ObjectKind::App if t_sc != 0 => {
                    report.violations.push(Violation {
                        rule: Rule::UnmediatedGlobal,
                        swap_cluster: Some(0),
                        subject: Some(*t),
                        oid: Some(t_obj.header().oid),
                        path: vec![0, t_sc],
                        detail: format!(
                            "global `{name}` references sc{t_sc} directly (set via \
                             `set_global`; pins the object across swap-outs)"
                        ),
                    });
                }
                ObjectKind::Replacement => {
                    report.violations.push(Violation {
                        rule: Rule::DirectCrossClusterRef,
                        swap_cluster: Some(0),
                        subject: Some(*t),
                        oid: None,
                        path: vec![0, t_sc],
                        detail: format!("global `{name}` references a replacement-object"),
                    });
                }
                ObjectKind::SwapProxy => {
                    let src = proxy::source_of(p, *t).unwrap_or(u32::MAX);
                    if src != 0 {
                        report.violations.push(Violation {
                            rule: Rule::ProxySourceMismatch,
                            swap_cluster: Some(0),
                            subject: Some(*t),
                            oid: proxy::oid_of(p, *t).ok(),
                            path: vec![0, src],
                            detail: format!(
                                "global `{name}` holds a proxy with source sc{src}, \
                                 not sc0"
                            ),
                        });
                    }
                }
                _ => {}
            }
        }
    }

    /// Proxy-reuse table consistency (rules B4, B5).
    fn audit_proxy_index(&self, p: &Process, report: &mut AuditReport) {
        let mut by_pair: BTreeMap<(u32, Oid), Vec<(u32, Oid)>> = BTreeMap::new();
        for (&(src, oid), &weak) in &self.proxy_index {
            let Some(pr) = p.heap().weak_get(weak) else {
                // Dead entries are pruned lazily by the GC bridge.
                continue;
            };
            let Ok(obj) = p.heap().get(pr) else { continue };
            if obj.kind() != ObjectKind::SwapProxy {
                report.violations.push(Violation {
                    rule: Rule::ProxyIndexMismatch,
                    swap_cluster: Some(src),
                    subject: Some(pr),
                    oid: Some(oid),
                    path: vec![src],
                    detail: format!(
                        "reuse-table entry (sc{src}, {oid}) resolves to a {} object",
                        obj.kind()
                    ),
                });
                continue;
            }
            let f_src = proxy::source_of(p, pr).unwrap_or(u32::MAX);
            let f_oid = proxy::oid_of(p, pr).unwrap_or(Oid(u64::MAX));
            if f_src != src || f_oid != oid {
                report.violations.push(Violation {
                    rule: Rule::ProxyIndexMismatch,
                    swap_cluster: Some(src),
                    subject: Some(pr),
                    oid: Some(oid),
                    path: vec![src, f_src],
                    detail: format!(
                        "reuse-table entry (sc{src}, {oid}) resolves to a proxy \
                         carrying (sc{f_src}, {f_oid})"
                    ),
                });
            }
            by_pair.entry((f_src, f_oid)).or_default().push((src, oid));
        }
        for ((src, oid), keys) in by_pair {
            if keys.len() > 1 {
                let listed: Vec<String> =
                    keys.iter().map(|(s, o)| format!("(sc{s}, {o})")).collect();
                report.violations.push(Violation {
                    rule: Rule::DuplicateProxyPair,
                    swap_cluster: Some(src),
                    subject: None,
                    oid: Some(oid),
                    path: vec![src],
                    detail: format!(
                        "pair (sc{src}, {oid}) is carried by {} registered proxies \
                         (table keys {})",
                        keys.len(),
                        listed.join(", ")
                    ),
                });
            }
        }
    }

    /// Outbound table consistency (rule B6). Inbound lists are allowed to
    /// hold retargeted cursors (the iteration optimization re-registers
    /// them without unlisting), so only the detach-time guarantees — rule
    /// D1 — are checked for inbound edges.
    fn audit_side_tables(&self, p: &Process, report: &mut AuditReport) {
        for (&sc, list) in &self.outbound {
            for &w in list {
                let Some(pr) = p.heap().weak_get(w) else {
                    continue;
                };
                if p.heap()
                    .get(pr)
                    .map(|o| o.kind() != ObjectKind::SwapProxy)
                    .unwrap_or(true)
                {
                    continue;
                }
                let src = proxy::source_of(p, pr).unwrap_or(u32::MAX);
                if src != sc {
                    report.violations.push(Violation {
                        rule: Rule::OutboundSourceMismatch,
                        swap_cluster: Some(sc),
                        subject: Some(pr),
                        oid: proxy::oid_of(p, pr).ok(),
                        path: vec![sc, src],
                        detail: format!(
                            "outbound table of sc{sc} lists a proxy whose source \
                             is sc{src}"
                        ),
                    });
                }
            }
        }
    }

    /// Per-cluster state-machine integrity (rules L1, D2, D3, G2).
    fn audit_clusters(&self, p: &Process, report: &mut AuditReport) {
        for (&sc, entry) in &self.clusters {
            report.checked_clusters += 1;
            match &entry.state {
                SwapClusterState::Loaded => {
                    for &(oid, r) in &entry.members {
                        let Ok(obj) = p.heap().get(r) else {
                            // Members may die between collections; swap-out
                            // refreshes the roster.
                            continue;
                        };
                        if obj.header().oid != oid
                            || obj.header().swap_cluster != sc
                            || obj.kind() != ObjectKind::App
                        {
                            report.violations.push(Violation {
                                rule: Rule::MemberRecordMismatch,
                                swap_cluster: Some(sc),
                                subject: Some(r),
                                oid: Some(oid),
                                path: vec![sc, obj.header().swap_cluster],
                                detail: format!(
                                    "member record ({oid}) resolves to a {} object \
                                     with oid {} in sc{}",
                                    obj.kind(),
                                    obj.header().oid,
                                    obj.header().swap_cluster
                                ),
                            });
                        }
                    }
                }
                SwapClusterState::SwappedOut { replacement, .. } => {
                    self.audit_swapped_cluster(p, sc, *replacement, report);
                }
                SwapClusterState::Dropped => {
                    if !entry.members.is_empty() {
                        report.violations.push(Violation {
                            rule: Rule::DroppedNotCleared,
                            swap_cluster: Some(sc),
                            subject: None,
                            oid: None,
                            path: vec![sc],
                            detail: format!(
                                "dropped cluster still lists {} member(s)",
                                entry.members.len()
                            ),
                        });
                    }
                }
            }
        }
    }

    /// Detach integrity of one swapped-out cluster (rules D2, D3).
    fn audit_swapped_cluster(
        &self,
        p: &Process,
        sc: u32,
        replacement: ObjRef,
        report: &mut AuditReport,
    ) {
        let rep_ok = match p.heap().get(replacement) {
            Ok(obj) => {
                if obj.kind() != ObjectKind::Replacement {
                    report.violations.push(Violation {
                        rule: Rule::ReplacementMissing,
                        swap_cluster: Some(sc),
                        subject: Some(replacement),
                        oid: None,
                        path: vec![sc],
                        detail: format!(
                            "stand-in of sc{sc} is a {} object, not a \
                             replacement-object",
                            obj.kind()
                        ),
                    });
                    false
                } else if obj.header().swap_cluster != sc {
                    report.violations.push(Violation {
                        rule: Rule::ReplacementMissing,
                        swap_cluster: Some(sc),
                        subject: Some(replacement),
                        oid: None,
                        path: vec![sc, obj.header().swap_cluster],
                        detail: format!(
                            "replacement-object of sc{sc} is tagged sc{}",
                            obj.header().swap_cluster
                        ),
                    });
                    false
                } else {
                    true
                }
            }
            Err(_) => {
                report.violations.push(Violation {
                    rule: Rule::ReplacementMissing,
                    swap_cluster: Some(sc),
                    subject: Some(replacement),
                    oid: None,
                    path: vec![sc],
                    detail: format!(
                        "replacement-object of swapped-out sc{sc} is dead while \
                         the entry still names it"
                    ),
                });
                false
            }
        };
        if !rep_ok {
            return;
        }

        // D3: extras of the replacement == live outbound proxies of sc.
        let held: BTreeSet<ObjRef> = p
            .heap()
            .extra_fields(replacement)
            .map(|extras| {
                extras
                    .iter()
                    .filter_map(Value::as_ref_value)
                    .collect::<BTreeSet<_>>()
            })
            .unwrap_or_default();
        let live_outbound: BTreeSet<ObjRef> = self
            .outbound
            .get(&sc)
            .map(|list| {
                list.iter()
                    .filter_map(|&w| p.heap().weak_get(w))
                    .collect::<BTreeSet<_>>()
            })
            .unwrap_or_default();
        for &extra in &held {
            let is_proxy = p
                .heap()
                .get(extra)
                .map(|o| o.kind() == ObjectKind::SwapProxy)
                .unwrap_or(false);
            if !is_proxy || !live_outbound.contains(&extra) {
                report.violations.push(Violation {
                    rule: Rule::ReplacementOutboundMismatch,
                    swap_cluster: Some(sc),
                    subject: Some(extra),
                    oid: None,
                    path: vec![sc],
                    detail: if is_proxy {
                        format!(
                            "replacement-object of sc{sc} holds a proxy that is not \
                             in the cluster's outbound table"
                        )
                    } else {
                        format!(
                            "replacement-object of sc{sc} holds a reference that is \
                             not a live swap-cluster-proxy"
                        )
                    },
                });
            }
        }
        for &out in &live_outbound {
            if !held.contains(&out) {
                report.violations.push(Violation {
                    rule: Rule::ReplacementOutboundMismatch,
                    swap_cluster: Some(sc),
                    subject: Some(out),
                    oid: proxy::oid_of(p, out).ok(),
                    path: vec![sc],
                    detail: format!(
                        "outbound proxy of swapped-out sc{sc} is not held by its \
                         replacement-object (downstream clusters may be lost)"
                    ),
                });
            }
        }
    }

    /// Blob accounting against the simulated world (rules D4, D5, D6, D7,
    /// D8, G1). Every holder in a swapped-out cluster's placement is
    /// checked individually, then the copy counts are judged against the
    /// configured replication factor.
    fn audit_blobs(&self, net: &NetFabric, report: &mut AuditReport) {
        // Expected blobs: every (holder, key) pair of a swapped-out
        // cluster's placement, plus tracked orphans.
        let mut expected: HashSet<(DeviceId, String)> = HashSet::new();
        for (&sc, entry) in &self.clusters {
            if !matches!(entry.state, SwapClusterState::SwappedOut { .. }) {
                continue;
            }
            let Some((_, key, holders)) = self.holders_of(sc) else {
                continue;
            };
            // Reachable = present and holding the bytes; possible adds
            // departed holders, which may return with their copy intact.
            let mut reachable = 0usize;
            let mut possible = 0usize;
            for &device in &holders {
                expected.insert((device, key.clone()));
                if !net.is_present(device) {
                    possible += 1;
                    report.violations.push(Violation {
                        rule: Rule::StoreUnreachable,
                        swap_cluster: Some(sc),
                        subject: None,
                        oid: None,
                        path: vec![sc],
                        detail: format!(
                            "holder {device:?} of sc{sc} is not present \
                             (reload fails over to the remaining holders)"
                        ),
                    });
                } else if !net.holds_blob(device, &key) {
                    report.violations.push(Violation {
                        rule: Rule::MissingBlob,
                        swap_cluster: Some(sc),
                        subject: None,
                        oid: None,
                        path: vec![sc],
                        detail: format!(
                            "device {device:?} is present but no longer holds blob \
                             `{key}` backing sc{sc}"
                        ),
                    });
                } else {
                    reachable += 1;
                    possible += 1;
                    if let Some(data) = net.blob_data(device, &key) {
                        // D6: the copy is there — its self-describing
                        // header must decode and name this cluster (any
                        // wire format).
                        match crate::wire::peek_header(&data) {
                            Ok(header) if header.swap_cluster == sc => {}
                            Ok(header) => report.violations.push(Violation {
                                rule: Rule::BlobHeaderMismatch,
                                swap_cluster: Some(sc),
                                subject: None,
                                oid: None,
                                path: vec![sc],
                                detail: format!(
                                    "blob `{key}` backing sc{sc} on {device:?} names \
                                     sc{} in its header (reload would refuse it)",
                                    header.swap_cluster
                                ),
                            }),
                            Err(e) => report.violations.push(Violation {
                                rule: Rule::BlobHeaderMismatch,
                                swap_cluster: Some(sc),
                                subject: None,
                                oid: None,
                                path: vec![sc],
                                detail: format!(
                                    "blob `{key}` backing sc{sc} on {device:?} has \
                                     an undecodable header: {e}"
                                ),
                            }),
                        }
                    }
                }
            }
            if possible == 0 {
                report.violations.push(Violation {
                    rule: Rule::AllHoldersLost,
                    swap_cluster: Some(sc),
                    subject: None,
                    oid: None,
                    path: vec![sc],
                    detail: format!(
                        "all {} holder(s) of blob `{key}` backing sc{sc} are \
                         present yet blobless — no copy can ever be served",
                        holders.len()
                    ),
                });
            } else if reachable < self.replication_factor {
                report.violations.push(Violation {
                    rule: Rule::UnderReplicated,
                    swap_cluster: Some(sc),
                    subject: None,
                    oid: None,
                    path: vec![sc],
                    detail: format!(
                        "sc{sc} has {reachable} reachable cop(y/ies) of blob \
                         `{key}`, below the configured replication factor {} \
                         (repair sweep pending)",
                        self.replication_factor
                    ),
                });
            }
        }
        let tracked_orphans: HashSet<(DeviceId, &str)> = self
            .orphaned_blobs
            .iter()
            .map(|(d, k)| (*d, k.as_str()))
            .collect();
        // Every blob keyed by this device must be accounted for.
        let prefix = format!("dev{}-", self.home.index());
        for device in net.device_ids() {
            for key in net.blob_keys(device) {
                if !key.starts_with(&prefix) {
                    continue; // another PDA's blob in a shared room
                }
                let id = (device, key.as_str());
                if !expected.contains(&(device, key.clone())) && !tracked_orphans.contains(&id) {
                    report.violations.push(Violation {
                        rule: Rule::OrphanBlob,
                        swap_cluster: None,
                        subject: None,
                        oid: None,
                        path: Vec::new(),
                        detail: format!(
                            "blob `{key}` on device {device:?} backs no swapped-out \
                             cluster and is not tracked as an orphan"
                        ),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests may panic on impossible states
mod tests {
    use super::*;
    use crate::shard::{lock_coordinator, lock_shard};
    use crate::{Middleware, SwapConfig};
    use obiwan_replication::{standard_classes, Server};

    /// A warmed two-plus-cluster world with everything replicated.
    fn warmed() -> Middleware {
        let mut server = Server::new(standard_classes());
        let head = server.build_list("Node", 40, 16).expect("build");
        let mut mw = Middleware::builder()
            .cluster_size(10)
            .device_memory(1 << 20)
            .no_builtin_policies()
            .swap_config(SwapConfig::default().collect_after_swap_out(false))
            .build(server);
        let root = mw.replicate_root(head).expect("replicate");
        mw.set_global("head", obiwan_heap::Value::Ref(root));
        mw.invoke_i64(root, "length", vec![]).expect("warm");
        mw
    }

    #[test]
    fn clean_world_audits_clean_with_nonzero_coverage() {
        let mw = warmed();
        let report = mw.audit();
        assert!(report.is_clean(), "{report}");
        assert!(report.checked_objects > 0);
        assert!(report.checked_clusters >= 2);
        assert!(report.checked_proxies > 0);
        assert!(report.checked_globals > 0);
    }

    #[test]
    fn g2_dropped_cluster_with_members_is_detected() {
        let mut mw = warmed();
        mw.swap_out(2).expect("swap out");
        {
            let manager = mw.manager();
            let mut shard = lock_shard(&manager.shards, manager.shard_of(2)).expect("shard");
            let entry = shard.clusters.get_mut(&2).expect("entry");
            // Simulate a buggy GC bridge: state flipped without draining.
            entry.state = SwapClusterState::Dropped;
            assert!(!entry.members.is_empty());
        }
        let report = mw.audit();
        assert!(report.has_errors(), "{report}");
        assert!(
            report.errors().any(|v| v.rule == Rule::DroppedNotCleared),
            "{report}"
        );
    }

    #[test]
    fn b6_outbound_table_source_mismatch_is_detected() {
        let mw = warmed();
        let manager = mw.manager();
        let (sc, w) = {
            let c = lock_coordinator(&manager.coordinator).expect("coordinator");
            let (&sc, list) = c
                .outbound
                .iter()
                .find(|(_, l)| l.iter().any(|&w| mw.process().heap().weak_get(w).is_some()))
                .expect("an outbound list with a live proxy");
            let &w = list
                .iter()
                .find(|&&w| mw.process().heap().weak_get(w).is_some())
                .expect("live weak");
            (sc, w)
        };
        {
            let mut c = lock_coordinator(&manager.coordinator).expect("coordinator");
            // File the proxy under a cluster it does not mediate for.
            c.outbound.entry(sc + 40).or_default().push(w);
        }
        let report = mw.audit();
        assert!(report.has_errors(), "{report}");
        assert!(
            report
                .errors()
                .any(|v| v.rule == Rule::OutboundSourceMismatch),
            "{report}"
        );
    }

    #[test]
    fn b5_rebinding_an_index_key_is_detected() {
        let mw = warmed();
        {
            let manager = mw.manager();
            let mut c = lock_coordinator(&manager.coordinator).expect("coordinator");
            let (&key, &w) = c
                .proxy_index
                .iter()
                .find(|(_, &w)| mw.process().heap().weak_get(w).is_some())
                .expect("a live indexed proxy");
            // Re-file the proxy under a key it does not carry.
            c.proxy_index.remove(&key);
            c.proxy_index.insert((key.0 + 40, key.1), w);
        }
        let report = mw.audit();
        assert!(report.has_errors(), "{report}");
        assert!(
            report.errors().any(|v| v.rule == Rule::ProxyIndexMismatch),
            "{report}"
        );
    }

    #[test]
    fn severities_and_ids_are_stable() {
        assert_eq!(Rule::DirectCrossClusterRef.id(), "B1");
        assert_eq!(Rule::DroppedNotCleared.id(), "G2");
        assert_eq!(Rule::BlobHeaderMismatch.id(), "D6");
        assert_eq!(Rule::BlobHeaderMismatch.severity(), Severity::Error);
        assert_eq!(Rule::StoreUnreachable.severity(), Severity::Warning);
        assert_eq!(Rule::UnderReplicated.id(), "D7");
        assert_eq!(Rule::UnderReplicated.severity(), Severity::Warning);
        assert_eq!(Rule::AllHoldersLost.id(), "D8");
        assert_eq!(Rule::AllHoldersLost.severity(), Severity::Error);
        assert_eq!(Rule::OrphanBlob.severity(), Severity::Warning);
        assert_eq!(Rule::UnmediatedGlobal.severity(), Severity::Warning);
        assert_eq!(Rule::MissingBlob.severity(), Severity::Error);
        assert!(Severity::Warning < Severity::Error);
    }
}
