//! Configuration of the swapping layer.

use crate::wire::WireFormatKind;
use crate::VictimPolicy;
use obiwan_net::TransportKind;
use obiwan_placement::PlacementKind;

/// Tunables of the Object-Swapping mechanism.
///
/// # Examples
///
/// ```
/// use obiwan_core::{SwapConfig, VictimPolicy};
///
/// let cfg = SwapConfig::default()
///     .clusters_per_swap_cluster(5)
///     .victim_policy(VictimPolicy::LeastRecentlyUsed);
/// assert_eq!(cfg.clusters_per_swap_cluster, 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwapConfig {
    /// How many replication clusters form one swap-cluster (the paper's
    /// "considering a number (also adaptable) of chained (via references)
    /// object clusters as a single macro-object").
    pub clusters_per_swap_cluster: usize,
    /// Which swap-cluster to evict under pressure.
    pub victim_policy: VictimPolicy,
    /// Run a local collection right after a swap-out so the freed memory is
    /// immediately available (the paper's LGC cooperation).
    pub collect_after_swap_out: bool,
    /// Instruct the storing device to drop the blob as soon as the cluster
    /// has been swapped back in (fresh keys are used per swap-out epoch, so
    /// leaving blobs behind only wastes the neighbour's quota).
    pub drop_blob_on_reload: bool,
    /// Allow swap targets that are only reachable through relays — the
    /// paper's closing vision of devices "available to any user either to
    /// store data or to relay communications". Every hop pays its airtime.
    pub allow_relays: bool,
    /// Wire format new swap-out blobs are written in. Reloads auto-detect
    /// from the blob's self-describing header, so rooms may mix formats;
    /// the default stays the paper's portable XML text.
    pub wire_format: WireFormatKind,
    /// How many holder devices each swap-out blob is stored on. The
    /// default of 1 reproduces the paper's single-copy semantics exactly;
    /// higher values buy availability under churn at the cost of fan-out
    /// traffic, with the repair sweep topping holders back up to `k` when
    /// one departs.
    pub replication_factor: usize,
    /// Which built-in [`PlacementKind`] ranks candidate holders. The
    /// default first-fit order is identical to the pre-placement neighbour
    /// choice, so single-copy worlds pick the same device as before.
    pub placement: PlacementKind,
    /// Ring capacity of the lifecycle trace sink. Events past the capacity
    /// evict the oldest record, which marks the exported trace as
    /// truncated — size this to the workload when the trace must pass the
    /// conformance checker end-to-end.
    pub trace_capacity: usize,
    /// How many shards the manager's cluster-keyed state is split across.
    /// Each swap-cluster maps to one shard (`shard_for`); maintenance
    /// threads touching different shards never contend. One shard
    /// reproduces the old fully-serialized manager.
    pub shard_count: usize,
    /// Which transport backend the world's `NetFabric` dispatches over.
    /// The default [`TransportKind::Sim`] keeps every byte in the
    /// deterministic simulation (the only backend whose traces are
    /// byte-replayable); [`TransportKind::Tcp`] declares a live world of
    /// actor-hosted devices backed by `obiwan-blobd` processes, which
    /// must be assembled externally and passed to
    /// `MiddlewareBuilder::build_in_world`.
    pub transport: TransportKind,
}

impl Default for SwapConfig {
    fn default() -> Self {
        SwapConfig {
            clusters_per_swap_cluster: 1,
            victim_policy: VictimPolicy::default(),
            collect_after_swap_out: true,
            drop_blob_on_reload: true,
            allow_relays: false,
            wire_format: WireFormatKind::default(),
            replication_factor: 1,
            placement: PlacementKind::default(),
            trace_capacity: obiwan_trace::DEFAULT_CAPACITY,
            shard_count: 8,
            transport: TransportKind::Sim,
        }
    }
}

impl SwapConfig {
    /// Set how many replication clusters group into one swap-cluster.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn clusters_per_swap_cluster(mut self, n: usize) -> Self {
        assert!(n > 0, "a swap-cluster groups at least one cluster");
        self.clusters_per_swap_cluster = n;
        self
    }

    /// Set the victim-selection policy.
    pub fn victim_policy(mut self, policy: VictimPolicy) -> Self {
        self.victim_policy = policy;
        self
    }

    /// Control post-swap-out collection.
    pub fn collect_after_swap_out(mut self, yes: bool) -> Self {
        self.collect_after_swap_out = yes;
        self
    }

    /// Control eager blob dropping on reload.
    pub fn drop_blob_on_reload(mut self, yes: bool) -> Self {
        self.drop_blob_on_reload = yes;
        self
    }

    /// Allow relayed (multi-hop) swap targets.
    pub fn allow_relays(mut self, yes: bool) -> Self {
        self.allow_relays = yes;
        self
    }

    /// Select the wire format for new swap-out blobs.
    pub fn wire_format(mut self, kind: WireFormatKind) -> Self {
        self.wire_format = kind;
        self
    }

    /// Set how many holder devices store each swap-out blob.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn replication_factor(mut self, k: usize) -> Self {
        assert!(k > 0, "a blob needs at least one holder");
        self.replication_factor = k;
        self
    }

    /// Select the placement strategy that ranks candidate holders.
    pub fn placement(mut self, kind: PlacementKind) -> Self {
        self.placement = kind;
        self
    }

    /// Size the lifecycle trace ring (events kept before eviction).
    pub fn trace_capacity(mut self, events: usize) -> Self {
        self.trace_capacity = events;
        self
    }

    /// Set how many shards split the manager's cluster-keyed state.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn shard_count(mut self, n: usize) -> Self {
        assert!(n > 0, "the manager needs at least one shard");
        self.shard_count = n;
        self
    }

    /// Select the transport backend the world dispatches over.
    pub fn transport(mut self, kind: TransportKind) -> Self {
        self.transport = kind;
        self
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests may panic on impossible states
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_shape() {
        let c = SwapConfig::default();
        assert_eq!(c.clusters_per_swap_cluster, 1);
        assert!(c.collect_after_swap_out);
        assert!(c.drop_blob_on_reload);
        // The paper-faithful portable text stays the default wire format.
        assert_eq!(c.wire_format, WireFormatKind::Xml);
        // Single-copy placement is the paper's semantics.
        assert_eq!(c.replication_factor, 1);
        assert_eq!(c.placement, PlacementKind::FirstFit);
        assert_eq!(c.trace_capacity, obiwan_trace::DEFAULT_CAPACITY);
        assert_eq!(c.shard_count, 8);
        // The deterministic simulation stays the default transport.
        assert_eq!(c.transport, TransportKind::Sim);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = SwapConfig::default().shard_count(0);
    }

    #[test]
    #[should_panic(expected = "at least one holder")]
    fn zero_replication_rejected() {
        let _ = SwapConfig::default().replication_factor(0);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_grouping_rejected() {
        let _ = SwapConfig::default().clusters_per_swap_cluster(0);
    }
}
