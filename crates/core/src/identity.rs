//! Object identity across swap-cluster-proxies (paper §4, *Enforcing
//! Object Identity*).
//!
//! An object referenced from two different swap-clusters is represented by
//! two different swap-cluster-proxies, so raw reference comparison would
//! deny their identity. The paper overloads C#'s `==` to compare what the
//! proxies *refer to*; the equivalent here is [`same_object`], which
//! resolves both sides to an [`IdentityKey`] before comparing.

use crate::proxy;
use crate::Result;
use obiwan_heap::{ObjRef, ObjectKind, Oid};
use obiwan_replication::Process;

/// What a reference ultimately denotes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IdentityKey {
    /// A replicated object, identified globally. Valid across swap-outs:
    /// a proxy keeps its target's identity even while the target is
    /// serialized on another device.
    Oid(Oid),
    /// A purely local object (middleware-internal or locally allocated,
    /// identity 0): identified by its handle.
    Handle(ObjRef),
}

/// Resolve a reference to its identity key, looking through
/// swap-cluster-proxies and fault proxies.
///
/// # Errors
///
/// Heap errors for dangling references.
pub fn identity_key(p: &Process, r: ObjRef) -> Result<IdentityKey> {
    let obj = p.heap().get(r)?;
    let oid = match obj.kind() {
        ObjectKind::SwapProxy => proxy::oid_of(p, r)?,
        // Fault proxies and replicas both carry the identity in the header;
        // replacement-objects have identity 0 and fall through to Handle.
        _ => obj.header().oid,
    };
    if oid.0 != 0 {
        Ok(IdentityKey::Oid(oid))
    } else {
        Ok(IdentityKey::Handle(r))
    }
}

/// The paper's overloaded `==`: do two references denote the same object,
/// even when one or both are (distinct) swap-cluster-proxies?
///
/// # Errors
///
/// Heap errors for dangling references.
pub fn same_object(p: &Process, a: ObjRef, b: ObjRef) -> Result<bool> {
    Ok(identity_key(p, a)? == identity_key(p, b)?)
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests may panic on impossible states
mod tests {
    use super::*;
    use crate::proxy::create;
    use obiwan_replication::{standard_classes, ReplConfig, Server};

    fn process() -> (Process, ObjRef) {
        let u = standard_classes();
        let mut server = Server::new(u.clone());
        let head = server.build_list("Node", 2, 4).unwrap();
        let mut p = Process::new(u, server.into_shared(), 1 << 20, ReplConfig::default());
        let root = p.replicate_root(head).unwrap();
        (p, root)
    }

    #[test]
    fn two_proxies_for_one_object_are_identical() {
        let (mut p, node) = process();
        let oid = p.heap().get(node).unwrap().header().oid;
        let p1 = create(&mut p, 1, node, oid).unwrap();
        let p2 = create(&mut p, 2, node, oid).unwrap();
        assert_ne!(p1, p2, "distinct proxy objects");
        assert!(same_object(&p, p1, p2).unwrap());
        assert!(same_object(&p, p1, node).unwrap());
        assert!(same_object(&p, node, node).unwrap());
    }

    #[test]
    fn different_objects_are_not_identical() {
        let (p, root) = process();
        let second = p.field_value(root, "next").unwrap().expect_ref().unwrap();
        assert!(!same_object(&p, root, second).unwrap());
    }

    #[test]
    fn local_objects_compare_by_handle() {
        let (mut p, _root) = process();
        let class = p.universe().registry.class_id("Node").unwrap();
        let a = p.heap_mut().alloc(class, ObjectKind::App).unwrap();
        let b = p.heap_mut().alloc(class, ObjectKind::App).unwrap();
        assert!(same_object(&p, a, a).unwrap());
        assert!(!same_object(&p, a, b).unwrap());
        assert_eq!(identity_key(&p, a).unwrap(), IdentityKey::Handle(a));
    }

    #[test]
    fn fault_proxy_matches_its_future_replica_identity() {
        let u = standard_classes();
        let mut server = Server::new(u.clone());
        let head = server.build_list("Node", 4, 4).unwrap();
        let mut p = Process::new(
            u,
            server.into_shared(),
            1 << 20,
            ReplConfig::with_cluster_size(2),
        );
        let root = p.replicate_root(head).unwrap();
        let second = p.field_value(root, "next").unwrap().expect_ref().unwrap();
        let fp = p.field_value(second, "next").unwrap().expect_ref().unwrap();
        assert_eq!(p.heap().get(fp).unwrap().kind(), ObjectKind::FaultProxy);
        assert_eq!(
            identity_key(&p, fp).unwrap(),
            IdentityKey::Oid(Oid(head.0 + 2))
        );
    }
}
