//! Swap-cluster-proxy accessors.
//!
//! A swap-cluster-proxy is a heap object of the middleware class
//! `__swap_proxy` with four fields: `target` (the mediated replica — or the
//! replacement-object once the target's cluster is swapped out), `oid` (the
//! target's identity, which survives swap-out), `source` (the swap-cluster
//! the reference comes *from*) and `assign` (the iteration-optimization
//! mark). These helpers keep all field-id plumbing in one place.

use crate::Result;
use obiwan_heap::{ObjRef, ObjectKind, Oid, Value};
use obiwan_replication::Process;

/// Read the proxy's current target reference.
///
/// # Errors
///
/// Heap errors; [`crate::SwapError::Codec`] if the target field is null
/// (a proxy must always mediate something).
pub fn target_of(p: &Process, proxy: ObjRef) -> Result<ObjRef> {
    let mw = p.universe().middleware;
    p.heap()
        .field(proxy, mw.sp_target)?
        .expect_ref()
        .map_err(Into::into)
}

/// Read the proxy's target identity.
///
/// # Errors
///
/// Heap errors.
pub fn oid_of(p: &Process, proxy: ObjRef) -> Result<Oid> {
    let mw = p.universe().middleware;
    Ok(Oid(p.heap().field(proxy, mw.sp_oid)?.expect_int()? as u64))
}

/// Read the proxy's source swap-cluster.
///
/// # Errors
///
/// Heap errors.
pub fn source_of(p: &Process, proxy: ObjRef) -> Result<u32> {
    let mw = p.universe().middleware;
    Ok(p.heap().field(proxy, mw.sp_source)?.expect_int()? as u32)
}

/// Read the assign (iteration-optimization) mark.
///
/// # Errors
///
/// Heap errors.
pub fn assign_mark_of(p: &Process, proxy: ObjRef) -> Result<bool> {
    let mw = p.universe().middleware;
    match p.heap().field(proxy, mw.sp_assign)? {
        Value::Bool(b) => Ok(*b),
        Value::Null => Ok(false),
        other => Err(obiwan_heap::HeapError::TypeMismatch {
            expected: "bool",
            found: other.kind_name(),
        }
        .into()),
    }
}

/// Write the assign mark.
///
/// # Errors
///
/// Heap errors.
pub fn set_assign_mark(p: &mut Process, proxy: ObjRef, mark: bool) -> Result<()> {
    let mw = p.universe().middleware;
    p.heap_mut()
        .set_field(proxy, mw.sp_assign, Value::Bool(mark))?;
    Ok(())
}

/// Point the proxy at a (new) target with the given identity. Used when
/// swap-out patches inbound proxies to the replacement-object, when reload
/// patches them back, and by the assign optimization's self-patching.
///
/// # Errors
///
/// Heap errors.
pub fn retarget(p: &mut Process, proxy: ObjRef, target: ObjRef, oid: Oid) -> Result<()> {
    let mw = p.universe().middleware;
    // Payload-free slot writes: this is the iteration optimization's hot
    // path (one retarget per loop step in Test B2).
    p.heap_mut()
        .set_slot_fast(proxy, mw.sp_target.index(), Value::Ref(target))?;
    p.heap_mut()
        .set_slot_fast(proxy, mw.sp_oid.index(), Value::Int(oid.0 as i64))?;
    // Keep the header identity in sync so finalizer records name the right
    // (source, target-oid) table entry.
    p.heap_mut().get_mut(proxy)?.header_mut().oid = oid;
    Ok(())
}

/// Allocate a swap-cluster-proxy mediating `target` (identity `oid`) for
/// references held by `source_sc`.
///
/// # Errors
///
/// Heap errors (notably out-of-memory).
pub fn create(p: &mut Process, source_sc: u32, target: ObjRef, oid: Oid) -> Result<ObjRef> {
    let mw = p.universe().middleware;
    let proxy = p.heap_mut().alloc(mw.swap_proxy, ObjectKind::SwapProxy)?;
    p.heap_mut()
        .set_slot_fast(proxy, mw.sp_target.index(), Value::Ref(target))?;
    p.heap_mut()
        .set_slot_fast(proxy, mw.sp_oid.index(), Value::Int(oid.0 as i64))?;
    p.heap_mut()
        .set_slot_fast(proxy, mw.sp_source.index(), Value::Int(source_sc as i64))?;
    p.heap_mut()
        .set_slot_fast(proxy, mw.sp_assign.index(), Value::Bool(false))?;
    {
        let h = p.heap_mut().get_mut(proxy)?.header_mut();
        h.oid = oid;
        h.swap_cluster = source_sc;
        h.finalize = true; // death must prune the manager's tables
    }
    Ok(proxy)
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests may panic on impossible states
mod tests {
    use super::*;
    use obiwan_replication::{standard_classes, ReplConfig, Server};

    fn process_with_node() -> (Process, ObjRef) {
        let u = standard_classes();
        let mut server = Server::new(u.clone());
        let head = server.build_list("Node", 1, 8).unwrap();
        let mut p = Process::new(u, server.into_shared(), 1 << 20, ReplConfig::default());
        let root = p.replicate_root(head).unwrap();
        (p, root)
    }

    #[test]
    fn create_and_read_back_all_fields() {
        let (mut p, node) = process_with_node();
        let oid = p.heap().get(node).unwrap().header().oid;
        let proxy = create(&mut p, 3, node, oid).unwrap();
        assert_eq!(p.heap().get(proxy).unwrap().kind(), ObjectKind::SwapProxy);
        assert_eq!(target_of(&p, proxy).unwrap(), node);
        assert_eq!(oid_of(&p, proxy).unwrap(), oid);
        assert_eq!(source_of(&p, proxy).unwrap(), 3);
        assert!(!assign_mark_of(&p, proxy).unwrap());
        assert!(p.heap().get(proxy).unwrap().header().finalize);
    }

    #[test]
    fn retarget_updates_target_oid_and_header() {
        let (mut p, node) = process_with_node();
        let oid = p.heap().get(node).unwrap().header().oid;
        let proxy = create(&mut p, 1, node, oid).unwrap();
        let node_class = p.universe().registry.class_id("Node").unwrap();
        let other = p.heap_mut().alloc(node_class, ObjectKind::App).unwrap();
        retarget(&mut p, proxy, other, Oid(42)).unwrap();
        assert_eq!(target_of(&p, proxy).unwrap(), other);
        assert_eq!(oid_of(&p, proxy).unwrap(), Oid(42));
        assert_eq!(p.heap().get(proxy).unwrap().header().oid, Oid(42));
    }

    #[test]
    fn assign_mark_roundtrips() {
        let (mut p, node) = process_with_node();
        let oid = p.heap().get(node).unwrap().header().oid;
        let proxy = create(&mut p, 0, node, oid).unwrap();
        set_assign_mark(&mut p, proxy, true).unwrap();
        assert!(assign_mark_of(&p, proxy).unwrap());
        set_assign_mark(&mut p, proxy, false).unwrap();
        assert!(!assign_mark_of(&p, proxy).unwrap());
    }
}
