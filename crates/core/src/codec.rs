//! The capture/materialize layer: object clusters ⇆ the [`Blob`] IR, plus
//! the paper-faithful XML rendering of that IR.
//!
//! The pipeline is split in two:
//!
//! * [`capture`] walks the heap graph and produces a pure [`Blob`] IR.
//!   Every invariant check lives here — in particular the rule that any
//!   cross-swap-cluster reference must be mediated by a proxy. The reload
//!   path materializes the IR back into the heap (see `reload.rs`).
//! * A [`WireFormat`](crate::wire::WireFormat) turns a [`Blob`] into bytes
//!   and back. This module keeps the XML dialect ([`render_xml`] /
//!   [`decode`]); compact binary and compressed formats live in
//!   [`wire`](crate::wire).
//!
//! The portability argument of the paper rests on the XML artifact: a
//! swapped-out cluster travels as self-describing XML text, so the storing
//! device needs no VM, no middleware, no class files — only the ability to
//! store, return, or drop keyed text. XML therefore stays the default wire
//! format, byte-for-byte as before the split.
//!
//! Wire format (pretty-printed):
//!
//! ```xml
//! <swap-cluster id="2" epoch="0" count="2">
//!   <object oid="42" class="Node" repl="4">
//!     <field i="0" kind="ref" oid="43"/>        <!-- in-cluster reference -->
//!     <field i="1" kind="bytes">00ff41…</field> <!-- payload, hex -->
//!   </object>
//!   <object oid="43" class="Node" repl="4">
//!     <field i="0" kind="proxyref" oid="60"/>   <!-- via an outbound swap-proxy -->
//!     <field i="1" kind="faultref" oid="61"/>   <!-- to a not-yet-replicated object -->
//!   </object>
//! </swap-cluster>
//! ```
//!
//! `ref` points at another member of the same blob; `proxyref` records that
//! the field went through an outbound swap-cluster-proxy (kept alive by the
//! replacement-object, reconnected on reload); `faultref` records a
//! reference to an object that had not been replicated at swap-out time.
//! Null fields are omitted.

use crate::{Result, SwapError};
use bytes::Bytes;
use obiwan_heap::{ObjRef, ObjectKind, Oid, Value};
use obiwan_replication::Process;
use obiwan_xml::{Element, Writer};
use std::collections::BTreeMap;

/// A decoded field of a blob object.
#[derive(Debug, Clone, PartialEq)]
pub enum BlobField {
    /// A non-reference value.
    Scalar(Value),
    /// Reference to another member of the same blob.
    MemberRef(Oid),
    /// Reference that was mediated by an outbound swap-cluster-proxy.
    ProxyRef(Oid),
    /// Reference to a not-yet-replicated identity (was a fault proxy).
    FaultRef(Oid),
}

/// A decoded blob object.
#[derive(Debug, Clone, PartialEq)]
pub struct BlobObject {
    /// Identity.
    pub oid: Oid,
    /// Class name (resolved against the registry at reload).
    pub class: String,
    /// Replication cluster tag the replica carried.
    pub repl_cluster: u32,
    /// Non-null fields as `(layout index, field)`.
    pub fields: Vec<(usize, BlobField)>,
}

/// A decoded blob.
#[derive(Debug, Clone, PartialEq)]
pub struct Blob {
    /// The swap-cluster id.
    pub swap_cluster: u32,
    /// Swap-out epoch the blob was written at.
    pub epoch: u32,
    /// Member objects.
    pub objects: Vec<BlobObject>,
}

/// Capture the members of swap-cluster `sc` as a pure [`Blob`] IR.
///
/// This is the graph→IR half of the old fused encoder: all invariant
/// checks happen here, so every wire format serializes an
/// already-validated blob.
///
/// # Errors
///
/// [`SwapError::Codec`] if a member holds a direct reference to an object
/// outside the cluster that is neither a proxy nor a fault proxy — that
/// would violate the invariant that every cross-swap-cluster reference is
/// mediated.
pub fn capture(p: &Process, sc: u32, epoch: u32, members: &[ObjRef]) -> Result<Blob> {
    let member_oids: BTreeMap<ObjRef, Oid> = members
        .iter()
        .map(|&m| Ok((m, p.heap().get(m)?.header().oid)))
        .collect::<Result<_>>()?;
    let mut objects = Vec::with_capacity(members.len());
    for &m in members {
        let obj = p.heap().get(m)?;
        let class = p.universe().registry.class(obj.class())?.name().to_string();
        let mut fields = Vec::new();
        for (i, v) in obj.fields().iter().enumerate() {
            if let Some(f) = capture_field(p, &member_oids, i, v)? {
                fields.push((i, f));
            }
        }
        objects.push(BlobObject {
            oid: obj.header().oid,
            class,
            repl_cluster: obj.header().repl_cluster,
            fields,
        });
    }
    Ok(Blob {
        swap_cluster: sc,
        epoch,
        objects,
    })
}

fn capture_field(
    p: &Process,
    member_oids: &BTreeMap<ObjRef, Oid>,
    i: usize,
    v: &Value,
) -> Result<Option<BlobField>> {
    match v {
        Value::Null => Ok(None),
        Value::Ref(r) => {
            if let Some(&oid) = member_oids.get(r) {
                return Ok(Some(BlobField::MemberRef(oid)));
            }
            let target = p.heap().get(*r)?;
            match target.kind() {
                ObjectKind::SwapProxy => {
                    Ok(Some(BlobField::ProxyRef(crate::proxy::oid_of(p, *r)?)))
                }
                ObjectKind::FaultProxy => Ok(Some(BlobField::FaultRef(target.header().oid))),
                other => Err(SwapError::codec(format!(
                    "member field {i} holds an unmediated cross-cluster \
                     reference to a {other} object"
                ))),
            }
        }
        scalar => Ok(Some(BlobField::Scalar(scalar.clone()))),
    }
}

/// Serialize the members of swap-cluster `sc` to XML text — the historical
/// fused entry point, now [`capture`] followed by [`render_xml`]. The
/// output is byte-for-byte identical to the pre-split encoder.
///
/// # Errors
///
/// As [`capture`].
pub fn encode(p: &Process, sc: u32, epoch: u32, members: &[ObjRef]) -> Result<String> {
    render_xml(&capture(p, sc, epoch, members)?)
}

/// Render a captured [`Blob`] as the paper's pretty-printed XML dialect.
///
/// # Errors
///
/// XML writer errors, or [`SwapError::Codec`] if the blob contains a null
/// scalar (null fields are represented by omission; a captured blob never
/// holds one).
pub fn render_xml(blob: &Blob) -> Result<String> {
    let mut w = Writer::new();
    w.begin("swap-cluster")?
        .attr("id", blob.swap_cluster.to_string())?
        .attr("epoch", blob.epoch.to_string())?
        .attr("count", blob.objects.len().to_string())?;
    for obj in &blob.objects {
        w.begin("object")?
            .attr("oid", obj.oid.0.to_string())?
            .attr("class", &obj.class)?
            .attr("repl", obj.repl_cluster.to_string())?;
        for (i, f) in &obj.fields {
            render_field(&mut w, *i, f)?;
        }
        w.end()?;
    }
    w.end()?;
    Ok(w.finish()?)
}

fn render_field(w: &mut Writer, i: usize, f: &BlobField) -> Result<()> {
    let render_ref = |w: &mut Writer, kind: &str, oid: Oid| -> Result<()> {
        w.begin("field")?
            .attr("i", i.to_string())?
            .attr("kind", kind)?
            .attr("oid", oid.0.to_string())?;
        w.end()?;
        Ok(())
    };
    match f {
        BlobField::MemberRef(oid) => render_ref(w, "ref", *oid)?,
        BlobField::ProxyRef(oid) => render_ref(w, "proxyref", *oid)?,
        BlobField::FaultRef(oid) => render_ref(w, "faultref", *oid)?,
        BlobField::Scalar(Value::Int(x)) => {
            w.begin("field")?
                .attr("i", i.to_string())?
                .attr("kind", "int")?
                .attr("v", x.to_string())?;
            w.end()?;
        }
        BlobField::Scalar(Value::Double(x)) => {
            w.begin("field")?
                .attr("i", i.to_string())?
                .attr("kind", "double")?
                .attr("v", format!("{x:?}"))?;
            w.end()?;
        }
        BlobField::Scalar(Value::Bool(x)) => {
            w.begin("field")?
                .attr("i", i.to_string())?
                .attr("kind", "bool")?
                .attr("v", x.to_string())?;
            w.end()?;
        }
        BlobField::Scalar(Value::Str(s)) => {
            w.begin("field")?
                .attr("i", i.to_string())?
                .attr("kind", "str")?;
            w.text(s)?;
            w.end()?;
        }
        BlobField::Scalar(Value::Bytes(b)) => {
            w.begin("field")?
                .attr("i", i.to_string())?
                .attr("kind", "bytes")?;
            w.text(&hex_encode(b))?;
            w.end()?;
        }
        BlobField::Scalar(Value::Null | Value::Ref(_)) => {
            return Err(SwapError::codec(format!(
                "field {i}: blob IR holds a raw null/ref scalar — capture \
                 never produces one"
            )));
        }
    }
    Ok(())
}

/// Parse blob text back into its structured form.
///
/// # Errors
///
/// XML errors and [`SwapError::Codec`] for dialect violations (bad kinds,
/// malformed numbers, count mismatch).
pub fn decode(xml: &str) -> Result<Blob> {
    let root = Element::parse(xml)?;
    if root.name() != "swap-cluster" {
        return Err(SwapError::codec(format!(
            "expected <swap-cluster>, found <{}>",
            root.name()
        )));
    }
    let swap_cluster: u32 = root.parse_attr("id")?;
    let epoch: u32 = root.parse_attr("epoch")?;
    let count: usize = root.parse_attr("count")?;
    let objects: Vec<BlobObject> = root
        .children_named("object")
        .map(decode_object)
        .collect::<Result<_>>()?;
    if objects.len() != count {
        return Err(SwapError::codec(format!(
            "blob declares {count} objects but contains {}",
            objects.len()
        )));
    }
    Ok(Blob {
        swap_cluster,
        epoch,
        objects,
    })
}

fn decode_object(el: &Element) -> Result<BlobObject> {
    let oid = Oid(el.parse_attr("oid")?);
    let class = el.require_attr("class")?.to_string();
    let repl_cluster: u32 = el.parse_attr("repl")?;
    let fields = el
        .children_named("field")
        .map(decode_field)
        .collect::<Result<_>>()?;
    Ok(BlobObject {
        oid,
        class,
        repl_cluster,
        fields,
    })
}

fn decode_field(el: &Element) -> Result<(usize, BlobField)> {
    let i: usize = el.parse_attr("i")?;
    let kind = el.require_attr("kind")?;
    let field = match kind {
        "ref" => BlobField::MemberRef(Oid(el.parse_attr("oid")?)),
        "proxyref" => BlobField::ProxyRef(Oid(el.parse_attr("oid")?)),
        "faultref" => BlobField::FaultRef(Oid(el.parse_attr("oid")?)),
        "int" => BlobField::Scalar(Value::Int(el.parse_attr("v")?)),
        "double" => BlobField::Scalar(Value::Double(el.parse_attr("v")?)),
        "bool" => BlobField::Scalar(Value::Bool(el.parse_attr("v")?)),
        "str" => BlobField::Scalar(Value::from(el.text())),
        "bytes" => BlobField::Scalar(Value::Bytes(hex_decode(el.text())?)),
        other => return Err(SwapError::codec(format!("unknown field kind `{other}`"))),
    };
    Ok((i, field))
}

fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

fn hex_decode(text: &str) -> Result<Bytes> {
    let text = text.trim();
    if !text.len().is_multiple_of(2) {
        return Err(SwapError::codec("odd-length hex payload"));
    }
    let mut out = Vec::with_capacity(text.len() / 2);
    for i in (0..text.len()).step_by(2) {
        let byte = u8::from_str_radix(&text[i..i + 2], 16)
            .map_err(|e| SwapError::codec(format!("bad hex payload: {e}")))?;
        out.push(byte);
    }
    Ok(Bytes::from(out))
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests may panic on impossible states
mod tests {
    use super::*;
    use obiwan_replication::{standard_classes, ReplConfig, Server};

    #[test]
    fn hex_roundtrip() {
        let data = Bytes::from((0u8..=255).collect::<Vec<u8>>());
        assert_eq!(hex_decode(&hex_encode(&data)).unwrap(), data);
        assert!(hex_decode("abc").is_err());
        assert!(hex_decode("zz").is_err());
    }

    fn two_member_process() -> (Process, Vec<ObjRef>) {
        let u = standard_classes();
        let mut server = Server::new(u.clone());
        let head = server.build_list("Node", 2, 8).unwrap();
        let mut p = Process::new(
            u,
            server.into_shared(),
            1 << 20,
            ReplConfig::with_cluster_size(2),
        );
        let root = p.replicate_root(head).unwrap();
        let second = p.field_value(root, "next").unwrap().expect_ref().unwrap();
        (p, vec![root, second])
    }

    #[test]
    fn encode_decode_roundtrip_with_member_refs_and_payloads() {
        let (p, members) = two_member_process();
        let xml = encode(&p, 5, 3, &members).unwrap();
        let blob = decode(&xml).unwrap();
        assert_eq!(blob.swap_cluster, 5);
        assert_eq!(blob.epoch, 3);
        assert_eq!(blob.objects.len(), 2);
        assert_eq!(blob.objects[0].class, "Node");
        // First member's `next` is a member ref to the second.
        let (idx, f) = &blob.objects[0].fields[0];
        assert_eq!(*idx, 0);
        assert_eq!(*f, BlobField::MemberRef(blob.objects[1].oid));
        // Payload survives byte-exactly.
        let (_, payload) = blob.objects[0]
            .fields
            .iter()
            .find(|(i, _)| *i == 1)
            .unwrap();
        match payload {
            BlobField::Scalar(Value::Bytes(b)) => assert_eq!(b.len(), 8),
            other => panic!("expected bytes, got {other:?}"),
        }
    }

    #[test]
    fn fault_proxy_fields_encode_as_faultref() {
        let u = standard_classes();
        let mut server = Server::new(u.clone());
        let head = server.build_list("Node", 5, 8).unwrap();
        let mut p = Process::new(
            u,
            server.into_shared(),
            1 << 20,
            ReplConfig::with_cluster_size(2),
        );
        let root = p.replicate_root(head).unwrap();
        let second = p.field_value(root, "next").unwrap().expect_ref().unwrap();
        // second.next is a fault proxy to oid head+2.
        let xml = encode(&p, 1, 0, &[root, second]).unwrap();
        let blob = decode(&xml).unwrap();
        let second_fields = &blob.objects[1].fields;
        assert!(second_fields
            .iter()
            .any(|(_, f)| matches!(f, BlobField::FaultRef(oid) if oid.0 == head.0 + 2)));
    }

    #[test]
    fn unmediated_cross_cluster_ref_is_rejected() {
        let (mut p, members) = two_member_process();
        // Forge a direct reference from member 0 to an object "outside".
        let node_class = p.universe().registry.class_id("Node").unwrap();
        let outsider = p
            .heap_mut()
            .alloc(node_class, obiwan_heap::ObjectKind::App)
            .unwrap();
        p.set_field_value(members[0], "next", Value::Ref(outsider))
            .unwrap();
        let err = encode(&p, 1, 0, &[members[0]]).unwrap_err();
        assert!(matches!(err, SwapError::Codec { .. }));
    }

    #[test]
    fn decode_rejects_count_mismatch_and_bad_kinds() {
        assert!(matches!(
            decode(r#"<swap-cluster id="1" epoch="0" count="2"/>"#),
            Err(SwapError::Codec { .. })
        ));
        assert!(matches!(
            decode(
                r#"<swap-cluster id="1" epoch="0" count="1">
                     <object oid="1" class="Node" repl="0">
                       <field i="0" kind="warp" v="1"/>
                     </object>
                   </swap-cluster>"#
            ),
            Err(SwapError::Codec { .. })
        ));
        assert!(matches!(decode("<blob/>"), Err(SwapError::Codec { .. })));
    }

    #[test]
    fn scalar_kinds_roundtrip() {
        // Build by hand: decode a crafted blob.
        let blob = decode(
            r#"<swap-cluster id="9" epoch="1" count="1">
                 <object oid="7" class="X" repl="2">
                   <field i="0" kind="int" v="-5"/>
                   <field i="1" kind="double" v="2.5"/>
                   <field i="2" kind="bool" v="true"/>
                   <field i="3" kind="str">héllo &amp; co</field>
                   <field i="4" kind="bytes">00ff</field>
                 </object>
               </swap-cluster>"#,
        )
        .unwrap();
        let fields = &blob.objects[0].fields;
        assert_eq!(fields[0].1, BlobField::Scalar(Value::Int(-5)));
        assert_eq!(fields[1].1, BlobField::Scalar(Value::Double(2.5)));
        assert_eq!(fields[2].1, BlobField::Scalar(Value::Bool(true)));
        assert_eq!(fields[3].1, BlobField::Scalar(Value::from("héllo & co")));
        assert_eq!(
            fields[4].1,
            BlobField::Scalar(Value::Bytes(Bytes::from_static(&[0x00, 0xff])))
        );
    }
}
