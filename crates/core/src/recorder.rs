//! The single choke point for lifecycle accounting.
//!
//! Every [`SwapStats`] counter bump and every [`EventKind`] emission goes
//! through the [`Recorder`] — the same method does both, so the counters
//! and the event stream cannot drift apart (the trace-consistency tests
//! fold the stream back into counters and assert exact equality).
//!
//! The recorder is the leaf of the sharded manager's lock hierarchy
//! (coordinator → shard → net → recorder): sequence numbers come from one
//! atomic counter and the counters/sink live behind a private mutex, so
//! any thread may record an event while holding any combination of
//! coordinator, shard, or net guards — or none at all. The recorder never
//! calls back out, so it can introduce no ordering cycle.
//!
//! Stamps are deterministic: the recorder caches the simulated world's
//! churn sequence and virtual clock and re-reads them only at
//! [`Recorder::sync_clock`] call sites — places that already hold the net
//! guard. Commit phases that replay ship/fetch outcomes captured outside
//! the shard guard pass the captured stamp explicitly (the `at` argument
//! of [`Recorder::blob_shipped`] / [`Recorder::failover`]), which updates
//! the cache and emits in one critical section — so single-threaded runs
//! export byte-identical traces whether or not the phases interleave.

use crate::manager::SwapStats;
use obiwan_net::NetFabric;
use obiwan_trace::{EventKind, TraceRecord, TraceSink};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Everything behind the recorder's interior lock.
#[derive(Debug)]
struct RecorderInner {
    stats: SwapStats,
    sink: TraceSink,
    /// Cached [`obiwan_net::SimNet::churn_seq`] from the last clock sync.
    churn: u64,
    /// Cached virtual clock (µs) from the last sync.
    at_us: u64,
    /// Every swap-cluster id ever registered — exported as trace
    /// metadata so the conformance checker can flag unknown clusters
    /// even after empty entries are retired from the live registry.
    known_clusters: BTreeSet<u32>,
}

/// Owns the counters and the event sink; shared by every shard of the
/// `SwappingManager` so the exported trace stays one totally-ordered
/// stream.
#[derive(Debug)]
pub(crate) struct Recorder {
    /// The atomic stamp choke point: every emitted event takes its
    /// sequence number from here, inside the inner critical section, so
    /// sequences in the sink are allocated in emission order.
    seq: AtomicU64,
    inner: Mutex<RecorderInner>,
}

impl Recorder {
    pub(crate) fn new(capacity: usize) -> Self {
        Recorder {
            seq: AtomicU64::new(0),
            inner: Mutex::new(RecorderInner {
                stats: SwapStats::default(),
                sink: TraceSink::with_capacity(capacity),
                churn: 0,
                at_us: 0,
                known_clusters: BTreeSet::from([0]),
            }),
        }
    }

    /// The recorder is diagnostics: a thread that panicked while holding
    /// the inner lock leaves counters at worst one event out of step, so
    /// recording recovers from poison instead of propagating it.
    fn locked(&self) -> MutexGuard<'_, RecorderInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Refresh the cached logical clock from the world. Call while the
    /// net guard is held; events recorded until the next sync carry this
    /// stamp.
    pub(crate) fn sync_clock(&self, net: &NetFabric) {
        let mut inner = self.locked();
        inner.churn = net.churn_seq();
        inner.at_us = net.now().as_micros();
    }

    /// Restore the cached logical clock from a stamp carried out of a
    /// guard-free shipping or fetch phase, so events replayed under the
    /// shard guard keep the stamps they had when the bytes moved.
    pub(crate) fn set_clock(&self, churn: u64, at_us: u64) {
        let mut inner = self.locked();
        inner.churn = churn;
        inner.at_us = at_us;
    }

    pub(crate) fn register_cluster(&self, sc: u32) {
        self.locked().known_clusters.insert(sc);
    }

    pub(crate) fn known_clusters(&self) -> BTreeSet<u32> {
        self.locked().known_clusters.clone()
    }

    /// Copy out the current counters.
    pub(crate) fn stats(&self) -> SwapStats {
        self.locked().stats
    }

    /// One-lock export of the sink: `(capacity, recorded, dropped,
    /// records)`.
    pub(crate) fn export(&self) -> (usize, u64, u64, Vec<TraceRecord>) {
        let inner = self.locked();
        (
            inner.sink.capacity(),
            inner.sink.recorded(),
            inner.sink.dropped(),
            inner.sink.snapshot(),
        )
    }

    fn emit(&self, inner: &mut RecorderInner, kind: EventKind) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let (churn, at_us) = (inner.churn, inner.at_us);
        inner.sink.push_stamped(seq, churn, at_us, kind);
    }

    // --- Paired bumps: one method per lifecycle fact ----------------------

    pub(crate) fn detach_start(&self, sc: u32) {
        let mut inner = self.locked();
        self.emit(&mut inner, EventKind::DetachStart { sc });
    }

    pub(crate) fn detach_end(&self, sc: u32, epoch: u32, bytes: u64, copies: u32) {
        let mut inner = self.locked();
        inner.stats.swap_outs += 1;
        inner.stats.bytes_swapped_out += bytes * u64::from(copies);
        self.emit(
            &mut inner,
            EventKind::DetachEnd {
                sc,
                epoch,
                bytes,
                copies,
            },
        );
    }

    pub(crate) fn detach_abort(&self, sc: u32) {
        let mut inner = self.locked();
        self.emit(&mut inner, EventKind::DetachAbort { sc });
    }

    pub(crate) fn reload_start(&self, sc: u32) {
        let mut inner = self.locked();
        self.emit(&mut inner, EventKind::ReloadStart { sc });
    }

    pub(crate) fn reload_end(&self, sc: u32, epoch: u32, bytes: u64, failovers: u32) {
        let mut inner = self.locked();
        inner.stats.swap_ins += 1;
        inner.stats.bytes_swapped_in += bytes;
        if failovers > 0 {
            inner.stats.reload_failovers += 1;
        }
        self.emit(
            &mut inner,
            EventKind::ReloadEnd {
                sc,
                epoch,
                bytes,
                failovers,
            },
        );
    }

    pub(crate) fn reload_abort(&self, sc: u32) {
        let mut inner = self.locked();
        self.emit(&mut inner, EventKind::ReloadAbort { sc });
    }

    /// `at` is the `(churn, at_us)` stamp captured when the bytes moved
    /// under the net guard; `Some` replays it (updating the cached clock
    /// so the paired `detach_end` stamps consistently), `None` keeps the
    /// cached clock from the last sync.
    pub(crate) fn blob_shipped(
        &self,
        at: Option<(u64, u64)>,
        sc: u32,
        epoch: u32,
        device: u32,
        bytes: u64,
        airtime_us: u64,
    ) {
        let mut inner = self.locked();
        if let Some((churn, at_us)) = at {
            inner.churn = churn;
            inner.at_us = at_us;
        }
        self.emit(
            &mut inner,
            EventKind::BlobShipped {
                sc,
                epoch,
                device,
                bytes,
                airtime_us,
            },
        );
    }

    pub(crate) fn blob_dropped(&self, sc: u32, device: u32, ok: bool) {
        let mut inner = self.locked();
        if ok {
            inner.stats.blobs_dropped += 1;
        } else {
            inner.stats.drop_failures += 1;
        }
        self.emit(&mut inner, EventKind::BlobDropped { sc, device, ok });
    }

    pub(crate) fn cluster_dropped(&self, sc: u32) {
        let mut inner = self.locked();
        self.emit(&mut inner, EventKind::ClusterDropped { sc });
    }

    /// Like [`Recorder::blob_shipped`], `at` replays a stamp captured
    /// during the guard-free fetch phase.
    pub(crate) fn failover(&self, at: Option<(u64, u64)>, sc: u32, epoch: u32, device: u32) {
        let mut inner = self.locked();
        if let Some((churn, at_us)) = at {
            inner.churn = churn;
            inner.at_us = at_us;
        }
        self.emit(&mut inner, EventKind::Failover { sc, epoch, device });
    }

    pub(crate) fn repair_start(&self) {
        let mut inner = self.locked();
        self.emit(&mut inner, EventKind::RepairStart);
    }

    pub(crate) fn repair_end(&self, repaired: u64, bytes: u64) {
        let mut inner = self.locked();
        inner.stats.repairs += repaired;
        inner.stats.repair_bytes += bytes;
        self.emit(&mut inner, EventKind::RepairEnd { repaired, bytes });
    }

    pub(crate) fn proxy_created(&self, sc: u32) {
        let mut inner = self.locked();
        inner.stats.proxies_created += 1;
        self.emit(&mut inner, EventKind::ProxyCreated { sc });
    }

    pub(crate) fn proxy_reused(&self, sc: u32) {
        let mut inner = self.locked();
        inner.stats.proxies_reused += 1;
        self.emit(&mut inner, EventKind::ProxyReused { sc });
    }

    pub(crate) fn proxy_dismantled(&self, sc: u32) {
        let mut inner = self.locked();
        inner.stats.proxies_dismantled += 1;
        self.emit(&mut inner, EventKind::ProxyDismantled { sc });
    }

    pub(crate) fn assign_patch(&self, sc: u32) {
        let mut inner = self.locked();
        inner.stats.assign_patches += 1;
        self.emit(&mut inner, EventKind::AssignPatch { sc });
    }

    pub(crate) fn gc_run(&self, freed: u64, dropped: u64) {
        let mut inner = self.locked();
        self.emit(&mut inner, EventKind::GcRun { freed, dropped });
    }

    pub(crate) fn holder_lost(&self, sc: u32, device: u32, left: u32) {
        let mut inner = self.locked();
        self.emit(&mut inner, EventKind::HolderLost { sc, device, left });
    }

    pub(crate) fn pump_action(&self, action: &str) {
        let kind = EventKind::PumpAction {
            action: action.to_owned(),
        };
        let mut inner = self.locked();
        self.emit(&mut inner, kind);
    }

    /// Boundary crossings are counted but not traced: they fire per
    /// invocation and would drown the lifecycle stream.
    // lint:allow(S6, crossings is the documented counted-but-not-traced exception)
    pub(crate) fn note_crossing(&self) {
        self.locked().stats.crossings += 1;
    }
}
