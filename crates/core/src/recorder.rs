//! The single choke point for lifecycle accounting.
//!
//! Every [`SwapStats`] counter bump and every [`EventKind`] emission goes
//! through the [`Recorder`] — the same method does both, so the counters
//! and the event stream cannot drift apart (the trace-consistency tests
//! fold the stream back into counters and assert exact equality).
//!
//! Stamps are deterministic: the recorder caches the simulated world's
//! churn sequence and virtual clock and re-reads them only at
//! [`Recorder::sync_clock`] call sites — places that already hold the net
//! guard — so recording an event never takes a lock of its own.

use crate::manager::SwapStats;
use obiwan_net::SimNet;
use obiwan_trace::{EventKind, TraceRecord, TraceSink};
use std::collections::BTreeSet;

/// Owns the counters and the event sink; lives inside the
/// `SwappingManager` behind the manager lock.
#[derive(Debug)]
pub(crate) struct Recorder {
    pub(crate) stats: SwapStats,
    sink: TraceSink,
    /// Cached [`SimNet::churn_seq`] from the last clock sync.
    churn: u64,
    /// Cached virtual clock (µs) from the last sync.
    at_us: u64,
    /// Every swap-cluster id ever registered — exported as trace
    /// metadata so the conformance checker can flag unknown clusters
    /// even after empty entries are retired from the live registry.
    known_clusters: BTreeSet<u32>,
}

impl Recorder {
    pub(crate) fn new(capacity: usize) -> Self {
        Recorder {
            stats: SwapStats::default(),
            sink: TraceSink::with_capacity(capacity),
            churn: 0,
            at_us: 0,
            known_clusters: BTreeSet::from([0]),
        }
    }

    /// Refresh the cached logical clock from the world. Call while the
    /// net guard is held; events recorded until the next sync carry this
    /// stamp.
    pub(crate) fn sync_clock(&mut self, net: &SimNet) {
        self.churn = net.churn_seq();
        self.at_us = net.now().as_micros();
    }

    /// Restore the cached logical clock from a stamp carried out of a
    /// guard-free shipping or fetch phase, so events replayed under the
    /// manager guard keep the stamps they had when the bytes moved.
    pub(crate) fn set_clock(&mut self, churn: u64, at_us: u64) {
        self.churn = churn;
        self.at_us = at_us;
    }

    pub(crate) fn register_cluster(&mut self, sc: u32) {
        self.known_clusters.insert(sc);
    }

    pub(crate) fn known_clusters(&self) -> impl Iterator<Item = u32> + '_ {
        self.known_clusters.iter().copied()
    }

    pub(crate) fn sink(&self) -> &TraceSink {
        &self.sink
    }

    pub(crate) fn snapshot(&self) -> Vec<TraceRecord> {
        self.sink.snapshot()
    }

    fn emit(&mut self, kind: EventKind) {
        self.sink.push(self.churn, self.at_us, kind);
    }

    // --- Paired bumps: one method per lifecycle fact ----------------------

    pub(crate) fn detach_start(&mut self, sc: u32) {
        self.emit(EventKind::DetachStart { sc });
    }

    pub(crate) fn detach_end(&mut self, sc: u32, epoch: u32, bytes: u64, copies: u32) {
        self.stats.swap_outs += 1;
        self.stats.bytes_swapped_out += bytes * u64::from(copies);
        self.emit(EventKind::DetachEnd {
            sc,
            epoch,
            bytes,
            copies,
        });
    }

    pub(crate) fn detach_abort(&mut self, sc: u32) {
        self.emit(EventKind::DetachAbort { sc });
    }

    pub(crate) fn reload_start(&mut self, sc: u32) {
        self.emit(EventKind::ReloadStart { sc });
    }

    pub(crate) fn reload_end(&mut self, sc: u32, epoch: u32, bytes: u64, failovers: u32) {
        self.stats.swap_ins += 1;
        self.stats.bytes_swapped_in += bytes;
        if failovers > 0 {
            self.stats.reload_failovers += 1;
        }
        self.emit(EventKind::ReloadEnd {
            sc,
            epoch,
            bytes,
            failovers,
        });
    }

    pub(crate) fn reload_abort(&mut self, sc: u32) {
        self.emit(EventKind::ReloadAbort { sc });
    }

    pub(crate) fn blob_shipped(
        &mut self,
        sc: u32,
        epoch: u32,
        device: u32,
        bytes: u64,
        airtime_us: u64,
    ) {
        self.emit(EventKind::BlobShipped {
            sc,
            epoch,
            device,
            bytes,
            airtime_us,
        });
    }

    pub(crate) fn blob_dropped(&mut self, sc: u32, device: u32, ok: bool) {
        if ok {
            self.stats.blobs_dropped += 1;
        } else {
            self.stats.drop_failures += 1;
        }
        self.emit(EventKind::BlobDropped { sc, device, ok });
    }

    pub(crate) fn cluster_dropped(&mut self, sc: u32) {
        self.emit(EventKind::ClusterDropped { sc });
    }

    pub(crate) fn failover(&mut self, sc: u32, epoch: u32, device: u32) {
        self.emit(EventKind::Failover { sc, epoch, device });
    }

    pub(crate) fn repair_start(&mut self) {
        self.emit(EventKind::RepairStart);
    }

    pub(crate) fn repair_end(&mut self, repaired: u64, bytes: u64) {
        self.stats.repairs += repaired;
        self.stats.repair_bytes += bytes;
        self.emit(EventKind::RepairEnd { repaired, bytes });
    }

    pub(crate) fn proxy_created(&mut self, sc: u32) {
        self.stats.proxies_created += 1;
        self.emit(EventKind::ProxyCreated { sc });
    }

    pub(crate) fn proxy_reused(&mut self, sc: u32) {
        self.stats.proxies_reused += 1;
        self.emit(EventKind::ProxyReused { sc });
    }

    pub(crate) fn proxy_dismantled(&mut self, sc: u32) {
        self.stats.proxies_dismantled += 1;
        self.emit(EventKind::ProxyDismantled { sc });
    }

    pub(crate) fn assign_patch(&mut self, sc: u32) {
        self.stats.assign_patches += 1;
        self.emit(EventKind::AssignPatch { sc });
    }

    pub(crate) fn gc_run(&mut self, freed: u64, dropped: u64) {
        self.emit(EventKind::GcRun { freed, dropped });
    }

    pub(crate) fn holder_lost(&mut self, sc: u32, device: u32, left: u32) {
        self.emit(EventKind::HolderLost { sc, device, left });
    }

    pub(crate) fn pump_action(&mut self, action: &str) {
        self.emit(EventKind::PumpAction {
            action: action.to_owned(),
        });
    }

    /// Boundary crossings are counted but not traced: they fire per
    /// invocation and would drown the lifecycle stream.
    // lint:allow(S6, crossings is the documented counted-but-not-traced exception)
    pub(crate) fn note_crossing(&mut self) {
        self.stats.crossings += 1;
    }
}
