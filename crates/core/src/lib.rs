//! **Object-Swapping for resource-constrained devices** — the paper's
//! contribution (Veiga & Ferreira, ICDCS 2007), layered on the OBIWAN
//! replication middleware.
//!
//! # The mechanism
//!
//! * Replication clusters are grouped into **swap-clusters** — macro-objects
//!   of adaptable size ([`SwapConfig::clusters_per_swap_cluster`]). Global
//!   variables and application code form *swap-cluster-0*.
//! * Every reference crossing a swap-cluster boundary is permanently
//!   mediated by a **swap-cluster-proxy**. The [`SwappingManager`]
//!   implements the paper's interception rules on every reference handed
//!   across a boundary: **(i)** create a proxy for a cross-cluster
//!   reference, **(ii)** reuse the existing proxy for the same
//!   (source-cluster, target) pair, **(iii)** dismantle a proxy whose target
//!   lives in the receiving cluster.
//! * Under memory pressure the manager **swaps out** a victim: it builds a
//!   **replacement-object** holding the victim's outbound proxies, patches
//!   every inbound proxy to target it, captures the members as a [`codec`]
//!   blob, serializes it with the configured [`wire`] format (the paper's
//!   XML text by default) and ships the bytes to a nearby dumb device via
//!   `obiwan-net`. The detached replicas are reclaimed by the local GC.
//! * Invoking through a proxy whose target is a replacement-object
//!   **reloads** the whole swap-cluster and re-patches the inbound proxies.
//! * **GC cooperation**: when a replacement-object is collected, the manager
//!   instructs the storing device to drop the blob ([`Middleware::run_gc`]).
//! * **Durability** (beyond the paper): [`SwapConfig::replication_factor`]
//!   stores each blob on *k* neighbours ranked by a pluggable
//!   [`PlacementPolicy`]; reload fails over between holders, and a repair
//!   sweep (policy action `repair-placements`) re-replicates from a
//!   surviving copy when a holder departs. The default `k = 1` reproduces
//!   the paper's single-copy semantics exactly.
//! * The **iteration optimization** ([`SwappingManager::assign`], paper §4)
//!   marks a swap-cluster-0 proxy so it patches itself instead of minting a
//!   proxy per loop step — Figure 5's Test B2.
//!
//! # Entry point
//!
//! [`Middleware`] wires everything: heap + replication + policy engine +
//! simulated wireless world + the swapping manager.
//!
//! ```
//! use obiwan_core::Middleware;
//! use obiwan_heap::Value;
//! use obiwan_replication::{standard_classes, Server};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut server = Server::new(standard_classes());
//! let head = server.build_list("Node", 200, 64)?;
//!
//! let mut mw = Middleware::builder()
//!     .cluster_size(20)
//!     .device_memory(12 * 1024)     // far too small for 200 × 64-byte nodes
//!     .build(server);
//! let root = mw.replicate_root(head)?;
//!
//! // Walk the list with a swap-cluster-0 cursor (the paper's Test B1
//! // pattern). Clusters behind the cursor are transparently swapped out to
//! // the nearby laptop under memory pressure and reloaded on access.
//! mw.set_global("cursor", Value::Ref(root));
//! let mut len = 1;
//! loop {
//!     let cur = mw.global("cursor")?.expect_ref()?;
//!     match mw.invoke_resilient(cur, "next", vec![], 100)? {
//!         Value::Ref(next) => {
//!             mw.set_global("cursor", Value::Ref(next));
//!             len += 1;
//!         }
//!         _ => break,
//!     }
//! }
//! assert_eq!(len, 200);
//! assert!(mw.swap_stats().swap_outs > 0, "memory pressure caused evictions");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod codec;
mod config;
mod detach;
mod error;
mod gc_bridge;
mod identity;
mod manager;
pub mod materialize;
mod middleware;
mod proxy;
mod recorder;
mod reload;
mod shard;
mod swap_cluster;
mod victim;
pub mod wire;

pub use audit::{AuditReport, Rule, Severity, Violation};
pub use config::SwapConfig;
pub use error::SwapError;
pub use identity::{identity_key, same_object, IdentityKey};
pub use manager::{SharedManager, SwapStats, SwappingManager};
pub use middleware::{Middleware, MiddlewareBuilder, MiddlewareStats, StoreSpec};
pub use obiwan_placement::{
    FirstFit, HolderCandidate, LinkCostAware, Placement, PlacementKind, PlacementPolicy,
    PlacementTable, SpreadByFreeStorage,
};
pub use obiwan_trace::{ConformanceReport, EventKind, Trace, TraceMeta, TraceRecord, TraceSink};
pub use swap_cluster::{SwapClusterEntry, SwapClusterState};
pub use victim::VictimPolicy;
pub use wire::{BinaryFormat, Lz, WireFormat, WireFormatKind, XmlFormat};

/// Convenience result alias used across this crate.
pub type Result<T> = std::result::Result<T, SwapError>;
