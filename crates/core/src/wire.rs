//! Pluggable wire formats: captured [`Blob`] IR ⇆ bytes on the wire.
//!
//! The capture layer ([`codec`](crate::codec)) produces a validated
//! [`Blob`]; a [`WireFormat`] turns it into the bytes a dumb storage
//! device holds. Three formats ship:
//!
//! * [`XmlFormat`] — the paper's self-describing XML text, byte-for-byte
//!   identical to the pre-split encoder. Stays the default: any device
//!   that can store text can audit what it holds.
//! * [`BinaryFormat`] — compact length-prefixed binary: varint oids and
//!   lengths, zigzag ints, raw payload bytes (no hex blowup).
//! * [`Lz<F>`] — LZ-compresses any inner format's encoding.
//!
//! # Self-describing header
//!
//! Binary-framed blobs (`BinaryFormat`, `Lz<_>`) start with a 13-byte
//! header so a reload can pick the right decoder in a mixed-format room
//! and the auditor can check a stored blob without decoding it:
//!
//! ```text
//! offset 0..4   magic  b"OBW1"
//! offset 4      format id (1 = binary; 0x80 | inner for Lz-wrapped)
//! offset 5..9   swap-cluster id, u32 LE
//! offset 9..13  epoch, u32 LE
//! ```
//!
//! XML blobs carry no binary header — they *are* the header (`<swap-cluster
//! id=… epoch=…>`), which is exactly the paper's portability point. XML is
//! recognized by its leading `<` (or leading whitespace); [`decode_blob`]
//! dispatches on that sniff, so stores can hold a mix of formats under the
//! same three-verb protocol.

use crate::codec::{self, Blob, BlobField, BlobObject};
use crate::{Result, SwapError};
use bytes::Bytes;
use obiwan_heap::{Oid, Value};

/// Magic prefix of binary-framed blobs.
pub const MAGIC: [u8; 4] = *b"OBW1";
/// Total size of the binary frame header.
pub const HEADER_LEN: usize = 13;
/// Format id of the paper's XML text (never appears on the wire — XML
/// blobs are headerless text).
pub const XML_FORMAT_ID: u8 = 0;
/// Format id of [`BinaryFormat`].
pub const BINARY_FORMAT_ID: u8 = 1;
/// Flag bit marking an [`Lz`]-wrapped format (`0x80 | inner id`).
pub const LZ_FLAG: u8 = 0x80;

/// A wire format: encode a captured [`Blob`] to bytes and back.
///
/// Implementations must be inverse pairs (`decode(encode(b)) == b`) and
/// reject corrupt or truncated input with [`SwapError::Codec`].
pub trait WireFormat {
    /// Stable one-byte format id (recorded in binary frame headers).
    fn format_id(&self) -> u8;

    /// Human-readable name (`"xml"`, `"binary"`, …) for logs and CLIs.
    fn name(&self) -> &'static str;

    /// Serialize a blob.
    ///
    /// # Errors
    ///
    /// [`SwapError::Codec`] / XML writer errors for unencodable IR.
    fn encode(&self, blob: &Blob) -> Result<Bytes>;

    /// Parse bytes previously produced by [`WireFormat::encode`] on the
    /// same format.
    ///
    /// # Errors
    ///
    /// [`SwapError::Codec`] for corrupt, truncated, or foreign-format
    /// input.
    fn decode(&self, data: &[u8]) -> Result<Blob>;
}

/// Which wire format a middleware writes — the `SwapConfig` knob.
///
/// Decoding always auto-detects ([`decode_blob`]), so mixing formats in
/// one room is safe; this only selects the encoder for new swap-outs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum WireFormatKind {
    /// The paper's self-describing XML text (default).
    #[default]
    Xml,
    /// Compact length-prefixed binary.
    Binary,
    /// LZ-compressed binary.
    LzBinary,
}

impl WireFormatKind {
    /// The format id this kind writes.
    pub fn format_id(self) -> u8 {
        match self {
            WireFormatKind::Xml => XML_FORMAT_ID,
            WireFormatKind::Binary => BINARY_FORMAT_ID,
            WireFormatKind::LzBinary => LZ_FLAG | BINARY_FORMAT_ID,
        }
    }

    /// Stable CLI-friendly name (`xml`, `binary`, `lz-binary`).
    pub fn name(self) -> &'static str {
        match self {
            WireFormatKind::Xml => "xml",
            WireFormatKind::Binary => "binary",
            WireFormatKind::LzBinary => "lz-binary",
        }
    }

    /// All selectable kinds, in id order (benches sweep over this).
    pub const ALL: [WireFormatKind; 3] = [
        WireFormatKind::Xml,
        WireFormatKind::Binary,
        WireFormatKind::LzBinary,
    ];
}

impl std::fmt::Display for WireFormatKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for WireFormatKind {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s {
            "xml" => Ok(WireFormatKind::Xml),
            "binary" => Ok(WireFormatKind::Binary),
            "lz-binary" => Ok(WireFormatKind::LzBinary),
            other => Err(format!(
                "unknown wire format `{other}` (expected xml, binary or lz-binary)"
            )),
        }
    }
}

/// Encode `blob` with the format selected by `kind`.
///
/// # Errors
///
/// As [`WireFormat::encode`].
pub fn encode_blob(kind: WireFormatKind, blob: &Blob) -> Result<Bytes> {
    match kind {
        WireFormatKind::Xml => XmlFormat.encode(blob),
        WireFormatKind::Binary => BinaryFormat.encode(blob),
        WireFormatKind::LzBinary => Lz(BinaryFormat).encode(blob),
    }
}

/// Decode a blob of any known format, dispatching on the self-describing
/// header (binary frame magic) or the XML sniff.
///
/// # Errors
///
/// [`SwapError::Codec`] for unknown formats and any per-format decode
/// error.
pub fn decode_blob(data: &[u8]) -> Result<Blob> {
    if data.starts_with(&MAGIC) {
        let header = peek_frame(data)?;
        match header.format_id {
            BINARY_FORMAT_ID => BinaryFormat.decode(data),
            id if id & LZ_FLAG != 0 => {
                let inner = obiwan_lz::decompress(&data[HEADER_LEN..])
                    .map_err(|e| SwapError::codec(format!("lz body: {e}")))?;
                let blob = decode_blob(&inner)?;
                check_frame_consistency(&header, &blob)?;
                if blob_format_id(&inner) != id & !LZ_FLAG {
                    return Err(SwapError::codec(format!(
                        "lz frame id 0x{id:02x} does not match its inner format"
                    )));
                }
                Ok(blob)
            }
            other => Err(SwapError::codec(format!(
                "unknown blob format id 0x{other:02x}"
            ))),
        }
    } else {
        XmlFormat.decode(data)
    }
}

/// The self-describing blob header: format id, swap-cluster id, epoch.
///
/// Available without decoding the body — for binary frames it is read off
/// the fixed header; for XML the document is parsed (XML *is* its own
/// header).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlobHeader {
    /// Wire format id ([`XML_FORMAT_ID`], [`BINARY_FORMAT_ID`], or
    /// `LZ_FLAG | inner`).
    pub format_id: u8,
    /// Swap-cluster the blob backs.
    pub swap_cluster: u32,
    /// Swap-out epoch the blob was written at.
    pub epoch: u32,
}

/// Read a blob's self-describing header without materializing anything.
///
/// # Errors
///
/// [`SwapError::Codec`] if the bytes are neither a valid binary frame nor
/// well-formed blob XML.
pub fn peek_header(data: &[u8]) -> Result<BlobHeader> {
    if data.starts_with(&MAGIC) {
        let header = peek_frame(data)?;
        let id = header.format_id;
        if id != BINARY_FORMAT_ID && id & LZ_FLAG == 0 {
            return Err(SwapError::codec(format!(
                "unknown blob format id 0x{id:02x}"
            )));
        }
        return Ok(header);
    }
    let blob = XmlFormat.decode(data)?;
    Ok(BlobHeader {
        format_id: XML_FORMAT_ID,
        swap_cluster: blob.swap_cluster,
        epoch: blob.epoch,
    })
}

/// The format id `data` would report, without validating the body (0 for
/// anything headerless, i.e. XML).
fn blob_format_id(data: &[u8]) -> u8 {
    if data.starts_with(&MAGIC) && data.len() > 4 {
        data[4]
    } else {
        XML_FORMAT_ID
    }
}

fn peek_frame(data: &[u8]) -> Result<BlobHeader> {
    if data.len() < HEADER_LEN {
        return Err(SwapError::codec(format!(
            "truncated blob frame: {} bytes, header needs {HEADER_LEN}",
            data.len()
        )));
    }
    let u32le = |off: usize| -> u32 {
        u32::from_le_bytes([data[off], data[off + 1], data[off + 2], data[off + 3]])
    };
    Ok(BlobHeader {
        format_id: data[4],
        swap_cluster: u32le(5),
        epoch: u32le(9),
    })
}

fn frame_header(format_id: u8, blob: &Blob) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + 64);
    out.extend_from_slice(&MAGIC);
    out.push(format_id);
    out.extend_from_slice(&blob.swap_cluster.to_le_bytes());
    out.extend_from_slice(&blob.epoch.to_le_bytes());
    out
}

fn check_frame_consistency(header: &BlobHeader, blob: &Blob) -> Result<()> {
    check_frame_values(header, blob.swap_cluster, blob.epoch)
}

fn check_frame_values(header: &BlobHeader, swap_cluster: u32, epoch: u32) -> Result<()> {
    if header.swap_cluster != swap_cluster || header.epoch != epoch {
        return Err(SwapError::codec(format!(
            "frame header names sc{} e{} but the body decodes to sc{} e{}",
            header.swap_cluster, header.epoch, swap_cluster, epoch
        )));
    }
    Ok(())
}

/// Streaming consumer of a decoding blob.
///
/// The decoder pushes the header, then each object and its fields in wire
/// order; an implementation materializes them however it likes — the
/// [`Blob`] IR for the legacy path, or detached arena objects for the
/// zero-copy reload path ([`crate::materialize::ClusterMaterializer`]).
/// Any error returned from a hook aborts the decode.
pub trait BlobSink {
    /// The frame header and declared object count, before any object.
    ///
    /// # Errors
    ///
    /// Implementation-defined; aborts the decode.
    fn begin(&mut self, header: &BlobHeader, object_count: usize) -> Result<()>;

    /// Start of the next object. Its fields follow before the next
    /// `begin_object`.
    ///
    /// # Errors
    ///
    /// Implementation-defined; aborts the decode.
    fn begin_object(
        &mut self,
        oid: Oid,
        class: &str,
        repl_cluster: u32,
        field_count: usize,
    ) -> Result<()>;

    /// One field of the current object, at layout index `index`.
    ///
    /// # Errors
    ///
    /// Implementation-defined; aborts the decode.
    fn field(&mut self, index: usize, field: BlobField) -> Result<()>;
}

/// [`BlobSink`] that rebuilds the [`Blob`] IR — the legacy decode target,
/// now just one consumer of the streaming parser.
#[derive(Debug)]
struct BlobBuilder {
    blob: Blob,
}

impl BlobBuilder {
    fn new() -> Self {
        BlobBuilder {
            blob: Blob {
                swap_cluster: 0,
                epoch: 0,
                objects: Vec::new(),
            },
        }
    }
}

impl BlobSink for BlobBuilder {
    fn begin(&mut self, header: &BlobHeader, object_count: usize) -> Result<()> {
        self.blob.swap_cluster = header.swap_cluster;
        self.blob.epoch = header.epoch;
        self.blob.objects.reserve(object_count);
        Ok(())
    }

    fn begin_object(
        &mut self,
        oid: Oid,
        class: &str,
        repl_cluster: u32,
        field_count: usize,
    ) -> Result<()> {
        self.blob.objects.push(BlobObject {
            oid,
            class: class.to_owned(),
            repl_cluster,
            fields: Vec::with_capacity(field_count),
        });
        Ok(())
    }

    fn field(&mut self, index: usize, field: BlobField) -> Result<()> {
        let obj = self
            .blob
            .objects
            .last_mut()
            .ok_or_else(|| SwapError::codec("field event before any object"))?;
        obj.fields.push((index, field));
        Ok(())
    }
}

/// Replay an already-decoded [`Blob`] through a sink (the XML formats have
/// no streaming parser — the document is parsed to IR first).
fn replay_blob<S: BlobSink + ?Sized>(format_id: u8, blob: &Blob, sink: &mut S) -> Result<()> {
    let header = BlobHeader {
        format_id,
        swap_cluster: blob.swap_cluster,
        epoch: blob.epoch,
    };
    sink.begin(&header, blob.objects.len())?;
    for bo in &blob.objects {
        sink.begin_object(bo.oid, &bo.class, bo.repl_cluster, bo.fields.len())?;
        for (i, f) in &bo.fields {
            sink.field(*i, f.clone())?;
        }
    }
    Ok(())
}

/// The single streaming parser behind every binary decode. When `backing`
/// is the `Bytes` buffer `data` points into, byte payloads are pushed as
/// zero-copy sub-slices of it; otherwise they are copied out.
fn decode_binary_stream<S: BlobSink + ?Sized>(
    data: &[u8],
    backing: Option<&Bytes>,
    sink: &mut S,
) -> Result<BlobHeader> {
    let header = peek_frame(data)?;
    if !data.starts_with(&MAGIC) || header.format_id != BINARY_FORMAT_ID {
        return Err(SwapError::codec(format!(
            "not a binary blob frame (format id 0x{:02x})",
            blob_format_id(data)
        )));
    }
    let mut r = Reader {
        data,
        pos: HEADER_LEN,
    };
    let count = r.varint().map_err(parse_err)? as usize;
    sink.begin(&header, count)?;
    // Swap-clusters are overwhelmingly runs of one class: remember the last
    // validated class-name bytes so repeat objects skip the UTF-8 check.
    let mut last_class: Option<(&[u8], &str)> = None;
    for _ in 0..count {
        let oid = Oid(r.varint().map_err(parse_err)?);
        let class_len = r.varint().map_err(parse_err)? as usize;
        let raw_class = r.take(class_len).map_err(parse_err)?;
        let class = match last_class {
            Some((raw, name)) if raw == raw_class => name,
            _ => {
                let name = std::str::from_utf8(raw_class)
                    .map_err(|e| parse_err(ParseErr::ClassUtf8(e)))?;
                last_class = Some((raw_class, name));
                name
            }
        };
        let repl_cluster = r.varint_u32("repl cluster").map_err(parse_err)?;
        let field_count = r.varint().map_err(parse_err)? as usize;
        sink.begin_object(oid, class, repl_cluster, field_count)?;
        for _ in 0..field_count {
            let i = r.varint().map_err(parse_err)? as usize;
            let field = decode_binary_field(&mut r, backing).map_err(parse_err)?;
            sink.field(i, field)?;
        }
    }
    if r.pos != data.len() {
        return Err(SwapError::codec(format!(
            "{} trailing bytes after the last object",
            data.len() - r.pos
        )));
    }
    Ok(header)
}

/// Decode a blob of any known format straight into a [`BlobSink`],
/// returning the header the body decoded under. This is the reload hot
/// path: binary frames stream object-by-object with byte payloads sliced
/// zero-copy out of `data`'s backing buffer, LZ frames decompress once and
/// stream from the inflated buffer, and XML replays its parsed IR.
///
/// Error parity with [`decode_blob`] is exact for well-formed input and
/// for the first parse error of corrupt input; a sink may have consumed a
/// prefix of the objects by the time a later error aborts the decode.
///
/// # Errors
///
/// [`SwapError::Codec`] as [`decode_blob`], plus whatever the sink hooks
/// return.
pub fn decode_blob_into<S: BlobSink + ?Sized>(data: &Bytes, sink: &mut S) -> Result<BlobHeader> {
    if data.starts_with(&MAGIC) {
        let header = peek_frame(data)?;
        match header.format_id {
            BINARY_FORMAT_ID => decode_binary_stream(data, Some(data), sink),
            id if id & LZ_FLAG != 0 => {
                let inner = obiwan_lz::decompress(&data[HEADER_LEN..])
                    .map_err(|e| SwapError::codec(format!("lz body: {e}")))?;
                let inner_id = blob_format_id(&inner);
                let inner = Bytes::from(inner);
                let body = decode_blob_into(&inner, sink)?;
                check_frame_values(&header, body.swap_cluster, body.epoch)?;
                if inner_id != id & !LZ_FLAG {
                    return Err(SwapError::codec(format!(
                        "lz frame id 0x{id:02x} does not match its inner format"
                    )));
                }
                Ok(BlobHeader {
                    format_id: id,
                    ..body
                })
            }
            other => Err(SwapError::codec(format!(
                "unknown blob format id 0x{other:02x}"
            ))),
        }
    } else {
        let blob = XmlFormat.decode(data)?;
        replay_blob(XML_FORMAT_ID, &blob, sink)?;
        Ok(BlobHeader {
            format_id: XML_FORMAT_ID,
            swap_cluster: blob.swap_cluster,
            epoch: blob.epoch,
        })
    }
}

/// The paper's XML wire format — self-describing text, no binary header.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct XmlFormat;

impl WireFormat for XmlFormat {
    fn format_id(&self) -> u8 {
        XML_FORMAT_ID
    }

    fn name(&self) -> &'static str {
        "xml"
    }

    fn encode(&self, blob: &Blob) -> Result<Bytes> {
        Ok(Bytes::from(codec::render_xml(blob)?))
    }

    fn decode(&self, data: &[u8]) -> Result<Blob> {
        let text = std::str::from_utf8(data)
            .map_err(|e| SwapError::codec(format!("blob is not UTF-8 XML: {e}")))?;
        codec::decode(text)
    }
}

/// Compact length-prefixed binary wire format.
///
/// Frame: the 13-byte header, then the body — varint object count, and per
/// object: varint oid, varint-length class name, varint repl-cluster,
/// varint field count, then per field a varint layout index and a one-byte
/// kind tag (0 ref / 1 proxyref / 2 faultref with a varint oid; 3 zigzag
/// int; 4 LE double; 5 bool; 6 str and 7 bytes, varint-length-prefixed —
/// payloads travel raw, no hex blowup).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BinaryFormat;

const TAG_MEMBER_REF: u8 = 0;
const TAG_PROXY_REF: u8 = 1;
const TAG_FAULT_REF: u8 = 2;
const TAG_INT: u8 = 3;
const TAG_DOUBLE: u8 = 4;
const TAG_BOOL: u8 = 5;
const TAG_STR: u8 = 6;
const TAG_BYTES: u8 = 7;

impl WireFormat for BinaryFormat {
    fn format_id(&self) -> u8 {
        BINARY_FORMAT_ID
    }

    fn name(&self) -> &'static str {
        "binary"
    }

    fn encode(&self, blob: &Blob) -> Result<Bytes> {
        let mut out = frame_header(BINARY_FORMAT_ID, blob);
        put_varint(&mut out, blob.objects.len() as u64);
        for obj in &blob.objects {
            put_varint(&mut out, obj.oid.0);
            put_varint(&mut out, obj.class.len() as u64);
            out.extend_from_slice(obj.class.as_bytes());
            put_varint(&mut out, u64::from(obj.repl_cluster));
            put_varint(&mut out, obj.fields.len() as u64);
            for (i, f) in &obj.fields {
                put_varint(&mut out, *i as u64);
                encode_binary_field(&mut out, *i, f)?;
            }
        }
        Ok(Bytes::from(out))
    }

    fn decode(&self, data: &[u8]) -> Result<Blob> {
        let mut builder = BlobBuilder::new();
        decode_binary_stream(data, None, &mut builder)?;
        Ok(builder.blob)
    }
}

fn encode_binary_field(out: &mut Vec<u8>, i: usize, f: &BlobField) -> Result<()> {
    match f {
        BlobField::MemberRef(oid) => {
            out.push(TAG_MEMBER_REF);
            put_varint(out, oid.0);
        }
        BlobField::ProxyRef(oid) => {
            out.push(TAG_PROXY_REF);
            put_varint(out, oid.0);
        }
        BlobField::FaultRef(oid) => {
            out.push(TAG_FAULT_REF);
            put_varint(out, oid.0);
        }
        BlobField::Scalar(Value::Int(x)) => {
            out.push(TAG_INT);
            put_varint(out, zigzag(*x));
        }
        BlobField::Scalar(Value::Double(x)) => {
            out.push(TAG_DOUBLE);
            out.extend_from_slice(&x.to_le_bytes());
        }
        BlobField::Scalar(Value::Bool(x)) => {
            out.push(TAG_BOOL);
            out.push(u8::from(*x));
        }
        BlobField::Scalar(Value::Str(s)) => {
            out.push(TAG_STR);
            put_varint(out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
        BlobField::Scalar(Value::Bytes(b)) => {
            out.push(TAG_BYTES);
            put_varint(out, b.len() as u64);
            out.extend_from_slice(b);
        }
        BlobField::Scalar(Value::Null | Value::Ref(_)) => {
            return Err(SwapError::codec(format!(
                "field {i}: blob IR holds a raw null/ref scalar — capture \
                 never produces one"
            )));
        }
    }
    Ok(())
}

#[inline(always)]
fn decode_binary_field(
    r: &mut Reader<'_>,
    backing: Option<&Bytes>,
) -> std::result::Result<BlobField, ParseErr> {
    let tag = r.byte("field tag")?;
    Ok(match tag {
        TAG_MEMBER_REF => BlobField::MemberRef(Oid(r.varint()?)),
        TAG_PROXY_REF => BlobField::ProxyRef(Oid(r.varint()?)),
        TAG_FAULT_REF => BlobField::FaultRef(Oid(r.varint()?)),
        TAG_INT => BlobField::Scalar(Value::Int(unzigzag(r.varint()?))),
        TAG_DOUBLE => {
            let raw = r.take(8)?;
            let mut buf = [0u8; 8];
            buf.copy_from_slice(raw);
            BlobField::Scalar(Value::Double(f64::from_le_bytes(buf)))
        }
        TAG_BOOL => match r.byte("bool value")? {
            0 => BlobField::Scalar(Value::Bool(false)),
            1 => BlobField::Scalar(Value::Bool(true)),
            other => return Err(ParseErr::BadBool(other)),
        },
        TAG_STR => {
            let len = r.varint()? as usize;
            let s = std::str::from_utf8(r.take(len)?).map_err(ParseErr::StrUtf8)?;
            BlobField::Scalar(Value::from(s))
        }
        TAG_BYTES => {
            let len = r.varint()? as usize;
            let start = r.pos;
            let raw = r.take(len)?;
            // With a backing buffer the payload is a zero-copy sub-slice of
            // the fetched bytes; without one (plain `&[u8]` decode) it is
            // copied out as before.
            BlobField::Scalar(Value::Bytes(match backing {
                Some(b) => b.slice(start..start + len),
                None => Bytes::copy_from_slice(raw),
            }))
        }
        other => return Err(ParseErr::UnknownTag(other)),
    })
}

/// Wrap any wire format in LZ compression. The frame header stays
/// uncompressed (so [`peek_header`] works without inflating); the body is
/// the LZ stream of the inner format's full encoding.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Lz<F>(pub F);

impl<F: WireFormat> WireFormat for Lz<F> {
    fn format_id(&self) -> u8 {
        LZ_FLAG | self.0.format_id()
    }

    fn name(&self) -> &'static str {
        "lz"
    }

    fn encode(&self, blob: &Blob) -> Result<Bytes> {
        let inner = self.0.encode(blob)?;
        let mut out = frame_header(self.format_id(), blob);
        out.extend_from_slice(&obiwan_lz::compress(&inner));
        Ok(Bytes::from(out))
    }

    fn decode(&self, data: &[u8]) -> Result<Blob> {
        let header = peek_frame(data)?;
        if !data.starts_with(&MAGIC) || header.format_id != self.format_id() {
            return Err(SwapError::codec(format!(
                "not an lz({}) blob frame (format id 0x{:02x})",
                self.0.name(),
                blob_format_id(data)
            )));
        }
        let inner = obiwan_lz::decompress(&data[HEADER_LEN..])
            .map_err(|e| SwapError::codec(format!("lz body: {e}")))?;
        let blob = self.0.decode(&inner)?;
        check_frame_consistency(&header, &blob)?;
        Ok(blob)
    }
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Thin parser-internal error: [`SwapError`] is 64 bytes, and threading it
/// through every hot `Result` made the reload decode loop shuffle error
/// space it never uses. Each variant carries exactly what the legacy
/// message needs; [`parse_err`] reconstructs the byte-identical
/// [`SwapError`] on the cold path.
#[derive(Debug, Clone, Copy)]
enum ParseErr {
    Missing(&'static str),
    Run { len: usize, rem: usize },
    VarintTooLong,
    U32Overflow { what: &'static str, v: u64 },
    BadBool(u8),
    StrUtf8(std::str::Utf8Error),
    ClassUtf8(std::str::Utf8Error),
    UnknownTag(u8),
}

#[cold]
#[inline(never)]
fn parse_err(e: ParseErr) -> SwapError {
    match e {
        ParseErr::Missing(what) => SwapError::codec(format!("truncated blob: missing {what}")),
        ParseErr::Run { len, rem } => SwapError::codec(format!(
            "truncated blob: {len}-byte run exceeds the remaining {rem}"
        )),
        ParseErr::VarintTooLong => SwapError::codec("varint longer than 64 bits"),
        ParseErr::U32Overflow { what, v } => SwapError::codec(format!("{what} {v} exceeds u32")),
        ParseErr::BadBool(b) => {
            SwapError::codec(format!("bool field holds 0x{b:02x}, expected 0 or 1"))
        }
        ParseErr::StrUtf8(e) => SwapError::codec(format!("str field is not UTF-8: {e}")),
        ParseErr::ClassUtf8(e) => SwapError::codec(format!("class name is not UTF-8: {e}")),
        ParseErr::UnknownTag(t) => SwapError::codec(format!("unknown field tag 0x{t:02x}")),
    }
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    #[inline(always)]
    fn byte(&mut self, what: &'static str) -> std::result::Result<u8, ParseErr> {
        let b = *self.data.get(self.pos).ok_or(ParseErr::Missing(what))?;
        self.pos += 1;
        Ok(b)
    }

    #[inline(always)]
    fn take(&mut self, len: usize) -> std::result::Result<&'a [u8], ParseErr> {
        let end = self
            .pos
            .checked_add(len)
            .filter(|&end| end <= self.data.len())
            .ok_or(ParseErr::Run {
                len,
                rem: self.data.len() - self.pos,
            })?;
        let out = &self.data[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    #[inline(always)]
    fn varint(&mut self) -> std::result::Result<u64, ParseErr> {
        // Fast path for the overwhelmingly common 1- and 2-byte encodings
        // (field indices, tags, cluster-sized oids and lengths).
        if let Some(&a) = self.data.get(self.pos) {
            if a & 0x80 == 0 {
                self.pos += 1;
                return Ok(u64::from(a));
            }
            if let Some(&b) = self.data.get(self.pos + 1) {
                if b & 0x80 == 0 {
                    self.pos += 2;
                    return Ok(u64::from(b) << 7 | u64::from(a & 0x7f));
                }
            }
        }
        self.varint_long()
    }

    /// ≥3-byte and truncated encodings; same wire grammar and errors as
    /// the original single loop.
    fn varint_long(&mut self) -> std::result::Result<u64, ParseErr> {
        let mut v = 0u64;
        for shift in (0..64).step_by(7) {
            let byte = self.byte("varint continuation")?;
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(ParseErr::VarintTooLong)
    }

    #[inline]
    fn varint_u32(&mut self, what: &'static str) -> std::result::Result<u32, ParseErr> {
        let v = self.varint()?;
        u32::try_from(v).map_err(|_| ParseErr::U32Overflow { what, v })
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests may panic on impossible states
mod tests {
    use super::*;

    fn sample_blob() -> Blob {
        Blob {
            swap_cluster: 7,
            epoch: 3,
            objects: vec![
                BlobObject {
                    oid: Oid(42),
                    class: "Node".into(),
                    repl_cluster: 4,
                    fields: vec![
                        (0, BlobField::MemberRef(Oid(43))),
                        (
                            1,
                            BlobField::Scalar(Value::Bytes(Bytes::from_static(&[0, 255, 65]))),
                        ),
                        (2, BlobField::Scalar(Value::Int(-5))),
                        (3, BlobField::Scalar(Value::Double(2.5))),
                    ],
                },
                BlobObject {
                    oid: Oid(43),
                    class: "Node".into(),
                    repl_cluster: 4,
                    fields: vec![
                        (0, BlobField::ProxyRef(Oid(60))),
                        (1, BlobField::FaultRef(Oid(61))),
                        (2, BlobField::Scalar(Value::Bool(true))),
                        (3, BlobField::Scalar(Value::from("héllo & co"))),
                    ],
                },
            ],
        }
    }

    #[test]
    fn every_format_roundtrips_the_sample() {
        let blob = sample_blob();
        for (data, id) in [
            (XmlFormat.encode(&blob).unwrap(), XML_FORMAT_ID),
            (BinaryFormat.encode(&blob).unwrap(), BINARY_FORMAT_ID),
            (
                Lz(BinaryFormat).encode(&blob).unwrap(),
                LZ_FLAG | BINARY_FORMAT_ID,
            ),
            (Lz(XmlFormat).encode(&blob).unwrap(), LZ_FLAG),
        ] {
            assert_eq!(decode_blob(&data).unwrap(), blob, "format 0x{id:02x}");
            let header = peek_header(&data).unwrap();
            assert_eq!(header.format_id, id);
            assert_eq!(header.swap_cluster, 7);
            assert_eq!(header.epoch, 3);
        }
    }

    #[test]
    fn binary_is_smaller_than_xml() {
        let blob = sample_blob();
        let xml = XmlFormat.encode(&blob).unwrap();
        let bin = BinaryFormat.encode(&blob).unwrap();
        assert!(bin.len() < xml.len(), "{} vs {}", bin.len(), xml.len());
    }

    #[test]
    fn formats_reject_foreign_frames() {
        let blob = sample_blob();
        let bin = BinaryFormat.encode(&blob).unwrap();
        let lz = Lz(BinaryFormat).encode(&blob).unwrap();
        assert!(BinaryFormat.decode(&lz).is_err());
        assert!(Lz(BinaryFormat).decode(&bin).is_err());
        assert!(Lz(XmlFormat).decode(&lz).is_err());
        assert!(XmlFormat.decode(&bin).is_err());
    }

    #[test]
    fn truncated_and_corrupt_frames_are_rejected() {
        let blob = sample_blob();
        for data in [
            BinaryFormat.encode(&blob).unwrap(),
            Lz(BinaryFormat).encode(&blob).unwrap(),
        ] {
            for cut in [1, 4, HEADER_LEN - 1, HEADER_LEN + 2, data.len() - 1] {
                assert!(
                    decode_blob(&data[..cut]).is_err(),
                    "cut at {cut} of {}",
                    data.len()
                );
            }
        }
        // Unknown format id.
        let mut bad = BinaryFormat.encode(&blob).unwrap().to_vec();
        bad[4] = 0x7e;
        assert!(decode_blob(&bad).is_err());
        assert!(peek_header(&bad).is_err());
        // Trailing garbage after a valid binary body.
        let mut long = BinaryFormat.encode(&blob).unwrap().to_vec();
        long.push(0);
        assert!(decode_blob(&long).is_err());
        // Garbage that is neither a frame nor XML.
        assert!(decode_blob(b"not a blob").is_err());
        assert!(peek_header(b"not a blob").is_err());
    }

    #[test]
    fn zigzag_is_an_involution_at_the_edges() {
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -123456789] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn kind_parses_and_prints() {
        for kind in WireFormatKind::ALL {
            assert_eq!(kind.name().parse::<WireFormatKind>().unwrap(), kind);
        }
        assert!("gzip".parse::<WireFormatKind>().is_err());
        assert_eq!(WireFormatKind::default(), WireFormatKind::Xml);
    }

    #[test]
    fn encode_blob_matches_the_kind_table() {
        let blob = sample_blob();
        assert_eq!(
            encode_blob(WireFormatKind::Xml, &blob).unwrap(),
            XmlFormat.encode(&blob).unwrap()
        );
        assert_eq!(
            encode_blob(WireFormatKind::Binary, &blob).unwrap(),
            BinaryFormat.encode(&blob).unwrap()
        );
        assert_eq!(
            encode_blob(WireFormatKind::LzBinary, &blob).unwrap(),
            Lz(BinaryFormat).encode(&blob).unwrap()
        );
    }
}
