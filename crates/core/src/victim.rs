//! Victim selection: which swap-cluster to evict under pressure.

use crate::swap_cluster::{SwapClusterEntry, SwapClusterState};

/// Policy deciding which loaded swap-cluster is detached when memory must
/// be freed. The manager's boundary-crossing statistics ("basic data w.r.t.
/// recency and frequency, as these boundaries are transversed by the
/// application", paper §3) feed the recency/frequency policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VictimPolicy {
    /// Evict the cluster whose boundary was crossed longest ago.
    #[default]
    LeastRecentlyUsed,
    /// Evict the cluster with the fewest boundary crossings.
    LeastFrequentlyUsed,
    /// Evict the cluster occupying the most bytes (frees the most memory
    /// per swap).
    LargestFirst,
    /// Evict clusters cyclically by id (baseline for the ablation).
    RoundRobin,
}

impl VictimPolicy {
    /// Pick a victim among `candidates` (id, entry) pairs; all candidates
    /// must be in the `Loaded` state. `cursor` is the round-robin memory
    /// (last evicted id). Returns the chosen id.
    pub fn choose<'a>(
        self,
        candidates: impl Iterator<Item = (u32, &'a SwapClusterEntry)>,
        cursor: u32,
    ) -> Option<u32> {
        let loaded: Vec<(u32, &SwapClusterEntry)> = candidates
            .filter(|(_, e)| matches!(e.state, SwapClusterState::Loaded))
            .collect();
        if loaded.is_empty() {
            return None;
        }
        match self {
            VictimPolicy::LeastRecentlyUsed => loaded
                .iter()
                .min_by_key(|(id, e)| (e.last_crossing, *id))
                .map(|(id, _)| *id),
            VictimPolicy::LeastFrequentlyUsed => loaded
                .iter()
                .min_by_key(|(id, e)| (e.crossings, *id))
                .map(|(id, _)| *id),
            VictimPolicy::LargestFirst => loaded
                .iter()
                .max_by_key(|(id, e)| (e.bytes, u32::MAX - *id))
                .map(|(id, _)| *id),
            VictimPolicy::RoundRobin => {
                // The smallest id strictly greater than the cursor, wrapping.
                let mut ids: Vec<u32> = loaded.iter().map(|(id, _)| *id).collect();
                ids.sort_unstable();
                ids.iter()
                    .find(|&&id| id > cursor)
                    .or_else(|| ids.first())
                    .copied()
            }
        }
    }

    /// Name used in reports and the policy dialect.
    pub fn name(self) -> &'static str {
        match self {
            VictimPolicy::LeastRecentlyUsed => "lru",
            VictimPolicy::LeastFrequentlyUsed => "lfu",
            VictimPolicy::LargestFirst => "largest",
            VictimPolicy::RoundRobin => "round-robin",
        }
    }
}

impl std::fmt::Display for VictimPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests may panic on impossible states
mod tests {
    use super::*;

    fn entry(bytes: usize, crossings: u64, last: u64) -> SwapClusterEntry {
        let mut e = SwapClusterEntry::new();
        e.bytes = bytes;
        e.crossings = crossings;
        e.last_crossing = last;
        e
    }

    fn candidates() -> Vec<(u32, SwapClusterEntry)> {
        vec![
            (1, entry(100, 10, 5)),
            (2, entry(300, 2, 9)),
            (3, entry(200, 7, 1)),
        ]
    }

    #[test]
    fn lru_picks_stalest() {
        let c = candidates();
        let pick = VictimPolicy::LeastRecentlyUsed.choose(c.iter().map(|(i, e)| (*i, e)), 0);
        assert_eq!(pick, Some(3));
    }

    #[test]
    fn lfu_picks_least_crossed() {
        let c = candidates();
        let pick = VictimPolicy::LeastFrequentlyUsed.choose(c.iter().map(|(i, e)| (*i, e)), 0);
        assert_eq!(pick, Some(2));
    }

    #[test]
    fn largest_picks_biggest() {
        let c = candidates();
        let pick = VictimPolicy::LargestFirst.choose(c.iter().map(|(i, e)| (*i, e)), 0);
        assert_eq!(pick, Some(2));
    }

    #[test]
    fn round_robin_cycles() {
        let c = candidates();
        let iter = || c.iter().map(|(i, e)| (*i, e));
        assert_eq!(VictimPolicy::RoundRobin.choose(iter(), 0), Some(1));
        assert_eq!(VictimPolicy::RoundRobin.choose(iter(), 1), Some(2));
        assert_eq!(VictimPolicy::RoundRobin.choose(iter(), 3), Some(1));
    }

    #[test]
    fn swapped_out_clusters_are_not_candidates() {
        let mut c = candidates();
        for (_, e) in c.iter_mut() {
            e.state = SwapClusterState::Dropped;
        }
        assert_eq!(
            VictimPolicy::LeastRecentlyUsed.choose(c.iter().map(|(i, e)| (*i, e)), 0),
            None
        );
    }

    #[test]
    fn ties_break_deterministically() {
        let c = [(4, entry(10, 1, 1)), (2, entry(10, 1, 1))];
        let pick = VictimPolicy::LeastRecentlyUsed.choose(c.iter().map(|(i, e)| (*i, e)), 0);
        assert_eq!(pick, Some(2), "lowest id wins ties");
    }
}
