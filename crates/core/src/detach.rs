//! Swap-out: detach a swap-cluster from the application graph and ship it
//! to a nearby device (paper §3, *Swap-Cluster Swapping-Out*).

use crate::manager::lock_net;
use crate::swap_cluster::SwapClusterState;
use crate::{codec, proxy, wire, Result, SwapError, SwappingManager};
use obiwan_heap::{ObjRef, ObjectKind, Value};
use obiwan_net::{Bytes, DeviceId, NetError};
use obiwan_policy::PolicyEvent;
use obiwan_replication::Process;

impl SwappingManager {
    /// Swap out swap-cluster `sc`:
    ///
    /// 1. capture its members as a blob, serialize it with the configured
    ///    wire format ([`crate::SwapConfig::wire_format`]; the paper's XML
    ///    text by default) and store the bytes on a nearby device (trying
    ///    candidates in preference order);
    /// 2. create a **replacement-object** filled with references to the
    ///    cluster's outbound swap-cluster-proxies (keeping downstream
    ///    clusters reachable);
    /// 3. patch every **inbound** swap-cluster-proxy to target the
    ///    replacement-object;
    /// 4. detach the members (they become garbage) and optionally run the
    ///    local collector to realize the memory release.
    ///
    /// Returns the number of payload bytes shipped.
    ///
    /// # Errors
    ///
    /// [`SwapError::UnknownSwapCluster`], [`SwapError::BadState`] unless the
    /// cluster is loaded, [`SwapError::NothingToSwap`] when every member has
    /// already been collected (the entry is retired as a side effect),
    /// [`SwapError::NoStorageDevice`] when no neighbour accepts the blob,
    /// plus codec/heap errors. The graph is only mutated after the blob has
    /// been stored successfully.
    pub fn swap_out(&mut self, p: &mut Process, sc: u32) -> Result<usize> {
        let epoch = {
            let entry = self
                .clusters
                .get_mut(&sc)
                .ok_or(SwapError::UnknownSwapCluster { swap_cluster: sc })?;
            if !entry.is_loaded() {
                return Err(SwapError::BadState {
                    swap_cluster: sc,
                    expected: "loaded",
                    actual: entry.state.name(),
                });
            }
            // Refresh membership: drop members that died since replication.
            entry.members.retain(|(_, r)| {
                p.heap()
                    .get(*r)
                    .map(|o| o.header().swap_cluster == sc && o.kind() == ObjectKind::App)
                    .unwrap_or(false)
            });
            if entry.members.is_empty() {
                // Nothing left to swap; retire the entry and report it so
                // the victim picker can move on instead of counting an
                // empty "success".
                self.clusters.remove(&sc);
                return Err(SwapError::NothingToSwap { swap_cluster: sc });
            }
            entry.epoch
        };
        // Validation passed: the detach is in flight from here on, and any
        // failure below reverts the cluster to loaded — mirror exactly that
        // in the trace so the conformance replay sees start/abort/end pair
        // up.
        self.recorder.detach_start(sc);
        match self.swap_out_body(p, sc, epoch) {
            Ok(bytes) => Ok(bytes),
            Err(e) => {
                self.recorder.detach_abort(sc);
                Err(e)
            }
        }
    }

    /// Everything past swap-out validation; an error here aborts the
    /// in-flight detach (the cluster stays loaded).
    fn swap_out_body(&mut self, p: &mut Process, sc: u32, epoch: u32) -> Result<usize> {
        let members: Vec<ObjRef> = self.clusters[&sc].members.iter().map(|&(_, r)| r).collect();

        // Opportunistically clean up blobs orphaned by earlier failures.
        if !self.orphaned_blobs.is_empty() {
            self.sweep_orphaned_blobs();
        }

        // Capture + serialize before any graph mutation.
        let blob = codec::capture(p, sc, epoch, &members)?;
        let data = wire::encode_blob(self.config.wire_format, &blob)?;
        let blob_bytes = data.len();
        // Keys carry the swapping device's id: several PDAs may share one
        // storing neighbour ("available to any user"), and their cluster
        // ids are device-local.
        let key = format!("dev{}-sc{sc}-e{epoch}", self.home.index());
        let holders = self.place_blob(sc, epoch, &key, data)?;
        let device = *holders.first().ok_or(SwapError::NoStorageDevice {
            swap_cluster: sc,
            tried: 0,
        })?;
        let copies = holders.len();
        self.placements.record(sc, epoch, key.clone(), holders);
        // The blob is out: consume this epoch now so a failure in the graph
        // surgery below cannot lead a retry into a duplicate key; the
        // already-stored blobs become orphans to sweep.
        self.clusters
            .get_mut(&sc)
            .ok_or(SwapError::UnknownSwapCluster { swap_cluster: sc })?
            .epoch += 1;
        let surgery = self.detach_graph(p, sc, device, &key);
        if let Err(e) = surgery {
            if let Some((_, placement)) = self.placements.remove(sc) {
                for holder in placement.holders {
                    self.orphaned_blobs.push((holder, key.clone()));
                }
            }
            return Err(e);
        }

        self.recorder
            .detach_end(sc, epoch, blob_bytes as u64, copies as u32);
        self.events.push(PolicyEvent::SwappedOut {
            swap_cluster: sc as i64,
            bytes: blob_bytes as i64,
        });

        if self.config.collect_after_swap_out {
            p.collect();
        }
        Ok(blob_bytes)
    }

    /// The graph surgery of swap-out: build the replacement-object, patch
    /// the inbound proxies, detach the members.
    fn detach_graph(
        &mut self,
        p: &mut Process,
        sc: u32,
        device: DeviceId,
        key: &str,
    ) -> Result<()> {
        // Collect the cluster's live outbound proxies for the replacement.
        let outbound: Vec<ObjRef> = {
            let weaks = self.outbound.get(&sc).cloned().unwrap_or_default();
            let mut seen = std::collections::HashSet::new();
            weaks
                .iter()
                .filter_map(|&w| p.heap().weak_get(w))
                .filter(|r| seen.insert(*r))
                .collect()
        };

        // Build the replacement-object ("simply an array of references").
        let mw = p.universe().middleware;
        let replacement = p
            .heap_mut()
            .alloc(mw.replacement, ObjectKind::Replacement)?;
        {
            let h = p.heap_mut().get_mut(replacement)?.header_mut();
            h.swap_cluster = sc;
            h.finalize = true; // death ⇒ instruct device to drop the blob
        }
        for op in outbound {
            p.heap_mut().push_extra(replacement, Value::Ref(op))?;
        }

        // Patch inbound proxies: "every swap-cluster referencing objects
        // contained in [the victim] will be made to reference [the
        // replacement-object] instead".
        let inbound = self.inbound.get(&sc).cloned().unwrap_or_default();
        let mw_sp_target = mw.sp_target;
        for w in inbound {
            let Some(pr) = p.heap().weak_get(w) else {
                continue;
            };
            let Ok(target) = proxy::target_of(p, pr) else {
                continue;
            };
            let points_into_sc = p
                .heap()
                .get(target)
                .map(|o| o.header().swap_cluster == sc && o.kind() == ObjectKind::App)
                .unwrap_or(false);
            if points_into_sc {
                p.heap_mut()
                    .set_field(pr, mw_sp_target, Value::Ref(replacement))?;
            }
        }

        // Detach: forget the replicas so the graph no longer reaches them
        // and future replication wires new references through the
        // replacement-object.
        let member_oids: Vec<(obiwan_heap::Oid, ObjRef)> = self.clusters[&sc].members.clone();
        for (oid, _) in &member_oids {
            p.forget_replica(*oid);
            p.note_swapped(*oid, replacement);
        }

        let entry = self
            .clusters
            .get_mut(&sc)
            .ok_or(SwapError::UnknownSwapCluster { swap_cluster: sc })?;
        entry.state = SwapClusterState::SwappedOut {
            device,
            key: key.to_string(),
            replacement,
        };
        Ok(())
    }

    /// Pick a victim by policy and swap it out. Returns the victim id, or
    /// `None` when nothing is evictable. Victims that turn out to be empty
    /// ([`SwapError::NothingToSwap`]) are retired and skipped.
    ///
    /// # Errors
    ///
    /// Propagates [`SwappingManager::swap_out`] failures.
    pub fn swap_out_victim(&mut self, p: &mut Process) -> Result<Option<u32>> {
        // The loop terminates: each `NothingToSwap` removes the picked
        // cluster from the registry, so the candidate set shrinks.
        while let Some(sc) = self.pick_victim() {
            match self.swap_out(p, sc) {
                Ok(_) => return Ok(Some(sc)),
                Err(SwapError::NothingToSwap { .. }) => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(None)
    }

    /// Store `data` under `key` on up to [`crate::SwapConfig::replication_factor`]
    /// nearby devices, trying candidates in the order the configured
    /// placement policy ranks them (first-fit reproduces the paper's
    /// preferred-kind / fewest-hops / most-free order). Returns the holders
    /// that accepted a copy, primary first.
    ///
    /// One stored copy is enough to proceed — an under-replicated placement
    /// is flagged by the auditor (rule D7) and topped up by the repair
    /// sweep once more devices appear. Zero copies is
    /// [`SwapError::NoStorageDevice`]. A hard error after partial stores
    /// turns the stored copies into tracked orphans before propagating.
    fn place_blob(&mut self, sc: u32, epoch: u32, key: &str, data: Bytes) -> Result<Vec<DeviceId>> {
        let want = self.config.replication_factor;
        let mut net = lock_net(&self.net)?;
        self.recorder.sync_clock(&net);
        let candidates = self.holder_candidates(&net, key, data.len(), &[]);
        let tried = candidates.len();
        let mut holders: Vec<DeviceId> = Vec::new();
        for c in candidates {
            if holders.len() >= want {
                break;
            }
            // `data` is refcounted — cloning per attempt is a pointer bump,
            // not a deep copy of the blob.
            let sent = if self.config.allow_relays {
                net.send_blob_routed(self.home, c.device, key, data.clone())
                    .map(|(_, cost)| cost)
            } else {
                net.send_blob(self.home, c.device, key, data.clone())
            };
            match sent {
                Ok(cost) => {
                    self.recorder.sync_clock(&net);
                    self.recorder.blob_shipped(
                        sc,
                        epoch,
                        c.device.index(),
                        data.len() as u64,
                        cost.as_micros(),
                    );
                    holders.push(c.device);
                }
                Err(NetError::QuotaExceeded { .. })
                | Err(NetError::InjectedFailure { .. })
                | Err(NetError::NotConnected { .. })
                | Err(NetError::Departed { .. }) => continue,
                Err(e) => {
                    drop(net);
                    for holder in holders {
                        self.orphaned_blobs.push((holder, key.to_string()));
                    }
                    return Err(e.into());
                }
            }
        }
        if holders.is_empty() {
            return Err(SwapError::NoStorageDevice {
                swap_cluster: sc,
                tried,
            });
        }
        Ok(holders)
    }
}
