//! Swap-out: detach a swap-cluster from the application graph and ship it
//! to a nearby device (paper §3, *Swap-Cluster Swapping-Out*).
//!
//! The operation is split into three phases so the bytes move without any
//! shard guard held — the sharded engine's concurrency story:
//!
//! 1. [`SwappingManager::detach_prepare`] — under the owning shard's lock:
//!    validation, the `detach_start` trace event, blob capture/encoding
//!    and holder-candidate ranking;
//! 2. [`ship_copies`] — a free function that takes only the net lock and
//!    transmits the blob, carrying per-send clock stamps out in its
//!    [`ShipOutcome`];
//! 3. [`SwappingManager::detach_commit`] — coordinator + shard locks:
//!    replays the shipped events into the recorder (byte-identical
//!    stamps), revalidates that no concurrent operation raced the cluster
//!    while the bytes moved, records the placement, performs the graph
//!    surgery and closes the trace pair with `detach_end`/`detach_abort`.
//!
//! [`SwappingManager::swap_out`] composes the three. Lock order per the
//! documented hierarchy: prepare takes shard → net, ship takes net alone,
//! commit takes coordinator → shard.

use crate::manager::{holder_candidates, lock_net, sweep_shard_orphans, SharedNet};
use crate::shard::{lock_coordinator, lock_shard, Coordinator, Shard};
use crate::swap_cluster::SwapClusterState;
use crate::{codec, proxy, wire, Result, SwapConfig, SwapError, SwappingManager};
use obiwan_heap::{ObjRef, ObjectKind, Value};
use obiwan_net::{Bytes, DeviceId, DeviceKind, NetError};
use obiwan_policy::PolicyEvent;
use obiwan_replication::Process;

/// A detach prepared under the shard guard: everything the shipping phase
/// needs to move the blob without touching manager state. Once one of
/// these exists the detach is in flight (`detach_start` is in the trace)
/// and it must be handed to [`SwappingManager::detach_commit`], which
/// closes the pair either way.
pub(crate) struct DetachPrep {
    /// The swap-cluster being detached.
    pub(crate) sc: u32,
    /// The epoch the blob on the wire carries.
    epoch: u32,
    /// Storage key (`dev{home}-sc{sc}-e{epoch}`).
    key: String,
    /// The encoded blob (refcounted — clones are pointer bumps).
    data: Bytes,
    /// Copies wanted ([`crate::SwapConfig::replication_factor`]).
    want: usize,
    /// Whether multi-hop routes may carry the blob.
    allow_relays: bool,
    /// The swapping device.
    home: DeviceId,
    /// Candidate holders in placement-policy rank order.
    candidates: Vec<DeviceId>,
}

/// One successful transmission, with the logical clock captured while the
/// net guard was held so the commit phase can replay the `blob_shipped`
/// event with the stamp it would have had inline.
struct ShipRecord {
    /// The device that accepted the copy.
    device: DeviceId,
    /// Airtime the send cost, in µs.
    cost_us: u64,
    /// [`obiwan_net::SimNet::churn_seq`] right after the send.
    churn: u64,
    /// Virtual clock (µs) right after the send.
    at_us: u64,
}

/// What the shipping phase produced. Infallible by construction: lock
/// poisoning and hard network errors are carried in `hard_error` so the
/// commit phase always runs and the `detach_start` pair is always closed.
pub(crate) struct ShipOutcome {
    /// Successful sends, in transmission order.
    records: Vec<ShipRecord>,
    /// A non-retriable failure that stopped the send loop, if any.
    hard_error: Option<SwapError>,
}

/// Phase 2 of swap-out: transmit the prepared blob to up to `want`
/// candidate holders, holding only the net lock. Per-device refusals
/// (quota, departure, injected faults) skip to the next candidate; a hard
/// error stops the loop and rides out in the outcome.
pub(crate) fn ship_copies(net: &SharedNet, prep: &DetachPrep) -> ShipOutcome {
    let mut out = ShipOutcome {
        records: Vec::new(),
        hard_error: None,
    };
    let mut net = match lock_net(net) {
        Ok(guard) => guard,
        Err(e) => {
            out.hard_error = Some(e);
            return out;
        }
    };
    for &device in &prep.candidates {
        if out.records.len() >= prep.want {
            break;
        }
        // `data` is refcounted — cloning per attempt is a pointer bump,
        // not a deep copy of the blob.
        let sent = if prep.allow_relays {
            net.send_blob_routed(prep.home, device, &prep.key, prep.data.clone())
                .map(|(_, cost)| cost)
        } else {
            net.send_blob(prep.home, device, &prep.key, prep.data.clone())
        };
        match sent {
            Ok(cost) => out.records.push(ShipRecord {
                device,
                cost_us: cost.as_micros(),
                churn: net.churn_seq(),
                at_us: net.now().as_micros(),
            }),
            Err(NetError::QuotaExceeded { .. })
            | Err(NetError::InjectedFailure { .. })
            | Err(NetError::NotConnected { .. })
            | Err(NetError::Departed { .. }) => continue,
            Err(e) => {
                out.hard_error = Some(e.into());
                break;
            }
        }
    }
    out
}

impl SwappingManager {
    /// Swap out swap-cluster `sc`:
    ///
    /// 1. capture its members as a blob, serialize it with the configured
    ///    wire format ([`crate::SwapConfig::wire_format`]; the paper's XML
    ///    text by default) and store the bytes on a nearby device (trying
    ///    candidates in preference order);
    /// 2. create a **replacement-object** filled with references to the
    ///    cluster's outbound swap-cluster-proxies (keeping downstream
    ///    clusters reachable);
    /// 3. patch every **inbound** swap-cluster-proxy to target the
    ///    replacement-object;
    /// 4. detach the members (they become garbage) and optionally run the
    ///    local collector to realize the memory release.
    ///
    /// Returns the number of payload bytes shipped.
    ///
    /// # Errors
    ///
    /// [`SwapError::UnknownSwapCluster`], [`SwapError::BadState`] unless the
    /// cluster is loaded, [`SwapError::NothingToSwap`] when every member has
    /// already been collected (the entry is retired as a side effect),
    /// [`SwapError::NoStorageDevice`] when no neighbour accepts the blob,
    /// plus codec/heap errors. The graph is only mutated after the blob has
    /// been stored successfully.
    pub fn swap_out(&self, p: &mut Process, sc: u32) -> Result<usize> {
        let prep = self.detach_prepare(p, sc)?;
        let shipped = ship_copies(&self.net, &prep);
        self.detach_commit(p, prep, shipped)
    }

    /// Phase 1 of swap-out: validate, open the trace pair with
    /// `detach_start`, capture and encode the blob and rank the candidate
    /// holders — all under the owning shard's lock (briefly taking the
    /// net lock below it for the candidate scan). On success the detach is
    /// in flight and the returned prep **must** reach
    /// [`SwappingManager::detach_commit`]; on error the pair is already
    /// closed (`detach_abort`, unless validation failed before the detach
    /// started).
    pub(crate) fn detach_prepare(&self, p: &mut Process, sc: u32) -> Result<DetachPrep> {
        let (config, preferred) = self.prefs();
        let mut shard = lock_shard(&self.shards, self.shard_of(sc))?;
        let epoch = {
            let entry = shard
                .clusters
                .get_mut(&sc)
                .ok_or(SwapError::UnknownSwapCluster { swap_cluster: sc })?;
            if !entry.is_loaded() {
                return Err(SwapError::BadState {
                    swap_cluster: sc,
                    expected: "loaded",
                    actual: entry.state.name(),
                });
            }
            // Refresh membership: drop members that died since replication.
            entry.members.retain(|(_, r)| {
                p.heap()
                    .get(*r)
                    .map(|o| o.header().swap_cluster == sc && o.kind() == ObjectKind::App)
                    .unwrap_or(false)
            });
            if entry.members.is_empty() {
                // Nothing left to swap; retire the entry and report it so
                // the victim picker can move on instead of counting an
                // empty "success".
                shard.clusters.remove(&sc);
                return Err(SwapError::NothingToSwap { swap_cluster: sc });
            }
            entry.epoch
        };
        // Validation passed: the detach is in flight from here on, and any
        // failure below reverts the cluster to loaded — mirror exactly that
        // in the trace so the conformance replay sees start/abort/end pair
        // up.
        self.recorder.detach_start(sc);
        match self.prepare_body(p, &mut shard, &config, preferred, sc, epoch) {
            Ok(prep) => Ok(prep),
            Err(e) => {
                self.recorder.detach_abort(sc);
                Err(e)
            }
        }
    }

    /// Everything past swap-out validation that still needs the shard
    /// guard; an error here aborts the in-flight detach (the cluster stays
    /// loaded).
    fn prepare_body(
        &self,
        p: &mut Process,
        shard: &mut Shard,
        config: &SwapConfig,
        preferred: Option<DeviceKind>,
        sc: u32,
        epoch: u32,
    ) -> Result<DetachPrep> {
        let members: Vec<ObjRef> = shard.clusters[&sc]
            .members
            .iter()
            .map(|&(_, r)| r)
            .collect();

        // Opportunistically clean up blobs orphaned by earlier failures on
        // this shard (shard → net, per the hierarchy).
        if !shard.orphaned_blobs.is_empty() {
            let mut net = lock_net(&self.net)?;
            sweep_shard_orphans(&mut net, self.home, shard);
        }

        // Capture + serialize before any graph mutation.
        let blob = codec::capture(p, sc, epoch, &members)?;
        let data = wire::encode_blob(config.wire_format, &blob)?;
        // Keys carry the swapping device's id: several PDAs may share one
        // storing neighbour ("available to any user"), and their cluster
        // ids are device-local.
        let key = format!("dev{}-sc{sc}-e{epoch}", self.home.index());
        let candidates: Vec<DeviceId> = {
            let net = lock_net(&self.net)?;
            self.recorder.sync_clock(&net);
            holder_candidates(&net, self.home, config, preferred, &key, data.len(), &[])
                .into_iter()
                .map(|c| c.device)
                .collect()
        };
        Ok(DetachPrep {
            sc,
            epoch,
            key,
            data,
            want: config.replication_factor,
            allow_relays: config.allow_relays,
            home: self.home,
            candidates,
        })
    }

    /// Phase 3 of swap-out: replay the shipped events into the recorder,
    /// revalidate the cluster, record the placement, bump the epoch and
    /// perform the graph surgery — under coordinator + shard locks (in
    /// that order). Always closes the trace pair opened by
    /// [`SwappingManager::detach_prepare`] — `detach_end` on success,
    /// `detach_abort` on any error.
    pub(crate) fn detach_commit(
        &self,
        p: &mut Process,
        prep: DetachPrep,
        shipped: ShipOutcome,
    ) -> Result<usize> {
        let sc = prep.sc;
        let outcome = {
            let mut c = lock_coordinator(&self.coordinator)?;
            let mut shard = lock_shard(&self.shards, self.shard_of(sc))?;
            let collect = c.config.collect_after_swap_out;
            self.commit_body(p, &mut c, &mut shard, &prep, shipped)
                .map(|bytes| (bytes, collect))
        };
        match outcome {
            Ok((bytes, collect)) => {
                // Realize the memory release outside every lock.
                if collect {
                    p.collect();
                }
                Ok(bytes)
            }
            Err(e) => {
                self.recorder.detach_abort(sc);
                Err(e)
            }
        }
    }

    /// The fallible interior of [`SwappingManager::detach_commit`].
    fn commit_body(
        &self,
        p: &mut Process,
        c: &mut Coordinator,
        shard: &mut Shard,
        prep: &DetachPrep,
        shipped: ShipOutcome,
    ) -> Result<usize> {
        let sc = prep.sc;
        let blob_bytes = prep.data.len();
        // Replay the sends: each `blob_shipped` carries the clock stamp
        // captured while the net guard was held, so the trace is
        // byte-identical to the single-phase form.
        let mut holders: Vec<DeviceId> = Vec::new();
        for rec in &shipped.records {
            self.recorder.blob_shipped(
                Some((rec.churn, rec.at_us)),
                sc,
                prep.epoch,
                rec.device.index(),
                blob_bytes as u64,
                rec.cost_us,
            );
            holders.push(rec.device);
        }
        if let Some(e) = shipped.hard_error {
            // A hard error after partial stores turns the stored copies
            // into tracked orphans before propagating.
            for holder in holders {
                shard.orphaned_blobs.push((holder, prep.key.clone()));
            }
            return Err(e);
        }
        // Revalidate: the shard lock was released while the bytes moved,
        // so a concurrent operation may have raced the cluster. If it did,
        // the freshly stored copies back no placement — track them as
        // orphans rather than resurrecting a superseded state.
        let current = shard.clusters.get(&sc).map(|e| (e.is_loaded(), e.epoch));
        if current != Some((true, prep.epoch)) {
            for holder in holders {
                shard.orphaned_blobs.push((holder, prep.key.clone()));
            }
            return Err(SwapError::BadState {
                swap_cluster: sc,
                expected: "loaded",
                actual: "concurrently-modified",
            });
        }
        let Some(&device) = holders.first() else {
            return Err(SwapError::NoStorageDevice {
                swap_cluster: sc,
                tried: prep.candidates.len(),
            });
        };
        let copies = holders.len();
        shard
            .placements
            .record(sc, prep.epoch, prep.key.clone(), holders);
        // The blob is out: consume this epoch now so a failure in the graph
        // surgery below cannot lead a retry into a duplicate key; the
        // already-stored blobs become orphans to sweep.
        shard
            .clusters
            .get_mut(&sc)
            .ok_or(SwapError::UnknownSwapCluster { swap_cluster: sc })?
            .epoch += 1;
        let surgery = self.detach_graph(p, c, shard, sc, device, &prep.key);
        if let Err(e) = surgery {
            if let Some((_, placement)) = shard.placements.remove(sc) {
                for holder in placement.holders {
                    shard.orphaned_blobs.push((holder, prep.key.clone()));
                }
            }
            return Err(e);
        }

        self.recorder
            .detach_end(sc, prep.epoch, blob_bytes as u64, copies as u32);
        c.events.push(PolicyEvent::SwappedOut {
            swap_cluster: sc as i64,
            bytes: blob_bytes as i64,
        });
        Ok(blob_bytes)
    }

    /// The graph surgery of swap-out: build the replacement-object, patch
    /// the inbound proxies, detach the members. Caller holds coordinator
    /// (proxy tables) and the owning shard (registry entry).
    fn detach_graph(
        &self,
        p: &mut Process,
        c: &mut Coordinator,
        shard: &mut Shard,
        sc: u32,
        device: DeviceId,
        key: &str,
    ) -> Result<()> {
        // Collect the cluster's live outbound proxies for the replacement.
        let outbound: Vec<ObjRef> = {
            let weaks = c.outbound.get(&sc).cloned().unwrap_or_default();
            let mut seen = std::collections::HashSet::new();
            weaks
                .iter()
                .filter_map(|&w| p.heap().weak_get(w))
                .filter(|r| seen.insert(*r))
                .collect()
        };

        // Build the replacement-object ("simply an array of references").
        let mw = p.universe().middleware;
        let replacement = p
            .heap_mut()
            .alloc(mw.replacement, ObjectKind::Replacement)?;
        {
            let h = p.heap_mut().get_mut(replacement)?.header_mut();
            h.swap_cluster = sc;
            h.finalize = true; // death ⇒ instruct device to drop the blob
        }
        for op in outbound {
            p.heap_mut().push_extra(replacement, Value::Ref(op))?;
        }

        // Patch inbound proxies: "every swap-cluster referencing objects
        // contained in [the victim] will be made to reference [the
        // replacement-object] instead".
        let inbound = c.inbound.get(&sc).cloned().unwrap_or_default();
        let mw_sp_target = mw.sp_target;
        for w in inbound {
            let Some(pr) = p.heap().weak_get(w) else {
                continue;
            };
            let Ok(target) = proxy::target_of(p, pr) else {
                continue;
            };
            let points_into_sc = p
                .heap()
                .get(target)
                .map(|o| o.header().swap_cluster == sc && o.kind() == ObjectKind::App)
                .unwrap_or(false);
            if points_into_sc {
                p.heap_mut()
                    .set_field(pr, mw_sp_target, Value::Ref(replacement))?;
            }
        }

        // Detach: forget the replicas so the graph no longer reaches them
        // and future replication wires new references through the
        // replacement-object.
        let member_oids: Vec<(obiwan_heap::Oid, ObjRef)> = shard.clusters[&sc].members.clone();
        for (oid, _) in &member_oids {
            p.forget_replica(*oid);
            p.note_swapped(*oid, replacement);
        }

        let entry = shard
            .clusters
            .get_mut(&sc)
            .ok_or(SwapError::UnknownSwapCluster { swap_cluster: sc })?;
        entry.state = SwapClusterState::SwappedOut {
            device,
            key: key.to_string(),
            replacement,
        };
        Ok(())
    }

    /// Pick a victim by policy and swap it out. Returns the victim id, or
    /// `None` when nothing is evictable. Victims that turn out to be empty
    /// ([`SwapError::NothingToSwap`]) are retired and skipped.
    ///
    /// # Errors
    ///
    /// Propagates [`SwappingManager::swap_out`] failures.
    pub fn swap_out_victim(&self, p: &mut Process) -> Result<Option<u32>> {
        // The loop terminates: each `NothingToSwap` removes the picked
        // cluster from the registry, so the candidate set shrinks.
        while let Some(sc) = self.pick_victim() {
            match self.swap_out(p, sc) {
                Ok(_) => return Ok(Some(sc)),
                Err(SwapError::NothingToSwap { .. }) => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(None)
    }
}
