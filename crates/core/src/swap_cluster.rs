//! Swap-cluster registry entries and their state machine.

use obiwan_heap::{ObjRef, Oid};
use obiwan_net::DeviceId;

/// Lifecycle of a swap-cluster.
///
/// ```text
/// Loaded ──swap-out──▶ SwappedOut ──reload──▶ Loaded
///                          │
///                          └─replacement collected─▶ Dropped
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SwapClusterState {
    /// Members are live replicas on the device.
    Loaded,
    /// Members are serialized on a storing device; a replacement-object
    /// stands in for them in the graph.
    SwappedOut {
        /// Device holding the blob.
        device: DeviceId,
        /// Blob key on that device.
        key: String,
        /// The replacement-object.
        replacement: ObjRef,
    },
    /// The replacement-object died while swapped out: the application can
    /// never reach these objects again, and the storing device has been
    /// (or could not be) instructed to drop the blob.
    Dropped,
}

impl SwapClusterState {
    /// Short state name for errors and reports.
    pub fn name(&self) -> &'static str {
        match self {
            SwapClusterState::Loaded => "loaded",
            SwapClusterState::SwappedOut { .. } => "swapped-out",
            SwapClusterState::Dropped => "dropped",
        }
    }
}

/// Registry entry for one swap-cluster: membership, accounting, and the
/// recency / frequency statistics the victim policies consume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwapClusterEntry {
    /// Current lifecycle state.
    pub state: SwapClusterState,
    /// Member identities with their current replica handles (handles are
    /// only meaningful while `Loaded`).
    pub members: Vec<(Oid, ObjRef)>,
    /// Bytes the members occupy while loaded.
    pub bytes: usize,
    /// Boundary crossings into this cluster (frequency).
    pub crossings: u64,
    /// Boundary crossings *out of* this cluster: invocations that left
    /// through one of its proxies. Bookkeeping only (victim policies key
    /// on inbound crossings), but it makes cross-shard crossing updates a
    /// genuine two-shard transaction.
    pub out_crossings: u64,
    /// Logical time of the latest crossing (recency).
    pub last_crossing: u64,
    /// Swap-out epoch: increments per swap-out, making blob keys unique.
    pub epoch: u32,
}

impl SwapClusterEntry {
    /// A fresh, empty, loaded entry.
    pub fn new() -> Self {
        SwapClusterEntry {
            state: SwapClusterState::Loaded,
            members: Vec::new(),
            bytes: 0,
            crossings: 0,
            out_crossings: 0,
            last_crossing: 0,
            epoch: 0,
        }
    }

    /// Number of member objects.
    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    /// Whether the cluster is currently loaded.
    pub fn is_loaded(&self) -> bool {
        matches!(self.state, SwapClusterState::Loaded)
    }
}

impl Default for SwapClusterEntry {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests may panic on impossible states
mod tests {
    use super::*;

    #[test]
    fn state_names_are_stable() {
        assert_eq!(SwapClusterState::Loaded.name(), "loaded");
        assert_eq!(SwapClusterState::Dropped.name(), "dropped");
        assert_eq!(
            SwapClusterState::SwappedOut {
                device: DeviceId::default(),
                key: "k".into(),
                replacement: ObjRef::test_dummy(0),
            }
            .name(),
            "swapped-out"
        );
    }

    #[test]
    fn fresh_entry_is_loaded_and_empty() {
        let e = SwapClusterEntry::new();
        assert!(e.is_loaded());
        assert_eq!(e.member_count(), 0);
        assert_eq!(e.epoch, 0);
    }
}
