//! The sharded lock table behind the concurrent swapping manager.
//!
//! Cluster-keyed state (registry entries, placements, orphan and
//! holder-loss bookkeeping) is split across N [`Shard`]s; process-wide
//! state (the proxy tables, grouping map, config, policy-event queue)
//! lives in the single [`Coordinator`]. The lock hierarchy is
//!
//! ```text
//! coordinator → shard (ascending index) → net → recorder
//! ```
//!
//! acquired strictly left to right and never backwards: a function
//! holding a shard guard may lock the net but must never call back into
//! the coordinator, and two shard guards are only ever taken through
//! [`lock_shard_pair`], which orders them by ascending index.

use crate::swap_cluster::SwapClusterEntry;
use crate::{Result, SwapConfig, SwapError};
use obiwan_heap::{Oid, WeakRef};
use obiwan_net::{DeviceId, DeviceKind};
use obiwan_placement::PlacementTable;
use obiwan_policy::PolicyEvent;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Mutex, MutexGuard};

/// One shard of the manager's cluster-keyed state. Every swap-cluster id
/// maps to exactly one shard (see [`shard_for`]); all state about that
/// cluster lives behind that shard's lock.
#[derive(Debug, Default)]
pub(crate) struct Shard {
    /// Swap-cluster registry (the slice of it hashing to this shard).
    pub(crate) clusters: BTreeMap<u32, SwapClusterEntry>,
    /// Where every swapped-out cluster's blob copies live.
    pub(crate) placements: PlacementTable,
    /// Blobs stored on neighbours that no longer back any swap-cluster
    /// (a swap-out failed after its blob was stored); dropped
    /// opportunistically.
    pub(crate) orphaned_blobs: Vec<(DeviceId, String)>,
    /// (swap-cluster, holder) losses already reported as
    /// [`PolicyEvent::HolderLost`], so churn does not re-fire every pump.
    pub(crate) lost_reported: BTreeSet<(u32, DeviceId)>,
}

impl Shard {
    /// The holder set backing swap-cluster `sc` while it is swapped out:
    /// `(epoch, key, holders)` from the placement table, falling back to
    /// the single device recorded in the entry state (worlds whose state
    /// was crafted directly, e.g. by injection tests).
    pub(crate) fn holders_of(&self, sc: u32) -> Option<(u32, String, Vec<DeviceId>)> {
        if let Some((epoch, p)) = self.placements.active(sc) {
            return Some((epoch, p.key.clone(), p.holders.clone()));
        }
        let entry = self.clusters.get(&sc)?;
        if let crate::swap_cluster::SwapClusterState::SwappedOut {
            device, ref key, ..
        } = entry.state
        {
            // The entry's epoch was bumped right after the store, so the
            // blob on the wire carries the previous one.
            Some((entry.epoch.wrapping_sub(1), key.clone(), vec![device]))
        } else {
            None
        }
    }
}

/// Process-wide manager state: everything not keyed by swap-cluster, plus
/// the proxy tables (proxies mediate *pairs* of clusters, so no single
/// shard owns them).
#[derive(Debug)]
pub(crate) struct Coordinator {
    pub(crate) config: SwapConfig,
    /// Device kind preferred as swap target (set by policies).
    pub(crate) preferred_kind: Option<DeviceKind>,
    /// Proxy reuse table: (source swap-cluster, target identity) → proxy.
    pub(crate) proxy_index: BTreeMap<(u32, Oid), WeakRef>,
    /// Proxies whose *target* lives in the keyed swap-cluster (inbound).
    pub(crate) inbound: BTreeMap<u32, Vec<WeakRef>>,
    /// Proxies whose *source* is the keyed swap-cluster (outbound).
    pub(crate) outbound: BTreeMap<u32, Vec<WeakRef>>,
    /// Mapping replication cluster → swap-cluster (grouping).
    pub(crate) repl_to_sc: BTreeMap<u32, u32>,
    pub(crate) next_sc: u32,
    /// Events for the policy engine, drained by the middleware.
    pub(crate) events: Vec<PolicyEvent>,
}

impl Coordinator {
    pub(crate) fn new(config: SwapConfig) -> Self {
        Coordinator {
            config,
            preferred_kind: None,
            proxy_index: BTreeMap::new(),
            inbound: BTreeMap::new(),
            outbound: BTreeMap::new(),
            repl_to_sc: BTreeMap::new(),
            next_sc: 1,
            events: Vec::new(),
        }
    }
}

/// The shard a swap-cluster's state lives on: a splitmix64 finalizer over
/// the id, reduced modulo the shard count. Stable across runs (traces and
/// placements stay reproducible) and well-mixed even for the consecutive
/// small ids the grouping map hands out.
pub(crate) fn shard_for(sc: u32, shards: usize) -> usize {
    let mut x = u64::from(sc).wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x % shards as u64) as usize
}

/// Lock the coordinator, turning poisoning into a structured error
/// instead of a cascading panic.
pub(crate) fn lock_coordinator(c: &Mutex<Coordinator>) -> Result<MutexGuard<'_, Coordinator>> {
    c.lock().map_err(|_| SwapError::LockPoisoned {
        what: "coordinator",
        shard: None,
    })
}

/// Lock one shard of the table, naming the shard index on poisoning.
pub(crate) fn lock_shard(shards: &[Mutex<Shard>], idx: usize) -> Result<MutexGuard<'_, Shard>> {
    shards[idx].lock().map_err(|_| SwapError::LockPoisoned {
        what: "shard",
        shard: Some(idx as u32),
    })
}

/// Lock two shards in the canonical order — ascending index — so any two
/// cross-shard operations agree on acquisition order and cannot deadlock
/// against each other. When both ids land on the same shard the single
/// guard is returned with `None` (a `std::sync::Mutex` is not reentrant).
///
/// The first guard is always the lower-indexed shard; callers map their
/// logical ids back through `shard_for` to find which guard is which.
pub(crate) fn lock_shard_pair<'a>(
    shards: &'a [Mutex<Shard>],
    a: usize,
    b: usize,
) -> Result<(MutexGuard<'a, Shard>, Option<MutexGuard<'a, Shard>>)> {
    let lo = a.min(b);
    let hi = a.max(b);
    let first = lock_shard(shards, lo)?;
    let second = if lo < hi {
        Some(lock_shard(shards, hi)?)
    } else {
        None
    };
    Ok((first, second))
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests may panic on impossible states
mod tests {
    use super::*;

    #[test]
    fn shard_map_is_stable_and_in_range() {
        for n in [1usize, 2, 8, 13] {
            for sc in 0..256u32 {
                let s = shard_for(sc, n);
                assert!(s < n);
                assert_eq!(s, shard_for(sc, n), "shard map must be deterministic");
            }
        }
    }

    #[test]
    fn shard_map_spreads_consecutive_ids() {
        let n = 8;
        let hit: BTreeSet<usize> = (0..64u32).map(|sc| shard_for(sc, n)).collect();
        assert_eq!(hit.len(), n, "64 consecutive ids should touch all 8 shards");
    }

    #[test]
    fn pair_lock_orders_by_index_and_handles_same_shard() {
        let shards: Vec<Mutex<Shard>> = (0..4).map(|_| Mutex::new(Shard::default())).collect();
        let (first, second) = lock_shard_pair(&shards, 3, 1).expect("pair");
        assert!(second.is_some(), "distinct shards yield two guards");
        drop(second);
        drop(first);
        let (first, second) = lock_shard_pair(&shards, 2, 2).expect("pair");
        assert!(second.is_none(), "same shard yields one guard");
        drop(first);
    }
}
