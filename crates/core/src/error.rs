//! Error type for the swapping layer.

use obiwan_heap::HeapError;
use obiwan_net::{DeviceId, NetError};
use obiwan_replication::ReplError;
use std::fmt;

/// Error produced by the Object-Swapping layer.
#[derive(Debug, Clone, PartialEq)]
pub enum SwapError {
    /// Underlying replication / invocation error.
    Repl(ReplError),
    /// Underlying heap error.
    Heap(HeapError),
    /// Underlying network / blob-store error.
    Net(NetError),
    /// Underlying XML error while encoding or decoding a blob.
    Xml(obiwan_xml::Error),
    /// No nearby device could accept the swap-out (none reachable, or all
    /// rejected the blob).
    NoStorageDevice {
        /// Swap-cluster that could not be evicted.
        swap_cluster: u32,
        /// Devices that were tried.
        tried: usize,
    },
    /// Swap-cluster id is not registered.
    UnknownSwapCluster {
        /// The offending id.
        swap_cluster: u32,
    },
    /// The swap-cluster is in the wrong state for the operation.
    BadState {
        /// Swap-cluster id.
        swap_cluster: u32,
        /// State name required.
        expected: &'static str,
        /// State name found.
        actual: &'static str,
    },
    /// The blob could not be fetched back (storing device departed or
    /// dropped it); the swapped data is lost.
    DataLost {
        /// Swap-cluster whose content is unreachable.
        swap_cluster: u32,
        /// Description of the underlying failure.
        cause: String,
    },
    /// A reload tried every recorded holder of the blob and none could
    /// serve it. Unlike [`SwapError::DataLost`] (the blob is gone for
    /// good — dropped by GC cooperation) this is *potentially* transient:
    /// the cluster stays swapped out, and the reload succeeds if a holder
    /// in `tried` returns to the room.
    BlobUnavailable {
        /// Swap-cluster whose blob no holder could serve.
        swap_cluster: u32,
        /// The swap-out epoch the blob was written under.
        epoch: u32,
        /// Every holder that was tried, in preference order.
        tried: Vec<DeviceId>,
    },
    /// Malformed blob content.
    Codec {
        /// Description.
        message: String,
    },
    /// The swap-cluster has no live members to detach (they were all
    /// collected, or the cluster was emptied by transfers); the entry is
    /// retired and the victim picker should move on.
    NothingToSwap {
        /// Swap-cluster that turned out to be empty.
        swap_cluster: u32,
    },
    /// A shared-state mutex was poisoned by a panicking thread; the
    /// operation was abandoned rather than acting on possibly-torn state.
    LockPoisoned {
        /// Which lock (`"coordinator"`, `"shard"`, `"manager"` or `"net"`).
        what: &'static str,
        /// For the sharded lock table, which shard index was poisoned;
        /// `None` for process-wide locks.
        shard: Option<u32>,
    },
}

impl fmt::Display for SwapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwapError::Repl(e) => write!(f, "replication: {e}"),
            SwapError::Heap(e) => write!(f, "heap: {e}"),
            SwapError::Net(e) => write!(f, "net: {e}"),
            SwapError::Xml(e) => write!(f, "xml: {e}"),
            SwapError::NoStorageDevice {
                swap_cluster,
                tried,
            } => write!(
                f,
                "no nearby device accepted swap-cluster {swap_cluster} ({tried} tried)"
            ),
            SwapError::UnknownSwapCluster { swap_cluster } => {
                write!(f, "unknown swap-cluster {swap_cluster}")
            }
            SwapError::BadState {
                swap_cluster,
                expected,
                actual,
            } => write!(
                f,
                "swap-cluster {swap_cluster} is {actual}, operation requires {expected}"
            ),
            SwapError::DataLost {
                swap_cluster,
                cause,
            } => write!(f, "swap-cluster {swap_cluster} data lost: {cause}"),
            SwapError::BlobUnavailable {
                swap_cluster,
                epoch,
                tried,
            } => {
                write!(
                    f,
                    "swap-cluster {swap_cluster} (epoch {epoch}) unavailable: \
                     no holder could serve the blob (tried"
                )?;
                for d in tried {
                    write!(f, " {d}")?;
                }
                write!(f, ")")
            }
            SwapError::Codec { message } => write!(f, "blob codec: {message}"),
            SwapError::NothingToSwap { swap_cluster } => {
                write!(
                    f,
                    "swap-cluster {swap_cluster} has no live members to swap out"
                )
            }
            SwapError::LockPoisoned { what, shard } => match shard {
                Some(i) => write!(f, "{what} mutex (shard {i}) poisoned by a panicking thread"),
                None => write!(f, "{what} mutex poisoned by a panicking thread"),
            },
        }
    }
}

impl std::error::Error for SwapError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SwapError::Repl(e) => Some(e),
            SwapError::Heap(e) => Some(e),
            SwapError::Net(e) => Some(e),
            SwapError::Xml(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ReplError> for SwapError {
    fn from(e: ReplError) -> Self {
        SwapError::Repl(e)
    }
}

impl From<HeapError> for SwapError {
    fn from(e: HeapError) -> Self {
        SwapError::Heap(e)
    }
}

impl From<NetError> for SwapError {
    fn from(e: NetError) -> Self {
        SwapError::Net(e)
    }
}

impl From<obiwan_xml::Error> for SwapError {
    fn from(e: obiwan_xml::Error) -> Self {
        SwapError::Xml(e)
    }
}

impl SwapError {
    /// Construct a codec error from anything displayable.
    pub fn codec(message: impl fmt::Display) -> Self {
        SwapError::Codec {
            message: message.to_string(),
        }
    }

    /// Lower this error into a [`ReplError`] for returning through the
    /// interceptor interface.
    pub fn into_repl(self) -> ReplError {
        match self {
            SwapError::Repl(e) => e,
            SwapError::Heap(e) => ReplError::Heap(e),
            other => ReplError::swap(other),
        }
    }

    /// Whether the root cause is heap exhaustion.
    pub fn is_out_of_memory(&self) -> bool {
        match self {
            SwapError::Heap(HeapError::OutOfMemory { .. }) => true,
            SwapError::Repl(e) => e.is_out_of_memory(),
            _ => false,
        }
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests may panic on impossible states
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_oom_detection() {
        let heap_oom: SwapError = HeapError::OutOfMemory {
            requested: 1,
            used: 1,
            capacity: 1,
        }
        .into();
        assert!(heap_oom.is_out_of_memory());
        let repl_oom: SwapError = ReplError::from(HeapError::OutOfMemory {
            requested: 1,
            used: 1,
            capacity: 1,
        })
        .into();
        assert!(repl_oom.is_out_of_memory());
    }

    #[test]
    fn into_repl_does_not_double_wrap() {
        let e = SwapError::Repl(ReplError::swap("inner"));
        assert!(matches!(e.into_repl(), ReplError::Swap { .. }));
        let h = SwapError::Heap(HeapError::NoSuchGlobal { name: "g".into() });
        assert!(matches!(h.into_repl(), ReplError::Heap(_)));
    }

    #[test]
    fn display_names_the_cluster() {
        let e = SwapError::DataLost {
            swap_cluster: 7,
            cause: "device departed".into(),
        };
        let s = e.to_string();
        assert!(s.contains('7') && s.contains("departed"));
    }

    #[test]
    fn blob_unavailable_lists_the_holders_tried() {
        let e = SwapError::BlobUnavailable {
            swap_cluster: 3,
            epoch: 2,
            tried: Vec::new(),
        };
        let s = e.to_string();
        assert!(s.contains("swap-cluster 3") && s.contains("epoch 2"), "{s}");
    }

    #[test]
    fn lock_poisoned_names_the_shard() {
        let plain = SwapError::LockPoisoned {
            what: "coordinator",
            shard: None,
        };
        assert_eq!(
            plain.to_string(),
            "coordinator mutex poisoned by a panicking thread"
        );
        let sharded = SwapError::LockPoisoned {
            what: "shard",
            shard: Some(5),
        };
        assert_eq!(
            sharded.to_string(),
            "shard mutex (shard 5) poisoned by a panicking thread"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Send + Sync + 'static>() {}
        assert_bounds::<SwapError>();
    }
}
