//! Swap-in: reload a swapped-out cluster from its storing device
//! (paper §3, *Swap-Cluster Reload*).
//!
//! Like swap-out, the reload is split into three phases so the bytes move
//! without any shard guard held:
//!
//! 1. [`SwappingManager::reload_prepare`] — under the owning shard's lock:
//!    validation, the `reload_start` trace event, and the placement lookup
//!    (epoch, key, holders);
//! 2. [`fetch_copy`] — a free function that takes only the net lock and
//!    runs the failover fetch over the recorded holders, carrying clock
//!    stamps out in its [`FetchOutcome`];
//! 3. [`SwappingManager::reload_commit`] — coordinator + shard locks:
//!    replays the failover events (byte-identical stamps), revalidates
//!    that no concurrent operation raced the cluster, rematerializes the
//!    members and closes the trace pair with `reload_end`/`reload_abort`.
//!
//! [`SwappingManager::swap_in`] composes the three. Lock order per the
//! documented hierarchy: prepare takes the shard lock, fetch takes net
//! alone, commit takes coordinator → shard → net (the net window only for
//! the eager blob drops).

use crate::manager::{lock_net, SharedNet};
use crate::materialize::{ClusterMaterializer, FixupKind, OidMap};
use crate::shard::{lock_coordinator, lock_shard, Coordinator, Shard};
use crate::swap_cluster::SwapClusterState;
use crate::{proxy, wire, Result, SwapError, SwappingManager};
use obiwan_heap::{ObjRef, ObjectKind, Oid, Value};
use obiwan_net::{Bytes, DeviceId, NetError};
use obiwan_policy::PolicyEvent;
use obiwan_replication::Process;

/// A reload prepared under the shard guard: the placement facts the fetch
/// phase needs. Once one of these exists the reload is in flight
/// (`reload_start` is in the trace) and it must be handed to
/// [`SwappingManager::reload_commit`], which closes the pair either way.
pub(crate) struct ReloadPrep {
    /// The swap-cluster being reloaded.
    pub(crate) sc: u32,
    /// The epoch the blob on the wire carries.
    epoch: u32,
    /// Storage key the holders serve the blob under.
    key: String,
    /// Recorded holders, primary first.
    holders: Vec<DeviceId>,
    /// Whether multi-hop routes may carry the blob.
    allow_relays: bool,
    /// The reloading device.
    home: DeviceId,
    /// The replacement-object standing in for the cluster.
    replacement: ObjRef,
}

/// What the fetch phase produced. Infallible by construction: lock
/// poisoning and hard network errors ride in `hard_error` so the commit
/// phase always runs and the `reload_start` pair is always closed.
pub(crate) struct FetchOutcome {
    /// The blob, when some holder served it.
    data: Option<Bytes>,
    /// Holders that failed before the blob was found.
    tried: Vec<DeviceId>,
    /// Failovers to trace: `(holder, churn, at_us)` stamped while the net
    /// guard was held (at most `holders - 1`; the last holder failing
    /// dead-ends the reload instead).
    failovers: Vec<(DeviceId, u64, u64)>,
    /// Clock stamp right after the net guard was taken.
    clock0: Option<(u64, u64)>,
    /// Clock stamp right after the successful fetch.
    success_clock: Option<(u64, u64)>,
    /// A non-retriable failure that stopped the fetch loop, if any.
    hard_error: Option<SwapError>,
}

/// Phase 2 of swap-in: the failover fetch, holding only the net lock.
/// Holders are tried in preference order; one that departed, lost the
/// blob or became unroutable just moves the loop to the next copy.
pub(crate) fn fetch_copy(net: &SharedNet, prep: &ReloadPrep) -> FetchOutcome {
    let mut out = FetchOutcome {
        data: None,
        tried: Vec::new(),
        failovers: Vec::new(),
        clock0: None,
        success_clock: None,
        hard_error: None,
    };
    let mut net = match lock_net(net) {
        Ok(guard) => guard,
        Err(e) => {
            out.hard_error = Some(e);
            return out;
        }
    };
    out.clock0 = Some((net.churn_seq(), net.now().as_micros()));
    for (i, &holder) in prep.holders.iter().enumerate() {
        let fetched = if prep.allow_relays {
            net.fetch_blob_routed(prep.home, holder, &prep.key)
                .map(|(_, data)| data)
        } else {
            net.fetch_blob(prep.home, holder, &prep.key)
        };
        match fetched {
            Ok(bytes) => {
                out.success_clock = Some((net.churn_seq(), net.now().as_micros()));
                out.data = Some(bytes);
                break;
            }
            Err(NetError::Departed { .. })
            | Err(NetError::UnknownBlob { .. })
            | Err(NetError::NotConnected { .. })
            | Err(NetError::InjectedFailure { .. }) => {
                out.tried.push(holder);
                // A failover is trying *another* copy; the last holder
                // failing dead-ends the reload instead, so at most
                // `k - 1` of these can ever be traced.
                if i + 1 < prep.holders.len() {
                    out.failovers
                        .push((holder, net.churn_seq(), net.now().as_micros()));
                }
                continue;
            }
            Err(e) => {
                out.hard_error = Some(e.into());
                break;
            }
        }
    }
    out
}

impl SwappingManager {
    /// Reload swap-cluster `sc` from the device it was swapped to:
    ///
    /// 1. fetch the blob and decode it via its self-describing header
    ///    ([`wire::decode_blob`] auto-detects XML / binary / LZ, so a room
    ///    holding mixed-format blobs reloads fine);
    /// 2. rematerialize the member replicas (identity, class, payloads);
    /// 3. reconnect references: in-cluster refs directly, outbound refs to
    ///    the surviving swap-cluster-proxies held by the replacement-object,
    ///    references to never-replicated objects as fault proxies;
    /// 4. patch every inbound swap-cluster-proxy back from the
    ///    replacement-object to the fresh replicas;
    /// 5. retire the replacement-object (it becomes garbage) and optionally
    ///    drop the blob on the storing device.
    ///
    /// # Errors
    ///
    /// [`SwapError::UnknownSwapCluster`], [`SwapError::BadState`] when the
    /// cluster is loaded, [`SwapError::DataLost`] when the cluster was
    /// dropped by the GC cooperation (its replacement-object died and the
    /// blob was released), [`SwapError::BlobUnavailable`] when every
    /// recorded holder was tried and none could serve the blob (the
    /// cluster stays swapped out so the operation can be retried if a
    /// holder returns), plus codec / heap errors (out-of-memory leaves the
    /// cluster swapped out and the graph untouched).
    pub fn swap_in(&self, p: &mut Process, sc: u32) -> Result<usize> {
        let prep = self.reload_prepare(sc)?;
        let fetched = fetch_copy(&self.net, &prep);
        self.reload_commit(p, prep, fetched)
    }

    /// Phase 1 of swap-in: validate, open the trace pair with
    /// `reload_start` and look up the placement — under the owning shard's
    /// lock. On success the reload is in flight and the returned prep
    /// **must** reach [`SwappingManager::reload_commit`]; on error the
    /// pair is already closed (`reload_abort`, unless validation failed
    /// before the reload started).
    pub(crate) fn reload_prepare(&self, sc: u32) -> Result<ReloadPrep> {
        let (config, _) = self.prefs();
        let shard = lock_shard(&self.shards, self.shard_of(sc))?;
        let replacement = {
            let entry = shard
                .clusters
                .get(&sc)
                .ok_or(SwapError::UnknownSwapCluster { swap_cluster: sc })?;
            match &entry.state {
                SwapClusterState::SwappedOut { replacement, .. } => *replacement,
                SwapClusterState::Dropped => {
                    // The replacement-object died unreferenced and the GC
                    // cooperation released the blob; there is nothing left
                    // to fetch, ever — not a retriable state error.
                    return Err(SwapError::DataLost {
                        swap_cluster: sc,
                        cause: "cluster was dropped by GC cooperation \
                                (replacement-object collected, blob released)"
                            .into(),
                    });
                }
                other => {
                    return Err(SwapError::BadState {
                        swap_cluster: sc,
                        expected: "swapped-out",
                        actual: other.name(),
                    })
                }
            }
        };
        // Validation passed: the reload is in flight, and any failure below
        // leaves the cluster swapped out — emit the matching abort so the
        // conformance replay tracks the revert.
        self.recorder.reload_start(sc);
        match shard.holders_of(sc) {
            Some((epoch, key, holders)) => Ok(ReloadPrep {
                sc,
                epoch,
                key,
                holders,
                allow_relays: config.allow_relays,
                home: self.home,
                replacement,
            }),
            None => {
                self.recorder.reload_abort(sc);
                Err(SwapError::UnknownSwapCluster { swap_cluster: sc })
            }
        }
    }

    /// Phase 3 of swap-in: replay the fetch-phase events into the
    /// recorder, then rematerialize the cluster from the blob — under
    /// coordinator + shard locks (in that order). Always closes the trace
    /// pair opened by [`SwappingManager::reload_prepare`] — `reload_end`
    /// on success, `reload_abort` on any error.
    pub(crate) fn reload_commit(
        &self,
        p: &mut Process,
        prep: ReloadPrep,
        fetched: FetchOutcome,
    ) -> Result<usize> {
        let sc = prep.sc;
        let result = {
            let mut c = lock_coordinator(&self.coordinator)?;
            let mut shard = lock_shard(&self.shards, self.shard_of(sc))?;
            self.commit_reload(p, &mut c, &mut shard, &prep, fetched)
        };
        match result {
            Ok(bytes) => Ok(bytes),
            Err(e) => {
                self.recorder.reload_abort(sc);
                Err(e)
            }
        }
    }

    /// The fallible interior of [`SwappingManager::reload_commit`].
    fn commit_reload(
        &self,
        p: &mut Process,
        c: &mut Coordinator,
        shard: &mut Shard,
        prep: &ReloadPrep,
        fetched: FetchOutcome,
    ) -> Result<usize> {
        let sc = prep.sc;
        let epoch = prep.epoch;
        let key = &prep.key;
        let replacement = prep.replacement;
        // Replay the fetch: every stamp was captured while the net guard
        // was held, so the trace is byte-identical to the single-phase
        // form.
        if let Some((churn, at_us)) = fetched.clock0 {
            self.recorder.set_clock(churn, at_us);
        }
        for &(holder, churn, at_us) in &fetched.failovers {
            self.recorder
                .failover(Some((churn, at_us)), sc, epoch, holder.index());
        }
        if let Some(e) = fetched.hard_error {
            return Err(e);
        }
        // Revalidate: the shard lock was released while the bytes moved.
        // If a concurrent operation raced the cluster, this reload's view
        // is stale — bail before any graph mutation.
        let still_ours = shard.clusters.get(&sc).is_some_and(|e| {
            matches!(&e.state,
                SwapClusterState::SwappedOut { replacement: r, .. } if *r == replacement)
        });
        if !still_ours {
            return Err(SwapError::BadState {
                swap_cluster: sc,
                expected: "swapped-out",
                actual: "concurrently-modified",
            });
        }
        let tried = fetched.tried;
        let Some(data) = fetched.data else {
            return Err(SwapError::BlobUnavailable {
                swap_cluster: sc,
                epoch,
                tried,
            });
        };
        if let Some((churn, at_us)) = fetched.success_clock {
            self.recorder.set_clock(churn, at_us);
        }
        let blob_bytes = data.len();
        // Decode straight into detached arena objects: one streaming pass
        // over the wire bytes (byte payloads sliced zero-copy out of the
        // fetched buffer), no `Blob` IR and no per-field re-accounting. The
        // materializer is pure, so a parse error here leaves the heap
        // untouched — same as the legacy decode-then-allocate path.
        let mut mat = ClusterMaterializer::new(p.universe().registry.clone(), sc);
        let header = wire::decode_blob_into(&data, &mut mat)?;
        if header.swap_cluster != sc {
            return Err(SwapError::codec(format!(
                "blob `{key}` labels itself swap-cluster {}, expected {sc}",
                header.swap_cluster
            )));
        }
        let (objects, fixups) = mat.into_parts();

        // Pass 1: adopt the members, in stream order — the same handle
        // sequence the per-object alloc path produced. Reserving from the
        // frame's object count keeps slab growth out of the loop.
        p.heap_mut().reserve_slots(objects.len());
        let mut member_map: OidMap<ObjRef> =
            OidMap::with_capacity_and_hasher(objects.len(), Default::default());
        let mut members: Vec<(Oid, ObjRef)> = Vec::with_capacity(objects.len());
        for (oid, obj) in objects {
            let r = match p.heap_mut().adopt(obj) {
                Ok(r) => r,
                Err(e) => {
                    // Nothing registered yet; the orphan adoptions are
                    // reclaimed by the next collection. State unchanged.
                    return Err(e.into());
                }
            };
            member_map.insert(oid, r);
            members.push((oid, r));
        }

        // The outbound proxies kept alive by the replacement-object.
        let outbound_by_oid: OidMap<ObjRef> = {
            let extras = p.heap().extra_fields(replacement)?.to_vec();
            extras
                .iter()
                .filter_map(|v| v.as_ref_value())
                .filter(|r| {
                    p.heap()
                        .get(*r)
                        .map(|o| o.kind() == ObjectKind::SwapProxy)
                        .unwrap_or(false)
                })
                .map(|r| Ok((proxy::oid_of(p, r)?, r)))
                .collect::<Result<_>>()?
        };

        // Pass 2: resolve the reference fixups, in stream order. The
        // reconnect procedures are idempotent per identity, so memoizing
        // them per distinct oid walks the proxy index once per target
        // instead of once per referring field, with identical allocation
        // order to the per-field legacy loop.
        let mut memo_proxy: OidMap<ObjRef> = OidMap::default();
        let mut memo_fault: OidMap<ObjRef> = OidMap::default();
        for f in &fixups {
            let (_, holder) = members[f.ordinal as usize];
            let target = match f.kind {
                FixupKind::Member => member_map.get(&f.oid).copied().ok_or_else(|| {
                    SwapError::codec(format!(
                        "blob references member {} which it does not contain",
                        f.oid
                    ))
                })?,
                FixupKind::Proxy => match memo_proxy.get(&f.oid) {
                    Some(&t) => t,
                    None => {
                        let t = self.reconnect_proxy_ref(p, c, sc, f.oid, &outbound_by_oid)?;
                        memo_proxy.insert(f.oid, t);
                        t
                    }
                },
                FixupKind::Fault => match memo_fault.get(&f.oid) {
                    Some(&t) => t,
                    None => {
                        let t = self.reconnect_fault_ref(p, c, sc, f.oid, &member_map)?;
                        memo_fault.insert(f.oid, t);
                        t
                    }
                },
            };
            p.heap_mut()
                .set_slot_fast(holder, f.field as usize, Value::Ref(target))?;
        }

        // Pass 3: patch inbound proxies back to the fresh replicas.
        let inbound = c.inbound.get(&sc).cloned().unwrap_or_default();
        for w in inbound {
            let Some(pr) = p.heap().weak_get(w) else {
                continue;
            };
            let oid = proxy::oid_of(p, pr)?;
            if let Some(&m) = member_map.get(&oid) {
                let mw = p.universe().middleware;
                p.heap_mut().set_field(pr, mw.sp_target, Value::Ref(m))?;
            }
        }

        // Pass 4: registration and entry bookkeeping.
        let mut bytes = 0;
        for &(oid, m) in &members {
            p.register_replica(oid, m);
            p.clear_swapped(oid);
            bytes += p.heap().get(m)?.size();
        }
        {
            let entry = shard
                .clusters
                .get_mut(&sc)
                .ok_or(SwapError::UnknownSwapCluster { swap_cluster: sc })?;
            entry.members = members;
            entry.bytes = bytes;
            entry.state = SwapClusterState::Loaded;
        }

        // The replacement-object is no longer needed: nothing in the
        // application graph references it, so it is garbage; neutralize its
        // finalizer so its collection does not instruct a second drop.
        if p.heap().is_live(replacement) {
            p.heap_mut().get_mut(replacement)?.header_mut().finalize = false;
        }
        if c.config.drop_blob_on_reload {
            let mut net = lock_net(&self.net)?;
            for &holder in &prep.holders {
                let dropped = if prep.allow_relays {
                    net.drop_blob_routed(self.home, holder, key)
                } else {
                    net.drop_blob(self.home, holder, key)
                };
                self.recorder.sync_clock(&net);
                match dropped {
                    Ok(()) => self.recorder.blob_dropped(sc, holder.index(), true),
                    Err(_) => {
                        // Unreachable holder: its copy survives the reload.
                        // Track it as an orphan so a future sweep (or the
                        // repair pass re-adopting it) keeps the room clean.
                        self.recorder.blob_dropped(sc, holder.index(), false);
                        shard.orphaned_blobs.push((holder, key.clone()));
                    }
                }
            }
        }
        // Loaded again: the placement record is retired either way (without
        // eager drops, the remaining copies become tracked orphans swept at
        // the next swap-out).
        if let Some((_, placement)) = shard.placements.remove(sc) {
            if !c.config.drop_blob_on_reload {
                for holder in placement.holders {
                    shard.orphaned_blobs.push((holder, key.clone()));
                }
            }
        }
        self.recorder
            .reload_end(sc, epoch, blob_bytes as u64, tried.len() as u32);
        c.events.push(PolicyEvent::SwappedIn {
            swap_cluster: sc as i64,
        });
        Ok(blob_bytes)
    }

    /// Reconnect a member field that was mediated by an outbound proxy.
    /// Caller holds the coordinator (proxy tables).
    fn reconnect_proxy_ref(
        &self,
        p: &mut Process,
        c: &mut Coordinator,
        sc: u32,
        oid: Oid,
        outbound_by_oid: &OidMap<ObjRef>,
    ) -> Result<ObjRef> {
        if let Some(&pr) = outbound_by_oid.get(&oid) {
            return Ok(pr);
        }
        // The proxy is gone (e.g. it was re-targeted by the iteration
        // optimization); rebuild the mediation from the target's identity.
        if let Some(t) = p.lookup_replica(oid) {
            let t_sc = p.heap().get(t)?.header().swap_cluster;
            if t_sc == sc {
                return Ok(t);
            }
            return self.proxy_for(p, c, sc, t, oid);
        }
        if let Some(rep) = p.swapped_replacement(oid) {
            return self.proxy_for(p, c, sc, rep, oid);
        }
        Ok(p.ensure_fault_proxy(oid)?)
    }

    /// Reconnect a member field that referenced a not-yet-replicated
    /// identity at swap-out time. The identity may have been replicated —
    /// or even swapped — in the meantime. Caller holds the coordinator.
    fn reconnect_fault_ref(
        &self,
        p: &mut Process,
        c: &mut Coordinator,
        sc: u32,
        oid: Oid,
        member_map: &OidMap<ObjRef>,
    ) -> Result<ObjRef> {
        if let Some(&m) = member_map.get(&oid) {
            return Ok(m);
        }
        if let Some(t) = p.lookup_replica(oid) {
            let t_sc = p.heap().get(t)?.header().swap_cluster;
            if t_sc == sc {
                return Ok(t);
            }
            return self.proxy_for(p, c, sc, t, oid);
        }
        if let Some(rep) = p.swapped_replacement(oid) {
            return self.proxy_for(p, c, sc, rep, oid);
        }
        Ok(p.ensure_fault_proxy(oid)?)
    }
}
