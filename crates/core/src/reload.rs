//! Swap-in: reload a swapped-out cluster from its storing device
//! (paper §3, *Swap-Cluster Reload*).

use crate::codec::BlobField;
use crate::manager::lock_net;
use crate::swap_cluster::SwapClusterState;
use crate::{proxy, wire, Result, SwapError, SwappingManager};
use obiwan_heap::{ObjRef, ObjectKind, Oid, Value};
use obiwan_net::NetError;
use obiwan_policy::PolicyEvent;
use obiwan_replication::Process;
use std::collections::HashMap;

impl SwappingManager {
    /// Reload swap-cluster `sc` from the device it was swapped to:
    ///
    /// 1. fetch the blob and decode it via its self-describing header
    ///    ([`wire::decode_blob`] auto-detects XML / binary / LZ, so a room
    ///    holding mixed-format blobs reloads fine);
    /// 2. rematerialize the member replicas (identity, class, payloads);
    /// 3. reconnect references: in-cluster refs directly, outbound refs to
    ///    the surviving swap-cluster-proxies held by the replacement-object,
    ///    references to never-replicated objects as fault proxies;
    /// 4. patch every inbound swap-cluster-proxy back from the
    ///    replacement-object to the fresh replicas;
    /// 5. retire the replacement-object (it becomes garbage) and optionally
    ///    drop the blob on the storing device.
    ///
    /// # Errors
    ///
    /// [`SwapError::UnknownSwapCluster`], [`SwapError::BadState`] when the
    /// cluster is loaded, [`SwapError::DataLost`] when the cluster was
    /// dropped by the GC cooperation (its replacement-object died and the
    /// blob was released), [`SwapError::BlobUnavailable`] when every
    /// recorded holder was tried and none could serve the blob (the
    /// cluster stays swapped out so the operation can be retried if a
    /// holder returns), plus codec / heap errors (out-of-memory leaves the
    /// cluster swapped out and the graph untouched).
    pub fn swap_in(&mut self, p: &mut Process, sc: u32) -> Result<usize> {
        let replacement = {
            let entry = self
                .clusters
                .get(&sc)
                .ok_or(SwapError::UnknownSwapCluster { swap_cluster: sc })?;
            match &entry.state {
                SwapClusterState::SwappedOut { replacement, .. } => *replacement,
                SwapClusterState::Dropped => {
                    // The replacement-object died unreferenced and the GC
                    // cooperation released the blob; there is nothing left
                    // to fetch, ever — not a retriable state error.
                    return Err(SwapError::DataLost {
                        swap_cluster: sc,
                        cause: "cluster was dropped by GC cooperation \
                                (replacement-object collected, blob released)"
                            .into(),
                    });
                }
                other => {
                    return Err(SwapError::BadState {
                        swap_cluster: sc,
                        expected: "swapped-out",
                        actual: other.name(),
                    })
                }
            }
        };
        // Validation passed: the reload is in flight, and any failure below
        // leaves the cluster swapped out — emit the matching abort so the
        // conformance replay tracks the revert.
        self.recorder.reload_start(sc);
        match self.swap_in_body(p, sc, replacement) {
            Ok(bytes) => Ok(bytes),
            Err(e) => {
                self.recorder.reload_abort(sc);
                Err(e)
            }
        }
    }

    /// Everything past swap-in validation; an error here aborts the
    /// in-flight reload (the cluster stays swapped out).
    fn swap_in_body(&mut self, p: &mut Process, sc: u32, replacement: ObjRef) -> Result<usize> {
        let (epoch, key, holders) = self
            .holders_of(sc)
            .ok_or(SwapError::UnknownSwapCluster { swap_cluster: sc })?;
        // Failover fetch: try holders in preference order; a holder that
        // departed, lost the blob or became unroutable just moves us to
        // the next copy.
        let mut data = None;
        let mut tried: Vec<obiwan_net::DeviceId> = Vec::new();
        {
            let mut net = lock_net(&self.net)?;
            self.recorder.sync_clock(&net);
            for (i, &holder) in holders.iter().enumerate() {
                let fetched = if self.config.allow_relays {
                    net.fetch_blob_routed(self.home, holder, &key)
                        .map(|(_, data)| data)
                } else {
                    net.fetch_blob(self.home, holder, &key)
                };
                match fetched {
                    Ok(bytes) => {
                        self.recorder.sync_clock(&net);
                        data = Some(bytes);
                        break;
                    }
                    Err(NetError::Departed { .. })
                    | Err(NetError::UnknownBlob { .. })
                    | Err(NetError::NotConnected { .. })
                    | Err(NetError::InjectedFailure { .. }) => {
                        tried.push(holder);
                        // A failover is trying *another* copy; the last
                        // holder failing dead-ends the reload instead, so
                        // at most `k - 1` of these can ever be traced.
                        if i + 1 < holders.len() {
                            self.recorder.sync_clock(&net);
                            self.recorder.failover(sc, epoch, holder.index());
                        }
                        continue;
                    }
                    Err(e) => return Err(e.into()),
                }
            }
        }
        let Some(data) = data else {
            return Err(SwapError::BlobUnavailable {
                swap_cluster: sc,
                epoch,
                tried,
            });
        };
        let blob_bytes = data.len();
        let blob = wire::decode_blob(&data)?;
        if blob.swap_cluster != sc {
            return Err(SwapError::codec(format!(
                "blob `{key}` labels itself swap-cluster {}, expected {sc}",
                blob.swap_cluster
            )));
        }

        // Pass 1: rematerialize members.
        let mut member_map: HashMap<Oid, ObjRef> = HashMap::new();
        let mut members: Vec<(Oid, ObjRef)> = Vec::with_capacity(blob.objects.len());
        for bo in &blob.objects {
            let class = p.universe().registry.class_id(&bo.class)?;
            let r = match p.heap_mut().alloc(class, ObjectKind::App) {
                Ok(r) => r,
                Err(e) => {
                    // Nothing registered yet; the orphan allocations are
                    // reclaimed by the next collection. State unchanged.
                    return Err(e.into());
                }
            };
            {
                let h = p.heap_mut().get_mut(r)?.header_mut();
                h.oid = bo.oid;
                h.repl_cluster = bo.repl_cluster;
                h.swap_cluster = sc;
            }
            member_map.insert(bo.oid, r);
            members.push((bo.oid, r));
        }

        // The outbound proxies kept alive by the replacement-object.
        let outbound_by_oid: HashMap<Oid, ObjRef> = {
            let extras = p.heap().extra_fields(replacement)?.to_vec();
            extras
                .iter()
                .filter_map(|v| v.as_ref_value())
                .filter(|r| {
                    p.heap()
                        .get(*r)
                        .map(|o| o.kind() == ObjectKind::SwapProxy)
                        .unwrap_or(false)
                })
                .map(|r| Ok((proxy::oid_of(p, r)?, r)))
                .collect::<Result<_>>()?
        };

        // Pass 2: reconnect fields.
        for (bo, &(_, r)) in blob.objects.iter().zip(&members) {
            for (idx, field) in &bo.fields {
                let value = match field {
                    BlobField::Scalar(v) => v.clone(),
                    BlobField::MemberRef(oid) => {
                        Value::Ref(member_map.get(oid).copied().ok_or_else(|| {
                            SwapError::codec(format!(
                                "blob references member {oid} which it does not contain"
                            ))
                        })?)
                    }
                    BlobField::ProxyRef(oid) => {
                        Value::Ref(self.reconnect_proxy_ref(p, sc, *oid, &outbound_by_oid)?)
                    }
                    BlobField::FaultRef(oid) => {
                        Value::Ref(self.reconnect_fault_ref(p, sc, *oid, &member_map)?)
                    }
                };
                p.heap_mut().set_any_field(r, *idx, value)?;
            }
        }

        // Pass 3: patch inbound proxies back to the fresh replicas.
        let inbound = self.inbound.get(&sc).cloned().unwrap_or_default();
        for w in inbound {
            let Some(pr) = p.heap().weak_get(w) else {
                continue;
            };
            let oid = proxy::oid_of(p, pr)?;
            if let Some(&m) = member_map.get(&oid) {
                let mw = p.universe().middleware;
                p.heap_mut().set_field(pr, mw.sp_target, Value::Ref(m))?;
            }
        }

        // Pass 4: registration and entry bookkeeping.
        let mut bytes = 0;
        for &(oid, m) in &members {
            p.register_replica(oid, m);
            p.clear_swapped(oid);
            bytes += p.heap().get(m)?.size();
        }
        {
            let entry = self
                .clusters
                .get_mut(&sc)
                .ok_or(SwapError::UnknownSwapCluster { swap_cluster: sc })?;
            entry.members = members;
            entry.bytes = bytes;
            entry.state = SwapClusterState::Loaded;
        }

        // The replacement-object is no longer needed: nothing in the
        // application graph references it, so it is garbage; neutralize its
        // finalizer so its collection does not instruct a second drop.
        if p.heap().is_live(replacement) {
            p.heap_mut().get_mut(replacement)?.header_mut().finalize = false;
        }
        if self.config.drop_blob_on_reload {
            let mut net = lock_net(&self.net)?;
            for &holder in &holders {
                let dropped = if self.config.allow_relays {
                    net.drop_blob_routed(self.home, holder, &key)
                } else {
                    net.drop_blob(self.home, holder, &key)
                };
                self.recorder.sync_clock(&net);
                match dropped {
                    Ok(()) => self.recorder.blob_dropped(sc, holder.index(), true),
                    Err(_) => {
                        // Unreachable holder: its copy survives the reload.
                        // Track it as an orphan so a future sweep (or the
                        // repair pass re-adopting it) keeps the room clean.
                        self.recorder.blob_dropped(sc, holder.index(), false);
                        self.orphaned_blobs.push((holder, key.clone()));
                    }
                }
            }
        }
        // Loaded again: the placement record is retired either way (without
        // eager drops, the remaining copies become tracked orphans swept at
        // the next swap-out).
        if let Some((_, placement)) = self.placements.remove(sc) {
            if !self.config.drop_blob_on_reload {
                for holder in placement.holders {
                    self.orphaned_blobs.push((holder, key.clone()));
                }
            }
        }
        self.recorder
            .reload_end(sc, epoch, blob_bytes as u64, tried.len() as u32);
        self.events.push(PolicyEvent::SwappedIn {
            swap_cluster: sc as i64,
        });
        Ok(blob_bytes)
    }

    /// Reconnect a member field that was mediated by an outbound proxy.
    fn reconnect_proxy_ref(
        &mut self,
        p: &mut Process,
        sc: u32,
        oid: Oid,
        outbound_by_oid: &HashMap<Oid, ObjRef>,
    ) -> Result<ObjRef> {
        if let Some(&pr) = outbound_by_oid.get(&oid) {
            return Ok(pr);
        }
        // The proxy is gone (e.g. it was re-targeted by the iteration
        // optimization); rebuild the mediation from the target's identity.
        if let Some(t) = p.lookup_replica(oid) {
            let t_sc = p.heap().get(t)?.header().swap_cluster;
            if t_sc == sc {
                return Ok(t);
            }
            return self.proxy_for(p, sc, t, oid);
        }
        if let Some(rep) = p.swapped_replacement(oid) {
            return self.proxy_for(p, sc, rep, oid);
        }
        Ok(p.ensure_fault_proxy(oid)?)
    }

    /// Reconnect a member field that referenced a not-yet-replicated
    /// identity at swap-out time. The identity may have been replicated —
    /// or even swapped — in the meantime.
    fn reconnect_fault_ref(
        &mut self,
        p: &mut Process,
        sc: u32,
        oid: Oid,
        member_map: &HashMap<Oid, ObjRef>,
    ) -> Result<ObjRef> {
        if let Some(&m) = member_map.get(&oid) {
            return Ok(m);
        }
        if let Some(t) = p.lookup_replica(oid) {
            let t_sc = p.heap().get(t)?.header().swap_cluster;
            if t_sc == sc {
                return Ok(t);
            }
            return self.proxy_for(p, sc, t, oid);
        }
        if let Some(rep) = p.swapped_replacement(oid) {
            return self.proxy_for(p, sc, rep, oid);
        }
        Ok(p.ensure_fault_proxy(oid)?)
    }
}
