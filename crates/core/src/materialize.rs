//! Decode-into-arena materialization for the reload hot path.
//!
//! [`ClusterMaterializer`] is the [`BlobSink`] the reload commit feeds
//! [`crate::wire::decode_blob_into`] with: it turns the streamed wire
//! events into *detached* heap objects ([`Object::with_field_count`] +
//! [`Object::set_raw_field`]) plus a flat list of reference [`Fixup`]s —
//! no [`crate::codec::Blob`] IR, no per-object `Vec` of fields, no
//! per-field re-accounting. After the whole frame parses, the caller
//! adopts the objects into the arena in stream order
//! ([`obiwan_heap::Heap::adopt`]) and resolves the fixups in one batched
//! pass, memoizing the proxy reconnects per distinct target identity.
//!
//! The materializer is deliberately *pure*: it never touches the heap
//! while bytes are still being parsed, so a truncated or corrupt blob
//! rejects with **zero** orphan allocations — exactly the behaviour of
//! the legacy decode-then-allocate path.

use crate::wire::{BlobHeader, BlobSink};
use crate::{codec::BlobField, Result, SwapError};
use obiwan_heap::{ClassId, ClassRegistry, HeapError, Object, ObjectKind, Oid};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Hasher for [`Oid`] keys: the splitmix64 finalizer (the same mix the
/// shard router uses), applied to the oid's `u64`. Oids are dense
/// server-assigned counters, so a full avalanche beats SipHash here and
/// costs three multiplies.
#[derive(Default)]
pub struct OidHasher(u64);

impl Hasher for OidHasher {
    fn write(&mut self, bytes: &[u8]) {
        // Fallback for non-u64 keys (unused by the Oid maps): FNV-1a.
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        let mut z = v.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.0 = z ^ (z >> 31);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// A `HashMap` keyed by [`Oid`] with the [`OidHasher`].
pub type OidMap<V> = HashMap<Oid, V, BuildHasherDefault<OidHasher>>;

/// How a wire reference field must be reconnected at reload time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FixupKind {
    /// In-cluster reference: resolves against the members of this blob.
    Member,
    /// Outbound reference that was mediated by a swap-cluster-proxy.
    Proxy,
    /// Reference to an identity that was not replicated at swap-out time.
    Fault,
}

/// One deferred reference field, recorded while the frame streamed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fixup {
    /// Index of the owning object in the materialized member list.
    pub ordinal: u32,
    /// Layout field index to patch.
    pub field: u32,
    /// Which reconnect procedure resolves it.
    pub kind: FixupKind,
    /// Target identity.
    pub oid: Oid,
}

/// A [`BlobSink`] that builds detached heap objects straight from the
/// wire events, deferring every reference field into a [`Fixup`].
pub struct ClusterMaterializer {
    registry: ClassRegistry,
    sc: u32,
    /// One-entry class-name→layout cache: swap-clusters are overwhelmingly
    /// runs of one class, so this makes the name lookup O(objects) string
    /// compares and one registry probe per distinct class.
    class_cache: Option<(String, ClassId, usize)>,
    objects: Vec<(Oid, Object)>,
    fixups: Vec<Fixup>,
}

impl ClusterMaterializer {
    /// A materializer for a reload of swap-cluster `sc`, resolving class
    /// names against `registry` (cheap to clone — `Arc` inside).
    pub fn new(registry: ClassRegistry, sc: u32) -> Self {
        ClusterMaterializer {
            registry,
            sc,
            class_cache: None,
            objects: Vec::new(),
            fixups: Vec::new(),
        }
    }

    /// The materialized members (stream order) and their reference fixups.
    pub fn into_parts(self) -> (Vec<(Oid, Object)>, Vec<Fixup>) {
        (self.objects, self.fixups)
    }

    fn class_for(&mut self, name: &str) -> Result<(ClassId, usize)> {
        if let Some((cached, id, layout)) = &self.class_cache {
            if cached == name {
                return Ok((*id, *layout));
            }
        }
        let id = self.registry.class_id(name)?;
        let layout = self.registry.class(id)?.field_count();
        self.class_cache = Some((name.to_owned(), id, layout));
        Ok((id, layout))
    }

    /// The same error the legacy `set_any_field` write produced for a wire
    /// field index beyond the class layout.
    fn field_index_error(&self, index: usize) -> SwapError {
        let class = self
            .class_cache
            .as_ref()
            .map(|(name, _, _)| name.clone())
            .unwrap_or_default();
        HeapError::FieldIndex {
            class,
            index: index.min(u16::MAX as usize) as u16,
        }
        .into()
    }
}

impl BlobSink for ClusterMaterializer {
    fn begin(&mut self, _header: &BlobHeader, object_count: usize) -> Result<()> {
        self.objects.reserve(object_count);
        self.fixups.reserve(object_count);
        Ok(())
    }

    #[inline]
    fn begin_object(
        &mut self,
        oid: Oid,
        class: &str,
        repl_cluster: u32,
        _field_count: usize,
    ) -> Result<()> {
        let (class_id, layout) = self.class_for(class)?;
        // Members are sized by the class *layout* (like the legacy alloc
        // path); wire fields address into it, extras of variadic members
        // are not captured.
        let mut obj = Object::with_field_count(class_id, ObjectKind::App, layout);
        let h = obj.header_mut();
        h.oid = oid;
        h.repl_cluster = repl_cluster;
        h.swap_cluster = self.sc;
        self.objects.push((oid, obj));
        Ok(())
    }

    #[inline]
    fn field(&mut self, index: usize, field: BlobField) -> Result<()> {
        let Some((_, obj)) = self.objects.last_mut() else {
            return Err(SwapError::codec("field event before any object"));
        };
        let (kind, oid) = match field {
            BlobField::Scalar(v) => {
                if obj.set_raw_field(index, v) {
                    return Ok(());
                }
                return Err(self.field_index_error(index));
            }
            BlobField::MemberRef(oid) => (FixupKind::Member, oid),
            BlobField::ProxyRef(oid) => (FixupKind::Proxy, oid),
            BlobField::FaultRef(oid) => (FixupKind::Fault, oid),
        };
        if index >= obj.fields().len() {
            return Err(self.field_index_error(index));
        }
        self.fixups.push(Fixup {
            ordinal: (self.objects.len() - 1) as u32,
            field: index as u32,
            kind,
            oid,
        });
        Ok(())
    }
}
