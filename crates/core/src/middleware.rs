//! The middleware facade: wires heap, replication, policies, the simulated
//! wireless world and the swapping manager into one object.

use crate::audit::AuditReport;
use crate::manager::{
    lock_net, repl_to_swap, InterceptorShim, SharedManager, SharedNet, SwapStats,
};
use crate::{identity, Result, SwapConfig, SwapError, SwappingManager, VictimPolicy};
use obiwan_heap::{HeapStats, ObjRef, Oid, Value};
use obiwan_net::{DeviceId, DeviceKind, LinkSpec, NetFabric, SimNet, SimTime};
use obiwan_policy::{
    default_swap_policies, Action, ContextManager, PolicyEngine, PolicyEvent, Watermarks,
};
use obiwan_replication::{Process, ReplConfig, ReplicationEvent, Server};
use std::sync::{Arc, Mutex, PoisonError};

/// Description of a storage device to place in the room.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreSpec {
    /// Friendly name.
    pub name: String,
    /// Hardware class.
    pub kind: DeviceKind,
    /// Storage quota in bytes.
    pub quota: usize,
    /// Link between the PDA and this device.
    pub link: LinkSpec,
}

impl StoreSpec {
    /// A storage device with the paper's Bluetooth link.
    pub fn new(name: impl Into<String>, kind: DeviceKind, quota: usize) -> Self {
        StoreSpec {
            name: name.into(),
            kind,
            quota,
            link: LinkSpec::bluetooth(),
        }
    }

    /// Override the link.
    pub fn with_link(mut self, link: LinkSpec) -> Self {
        self.link = link;
        self
    }
}

/// Aggregate statistics snapshot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MiddlewareStats {
    /// Heap health.
    pub heap: HeapStats,
    /// Swapping counters.
    pub swap: SwapStats,
    /// `(bytes sent, bytes fetched)` over the air.
    pub traffic: (u64, u64),
    /// Current simulated time.
    pub now: SimTime,
    /// `(invocations, faults)` of the process.
    pub process: (u64, u64),
}

/// Builder for [`Middleware`].
///
/// # Examples
///
/// ```
/// use obiwan_core::{Middleware, SwapConfig, VictimPolicy};
/// use obiwan_replication::{standard_classes, Server};
///
/// # fn main() -> Result<(), obiwan_core::SwapError> {
/// let mut server = Server::new(standard_classes());
/// let head = server.build_list("Node", 40, 16)?;
/// let mut mw = Middleware::builder()
///     .cluster_size(10)
///     .clusters_per_swap_cluster(2)
///     .device_memory(64 * 1024)
///     .victim_policy(VictimPolicy::LeastRecentlyUsed)
///     .build(server);
/// let root = mw.replicate_root(head)?;
/// assert_eq!(mw.invoke_i64(root, "length", vec![])?, 40);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MiddlewareBuilder {
    cluster_size: usize,
    device_memory: usize,
    swap_config: SwapConfig,
    swapping_enabled: bool,
    watermarks: Watermarks,
    builtin_policies: bool,
    policies_xml: Option<String>,
    stores: Vec<StoreSpec>,
}

impl Default for MiddlewareBuilder {
    fn default() -> Self {
        MiddlewareBuilder {
            cluster_size: 50,
            device_memory: 1 << 20,
            swap_config: SwapConfig::default(),
            swapping_enabled: true,
            watermarks: Watermarks::default(),
            builtin_policies: true,
            policies_xml: None,
            stores: vec![StoreSpec::new("room-laptop", DeviceKind::Laptop, 16 << 20)],
        }
    }
}

impl MiddlewareBuilder {
    /// Objects per replication cluster (and, with
    /// [`clusters_per_swap_cluster`](Self::clusters_per_swap_cluster) = 1,
    /// per swap-cluster — the paper's 20 / 50 / 100 knob).
    pub fn cluster_size(mut self, n: usize) -> Self {
        self.cluster_size = n.max(1);
        self
    }

    /// Replication clusters per swap-cluster.
    pub fn clusters_per_swap_cluster(mut self, n: usize) -> Self {
        self.swap_config = self.swap_config.clusters_per_swap_cluster(n);
        self
    }

    /// Device memory budget in bytes.
    pub fn device_memory(mut self, bytes: usize) -> Self {
        self.device_memory = bytes;
        self
    }

    /// Victim-selection policy.
    pub fn victim_policy(mut self, policy: VictimPolicy) -> Self {
        self.swap_config = self.swap_config.victim_policy(policy);
        self
    }

    /// Wire format for new swap-out blobs (default: the paper's XML text;
    /// reloads auto-detect, so mixed-format rooms are fine).
    pub fn wire_format(mut self, kind: crate::wire::WireFormatKind) -> Self {
        self.swap_config = self.swap_config.wire_format(kind);
        self
    }

    /// How many nearby devices hold a copy of each swap-out blob
    /// (default 1 — the paper's single-copy semantics).
    ///
    /// # Panics
    ///
    /// Panics when `k` is zero.
    pub fn replication_factor(mut self, k: usize) -> Self {
        self.swap_config = self.swap_config.replication_factor(k);
        self
    }

    /// Capacity of the lifecycle-trace ring buffer in events (default
    /// [`obiwan_trace::DEFAULT_CAPACITY`]; the oldest events are evicted
    /// beyond it and the exported trace is marked truncated).
    pub fn trace_capacity(mut self, events: usize) -> Self {
        self.swap_config = self.swap_config.trace_capacity(events);
        self
    }

    /// How many shards split the manager's cluster-keyed state (default 8;
    /// one shard reproduces the old fully-serialized manager).
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero.
    pub fn shard_count(mut self, n: usize) -> Self {
        self.swap_config = self.swap_config.shard_count(n);
        self
    }

    /// Placement strategy used to rank candidate holders at swap-out and
    /// during repair (default: first-fit, the paper's order).
    pub fn placement(mut self, kind: obiwan_placement::PlacementKind) -> Self {
        self.swap_config = self.swap_config.placement(kind);
        self
    }

    /// Which transport the swap fabric runs over (default: the
    /// deterministic simulation). A live transport refuses
    /// [`MiddlewareBuilder::build`] / [`MiddlewareBuilder::build_shared`] —
    /// assemble the world externally and use
    /// [`MiddlewareBuilder::build_in_world`].
    pub fn transport(mut self, kind: obiwan_net::TransportKind) -> Self {
        self.swap_config = self.swap_config.transport(kind);
        self
    }

    /// Full swap configuration.
    pub fn swap_config(mut self, config: SwapConfig) -> Self {
        self.swap_config = config;
        self
    }

    /// Disable Object-Swapping entirely (the paper's *NO SWAP-CLUSTERS*
    /// baseline: no interceptor, no proxies, no boundaries).
    pub fn swapping_disabled(mut self) -> Self {
        self.swapping_enabled = false;
        self
    }

    /// Memory watermarks for the context manager.
    pub fn watermarks(mut self, w: Watermarks) -> Self {
        self.watermarks = w;
        self
    }

    /// Disable the built-in machine policies.
    pub fn no_builtin_policies(mut self) -> Self {
        self.builtin_policies = false;
        self
    }

    /// Load additional policies from the XML dialect at build time.
    pub fn policies_xml(mut self, xml: impl Into<String>) -> Self {
        self.policies_xml = Some(xml.into());
        self
    }

    /// Replace the default room (one laptop) with custom storage devices.
    pub fn stores(mut self, stores: Vec<StoreSpec>) -> Self {
        self.stores = stores;
        self
    }

    /// Add one storage device to the room.
    pub fn add_store(mut self, store: StoreSpec) -> Self {
        self.stores.push(store);
        self
    }

    /// Assemble the middleware around a server.
    ///
    /// # Panics
    ///
    /// Panics if `policies_xml` was provided and does not parse — policy
    /// files are deployment artifacts, and a malformed one should fail
    /// loudly at startup, not at the first memory pressure.
    pub fn build(self, server: Server) -> Middleware {
        let universe = server.classes().clone();
        self.build_shared(universe, server.into_shared())
    }

    /// Assemble the middleware around an already-shared server — the
    /// multi-device case: several PDAs replicating from the same master
    /// graph, each with its own room of storage devices.
    ///
    /// # Panics
    ///
    /// As [`MiddlewareBuilder::build`]. Also panics if the swap config
    /// selects a live transport: this constructor builds a simulated room,
    /// so live worlds (actor runtime + `obiwan-blobd` daemons) must be
    /// assembled externally and handed to
    /// [`MiddlewareBuilder::build_in_world`].
    // Construction-time misconfiguration panics are documented above
    // (`# Panics`) and tested; they never occur on a swap path.
    #[allow(clippy::disallowed_methods)]
    pub fn build_shared(
        self,
        universe: obiwan_replication::Universe,
        server: obiwan_replication::SharedServer,
    ) -> Middleware {
        assert!(
            self.swap_config.transport == obiwan_net::TransportKind::Sim,
            "build_shared constructs a simulated room; live-transport worlds \
             are built externally and passed to build_in_world"
        );
        let mut net = SimNet::new();
        let home = net.add_device("pda", DeviceKind::Pda, 0);
        for spec in &self.stores {
            let d = net.add_device(spec.name.clone(), spec.kind, spec.quota);
            net.connect(home, d, spec.link)
                .expect("devices were just added");
        }
        let net: SharedNet = Arc::new(Mutex::new(NetFabric::sim(net)));
        self.build_in_world(universe, server, net, home)
    }

    /// Assemble a middleware *inside an existing world*: several devices
    /// (each its own `Middleware`) sharing one master server **and** one
    /// simulated room — contending for the same neighbours' storage, the
    /// paper's "available to any user" scenario. The builder's `stores`
    /// are ignored; the world is whatever `net` already contains, and
    /// `home` must be a device in it.
    ///
    /// # Panics
    ///
    /// As [`MiddlewareBuilder::build`].
    // Construction-time misconfiguration panics are documented above
    // (`# Panics`) and tested; they never occur on a swap path.
    #[allow(clippy::disallowed_methods)]
    pub fn build_in_world(
        self,
        universe: obiwan_replication::Universe,
        server: obiwan_replication::SharedServer,
        net: SharedNet,
        home: DeviceId,
    ) -> Middleware {
        let mut process = Process::new(
            universe,
            server,
            self.device_memory,
            ReplConfig::with_cluster_size(self.cluster_size),
        );
        let manager: SharedManager = Arc::new(SwappingManager::new(
            self.swap_config,
            Arc::clone(&net),
            home,
        ));
        if self.swapping_enabled {
            process.set_interceptor(Box::new(InterceptorShim(Arc::clone(&manager))));
        }
        let mut engine = PolicyEngine::new();
        if self.builtin_policies {
            for rule in default_swap_policies(self.watermarks.high_pct) {
                engine.add_rule(rule).expect("builtin ids are unique");
            }
        }
        if let Some(xml) = &self.policies_xml {
            engine.load_xml(xml).expect("policy XML must be valid");
        }
        Middleware {
            process,
            manager,
            net,
            home,
            engine,
            context: ContextManager::new(self.watermarks),
            log: Vec::new(),
            pump_tick: 0,
        }
    }
}

/// The assembled OBIWAN middleware with Object-Swapping: the entry point
/// for examples, tests and benchmarks.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Debug)]
pub struct Middleware {
    process: Process,
    manager: SharedManager,
    net: SharedNet,
    home: DeviceId,
    engine: PolicyEngine,
    context: ContextManager,
    log: Vec<String>,
    /// Invocations since the last periodic policy pump.
    pump_tick: u32,
}

impl Middleware {
    /// Start building.
    pub fn builder() -> MiddlewareBuilder {
        MiddlewareBuilder::default()
    }

    /// The device this middleware runs on.
    pub fn home_device(&self) -> DeviceId {
        self.home
    }

    /// The device process (read access).
    pub fn process(&self) -> &Process {
        &self.process
    }

    /// The device process (mutable access for advanced scenarios; prefer
    /// the [`Middleware::invoke`] family, which also pumps policies).
    pub fn process_mut(&mut self) -> &mut Process {
        &mut self.process
    }

    /// The shared simulated world.
    pub fn net(&self) -> SharedNet {
        Arc::clone(&self.net)
    }

    /// The shared swapping manager. The manager synchronizes internally
    /// (sharded lock table); maintenance threads clone the handle and call
    /// methods like [`SwappingManager::note_departures`] or
    /// [`SwappingManager::repair_placements`] directly.
    pub fn manager(&self) -> SharedManager {
        Arc::clone(&self.manager)
    }

    /// Replicate the cluster containing `root` and return an
    /// application-level reference to it.
    ///
    /// # Errors
    ///
    /// Replication and policy-action errors.
    pub fn replicate_root(&mut self, root: Oid) -> Result<ObjRef> {
        let r = self.process.replicate_root(root).map_err(repl_to_swap)?;
        self.process.heap_mut().add_root(r);
        let pumped = self.pump();
        self.process.heap_mut().remove_root(r);
        pumped?;
        Ok(r)
    }

    /// Invoke a method through the full middleware stack, then pump
    /// policies (memory monitoring → swap decisions).
    ///
    /// # Errors
    ///
    /// Invocation errors (including out-of-memory; see
    /// [`Middleware::invoke_resilient`] for the retrying variant).
    pub fn invoke(&mut self, target: ObjRef, method: &str, args: Vec<Value>) -> Result<Value> {
        let out = self
            .process
            .invoke(target, method, args)
            .map_err(repl_to_swap)?;
        // Pump policies when something happened (replication events) and
        // periodically otherwise — the memory monitor needs no per-call
        // sampling, and per-call pumping would dominate micro-benchmarks
        // the way the paper's event-driven engine does not.
        self.pump_tick = self.pump_tick.wrapping_add(1);
        if self.process.has_events() || self.pump_tick.is_multiple_of(64) {
            // The returned reference is not yet reachable from any root;
            // pin it across the pump (which may collect or evict) so the
            // caller receives a live handle.
            if let Value::Ref(r) = out {
                self.process.heap_mut().add_root(r);
            }
            let pumped = self.pump();
            if let Value::Ref(r) = out {
                self.process.heap_mut().remove_root(r);
            }
            pumped?;
        }
        Ok(out)
    }

    /// [`Middleware::invoke`] expecting an integer.
    ///
    /// # Errors
    ///
    /// As [`Middleware::invoke`] plus result type mismatch.
    pub fn invoke_i64(&mut self, target: ObjRef, method: &str, args: Vec<Value>) -> Result<i64> {
        Ok(self.invoke(target, method, args)?.expect_int()?)
    }

    /// [`Middleware::invoke`] expecting a reference.
    ///
    /// # Errors
    ///
    /// As [`Middleware::invoke`] plus result type mismatch.
    pub fn invoke_ref(&mut self, target: ObjRef, method: &str, args: Vec<Value>) -> Result<ObjRef> {
        Ok(self.invoke(target, method, args)?.expect_ref()?)
    }

    /// Invoke with the paper's recovery loop: on out-of-memory, collect,
    /// swap out victims until occupancy falls to the low watermark, and
    /// retry (up to `retries` times).
    ///
    /// Note that a single operation whose working set exceeds device memory
    /// (e.g. a recursion that keeps every visited cluster live on the call
    /// stack) cannot be rescued by swapping — eviction happens *between*
    /// operations, exactly as in the paper's scenario. Structure
    /// applications as a loop of bounded operations (see Test B1/B2).
    ///
    /// # Errors
    ///
    /// The final error if retries are exhausted, nothing was evictable, or
    /// the error is not memory-related.
    pub fn invoke_resilient(
        &mut self,
        target: ObjRef,
        method: &str,
        args: Vec<Value>,
        retries: usize,
    ) -> Result<Value> {
        // Pin the target (and reference arguments) across the whole retry
        // loop: a failed attempt may have patched the globals that used to
        // reach them (proxy replacement), and the recovery collections must
        // not free handles we are about to retry with.
        self.process.heap_mut().add_root(target);
        for v in &args {
            if let Value::Ref(r) = v {
                self.process.heap_mut().add_root(*r);
            }
        }
        let out = self.invoke_resilient_inner(target, method, args.clone(), retries);
        self.process.heap_mut().remove_root(target);
        for v in &args {
            if let Value::Ref(r) = v {
                self.process.heap_mut().remove_root(*r);
            }
        }
        out
    }

    fn invoke_resilient_inner(
        &mut self,
        target: ObjRef,
        method: &str,
        args: Vec<Value>,
        retries: usize,
    ) -> Result<Value> {
        let mut attempt = 0;
        loop {
            let used_before = self.process.heap().bytes_used();
            match self.invoke(target, method, args.clone()) {
                Ok(v) => return Ok(v),
                Err(e) if e.is_out_of_memory() && attempt < retries => {
                    attempt += 1;
                    self.run_gc()?;
                    let capacity = self.process.heap().capacity();
                    let floor = capacity / 100 * self.context.watermarks().low_pct as usize;
                    // Evict at least one victim (guaranteeing forward
                    // progress even when the collection alone dropped below
                    // the watermark), then keep evicting down to the floor.
                    let mut evicted_any = false;
                    loop {
                        if evicted_any && self.process.heap().bytes_used() <= floor {
                            break;
                        }
                        match self.swap_out_victim()? {
                            Some(_) => evicted_any = true,
                            None => break,
                        }
                    }
                    self.run_gc()?;
                    let progress = evicted_any || self.process.heap().bytes_used() < used_before;
                    if !progress {
                        return Err(e);
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// [`Middleware::invoke_resilient`] expecting an integer, with a
    /// generous default retry budget.
    ///
    /// # Errors
    ///
    /// As [`Middleware::invoke_resilient`].
    pub fn invoke_i64_resilient(
        &mut self,
        target: ObjRef,
        method: &str,
        args: Vec<Value>,
    ) -> Result<i64> {
        Ok(self
            .invoke_resilient(target, method, args, 1_000)?
            .expect_int()?)
    }

    /// Read a global variable.
    ///
    /// # Errors
    ///
    /// Unknown global.
    pub fn global(&self, name: &str) -> Result<Value> {
        self.process.global(name).map_err(repl_to_swap)
    }

    /// Set a global variable (swap-cluster-0 root).
    pub fn set_global(&mut self, name: impl Into<String>, value: Value) {
        self.process.set_global(name, value);
    }

    /// Swap out a specific swap-cluster. The manager runs its own phased
    /// detach (prepare under the shard lock, ship under the net lock only,
    /// commit under coordinator + shard), so bytes never move while any
    /// shard is locked.
    ///
    /// # Errors
    ///
    /// See [`SwappingManager::swap_out`].
    pub fn swap_out(&mut self, sc: u32) -> Result<usize> {
        let out = self.manager.swap_out(&mut self.process, sc);
        self.debug_self_audit("swap_out");
        out
    }

    /// Reload a specific swap-cluster (the phased swap-in mirrors
    /// [`Middleware::swap_out`]: the failover fetch holds only the net
    /// lock).
    ///
    /// # Errors
    ///
    /// See [`SwappingManager::swap_in`].
    pub fn swap_in(&mut self, sc: u32) -> Result<usize> {
        let out = self.manager.swap_in(&mut self.process, sc);
        self.debug_self_audit("swap_in");
        out
    }

    /// Pick a victim by policy and swap it out; `None` when nothing is
    /// evictable.
    ///
    /// # Errors
    ///
    /// See [`SwappingManager::swap_out`].
    pub fn swap_out_victim(&mut self) -> Result<Option<u32>> {
        let out = self.manager.swap_out_victim(&mut self.process);
        self.debug_self_audit("swap_out_victim");
        out
    }

    /// Run a collection and process finalizers (blob drops, table pruning).
    ///
    /// # Errors
    ///
    /// See [`SwappingManager::process_finalized`].
    pub fn run_gc(&mut self) -> Result<obiwan_heap::CollectStats> {
        let stats = self.process.collect();
        let dropped = self.manager.process_finalized(&mut self.process);
        if let Ok(d) = &dropped {
            self.manager
                .recorder
                .gc_run(stats.freed_objects as u64, *d as u64);
        }
        self.debug_self_audit("run_gc");
        dropped?;
        Ok(stats)
    }

    /// Mark a swap-cluster-proxy for the iteration optimization
    /// (`SwapClusterUtils.assign`, paper §4 / Test B2).
    ///
    /// # Errors
    ///
    /// See [`SwappingManager::assign`].
    pub fn assign(&mut self, proxy: ObjRef) -> Result<()> {
        self.manager.assign(&mut self.process, proxy)
    }

    /// Create a private, assign-marked iterator proxy denoting the same
    /// object as `r` (see [`SwappingManager::make_cursor`]). Store it in a
    /// global and iterate through it: it patches itself per step instead of
    /// minting a proxy per returned reference.
    ///
    /// # Errors
    ///
    /// See [`SwappingManager::make_cursor`]; additionally fault failures
    /// when `r` is a not-yet-replicated placeholder.
    pub fn make_cursor(&mut self, r: ObjRef) -> Result<ObjRef> {
        // Fault lazily-unfetched replicas in *before* building the cursor:
        // a zombie fault-proxy (identity swapped out behind it) resolves
        // through the interceptor shim, and running that reload inside
        // `make_cursor` would interleave its shard/coordinator windows with
        // the cursor's own bookkeeping.
        let r = self.process.ensure_replica(r).map_err(repl_to_swap)?;
        self.manager.make_cursor(&mut self.process, r)
    }

    /// Commit a replica's state back to the server (see
    /// [`Process::commit_replica`]).
    ///
    /// # Errors
    ///
    /// No live replica locally, or server-side failures.
    pub fn commit(&mut self, oid: Oid) -> Result<()> {
        self.process.commit_replica(oid).map_err(repl_to_swap)
    }

    /// Commit every live replica; returns how many were pushed.
    ///
    /// # Errors
    ///
    /// First server-side failure aborts.
    pub fn commit_all(&mut self) -> Result<usize> {
        self.process.commit_all().map_err(repl_to_swap)
    }

    /// The paper's overloaded `==`: identity across proxies.
    ///
    /// # Errors
    ///
    /// Heap errors for dangling references.
    pub fn same_object(&self, a: ObjRef, b: ObjRef) -> Result<bool> {
        identity::same_object(&self.process, a, b)
    }

    /// Run the whole-graph invariant auditor (see [`crate::audit`]):
    /// boundary soundness, detach integrity and blob accounting. Read-only;
    /// call at any quiescent point. Tests assert `audit().has_errors()` is
    /// false; debug builds do so automatically after every swap operation.
    pub fn audit(&self) -> AuditReport {
        self.manager.audit(&self.process)
    }

    /// In debug builds, audit the graph after a swapping operation and
    /// assert no error-severity violation exists (warnings — departed
    /// devices, raw globals — are legal states and tolerated).
    fn debug_self_audit(&self, op: &str) {
        if cfg!(debug_assertions) {
            let report = self.audit();
            debug_assert!(
                !report.has_errors(),
                "graph invariants violated after {op}:\n{report}"
            );
        }
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> MiddlewareStats {
        // Counters stay meaningful even if another thread panicked while
        // holding a guard; recover rather than cascade the panic.
        let net = self.net.lock().unwrap_or_else(PoisonError::into_inner);
        MiddlewareStats {
            heap: self.process.heap().stats(),
            swap: self.manager.stats(),
            traffic: net.traffic(),
            now: net.now(),
            process: self.process.counters(),
        }
    }

    /// Swapping counters only.
    pub fn swap_stats(&self) -> SwapStats {
        self.manager.stats()
    }

    /// Export the swap-lifecycle event trace with run metadata — the input
    /// to `obiwan_trace::conformance::check` and the JSON exporter.
    pub fn export_trace(&self) -> obiwan_trace::Trace {
        self.manager.export_trace()
    }

    /// The trace serialized as deterministic JSON (byte-identical for
    /// identical runs; see `obiwan_trace::json`).
    pub fn trace_json(&self) -> String {
        self.export_trace().to_json()
    }

    /// Log lines produced by `Log` policy actions.
    pub fn take_log(&mut self) -> Vec<String> {
        std::mem::take(&mut self.log)
    }

    /// Gather events from all modules, evaluate policies, apply actions.
    /// Called automatically after every `invoke` / `replicate_root`; call
    /// manually after direct `process_mut()` work.
    ///
    /// # Errors
    ///
    /// Errors from applying swap actions.
    pub fn pump(&mut self) -> Result<()> {
        let mut events: Vec<PolicyEvent> = Vec::new();
        for e in self.process.take_events() {
            match e {
                ReplicationEvent::ClusterReplicated { objects, bytes, .. } => {
                    events.push(PolicyEvent::ClusterReplicated {
                        objects: objects as i64,
                        bytes: bytes as i64,
                    });
                }
                ReplicationEvent::ReplicationFailed { .. } => {
                    events.push(PolicyEvent::AllocationFailed { requested: 0 });
                }
                ReplicationEvent::ObjectFault { .. } => {}
            }
        }
        // Compare the placement table against the room before draining:
        // a holder that walked away surfaces as `HolderLost` in this
        // same pump, so the repair policy reacts without a second tick.
        self.manager.note_departures()?;
        events.extend(self.manager.take_events());
        {
            let stats = self.process.heap().stats();
            if let Some(e) = self
                .context
                .observe_memory(stats.bytes_used, stats.capacity)
            {
                events.push(e);
            }
            let net = lock_net(&self.net)?;
            let present: Vec<(i64, i64)> = net
                .nearby(self.home)
                .into_iter()
                .map(|d| {
                    (
                        i64::from(d.index()),
                        net.free_storage(d).unwrap_or(0) as i64,
                    )
                })
                .collect();
            drop(net);
            events.extend(self.context.observe_devices(&present));
        }
        let mut actions: Vec<Action> = Vec::new();
        for event in &events {
            actions.extend(self.engine.evaluate(event));
        }
        for action in actions {
            self.apply(action)?;
        }
        Ok(())
    }

    fn apply(&mut self, action: Action) -> Result<()> {
        // Record the decision before executing it, so the pump-action
        // event precedes the lifecycle events it causes.
        self.manager.recorder.pump_action(action.name());
        match action {
            Action::RunGc => {
                self.run_gc()?;
            }
            Action::SwapOutVictims { count } => {
                for _ in 0..count {
                    match self.swap_out_victim() {
                        Ok(Some(_)) => {}
                        Ok(None) => break,
                        // A full room is survivable: the middleware keeps
                        // running, the next OOM will surface to the app.
                        Err(SwapError::NoStorageDevice { .. }) => break,
                        Err(e) => return Err(e),
                    }
                }
            }
            Action::AdjustClusterSize { delta } => {
                let current = self.process.config().cluster_size as i64;
                self.process
                    .set_cluster_size((current + delta).max(1) as usize);
            }
            Action::PreferDeviceKind { kind } => {
                let parsed = match kind.as_str() {
                    "pda" => Some(DeviceKind::Pda),
                    "laptop" => Some(DeviceKind::Laptop),
                    "desktop" => Some(DeviceKind::Desktop),
                    "mote" => Some(DeviceKind::Mote),
                    "access-point" => Some(DeviceKind::AccessPoint),
                    _ => None,
                };
                self.manager.set_preferred_kind(parsed);
            }
            Action::RepairPlacements => {
                // The repair sweep phases itself: bytes move under the net
                // lock only, each entry commits under its owning shard.
                self.manager.repair_placements()?;
            }
            Action::Log { message } => self.log.push(message),
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests may panic on impossible states
mod tests {
    use super::*;
    use obiwan_replication::{standard_classes, Server};

    fn tiny_server(n: usize) -> (Server, Oid) {
        let mut server = Server::new(standard_classes());
        let head = server.build_list("Node", n, 8).expect("build");
        (server, head)
    }

    #[test]
    fn builder_defaults_create_a_working_stack() {
        let (server, head) = tiny_server(10);
        let mut mw = MiddlewareBuilder::default().build(server);
        let root = mw.replicate_root(head).expect("replicate");
        mw.set_global("head", Value::Ref(root));
        assert_eq!(mw.invoke_i64(root, "length", vec![]).unwrap(), 10);
        // The default room has exactly one laptop.
        let net = mw.net();
        let net = net.lock().expect("net");
        assert_eq!(net.nearby(mw.home_device()).len(), 1);
    }

    #[test]
    fn builder_knobs_are_applied() {
        let (server, _head) = tiny_server(5);
        let mw = Middleware::builder()
            .cluster_size(7)
            .device_memory(12_345)
            .victim_policy(VictimPolicy::LargestFirst)
            .shard_count(3)
            .build(server);
        assert_eq!(mw.process().config().cluster_size, 7);
        assert_eq!(mw.process().heap().capacity(), 12_345);
        let manager = mw.manager();
        assert_eq!(manager.config().victim_policy, VictimPolicy::LargestFirst);
        assert_eq!(manager.shard_count(), 3);
    }

    #[test]
    #[should_panic(expected = "policy XML must be valid")]
    fn malformed_policy_xml_fails_at_build_time() {
        let (server, _head) = tiny_server(2);
        let _ = Middleware::builder()
            .policies_xml("<policies><policy id='x'></policy></policies>")
            .build(server);
    }

    #[test]
    fn stats_snapshot_is_coherent() {
        let (server, head) = tiny_server(30);
        let mut mw = Middleware::builder()
            .cluster_size(10)
            .no_builtin_policies()
            .build(server);
        let root = mw.replicate_root(head).expect("replicate");
        mw.set_global("head", Value::Ref(root));
        mw.invoke_i64(root, "length", vec![]).expect("warm");
        mw.swap_out(1).expect("swap");
        let s = mw.stats();
        assert_eq!(s.swap.swap_outs, 1);
        assert!(s.traffic.0 > 0);
        assert!(s.heap.bytes_used > 0);
        assert!(s.process.0 >= 30, "invocations counted: {}", s.process.0);
    }

    #[test]
    fn take_log_drains() {
        let (server, _head) = tiny_server(2);
        let mut mw = Middleware::builder().build(server);
        assert!(mw.take_log().is_empty());
        mw.log.push("hello".into());
        assert_eq!(mw.take_log(), vec!["hello".to_string()]);
        assert!(mw.take_log().is_empty());
    }
}
