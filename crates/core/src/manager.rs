//! The SwappingManager (paper §4): swap-cluster bookkeeping, the proxy
//! interception rules, and crossing statistics.
//!
//! The manager "is registered as a listener of all events regarding
//! replication of clusters of objects" (here: as the [`Interceptor`] of the
//! replication [`Process`]), "manages swapping by maintaining information
//! regarding all swap-clusters (loaded or swapped), and all objects
//! belonging to each one, stored in hash-tables. It also contains entries
//! for all swap-cluster-proxies w.r.t. references to/from each swap-cluster
//! (using weak-references)."

use crate::proxy;
use crate::recorder::Recorder;
use crate::swap_cluster::{SwapClusterEntry, SwapClusterState};
use crate::{Result, SwapConfig, SwapError, VictimPolicy};
use obiwan_heap::{ObjRef, ObjectKind, Oid, WeakRef};
use obiwan_net::{DeviceId, DeviceKind, NetError, SimNet};
use obiwan_placement::{HolderCandidate, PlacementPolicy, PlacementTable};
use obiwan_policy::PolicyEvent;
use obiwan_replication::{ClusterInfo, Interceptor, Process, ReplError, Resolved};
use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// A shared simulated world.
pub type SharedNet = Arc<Mutex<SimNet>>;

/// A manager shared between the middleware facade and the process's
/// interceptor shim.
pub type SharedManager = Arc<Mutex<SwappingManager>>;

/// Lock the shared manager, turning poisoning into a structured error
/// instead of a cascading panic.
pub(crate) fn lock_manager(m: &SharedManager) -> Result<MutexGuard<'_, SwappingManager>> {
    m.lock()
        .map_err(|_| SwapError::LockPoisoned { what: "manager" })
}

/// Lock the shared world, turning poisoning into a structured error
/// instead of a cascading panic.
pub(crate) fn lock_net(n: &SharedNet) -> Result<MutexGuard<'_, SimNet>> {
    n.lock()
        .map_err(|_| SwapError::LockPoisoned { what: "net" })
}

/// Cumulative swapping statistics.
///
/// Marked `#[non_exhaustive]`: counters are added as the lifecycle grows
/// richer, and every one of them must keep folding exactly out of the
/// event trace (see `obiwan_trace::derive::fold_counts`). Construct via
/// `Default` and read fields; functional-update syntax from a literal is
/// intentionally unavailable outside this crate.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SwapStats {
    /// Swap-out operations completed.
    pub swap_outs: u64,
    /// Swap-in (reload) operations completed.
    pub swap_ins: u64,
    /// Blobs dropped on storing devices (GC cooperation + eager reload
    /// drops).
    pub blobs_dropped: u64,
    /// Blob drops that could not reach the storing device.
    pub drop_failures: u64,
    /// Swap-cluster-proxies created (rule i).
    pub proxies_created: u64,
    /// Proxy reuses via the (source, target) table (rule ii).
    pub proxies_reused: u64,
    /// Proxies dismantled because the reference re-entered its own cluster
    /// (rule iii).
    pub proxies_dismantled: u64,
    /// Self-patches performed by assign-marked proxies (the iteration
    /// optimization).
    pub assign_patches: u64,
    /// Boundary crossings observed.
    pub crossings: u64,
    /// Payload bytes shipped out / fetched back.
    pub bytes_swapped_out: u64,
    /// Payload bytes fetched back on reloads.
    pub bytes_swapped_in: u64,
    /// Reloads that succeeded only after failing over past an unreachable
    /// holder.
    pub reload_failovers: u64,
    /// Repair-sweep passes that re-replicated at least one blob.
    pub repairs: u64,
    /// Bytes the repair sweep moved (fetches from surviving holders plus
    /// stores onto new ones).
    pub repair_bytes: u64,
}

/// The swapping manager. One per device process; installed as the
/// process's [`Interceptor`] through the interceptor shim the middleware
/// builder wires up.
#[derive(Debug)]
pub struct SwappingManager {
    pub(crate) config: SwapConfig,
    pub(crate) net: SharedNet,
    /// The device this manager runs on (the memory-constrained one).
    pub(crate) home: DeviceId,
    /// Swap-cluster registry.
    pub(crate) clusters: BTreeMap<u32, SwapClusterEntry>,
    /// Proxy reuse table: (source swap-cluster, target identity) → proxy.
    pub(crate) proxy_index: BTreeMap<(u32, Oid), WeakRef>,
    /// Proxies whose *target* lives in the keyed swap-cluster (inbound).
    pub(crate) inbound: BTreeMap<u32, Vec<WeakRef>>,
    /// Proxies whose *source* is the keyed swap-cluster (outbound).
    pub(crate) outbound: BTreeMap<u32, Vec<WeakRef>>,
    /// Mapping replication cluster → swap-cluster (grouping).
    repl_to_sc: BTreeMap<u32, u32>,
    next_sc: u32,
    /// Logical clock for recency statistics.
    crossing_clock: u64,
    /// Round-robin victim cursor.
    pub(crate) victim_cursor: u32,
    /// Device kind preferred as swap target (set by policies).
    pub(crate) preferred_kind: Option<DeviceKind>,
    /// The single choke point for counters *and* lifecycle events.
    pub(crate) recorder: Recorder,
    /// Events for the policy engine, drained by the middleware.
    pub(crate) events: Vec<PolicyEvent>,
    /// Blobs stored on neighbours that no longer back any swap-cluster
    /// (a swap-out failed after its blob was stored); dropped
    /// opportunistically.
    pub(crate) orphaned_blobs: Vec<(DeviceId, String)>,
    /// Where every swapped-out cluster's blob copies live.
    pub(crate) placements: PlacementTable,
    /// Ranks candidate holders on swap-out and repair
    /// ([`SwapConfig::placement`]).
    pub(crate) placement_policy: Box<dyn PlacementPolicy>,
    /// (swap-cluster, holder) losses already reported as
    /// [`PolicyEvent::HolderLost`], so churn does not re-fire every pump.
    lost_reported: BTreeSet<(u32, DeviceId)>,
    /// [`SimNet::churn_seq`] at the last holder-loss scan; an unchanged
    /// sequence lets [`SwappingManager::note_departures`] skip the
    /// placement-table sweep entirely on quiet pumps.
    seen_churn_seq: Option<u64>,
}

impl SwappingManager {
    /// Create a manager for the device `home` in the shared world `net`.
    pub fn new(config: SwapConfig, net: SharedNet, home: DeviceId) -> Self {
        SwappingManager {
            config,
            net,
            home,
            clusters: BTreeMap::new(),
            proxy_index: BTreeMap::new(),
            inbound: BTreeMap::new(),
            outbound: BTreeMap::new(),
            repl_to_sc: BTreeMap::new(),
            next_sc: 1,
            crossing_clock: 0,
            victim_cursor: 0,
            preferred_kind: None,
            recorder: Recorder::new(config.trace_capacity),
            events: Vec::new(),
            orphaned_blobs: Vec::new(),
            placements: PlacementTable::new(),
            placement_policy: config.placement.policy(),
            lost_reported: BTreeSet::new(),
            seen_churn_seq: None,
        }
    }

    /// Try to drop blobs orphaned by failed swap-outs (best effort; a
    /// departed device keeps its orphan until it returns).
    pub fn sweep_orphaned_blobs(&mut self) -> usize {
        // Blob drops are idempotent, so a poisoned world is still safe to
        // sweep; recover the guard rather than cascade the panic.
        let mut net = self.net.lock().unwrap_or_else(PoisonError::into_inner);
        let home = self.home;
        let before = self.orphaned_blobs.len();
        self.orphaned_blobs
            .retain(|(device, key)| net.drop_blob(home, *device, key).is_err());
        before - self.orphaned_blobs.len()
    }

    /// The configuration.
    pub fn config(&self) -> SwapConfig {
        self.config
    }

    /// Change the victim policy at runtime.
    pub fn set_victim_policy(&mut self, policy: VictimPolicy) {
        self.config.victim_policy = policy;
    }

    /// Prefer a device kind when choosing swap targets.
    pub fn set_preferred_kind(&mut self, kind: Option<DeviceKind>) {
        self.preferred_kind = kind;
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> SwapStats {
        self.recorder.stats
    }

    /// Export the lifecycle event stream with run metadata, ready for
    /// [`obiwan_trace::Trace::to_json`] or the conformance checker.
    pub fn export_trace(&self) -> obiwan_trace::Trace {
        let mut clusters: std::collections::BTreeSet<u32> =
            self.recorder.known_clusters().collect();
        clusters.extend(self.clusters.keys().copied());
        let sink = self.recorder.sink();
        obiwan_trace::Trace {
            meta: obiwan_trace::TraceMeta {
                home: self.home.index(),
                replication_factor: self.config.replication_factor as u32,
                wire_format: self.config.wire_format.name().to_owned(),
                capacity: sink.capacity() as u64,
                recorded: sink.recorded(),
                dropped: sink.dropped(),
                clusters: clusters.into_iter().collect(),
                swapped: self.swapped_clusters(),
            },
            events: self.recorder.snapshot(),
        }
    }

    /// Drain policy events.
    pub fn take_events(&mut self) -> Vec<PolicyEvent> {
        std::mem::take(&mut self.events)
    }

    /// Registry entry of a swap-cluster.
    ///
    /// # Errors
    ///
    /// [`SwapError::UnknownSwapCluster`].
    pub fn cluster(&self, sc: u32) -> Result<&SwapClusterEntry> {
        self.clusters
            .get(&sc)
            .ok_or(SwapError::UnknownSwapCluster { swap_cluster: sc })
    }

    /// Ids of all registered swap-clusters (unordered).
    pub fn cluster_ids(&self) -> Vec<u32> {
        self.clusters.keys().copied().collect()
    }

    /// Ids of swap-clusters currently loaded.
    pub fn loaded_clusters(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self
            .clusters
            .iter()
            .filter(|(_, e)| e.is_loaded())
            .map(|(id, _)| *id)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Ids of swap-clusters currently swapped out.
    pub fn swapped_clusters(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self
            .clusters
            .iter()
            .filter(|(_, e)| matches!(e.state, SwapClusterState::SwappedOut { .. }))
            .map(|(id, _)| *id)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Choose a victim among loaded swap-clusters per the configured
    /// policy; `None` when nothing is evictable.
    pub fn pick_victim(&mut self) -> Option<u32> {
        let pick = self.config.victim_policy.choose(
            self.clusters.iter().map(|(id, e)| (*id, e)),
            self.victim_cursor,
        );
        if let Some(id) = pick {
            self.victim_cursor = id;
        }
        pick
    }

    // --- Durability: placement table, holder loss, repair sweep --------------

    /// Read-only view of the placement table (auditor, tests, benches).
    pub fn placements(&self) -> &PlacementTable {
        &self.placements
    }

    /// The holder set backing swap-cluster `sc` while it is swapped out:
    /// `(epoch, key, holders)` from the placement table, falling back to
    /// the single device recorded in the entry state (worlds whose state
    /// was crafted directly, e.g. by injection tests).
    pub fn holders_of(&self, sc: u32) -> Option<(u32, String, Vec<DeviceId>)> {
        if let Some((epoch, p)) = self.placements.active(sc) {
            return Some((epoch, p.key.clone(), p.holders.clone()));
        }
        let entry = self.clusters.get(&sc)?;
        if let SwapClusterState::SwappedOut {
            device, ref key, ..
        } = entry.state
        {
            // The entry's epoch was bumped right after the store, so the
            // blob on the wire carries the previous one.
            Some((entry.epoch.wrapping_sub(1), key.clone(), vec![device]))
        } else {
            None
        }
    }

    /// Candidate holders for a blob of `need` bytes under `key`, ranked by
    /// the configured placement policy. Devices in `exclude` (current
    /// holders) are skipped.
    pub(crate) fn holder_candidates(
        &self,
        net: &SimNet,
        key: &str,
        need: usize,
        exclude: &[DeviceId],
    ) -> Vec<HolderCandidate> {
        let source: Vec<(DeviceId, usize)> = if self.config.allow_relays {
            net.reachable(self.home)
        } else {
            net.nearby(self.home).into_iter().map(|d| (d, 1)).collect()
        };
        let mut candidates: Vec<HolderCandidate> = source
            .into_iter()
            .filter(|(d, _)| !exclude.contains(d))
            .filter_map(|(d, hops)| {
                let profile = net.profile(d).ok()?;
                let kind_preferred = Some(profile.kind) == self.preferred_kind;
                let free = net.free_storage(d).ok()?;
                // The store charges key bytes too.
                (free >= key.len() + need).then_some(HolderCandidate {
                    device: d,
                    kind_preferred,
                    hops,
                    free_storage: free,
                })
            })
            .collect();
        self.placement_policy.rank(&mut candidates);
        candidates
    }

    /// Detect blob holders that departed since the last pump and emit one
    /// [`PolicyEvent::HolderLost`] per fresh loss. A holder that returns
    /// is eligible to be reported again if it departs later.
    pub fn note_departures(&mut self) -> Result<()> {
        let present: HashSet<DeviceId> = {
            let net = lock_net(&self.net)?;
            self.recorder.sync_clock(&net);
            // Departure notification: an unchanged churn sequence means no
            // device moved and no link changed since the last scan, so the
            // placement sweep below would find exactly what it found then.
            let seq = net.churn_seq();
            if self.seen_churn_seq == Some(seq) {
                return Ok(());
            }
            self.seen_churn_seq = Some(seq);
            if self.config.allow_relays {
                net.reachable(self.home)
                    .into_iter()
                    .map(|(d, _)| d)
                    .collect()
            } else {
                net.nearby(self.home).into_iter().collect()
            }
        };
        let mut fresh: Vec<(u32, DeviceId, i64)> = Vec::new();
        for (sc, _epoch, placement) in self.placements.iter() {
            let left = placement
                .holders
                .iter()
                .filter(|d| present.contains(d))
                .count() as i64;
            for &holder in &placement.holders {
                if present.contains(&holder) {
                    self.lost_reported.remove(&(sc, holder));
                } else if !self.lost_reported.contains(&(sc, holder)) {
                    fresh.push((sc, holder, left));
                }
            }
        }
        for (sc, holder, left) in fresh {
            self.lost_reported.insert((sc, holder));
            self.recorder.holder_lost(sc, holder.index(), left as u32);
            self.events.push(PolicyEvent::HolderLost {
                swap_cluster: sc as i64,
                device: holder.index() as i64,
                holders_left: left,
            });
        }
        Ok(())
    }

    /// The repair sweep: for every swapped-out cluster whose blob has
    /// fewer reachable copies than [`SwapConfig::replication_factor`],
    /// re-replicate from a surviving holder onto fresh devices — while the
    /// cluster stays swapped out, exactly as a decentralized content-repair
    /// pass would. Departed holders are pruned from the placement (their
    /// stale copies become tracked orphans, swept if they return); a
    /// cluster whose every holder is gone keeps its record so a returning
    /// holder makes the blob reachable again.
    ///
    /// Returns `(clusters_repaired, bytes_moved)`.
    ///
    /// # Errors
    ///
    /// [`SwapError::LockPoisoned`], or hard network errors; per-device
    /// refusals (quota, departure, injected faults) are skipped.
    pub fn repair_placements(&mut self) -> Result<(u64, u64)> {
        let k = self.config.replication_factor;
        let allow_relays = self.config.allow_relays;
        let home = self.home;
        let entries: Vec<(u32, u32, String, Vec<DeviceId>)> = self
            .placements
            .iter()
            .map(|(sc, epoch, p)| (sc, epoch, p.key.clone(), p.holders.clone()))
            .collect();
        {
            let net = lock_net(&self.net)?;
            self.recorder.sync_clock(&net);
        }
        self.recorder.repair_start();
        let mut repaired = 0u64;
        let mut moved = 0u64;
        for (sc, epoch, key, holders) in entries {
            let mut net = lock_net(&self.net)?;
            self.recorder.sync_clock(&net);
            let present: HashSet<DeviceId> = if allow_relays {
                net.reachable(home).into_iter().map(|(d, _)| d).collect()
            } else {
                net.nearby(home).into_iter().collect()
            };
            // Live = still reachable and still holding the bytes.
            let mut live: Vec<DeviceId> = holders
                .iter()
                .copied()
                .filter(|&d| present.contains(&d) && net.holds_blob(d, &key))
                .collect();
            // Re-adopt copies already sitting on reachable devices outside
            // the holder list — a pruned holder that walked back in with
            // its copy intact. The key embeds home device, cluster and
            // epoch, so an exact key match *is* the current bytes; adopting
            // it costs no airtime where a re-replication would.
            for d in net.holders_of_key(&key) {
                if d != home && present.contains(&d) && !live.contains(&d) {
                    live.push(d);
                    self.orphaned_blobs
                        .retain(|(od, ok)| !(*od == d && *ok == key));
                }
            }
            let dead: Vec<DeviceId> = holders
                .iter()
                .copied()
                .filter(|d| !present.contains(d))
                .collect();
            if live.is_empty() {
                // No copy to repair from; keep the record — a departed
                // holder returning makes the blob reachable again.
                continue;
            }
            // Re-adoption can push the live set past the placement width;
            // prune back down to `k` so the table never over-replicates
            // (the excess copies become tracked orphans).
            if live.len() > k {
                for &extra in &live[k..] {
                    self.orphaned_blobs.push((extra, key.clone()));
                }
                live.truncate(k);
            }
            let deficit = k.saturating_sub(live.len());
            let mut added: Vec<DeviceId> = Vec::new();
            if deficit > 0 {
                let mut data = None;
                for &src in &live {
                    let fetched = if allow_relays {
                        net.fetch_blob_routed(home, src, &key).map(|(_, b)| b)
                    } else {
                        net.fetch_blob(home, src, &key)
                    };
                    match fetched {
                        Ok(b) => {
                            data = Some(b);
                            break;
                        }
                        Err(NetError::Departed { .. })
                        | Err(NetError::UnknownBlob { .. })
                        | Err(NetError::NotConnected { .. })
                        | Err(NetError::InjectedFailure { .. }) => continue,
                        Err(e) => return Err(e.into()),
                    }
                }
                let Some(data) = data else { continue };
                moved += data.len() as u64;
                let candidates = self.holder_candidates(&net, &key, data.len(), &holders);
                for c in candidates {
                    if added.len() >= deficit {
                        break;
                    }
                    let sent = if allow_relays {
                        net.send_blob_routed(home, c.device, &key, data.clone())
                            .map(|(_, cost)| cost)
                    } else {
                        net.send_blob(home, c.device, &key, data.clone())
                    };
                    match sent {
                        Ok(cost) => {
                            self.recorder.sync_clock(&net);
                            self.recorder.blob_shipped(
                                sc,
                                epoch,
                                c.device.index(),
                                data.len() as u64,
                                cost.as_micros(),
                            );
                            added.push(c.device);
                            moved += data.len() as u64;
                        }
                        Err(NetError::DuplicateBlob { .. }) => {
                            // The device already holds this exact key —
                            // a pruned holder that returned with its copy
                            // intact. Re-adopt the copy instead of
                            // sweeping it as an orphan.
                            added.push(c.device);
                            self.orphaned_blobs
                                .retain(|(d, k2)| !(*d == c.device && *k2 == key));
                        }
                        Err(NetError::QuotaExceeded { .. })
                        | Err(NetError::InjectedFailure { .. })
                        | Err(NetError::NotConnected { .. })
                        | Err(NetError::Departed { .. }) => continue,
                        Err(e) => return Err(e.into()),
                    }
                }
            }
            drop(net);
            let new_holders: Vec<DeviceId> =
                live.iter().copied().chain(added.iter().copied()).collect();
            if new_holders != holders {
                // Stale copies on pruned (departed) holders get swept if
                // the device ever returns.
                for &d in &dead {
                    self.orphaned_blobs.push((d, key.clone()));
                    self.lost_reported.remove(&(sc, d));
                }
                self.placements
                    .record(sc, epoch, key.clone(), new_holders.clone());
                if let Some(entry) = self.clusters.get_mut(&sc) {
                    if let SwapClusterState::SwappedOut { device, .. } = &mut entry.state {
                        if let Some(&primary) = new_holders.first() {
                            *device = primary;
                        }
                    }
                }
                if !added.is_empty() {
                    repaired += 1;
                }
            }
        }
        self.recorder.repair_end(repaired, moved);
        Ok((repaired, moved))
    }

    // --- Swap-cluster assignment (replication listener) ---------------------

    /// The swap-cluster a replication cluster belongs to, creating the
    /// grouping lazily: `clusters_per_swap_cluster` consecutive replication
    /// clusters share one swap-cluster.
    fn sc_for_repl_cluster(&mut self, repl_cluster: u32) -> u32 {
        if let Some(&sc) = self.repl_to_sc.get(&repl_cluster) {
            return sc;
        }
        let group = repl_cluster / self.config.clusters_per_swap_cluster as u32;
        let sc = group + 1; // 0 is reserved for swap-cluster-0
        self.next_sc = self.next_sc.max(sc + 1);
        self.repl_to_sc.insert(repl_cluster, sc);
        self.clusters.entry(sc).or_default();
        self.recorder.register_cluster(sc);
        sc
    }

    fn note_crossing(&mut self, sc: u32) {
        self.crossing_clock += 1;
        self.recorder.note_crossing();
        if let Some(e) = self.clusters.get_mut(&sc) {
            e.crossings += 1;
            e.last_crossing = self.crossing_clock;
        }
    }

    // --- The proxy rules ------------------------------------------------------

    /// Get or create the swap-cluster-proxy mediating a *graph edge*:
    /// a field of `source_sc` referencing `target` (identity `oid`).
    /// Edges reuse one proxy per (source, target) pair — the paper's "when
    /// there are multiple references to the same object, across the same
    /// pair of swap-clusters, only a swap-cluster-proxy is required"
    /// (rules i and ii).
    pub(crate) fn proxy_for(
        &mut self,
        p: &mut Process,
        source_sc: u32,
        target: ObjRef,
        oid: Oid,
    ) -> Result<ObjRef> {
        if let Some(&weak) = self.proxy_index.get(&(source_sc, oid)) {
            if let Some(existing) = p.heap().weak_get(weak) {
                self.recorder.proxy_reused(source_sc);
                return Ok(existing);
            }
            self.proxy_index.remove(&(source_sc, oid));
        }
        let proxy = self.proxy_fresh(p, source_sc, target, oid)?;
        let weak = p.heap_mut().weak_ref(proxy)?;
        self.proxy_index.insert((source_sc, oid), weak);
        Ok(proxy)
    }

    /// Create a fresh proxy for a *transient* delivery (a reference handed
    /// as an argument or return value). The paper's Tests B1/A2 hinge on
    /// these being created per reference and "later reclaimed by the LGC" —
    /// they are never entered into the edge-reuse index.
    pub(crate) fn proxy_fresh(
        &mut self,
        p: &mut Process,
        source_sc: u32,
        target: ObjRef,
        oid: Oid,
    ) -> Result<ObjRef> {
        let proxy = proxy::create(p, source_sc, target, oid)?;
        let weak = p.heap_mut().weak_ref(proxy)?;
        let target_sc = p.heap().get(target)?.header().swap_cluster;
        self.inbound.entry(target_sc).or_default().push(weak);
        self.outbound.entry(source_sc).or_default().push(weak);
        self.recorder.proxy_created(source_sc);
        Ok(proxy)
    }

    /// Deliver `target` (identity `oid`) into the context of `to_sc`,
    /// honoring an assign-marked entry proxy (the iteration optimization:
    /// the marked proxy patches itself and is returned instead of a fresh
    /// proxy).
    fn deliver_cross(
        &mut self,
        p: &mut Process,
        to_sc: u32,
        target: ObjRef,
        oid: Oid,
        entry_proxy: Option<ObjRef>,
    ) -> Result<ObjRef> {
        if let Some(ep) = entry_proxy {
            if p.heap().is_live(ep)
                && proxy::assign_mark_of(p, ep)?
                && proxy::source_of(p, ep)? == to_sc
            {
                // A marked proxy is a private iterator variable: it patches
                // itself and is never entered into the reuse index (other
                // holders must not alias an object that re-targets under
                // them).
                let prev_target = proxy::target_of(p, ep)?;
                let prev_sc = p
                    .heap()
                    .get(prev_target)
                    .map(|o| o.header().swap_cluster)
                    .unwrap_or(u32::MAX);
                proxy::retarget(p, ep, target, oid)?;
                let target_sc = p.heap().get(target)?.header().swap_cluster;
                if target_sc != prev_sc {
                    // Crossing into a new cluster: (re-)register as inbound
                    // there so swap-out / reload keep patching it.
                    let weak = p.heap_mut().weak_ref(ep)?;
                    self.inbound.entry(target_sc).or_default().push(weak);
                }
                self.recorder.assign_patch(target_sc);
                return Ok(ep);
            }
        }
        self.proxy_fresh(p, to_sc, target, oid)
    }

    /// The complete transfer rule for a reference moving into `to_sc`.
    pub(crate) fn transfer(
        &mut self,
        p: &mut Process,
        r: ObjRef,
        to_sc: u32,
        entry_proxy: Option<ObjRef>,
    ) -> Result<ObjRef> {
        let (kind, r_sc, r_oid) = {
            let o = p.heap().get(r)?;
            (o.kind(), o.header().swap_cluster, o.header().oid)
        };
        match kind {
            // Not replicated yet: swap mediation happens at replication.
            ObjectKind::FaultProxy => Ok(r),
            ObjectKind::App | ObjectKind::Replacement => {
                if r_sc == to_sc {
                    Ok(r)
                } else {
                    self.deliver_cross(p, to_sc, r, r_oid, entry_proxy)
                }
            }
            ObjectKind::SwapProxy => {
                let target = proxy::target_of(p, r)?;
                let target_sc = p.heap().get(target)?.header().swap_cluster;
                if target_sc == to_sc {
                    // Rule (iii): the reference re-enters its own cluster.
                    self.recorder.proxy_dismantled(to_sc);
                    Ok(target)
                } else if proxy::source_of(p, r)? == to_sc {
                    // Already the right mediator for this context.
                    Ok(r)
                } else {
                    let oid = proxy::oid_of(p, r)?;
                    self.deliver_cross(p, to_sc, target, oid, entry_proxy)
                }
            }
        }
    }

    /// Create a dedicated iterator proxy for application code: a fresh
    /// swap-cluster-0 proxy denoting the same object as `r`, assign-marked
    /// so it patches itself as the iteration advances (paper §4: the
    /// marked proxy "was indeed the actual variable"). The proxy is kept
    /// out of the reuse index — it is private to the iterating variable.
    ///
    /// # Errors
    ///
    /// Heap errors, or [`SwapError::Codec`] when `r` does not denote an
    /// application object.
    pub fn make_cursor(&mut self, p: &mut Process, r: ObjRef) -> Result<ObjRef> {
        let (target, oid) = match p.heap().get(r)?.kind() {
            ObjectKind::SwapProxy => (proxy::target_of(p, r)?, proxy::oid_of(p, r)?),
            ObjectKind::App => (r, p.heap().get(r)?.header().oid),
            other => {
                return Err(SwapError::codec(format!(
                    "cannot build an iterator over a {other} object"
                )))
            }
        };
        let cursor = proxy::create(p, 0, target, oid)?;
        proxy::set_assign_mark(p, cursor, true)?;
        let target_sc = p.heap().get(target)?.header().swap_cluster;
        let weak = p.heap_mut().weak_ref(cursor)?;
        self.inbound.entry(target_sc).or_default().push(weak);
        self.recorder.proxy_created(0);
        Ok(cursor)
    }

    /// Assign-mark a swap-cluster-proxy held by application code — the
    /// paper's `SwapClusterUtils.assign` (§4). Only proxies with source in
    /// swap-cluster-0 may be marked.
    ///
    /// # Errors
    ///
    /// [`SwapError::Codec`] when `r` is not a swap-cluster-proxy, or its
    /// source is not swap-cluster-0.
    pub fn assign(&mut self, p: &mut Process, r: ObjRef) -> Result<()> {
        if p.heap().get(r)?.kind() != ObjectKind::SwapProxy {
            return Err(SwapError::codec(
                "assign() takes a swap-cluster-proxy reference",
            ));
        }
        if proxy::source_of(p, r)? != 0 {
            return Err(SwapError::codec(
                "assign() is only valid for proxies held by application \
                 code (source swap-cluster-0)",
            ));
        }
        proxy::set_assign_mark(p, r, true)
    }

    // --- Interceptor entry points (called via the shim) ----------------------

    pub(crate) fn on_cluster_replicated(
        &mut self,
        p: &mut Process,
        info: &ClusterInfo,
    ) -> Result<()> {
        let sc = self.sc_for_repl_cluster(info.repl_cluster);
        // Tag members and register them.
        let mut bytes = 0;
        for &m in &info.members {
            let size = p.heap().get(m)?.size();
            bytes += size;
            let h = p.heap_mut().get_mut(m)?.header_mut();
            h.swap_cluster = sc;
            let oid = h.oid;
            let entry = self.clusters.entry(sc).or_default();
            entry.members.push((oid, m));
        }
        let entry = self.clusters.entry(sc).or_default();
        entry.bytes += bytes;
        // Re-mediate references:
        // 1. fresh member fields that point out of the swap-cluster;
        for &m in &info.members {
            let field_count = p.heap().get(m)?.fields().len();
            for idx in 0..field_count {
                self.mediate_slot(p, m, sc, idx)?;
            }
        }
        // 2. older holders whose fault proxy was just replaced by a member;
        for &(holder, idx) in &info.patched_fields {
            if !p.heap().is_live(holder) {
                continue;
            }
            let holder_sc = p.heap().get(holder)?.header().swap_cluster;
            self.mediate_slot(p, holder, holder_sc, idx)?;
        }
        // 3. globals (swap-cluster-0) whose fault proxy was just replaced.
        for name in &info.patched_globals {
            let Ok(value) = p.global(name) else { continue };
            if let obiwan_heap::Value::Ref(t) = value {
                let t_obj = p.heap().get(t)?;
                if t_obj.kind() == ObjectKind::App && t_obj.header().swap_cluster != 0 {
                    let oid = t_obj.header().oid;
                    let sc_of_t = t_obj.header().swap_cluster;
                    let _ = sc_of_t;
                    let proxy = self.proxy_for(p, 0, t, oid)?;
                    p.set_global(name.clone(), obiwan_heap::Value::Ref(proxy));
                }
            }
        }
        Ok(())
    }

    /// Wrap one slot of `holder` (which lives in `holder_sc`) if it holds a
    /// direct cross-swap-cluster reference.
    fn mediate_slot(
        &mut self,
        p: &mut Process,
        holder: ObjRef,
        holder_sc: u32,
        idx: usize,
    ) -> Result<()> {
        let value = p.heap().get(holder)?.fields()[idx].clone();
        let obiwan_heap::Value::Ref(t) = value else {
            return Ok(());
        };
        let (t_kind, t_sc, t_oid) = {
            let o = p.heap().get(t)?;
            (o.kind(), o.header().swap_cluster, o.header().oid)
        };
        match t_kind {
            ObjectKind::App | ObjectKind::Replacement if t_sc != holder_sc => {
                let proxy = self.proxy_for(p, holder_sc, t, t_oid)?;
                p.heap_mut()
                    .set_any_field(holder, idx, obiwan_heap::Value::Ref(proxy))?;
            }
            _ => {}
        }
        Ok(())
    }

    pub(crate) fn on_resolve_invocable(
        &mut self,
        p: &mut Process,
        obj: ObjRef,
    ) -> Result<Resolved> {
        match p.heap().get(obj)?.kind() {
            ObjectKind::SwapProxy => {
                let mut target = proxy::target_of(p, obj)?;
                if p.heap().get(target)?.kind() == ObjectKind::Replacement {
                    let sc = p.heap().get(target)?.header().swap_cluster;
                    self.swap_in(p, sc)?;
                    target = proxy::target_of(p, obj)?;
                }
                let target_sc = p.heap().get(target)?.header().swap_cluster;
                self.note_crossing(target_sc);
                if p.heap().get(target)?.kind() != ObjectKind::App {
                    return Err(SwapError::codec(format!(
                        "swap-cluster-proxy target did not resolve to an \
                         application object (found {})",
                        p.heap().get(target)?.kind()
                    )));
                }
                Ok(Resolved {
                    target,
                    entry_proxy: Some(obj),
                })
            }
            ObjectKind::Replacement => Err(SwapError::codec(
                "a replacement-object was invoked directly; references to \
                 swapped objects must be mediated by swap-cluster-proxies",
            )),
            other => Err(SwapError::codec(format!(
                "resolve_invocable called on a {other} object"
            ))),
        }
    }
}

/// The adapter installing a [`SwappingManager`] as a replication
/// [`Interceptor`]. Holds the shared handle; the middleware keeps the
/// other.
#[derive(Debug, Clone)]
pub struct InterceptorShim(pub SharedManager);

impl Interceptor for InterceptorShim {
    fn cluster_replicated(
        &mut self,
        p: &mut Process,
        info: &ClusterInfo,
    ) -> obiwan_replication::Result<()> {
        lock_manager(&self.0)
            .map_err(SwapError::into_repl)?
            .on_cluster_replicated(p, info)
            .map_err(SwapError::into_repl)
    }

    fn resolve_invocable(
        &mut self,
        p: &mut Process,
        obj: ObjRef,
    ) -> obiwan_replication::Result<Resolved> {
        // Resolving a zombie proxy reloads its cluster mid-invocation; the
        // reload must see the same manager state the invocation saw, so
        // the guard genuinely spans the fetch until the sharding refactor
        // (ROADMAP item 1) gives faults their own shard.
        lock_manager(&self.0)
            .map_err(SwapError::into_repl)?
            // lint:allow(S9, reload-mid-invocation is re-entrant on the manager by design)
            .on_resolve_invocable(p, obj)
            .map_err(SwapError::into_repl)
    }

    fn transfer_ref(
        &mut self,
        p: &mut Process,
        r: ObjRef,
        to_sc: u32,
        entry_proxy: Option<ObjRef>,
    ) -> obiwan_replication::Result<ObjRef> {
        lock_manager(&self.0)
            .map_err(SwapError::into_repl)?
            .transfer(p, r, to_sc, entry_proxy)
            .map_err(SwapError::into_repl)
    }

    fn resolve_swapped(
        &mut self,
        p: &mut Process,
        oid: Oid,
    ) -> obiwan_replication::Result<Option<ObjRef>> {
        let mut manager = lock_manager(&self.0).map_err(SwapError::into_repl)?;
        let Some(replacement) = p.swapped_replacement(oid) else {
            return Ok(None);
        };
        let sc = p
            .heap()
            .get(replacement)
            .map_err(|e| SwapError::from(e).into_repl())?
            .header()
            .swap_cluster;
        // Same shape as resolve_invocable: the swapped identity must be
        // reloaded under the guard that observed it swapped, or a racing
        // detach could re-swap it between lookup and fetch.
        // lint:allow(S9, reload-mid-resolution is re-entrant on the manager by design)
        manager.swap_in(p, sc).map_err(SwapError::into_repl)?;
        Ok(p.lookup_replica(oid))
    }
}

/// Map a [`ReplError`] from an inner invocation back into a [`SwapError`],
/// used by middleware convenience wrappers.
pub(crate) fn repl_to_swap(e: ReplError) -> SwapError {
    SwapError::Repl(e)
}
