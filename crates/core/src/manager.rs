//! The SwappingManager (paper §4): swap-cluster bookkeeping, the proxy
//! interception rules, and crossing statistics.
//!
//! The manager "is registered as a listener of all events regarding
//! replication of clusters of objects" (here: as the [`Interceptor`] of the
//! replication [`Process`]), "manages swapping by maintaining information
//! regarding all swap-clusters (loaded or swapped), and all objects
//! belonging to each one, stored in hash-tables. It also contains entries
//! for all swap-cluster-proxies w.r.t. references to/from each swap-cluster
//! (using weak-references)."
//!
//! Since the sharding refactor the manager is a concurrent engine: there
//! is no outer manager mutex. Cluster-keyed state lives in the sharded
//! lock table (`crate::shard`), process-wide state behind the coordinator
//! lock, and counters/events behind the recorder's own leaf lock. Every
//! operation takes `&self`; the documented acquisition order is
//! coordinator → shard (ascending index, via `lock_shard_pair` when two
//! are needed) → net → recorder, and no method ever acquires backwards.

use crate::proxy;
use crate::recorder::Recorder;
use crate::shard::{lock_coordinator, lock_shard, lock_shard_pair, shard_for, Coordinator, Shard};
use crate::swap_cluster::{SwapClusterEntry, SwapClusterState};
use crate::{Result, SwapConfig, SwapError, VictimPolicy};
use obiwan_heap::{ObjRef, ObjectKind, Oid};
use obiwan_net::{DeviceId, DeviceKind, NetError, NetFabric};
use obiwan_placement::{HolderCandidate, PlacementTable};
use obiwan_policy::PolicyEvent;
use obiwan_replication::{ClusterInfo, Interceptor, Process, ReplError, Resolved};
use std::collections::{BTreeSet, HashSet};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// A shared simulated world.
pub type SharedNet = Arc<Mutex<NetFabric>>;

/// A manager shared between the middleware facade and the process's
/// interceptor shim. The manager synchronizes internally (sharded lock
/// table), so the handle is a plain `Arc` — maintenance threads clone it
/// and call methods directly.
pub type SharedManager = Arc<SwappingManager>;

/// Lock the shared world, turning poisoning into a structured error
/// instead of a cascading panic.
pub(crate) fn lock_net(n: &SharedNet) -> Result<MutexGuard<'_, NetFabric>> {
    n.lock().map_err(|_| SwapError::LockPoisoned {
        what: "net",
        shard: None,
    })
}

/// Cumulative swapping statistics.
///
/// Marked `#[non_exhaustive]`: counters are added as the lifecycle grows
/// richer, and every one of them must keep folding exactly out of the
/// event trace (see `obiwan_trace::derive::fold_counts`). Construct via
/// `Default` and read fields; functional-update syntax from a literal is
/// intentionally unavailable outside this crate.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SwapStats {
    /// Swap-out operations completed.
    pub swap_outs: u64,
    /// Swap-in (reload) operations completed.
    pub swap_ins: u64,
    /// Blobs dropped on storing devices (GC cooperation + eager reload
    /// drops).
    pub blobs_dropped: u64,
    /// Blob drops that could not reach the storing device.
    pub drop_failures: u64,
    /// Swap-cluster-proxies created (rule i).
    pub proxies_created: u64,
    /// Proxy reuses via the (source, target) table (rule ii).
    pub proxies_reused: u64,
    /// Proxies dismantled because the reference re-entered its own cluster
    /// (rule iii).
    pub proxies_dismantled: u64,
    /// Self-patches performed by assign-marked proxies (the iteration
    /// optimization).
    pub assign_patches: u64,
    /// Boundary crossings observed.
    pub crossings: u64,
    /// Payload bytes shipped out / fetched back.
    pub bytes_swapped_out: u64,
    /// Payload bytes fetched back on reloads.
    pub bytes_swapped_in: u64,
    /// Reloads that succeeded only after failing over past an unreachable
    /// holder.
    pub reload_failovers: u64,
    /// Repair-sweep passes that re-replicated at least one blob.
    pub repairs: u64,
    /// Bytes the repair sweep moved (fetches from surviving holders plus
    /// stores onto new ones).
    pub repair_bytes: u64,
}

/// The swapping manager. One per device process; installed as the
/// process's [`Interceptor`] through the interceptor shim the middleware
/// builder wires up.
#[derive(Debug)]
pub struct SwappingManager {
    pub(crate) net: SharedNet,
    /// The device this manager runs on (the memory-constrained one).
    pub(crate) home: DeviceId,
    /// Process-wide state: config, proxy tables, grouping, policy events.
    pub(crate) coordinator: Mutex<Coordinator>,
    /// The sharded lock table holding all cluster-keyed state.
    pub(crate) shards: Box<[Mutex<Shard>]>,
    /// The single choke point for counters *and* lifecycle events (leaf
    /// of the lock hierarchy; synchronizes internally).
    pub(crate) recorder: Recorder,
    /// Logical clock for recency statistics.
    crossing_clock: AtomicU64,
    /// Round-robin victim cursor.
    victim_cursor: AtomicU32,
    /// [`obiwan_net::SimNet::churn_seq`] at the last holder-loss scan (`u64::MAX`
    /// until the first); an unchanged sequence lets
    /// [`SwappingManager::note_departures`] skip the placement-table
    /// sweep entirely on quiet pumps.
    seen_churn_seq: AtomicU64,
}

impl SwappingManager {
    /// Create a manager for the device `home` in the shared world `net`.
    pub fn new(config: SwapConfig, net: SharedNet, home: DeviceId) -> Self {
        let shard_count = config.shard_count.max(1);
        SwappingManager {
            net,
            home,
            recorder: Recorder::new(config.trace_capacity),
            coordinator: Mutex::new(Coordinator::new(config)),
            shards: (0..shard_count)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            crossing_clock: AtomicU64::new(0),
            victim_cursor: AtomicU32::new(0),
            seen_churn_seq: AtomicU64::new(u64::MAX),
        }
    }

    /// Number of shards in the lock table.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Which shard holds the state of swap-cluster `sc`.
    pub fn shard_of(&self, sc: u32) -> usize {
        shard_for(sc, self.shards.len())
    }

    /// Config plus the policy-set device-kind preference, snapshotted in
    /// one coordinator acquisition. Reads recover from poison (both are
    /// plain-old-data); call *before* taking any shard guard — the
    /// hierarchy forbids coordinator acquisition below a shard.
    pub(crate) fn prefs(&self) -> (SwapConfig, Option<DeviceKind>) {
        let c = self
            .coordinator
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        (c.config, c.preferred_kind)
    }

    /// Try to drop blobs orphaned by failed swap-outs (best effort; a
    /// departed device keeps its orphan until it returns).
    pub fn sweep_orphaned_blobs(&self) -> usize {
        let mut dropped = 0;
        for idx in 0..self.shards.len() {
            // Blob drops are idempotent, so a poisoned shard is still safe
            // to sweep; recover the guard rather than cascade the panic.
            let mut shard = self.shards[idx]
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if shard.orphaned_blobs.is_empty() {
                continue;
            }
            let mut net = self.net.lock().unwrap_or_else(PoisonError::into_inner);
            dropped += sweep_shard_orphans(&mut net, self.home, &mut shard);
        }
        dropped
    }

    /// The configuration.
    pub fn config(&self) -> SwapConfig {
        self.prefs().0
    }

    /// Change the victim policy at runtime.
    pub fn set_victim_policy(&self, policy: VictimPolicy) {
        self.coordinator
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .config
            .victim_policy = policy;
    }

    /// Prefer a device kind when choosing swap targets.
    pub fn set_preferred_kind(&self, kind: Option<DeviceKind>) {
        self.coordinator
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .preferred_kind = kind;
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> SwapStats {
        self.recorder.stats()
    }

    /// Export the lifecycle event stream with run metadata, ready for
    /// [`obiwan_trace::Trace::to_json`] or the conformance checker.
    pub fn export_trace(&self) -> obiwan_trace::Trace {
        let config = self.config();
        let mut clusters: BTreeSet<u32> = self.recorder.known_clusters();
        let mut swapped: Vec<u32> = Vec::new();
        for idx in 0..self.shards.len() {
            let shard = self.shards[idx]
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            clusters.extend(shard.clusters.keys().copied());
            swapped.extend(
                shard
                    .clusters
                    .iter()
                    .filter(|(_, e)| matches!(e.state, SwapClusterState::SwappedOut { .. }))
                    .map(|(id, _)| *id),
            );
        }
        swapped.sort_unstable();
        let (capacity, recorded, dropped, events) = self.recorder.export();
        obiwan_trace::Trace {
            meta: obiwan_trace::TraceMeta {
                home: self.home.index(),
                replication_factor: config.replication_factor as u32,
                wire_format: config.wire_format.name().to_owned(),
                capacity: capacity as u64,
                recorded,
                dropped,
                clusters: clusters.into_iter().collect(),
                swapped,
            },
            events,
        }
    }

    /// Drain policy events.
    pub fn take_events(&self) -> Vec<PolicyEvent> {
        std::mem::take(
            &mut self
                .coordinator
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .events,
        )
    }

    /// Registry entry of a swap-cluster (a point-in-time copy; the live
    /// entry stays behind its shard lock).
    ///
    /// # Errors
    ///
    /// [`SwapError::UnknownSwapCluster`].
    pub fn cluster(&self, sc: u32) -> Result<SwapClusterEntry> {
        let shard = lock_shard(&self.shards, self.shard_of(sc))?;
        shard
            .clusters
            .get(&sc)
            .cloned()
            .ok_or(SwapError::UnknownSwapCluster { swap_cluster: sc })
    }

    /// Ids of all registered swap-clusters (ascending).
    pub fn cluster_ids(&self) -> Vec<u32> {
        self.collect_cluster_ids(|_| true)
    }

    /// Ids of swap-clusters currently loaded.
    pub fn loaded_clusters(&self) -> Vec<u32> {
        self.collect_cluster_ids(SwapClusterEntry::is_loaded)
    }

    /// Ids of swap-clusters currently swapped out.
    pub fn swapped_clusters(&self) -> Vec<u32> {
        self.collect_cluster_ids(|e| matches!(e.state, SwapClusterState::SwappedOut { .. }))
    }

    fn collect_cluster_ids(&self, keep: impl Fn(&SwapClusterEntry) -> bool) -> Vec<u32> {
        let mut ids: Vec<u32> = Vec::new();
        for idx in 0..self.shards.len() {
            let Ok(shard) = lock_shard(&self.shards, idx) else {
                continue;
            };
            ids.extend(
                shard
                    .clusters
                    .iter()
                    .filter(|(_, e)| keep(e))
                    .map(|(id, _)| *id),
            );
        }
        ids.sort_unstable();
        ids
    }

    /// Choose a victim among loaded swap-clusters per the configured
    /// policy; `None` when nothing is evictable.
    pub fn pick_victim(&self) -> Option<u32> {
        let policy = self.config().victim_policy;
        let mut entries: Vec<(u32, SwapClusterEntry)> = Vec::new();
        for idx in 0..self.shards.len() {
            let Ok(shard) = lock_shard(&self.shards, idx) else {
                continue;
            };
            entries.extend(shard.clusters.iter().map(|(id, e)| (*id, e.clone())));
        }
        // Policies see one ascending registry regardless of sharding.
        entries.sort_unstable_by_key(|(id, _)| *id);
        let cursor = self.victim_cursor.load(Ordering::Relaxed);
        let pick = policy.choose(entries.iter().map(|(id, e)| (*id, e)), cursor);
        if let Some(id) = pick {
            self.victim_cursor.store(id, Ordering::Relaxed);
        }
        pick
    }

    // --- Durability: placement table, holder loss, repair sweep --------------

    /// Merged view of every shard's placement table (auditor, tests,
    /// benches). A point-in-time copy; the live rows stay sharded.
    pub fn placements(&self) -> PlacementTable {
        let mut merged = PlacementTable::new();
        for idx in 0..self.shards.len() {
            let Ok(shard) = lock_shard(&self.shards, idx) else {
                continue;
            };
            merged.absorb(&shard.placements);
        }
        merged
    }

    /// The holder set backing swap-cluster `sc` while it is swapped out:
    /// `(epoch, key, holders)` from the owning shard's placement table,
    /// falling back to the single device recorded in the entry state.
    pub fn holders_of(&self, sc: u32) -> Option<(u32, String, Vec<DeviceId>)> {
        let shard = lock_shard(&self.shards, self.shard_of(sc)).ok()?;
        shard.holders_of(sc)
    }

    /// Detect blob holders that departed since the last pump and emit one
    /// [`PolicyEvent::HolderLost`] per fresh loss. A holder that returns
    /// is eligible to be reported again if it departs later.
    pub fn note_departures(&self) -> Result<()> {
        let (config, _) = self.prefs();
        let present: HashSet<DeviceId> = {
            let net = lock_net(&self.net)?;
            self.recorder.sync_clock(&net);
            // Departure notification: an unchanged churn sequence means no
            // device moved and no link changed since the last scan, so the
            // placement sweep below would find exactly what it found then.
            let seq = net.churn_seq();
            if self.seen_churn_seq.swap(seq, Ordering::Relaxed) == seq {
                return Ok(());
            }
            if config.allow_relays {
                net.reachable(self.home)
                    .into_iter()
                    .map(|(d, _)| d)
                    .collect()
            } else {
                net.nearby(self.home).into_iter().collect()
            }
        };
        let mut fresh_events: Vec<PolicyEvent> = Vec::new();
        for idx in 0..self.shards.len() {
            let mut shard = lock_shard(&self.shards, idx)?;
            let shard = &mut *shard;
            let mut fresh: Vec<(u32, DeviceId, i64)> = Vec::new();
            for (sc, _epoch, placement) in shard.placements.iter() {
                let left = placement
                    .holders
                    .iter()
                    .filter(|d| present.contains(d))
                    .count() as i64;
                for &holder in &placement.holders {
                    if present.contains(&holder) {
                        shard.lost_reported.remove(&(sc, holder));
                    } else if !shard.lost_reported.contains(&(sc, holder)) {
                        fresh.push((sc, holder, left));
                    }
                }
            }
            for (sc, holder, left) in fresh {
                shard.lost_reported.insert((sc, holder));
                self.recorder.holder_lost(sc, holder.index(), left as u32);
                fresh_events.push(PolicyEvent::HolderLost {
                    swap_cluster: sc as i64,
                    device: holder.index() as i64,
                    holders_left: left,
                });
            }
        }
        if !fresh_events.is_empty() {
            lock_coordinator(&self.coordinator)?
                .events
                .extend(fresh_events);
        }
        Ok(())
    }

    /// The repair sweep: for every swapped-out cluster whose blob has
    /// fewer reachable copies than [`SwapConfig::replication_factor`],
    /// re-replicate from a surviving holder onto fresh devices — while the
    /// cluster stays swapped out, exactly as a decentralized content-repair
    /// pass would. Departed holders are pruned from the placement (their
    /// stale copies become tracked orphans, swept if they return); a
    /// cluster whose every holder is gone keeps its record so a returning
    /// holder makes the blob reachable again.
    ///
    /// Per entry the sweep runs in two phases: bytes move under the net
    /// lock only, then the outcome commits under the owning shard lock —
    /// revalidating that the placement is still the one that was probed
    /// (a racing reload turns freshly-placed copies into tracked orphans
    /// instead of silently resurrecting a dead placement).
    ///
    /// Returns `(clusters_repaired, bytes_moved)`.
    ///
    /// # Errors
    ///
    /// [`SwapError::LockPoisoned`], or hard network errors; per-device
    /// refusals (quota, departure, injected faults) are skipped.
    pub fn repair_placements(&self) -> Result<(u64, u64)> {
        let (config, preferred) = self.prefs();
        let k = config.replication_factor;
        let allow_relays = config.allow_relays;
        let home = self.home;
        let mut entries: Vec<(u32, u32, String, Vec<DeviceId>)> = Vec::new();
        for idx in 0..self.shards.len() {
            let shard = lock_shard(&self.shards, idx)?;
            for (sc, epoch, p) in shard.placements.iter() {
                entries.push((sc, epoch, p.key.clone(), p.holders.clone()));
            }
        }
        entries.sort_unstable_by_key(|e| e.0);
        {
            let net = lock_net(&self.net)?;
            self.recorder.sync_clock(&net);
        }
        self.recorder.repair_start();
        let mut repaired = 0u64;
        let mut moved = 0u64;
        for (sc, epoch, key, holders) in entries {
            // Phase A: probe and move bytes under the net lock only.
            let mut net = lock_net(&self.net)?;
            self.recorder.sync_clock(&net);
            let present: HashSet<DeviceId> = if allow_relays {
                net.reachable(home).into_iter().map(|(d, _)| d).collect()
            } else {
                net.nearby(home).into_iter().collect()
            };
            // Live = still reachable and still holding the bytes.
            let mut live: Vec<DeviceId> = holders
                .iter()
                .copied()
                .filter(|&d| present.contains(&d) && net.holds_blob(d, &key))
                .collect();
            // Re-adopt copies already sitting on reachable devices outside
            // the holder list — a pruned holder that walked back in with
            // its copy intact. The key embeds home device, cluster and
            // epoch, so an exact key match *is* the current bytes; adopting
            // it costs no airtime where a re-replication would.
            let mut unorphan: Vec<DeviceId> = Vec::new();
            for d in net.holders_of_key(&key) {
                if d != home && present.contains(&d) && !live.contains(&d) {
                    live.push(d);
                    unorphan.push(d);
                }
            }
            let dead: Vec<DeviceId> = holders
                .iter()
                .copied()
                .filter(|d| !present.contains(d))
                .collect();
            if live.is_empty() {
                // No copy to repair from; keep the record — a departed
                // holder returning makes the blob reachable again.
                continue;
            }
            // Re-adoption can push the live set past the placement width;
            // prune back down to `k` so the table never over-replicates
            // (the excess copies become tracked orphans).
            let mut orphan: Vec<DeviceId> = Vec::new();
            if live.len() > k {
                orphan.extend(live[k..].iter().copied());
                live.truncate(k);
            }
            let deficit = k.saturating_sub(live.len());
            let mut added: Vec<DeviceId> = Vec::new();
            let mut sent_bytes = 0u64;
            if deficit > 0 {
                let mut data = None;
                for &src in &live {
                    let fetched = if allow_relays {
                        net.fetch_blob_routed(home, src, &key).map(|(_, b)| b)
                    } else {
                        net.fetch_blob(home, src, &key)
                    };
                    match fetched {
                        Ok(b) => {
                            data = Some(b);
                            break;
                        }
                        Err(NetError::Departed { .. })
                        | Err(NetError::UnknownBlob { .. })
                        | Err(NetError::NotConnected { .. })
                        | Err(NetError::InjectedFailure { .. }) => continue,
                        Err(e) => return Err(e.into()),
                    }
                }
                let Some(data) = data else { continue };
                sent_bytes += data.len() as u64;
                let candidates =
                    holder_candidates(&net, home, &config, preferred, &key, data.len(), &holders);
                for c in candidates {
                    if added.len() >= deficit {
                        break;
                    }
                    let sent = if allow_relays {
                        net.send_blob_routed(home, c.device, &key, data.clone())
                            .map(|(_, cost)| cost)
                    } else {
                        net.send_blob(home, c.device, &key, data.clone())
                    };
                    match sent {
                        Ok(cost) => {
                            self.recorder.sync_clock(&net);
                            self.recorder.blob_shipped(
                                None,
                                sc,
                                epoch,
                                c.device.index(),
                                data.len() as u64,
                                cost.as_micros(),
                            );
                            added.push(c.device);
                            sent_bytes += data.len() as u64;
                        }
                        Err(NetError::DuplicateBlob { .. }) => {
                            // The device already holds this exact key —
                            // a pruned holder that returned with its copy
                            // intact. Re-adopt the copy instead of
                            // sweeping it as an orphan.
                            added.push(c.device);
                            unorphan.push(c.device);
                        }
                        Err(NetError::QuotaExceeded { .. })
                        | Err(NetError::InjectedFailure { .. })
                        | Err(NetError::NotConnected { .. })
                        | Err(NetError::Departed { .. }) => continue,
                        Err(e) => return Err(e.into()),
                    }
                }
            }
            drop(net);
            moved += sent_bytes;
            // Phase B: commit under the owning shard lock, revalidating
            // that the probed placement is still current.
            let new_holders: Vec<DeviceId> =
                live.iter().copied().chain(added.iter().copied()).collect();
            let mut shard = lock_shard(&self.shards, self.shard_of(sc))?;
            let still = shard.placements.active(sc).map(|(e, p)| (e, p.key.clone()));
            if still != Some((epoch, key.clone())) {
                // The cluster reloaded (or re-swapped) while the bytes
                // moved; the copies just placed back no cluster — track
                // them so the orphan sweep reclaims them.
                for &d in &added {
                    shard.orphaned_blobs.push((d, key.clone()));
                }
                continue;
            }
            for d in &unorphan {
                shard
                    .orphaned_blobs
                    .retain(|(od, ok)| !(od == d && *ok == key));
            }
            for &d in &orphan {
                shard.orphaned_blobs.push((d, key.clone()));
            }
            if new_holders != holders {
                // Stale copies on pruned (departed) holders get swept if
                // the device ever returns.
                for &d in &dead {
                    shard.orphaned_blobs.push((d, key.clone()));
                    shard.lost_reported.remove(&(sc, d));
                }
                shard
                    .placements
                    .record(sc, epoch, key.clone(), new_holders.clone());
                if let Some(entry) = shard.clusters.get_mut(&sc) {
                    if let SwapClusterState::SwappedOut { device, .. } = &mut entry.state {
                        if let Some(&primary) = new_holders.first() {
                            *device = primary;
                        }
                    }
                }
                if !added.is_empty() {
                    repaired += 1;
                }
            }
        }
        self.recorder.repair_end(repaired, moved);
        Ok((repaired, moved))
    }

    // --- Swap-cluster assignment (replication listener) ---------------------

    /// The swap-cluster a replication cluster belongs to, creating the
    /// grouping lazily: `clusters_per_swap_cluster` consecutive replication
    /// clusters share one swap-cluster. Caller holds the coordinator; the
    /// owning shard is locked briefly to seed the registry entry
    /// (coordinator → shard is the documented order).
    fn sc_for_repl_cluster(&self, c: &mut Coordinator, repl_cluster: u32) -> Result<u32> {
        if let Some(&sc) = c.repl_to_sc.get(&repl_cluster) {
            return Ok(sc);
        }
        let group = repl_cluster / c.config.clusters_per_swap_cluster as u32;
        let sc = group + 1; // 0 is reserved for swap-cluster-0
        c.next_sc = c.next_sc.max(sc + 1);
        c.repl_to_sc.insert(repl_cluster, sc);
        {
            let mut shard = lock_shard(&self.shards, self.shard_of(sc))?;
            shard.clusters.entry(sc).or_default();
        }
        self.recorder.register_cluster(sc);
        Ok(sc)
    }

    /// Record a boundary crossing from `from_sc` into `to_sc`. The two
    /// clusters may live on different shards, so this is the canonical
    /// two-shard transaction: both guards come from `lock_shard_pair`,
    /// which orders them by ascending shard index.
    fn note_crossing(&self, from_sc: u32, to_sc: u32) -> Result<()> {
        let clock = self.crossing_clock.fetch_add(1, Ordering::Relaxed) + 1;
        self.recorder.note_crossing();
        let a = self.shard_of(from_sc);
        let b = self.shard_of(to_sc);
        let (mut first, mut second) = lock_shard_pair(&self.shards, a, b)?;
        let lo = a.min(b);
        {
            let to_shard: &mut Shard = if b == lo {
                &mut first
            } else {
                match second.as_mut() {
                    Some(g) => g,
                    None => &mut first,
                }
            };
            if let Some(e) = to_shard.clusters.get_mut(&to_sc) {
                e.crossings += 1;
                e.last_crossing = clock;
            }
        }
        {
            let from_shard: &mut Shard = if a == lo {
                &mut first
            } else {
                match second.as_mut() {
                    Some(g) => g,
                    None => &mut first,
                }
            };
            if let Some(e) = from_shard.clusters.get_mut(&from_sc) {
                e.out_crossings += 1;
            }
        }
        Ok(())
    }

    // --- The proxy rules ------------------------------------------------------

    /// Get or create the swap-cluster-proxy mediating a *graph edge*:
    /// a field of `source_sc` referencing `target` (identity `oid`).
    /// Edges reuse one proxy per (source, target) pair — the paper's "when
    /// there are multiple references to the same object, across the same
    /// pair of swap-clusters, only a swap-cluster-proxy is required"
    /// (rules i and ii). Caller holds the coordinator.
    pub(crate) fn proxy_for(
        &self,
        p: &mut Process,
        c: &mut Coordinator,
        source_sc: u32,
        target: ObjRef,
        oid: Oid,
    ) -> Result<ObjRef> {
        if let Some(&weak) = c.proxy_index.get(&(source_sc, oid)) {
            if let Some(existing) = p.heap().weak_get(weak) {
                self.recorder.proxy_reused(source_sc);
                return Ok(existing);
            }
            c.proxy_index.remove(&(source_sc, oid));
        }
        let proxy = self.proxy_fresh(p, c, source_sc, target, oid)?;
        let weak = p.heap_mut().weak_ref(proxy)?;
        c.proxy_index.insert((source_sc, oid), weak);
        Ok(proxy)
    }

    /// Create a fresh proxy for a *transient* delivery (a reference handed
    /// as an argument or return value). The paper's Tests B1/A2 hinge on
    /// these being created per reference and "later reclaimed by the LGC" —
    /// they are never entered into the edge-reuse index.
    pub(crate) fn proxy_fresh(
        &self,
        p: &mut Process,
        c: &mut Coordinator,
        source_sc: u32,
        target: ObjRef,
        oid: Oid,
    ) -> Result<ObjRef> {
        let proxy = proxy::create(p, source_sc, target, oid)?;
        let weak = p.heap_mut().weak_ref(proxy)?;
        let target_sc = p.heap().get(target)?.header().swap_cluster;
        c.inbound.entry(target_sc).or_default().push(weak);
        c.outbound.entry(source_sc).or_default().push(weak);
        self.recorder.proxy_created(source_sc);
        Ok(proxy)
    }

    /// Deliver `target` (identity `oid`) into the context of `to_sc`,
    /// honoring an assign-marked entry proxy (the iteration optimization:
    /// the marked proxy patches itself and is returned instead of a fresh
    /// proxy).
    fn deliver_cross(
        &self,
        p: &mut Process,
        c: &mut Coordinator,
        to_sc: u32,
        target: ObjRef,
        oid: Oid,
        entry_proxy: Option<ObjRef>,
    ) -> Result<ObjRef> {
        if let Some(ep) = entry_proxy {
            if p.heap().is_live(ep)
                && proxy::assign_mark_of(p, ep)?
                && proxy::source_of(p, ep)? == to_sc
            {
                // A marked proxy is a private iterator variable: it patches
                // itself and is never entered into the reuse index (other
                // holders must not alias an object that re-targets under
                // them).
                let prev_target = proxy::target_of(p, ep)?;
                let prev_sc = p
                    .heap()
                    .get(prev_target)
                    .map(|o| o.header().swap_cluster)
                    .unwrap_or(u32::MAX);
                proxy::retarget(p, ep, target, oid)?;
                let target_sc = p.heap().get(target)?.header().swap_cluster;
                if target_sc != prev_sc {
                    // Crossing into a new cluster: (re-)register as inbound
                    // there so swap-out / reload keep patching it.
                    let weak = p.heap_mut().weak_ref(ep)?;
                    c.inbound.entry(target_sc).or_default().push(weak);
                }
                self.recorder.assign_patch(target_sc);
                return Ok(ep);
            }
        }
        self.proxy_fresh(p, c, to_sc, target, oid)
    }

    /// The complete transfer rule for a reference moving into `to_sc`.
    pub(crate) fn transfer(
        &self,
        p: &mut Process,
        r: ObjRef,
        to_sc: u32,
        entry_proxy: Option<ObjRef>,
    ) -> Result<ObjRef> {
        let (kind, r_sc, r_oid) = {
            let o = p.heap().get(r)?;
            (o.kind(), o.header().swap_cluster, o.header().oid)
        };
        match kind {
            // Not replicated yet: swap mediation happens at replication.
            ObjectKind::FaultProxy => Ok(r),
            ObjectKind::App | ObjectKind::Replacement => {
                if r_sc == to_sc {
                    Ok(r)
                } else {
                    let mut c = lock_coordinator(&self.coordinator)?;
                    self.deliver_cross(p, &mut c, to_sc, r, r_oid, entry_proxy)
                }
            }
            ObjectKind::SwapProxy => {
                let target = proxy::target_of(p, r)?;
                let target_sc = p.heap().get(target)?.header().swap_cluster;
                if target_sc == to_sc {
                    // Rule (iii): the reference re-enters its own cluster.
                    self.recorder.proxy_dismantled(to_sc);
                    Ok(target)
                } else if proxy::source_of(p, r)? == to_sc {
                    // Already the right mediator for this context.
                    Ok(r)
                } else {
                    let oid = proxy::oid_of(p, r)?;
                    let mut c = lock_coordinator(&self.coordinator)?;
                    self.deliver_cross(p, &mut c, to_sc, target, oid, entry_proxy)
                }
            }
        }
    }

    /// Create a dedicated iterator proxy for application code: a fresh
    /// swap-cluster-0 proxy denoting the same object as `r`, assign-marked
    /// so it patches itself as the iteration advances (paper §4: the
    /// marked proxy "was indeed the actual variable"). The proxy is kept
    /// out of the reuse index — it is private to the iterating variable.
    ///
    /// # Errors
    ///
    /// Heap errors, or [`SwapError::Codec`] when `r` does not denote an
    /// application object.
    pub fn make_cursor(&self, p: &mut Process, r: ObjRef) -> Result<ObjRef> {
        let (target, oid) = match p.heap().get(r)?.kind() {
            ObjectKind::SwapProxy => (proxy::target_of(p, r)?, proxy::oid_of(p, r)?),
            ObjectKind::App => (r, p.heap().get(r)?.header().oid),
            other => {
                return Err(SwapError::codec(format!(
                    "cannot build an iterator over a {other} object"
                )))
            }
        };
        let cursor = proxy::create(p, 0, target, oid)?;
        proxy::set_assign_mark(p, cursor, true)?;
        let target_sc = p.heap().get(target)?.header().swap_cluster;
        let weak = p.heap_mut().weak_ref(cursor)?;
        {
            let mut c = lock_coordinator(&self.coordinator)?;
            c.inbound.entry(target_sc).or_default().push(weak);
        }
        self.recorder.proxy_created(0);
        Ok(cursor)
    }

    /// Assign-mark a swap-cluster-proxy held by application code — the
    /// paper's `SwapClusterUtils.assign` (§4). Only proxies with source in
    /// swap-cluster-0 may be marked. Touches only the heap, so it takes no
    /// manager lock at all.
    ///
    /// # Errors
    ///
    /// [`SwapError::Codec`] when `r` is not a swap-cluster-proxy, or its
    /// source is not swap-cluster-0.
    pub fn assign(&self, p: &mut Process, r: ObjRef) -> Result<()> {
        if p.heap().get(r)?.kind() != ObjectKind::SwapProxy {
            return Err(SwapError::codec(
                "assign() takes a swap-cluster-proxy reference",
            ));
        }
        if proxy::source_of(p, r)? != 0 {
            return Err(SwapError::codec(
                "assign() is only valid for proxies held by application \
                 code (source swap-cluster-0)",
            ));
        }
        proxy::set_assign_mark(p, r, true)
    }

    // --- Interceptor entry points (called via the shim) ----------------------

    pub(crate) fn on_cluster_replicated(&self, p: &mut Process, info: &ClusterInfo) -> Result<()> {
        let mut c = lock_coordinator(&self.coordinator)?;
        let sc = self.sc_for_repl_cluster(&mut c, info.repl_cluster)?;
        // Tag members and register them.
        let mut bytes = 0;
        let mut fresh: Vec<(Oid, ObjRef)> = Vec::new();
        for &m in &info.members {
            let size = p.heap().get(m)?.size();
            bytes += size;
            let h = p.heap_mut().get_mut(m)?.header_mut();
            h.swap_cluster = sc;
            fresh.push((h.oid, m));
        }
        {
            let mut shard = lock_shard(&self.shards, self.shard_of(sc))?;
            let entry = shard.clusters.entry(sc).or_default();
            entry.members.extend(fresh);
            entry.bytes += bytes;
        }
        // Re-mediate references:
        // 1. fresh member fields that point out of the swap-cluster;
        for &m in &info.members {
            let field_count = p.heap().get(m)?.fields().len();
            for idx in 0..field_count {
                self.mediate_slot(p, &mut c, m, sc, idx)?;
            }
        }
        // 2. older holders whose fault proxy was just replaced by a member;
        for &(holder, idx) in &info.patched_fields {
            if !p.heap().is_live(holder) {
                continue;
            }
            let holder_sc = p.heap().get(holder)?.header().swap_cluster;
            self.mediate_slot(p, &mut c, holder, holder_sc, idx)?;
        }
        // 3. globals (swap-cluster-0) whose fault proxy was just replaced.
        for name in &info.patched_globals {
            let Ok(value) = p.global(name) else { continue };
            if let obiwan_heap::Value::Ref(t) = value {
                let t_obj = p.heap().get(t)?;
                if t_obj.kind() == ObjectKind::App && t_obj.header().swap_cluster != 0 {
                    let oid = t_obj.header().oid;
                    let proxy = self.proxy_for(p, &mut c, 0, t, oid)?;
                    p.set_global(name.clone(), obiwan_heap::Value::Ref(proxy));
                }
            }
        }
        Ok(())
    }

    /// Wrap one slot of `holder` (which lives in `holder_sc`) if it holds a
    /// direct cross-swap-cluster reference. Caller holds the coordinator.
    fn mediate_slot(
        &self,
        p: &mut Process,
        c: &mut Coordinator,
        holder: ObjRef,
        holder_sc: u32,
        idx: usize,
    ) -> Result<()> {
        let value = p.heap().get(holder)?.fields()[idx].clone();
        let obiwan_heap::Value::Ref(t) = value else {
            return Ok(());
        };
        let (t_kind, t_sc, t_oid) = {
            let o = p.heap().get(t)?;
            (o.kind(), o.header().swap_cluster, o.header().oid)
        };
        match t_kind {
            ObjectKind::App | ObjectKind::Replacement if t_sc != holder_sc => {
                let proxy = self.proxy_for(p, c, holder_sc, t, t_oid)?;
                p.heap_mut()
                    .set_any_field(holder, idx, obiwan_heap::Value::Ref(proxy))?;
            }
            _ => {}
        }
        Ok(())
    }

    pub(crate) fn on_resolve_invocable(&self, p: &mut Process, obj: ObjRef) -> Result<Resolved> {
        match p.heap().get(obj)?.kind() {
            ObjectKind::SwapProxy => {
                let from_sc = proxy::source_of(p, obj)?;
                let mut target = proxy::target_of(p, obj)?;
                if p.heap().get(target)?.kind() == ObjectKind::Replacement {
                    let sc = p.heap().get(target)?.header().swap_cluster;
                    self.swap_in(p, sc)?;
                    target = proxy::target_of(p, obj)?;
                }
                let target_sc = p.heap().get(target)?.header().swap_cluster;
                self.note_crossing(from_sc, target_sc)?;
                if p.heap().get(target)?.kind() != ObjectKind::App {
                    return Err(SwapError::codec(format!(
                        "swap-cluster-proxy target did not resolve to an \
                         application object (found {})",
                        p.heap().get(target)?.kind()
                    )));
                }
                Ok(Resolved {
                    target,
                    entry_proxy: Some(obj),
                })
            }
            ObjectKind::Replacement => Err(SwapError::codec(
                "a replacement-object was invoked directly; references to \
                 swapped objects must be mediated by swap-cluster-proxies",
            )),
            other => Err(SwapError::codec(format!(
                "resolve_invocable called on a {other} object"
            ))),
        }
    }
}

/// Candidate holders for a blob of `need` bytes under `key`, ranked by
/// the configured placement policy. Devices in `exclude` (current
/// holders) are skipped. A free function over snapshotted prefs so it can
/// run under the net lock without touching coordinator or shard state.
pub(crate) fn holder_candidates(
    net: &NetFabric,
    home: DeviceId,
    config: &SwapConfig,
    preferred: Option<DeviceKind>,
    key: &str,
    need: usize,
    exclude: &[DeviceId],
) -> Vec<HolderCandidate> {
    let source: Vec<(DeviceId, usize)> = if config.allow_relays {
        net.reachable(home)
    } else {
        net.nearby(home).into_iter().map(|d| (d, 1)).collect()
    };
    let mut candidates: Vec<HolderCandidate> = source
        .into_iter()
        .filter(|(d, _)| !exclude.contains(d))
        .filter_map(|(d, hops)| {
            let profile = net.profile(d).ok()?;
            let kind_preferred = Some(profile.kind) == preferred;
            let free = net.free_storage(d).ok()?;
            // The store charges key bytes too.
            (free >= key.len() + need).then_some(HolderCandidate {
                device: d,
                kind_preferred,
                hops,
                free_storage: free,
            })
        })
        .collect();
    config.placement.policy().rank(&mut candidates);
    candidates
}

/// Drop one shard's orphaned blobs, best effort. Caller holds the shard
/// guard and the net guard (in that order).
pub(crate) fn sweep_shard_orphans(net: &mut NetFabric, home: DeviceId, shard: &mut Shard) -> usize {
    let before = shard.orphaned_blobs.len();
    shard
        .orphaned_blobs
        .retain(|(device, key)| net.drop_blob(home, *device, key).is_err());
    before - shard.orphaned_blobs.len()
}

/// The adapter installing a [`SwappingManager`] as a replication
/// [`Interceptor`]. Holds the shared handle; the middleware keeps the
/// other. The manager synchronizes internally, so the shim holds no
/// guard of its own — a reload triggered mid-invocation locks exactly
/// the shards and net windows it needs, phase by phase.
#[derive(Debug, Clone)]
pub struct InterceptorShim(pub SharedManager);

impl Interceptor for InterceptorShim {
    fn cluster_replicated(
        &mut self,
        p: &mut Process,
        info: &ClusterInfo,
    ) -> obiwan_replication::Result<()> {
        self.0
            .on_cluster_replicated(p, info)
            .map_err(SwapError::into_repl)
    }

    fn resolve_invocable(
        &mut self,
        p: &mut Process,
        obj: ObjRef,
    ) -> obiwan_replication::Result<Resolved> {
        self.0
            .on_resolve_invocable(p, obj)
            .map_err(SwapError::into_repl)
    }

    fn transfer_ref(
        &mut self,
        p: &mut Process,
        r: ObjRef,
        to_sc: u32,
        entry_proxy: Option<ObjRef>,
    ) -> obiwan_replication::Result<ObjRef> {
        self.0
            .transfer(p, r, to_sc, entry_proxy)
            .map_err(SwapError::into_repl)
    }

    fn resolve_swapped(
        &mut self,
        p: &mut Process,
        oid: Oid,
    ) -> obiwan_replication::Result<Option<ObjRef>> {
        let Some(replacement) = p.swapped_replacement(oid) else {
            return Ok(None);
        };
        let sc = p
            .heap()
            .get(replacement)
            .map_err(|e| SwapError::from(e).into_repl())?
            .header()
            .swap_cluster;
        self.0.swap_in(p, sc).map_err(SwapError::into_repl)?;
        Ok(p.lookup_replica(oid))
    }
}

/// Map a [`ReplError`] from an inner invocation back into a [`SwapError`],
/// used by middleware convenience wrappers.
pub(crate) fn repl_to_swap(e: ReplError) -> SwapError {
    SwapError::Repl(e)
}
