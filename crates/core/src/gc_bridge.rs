//! GC cooperation (paper §3, *Integration with GC Mechanisms*).
//!
//! "When a replacement-object, standing in for a swap-cluster that has been
//! swapped-out, becomes unreachable, this means that all object replicas
//! enclosed in it are already unreachable to the application. Therefore,
//! the swapping device may be instructed to discard the XML text."
//!
//! The heap reports the death of finalizable objects through
//! [`obiwan_heap::Heap::take_finalized`]; this module turns those records
//! into blob drops (for replacement-objects) and table pruning (for
//! swap-cluster-proxies, whose "finalizer invokes code that eliminates
//! entries referring to it").

use crate::manager::lock_net;
use crate::shard::{lock_coordinator, lock_shard};
use crate::swap_cluster::SwapClusterState;
use crate::{Result, SwappingManager};
use obiwan_heap::{ObjectKind, Oid};
use obiwan_replication::Process;

impl SwappingManager {
    /// Process the finalization records of the most recent collections:
    /// instruct storing devices to drop blobs of dead swapped-out clusters
    /// and prune dead proxies from the manager tables. Call after every
    /// collection (the middleware's `run_gc` does).
    ///
    /// Dead replacement-objects are handled per owning shard (shard → net
    /// per the hierarchy); dead proxies are batched and pruned in one
    /// coordinator acquisition afterwards, so coordinator and shard guards
    /// never overlap here.
    ///
    /// Returns the number of blobs dropped.
    ///
    /// # Errors
    ///
    /// Currently infallible (drop failures are tolerated and counted), but
    /// returns `Result` to allow stricter policies.
    pub fn process_finalized(&self, p: &mut Process) -> Result<usize> {
        let (config, _) = self.prefs();
        let records = p.heap_mut().take_finalized();
        let mut dropped = 0;
        let mut dead_proxy_keys: Vec<(u32, Oid)> = Vec::new();
        for fin in records {
            match fin.kind {
                ObjectKind::Replacement => {
                    let sc = fin.swap_cluster;
                    let mut shard = lock_shard(&self.shards, self.shard_of(sc))?;
                    if !matches!(
                        shard.clusters.get(&sc).map(|e| &e.state),
                        Some(SwapClusterState::SwappedOut { .. })
                    ) {
                        continue;
                    }
                    // Fan the drop out to every holder of the blob, not
                    // just the primary.
                    let Some((_, key, holders)) = shard.holders_of(sc) else {
                        continue;
                    };
                    let mut any_dropped = false;
                    {
                        let mut net = lock_net(&self.net)?;
                        self.recorder.sync_clock(&net);
                        for &holder in &holders {
                            let ok = if config.allow_relays {
                                net.drop_blob_routed(self.home, holder, &key).is_ok()
                            } else {
                                net.drop_blob(self.home, holder, &key).is_ok()
                            };
                            self.recorder.sync_clock(&net);
                            if ok {
                                self.recorder.blob_dropped(sc, holder.index(), true);
                                any_dropped = true;
                            } else {
                                // Holder departed or already lost the blob:
                                // account for it and track the possible
                                // stale copy for the orphan sweep.
                                self.recorder.blob_dropped(sc, holder.index(), false);
                                shard.orphaned_blobs.push((holder, key.clone()));
                            }
                        }
                    }
                    if any_dropped {
                        dropped += 1;
                    }
                    self.recorder.cluster_dropped(sc);
                    shard.placements.remove(sc);
                    if let Some(entry) = shard.clusters.get_mut(&sc) {
                        entry.state = SwapClusterState::Dropped;
                        for (oid, _) in entry.members.drain(..) {
                            p.clear_swapped(oid);
                        }
                    }
                }
                ObjectKind::SwapProxy => {
                    // fin.swap_cluster is the proxy's source, fin.oid its
                    // target identity — exactly the reuse-table key.
                    dead_proxy_keys.push((fin.swap_cluster, fin.oid));
                }
                _ => {}
            }
        }
        {
            let mut c = lock_coordinator(&self.coordinator)?;
            for key in dead_proxy_keys {
                // Only remove if the slot is actually dead (the key may
                // have been re-bound to a newer proxy).
                if let Some(&w) = c.proxy_index.get(&key) {
                    if p.heap().weak_get(w).is_none() {
                        c.proxy_index.remove(&key);
                    }
                }
            }
            // Opportunistically prune dead weak entries from the
            // per-cluster proxy lists (they accumulate as transient
            // proxies die).
            for list in c.inbound.values_mut() {
                list.retain(|&w| p.heap().weak_get(w).is_some());
            }
            for list in c.outbound.values_mut() {
                list.retain(|&w| p.heap().weak_get(w).is_some());
            }
        }
        Ok(dropped)
    }
}
