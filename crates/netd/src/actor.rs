//! One device, one actor: an inbox thread owning a blob store.
//!
//! Each device in an [`crate::ActorNet`] world is a thread draining an
//! `mpsc` inbox. Because an inbox is a FIFO channel and the actor applies
//! envelopes strictly in arrival order against a store only it touches,
//! delivery is *mailbox-ordered*: two operations sent to the same device
//! are applied in send order, the fleet-of-replicas shape of the
//! ic-kit-style runtimes named in the roadmap.
//!
//! The store behind an actor is either the simulation's own
//! [`obiwan_net::MemStore`] or a [`obiwan_blobd::RemoteStore`] fronting a
//! live `obiwan-blobd` process — the actor neither knows nor cares.

use obiwan_net::{BlobStore, Bytes, NetError, Result};
use std::collections::BTreeSet;
use std::sync::mpsc;
use std::time::Duration;

/// An operation shipped to a device actor.
pub(crate) enum Op {
    Store {
        /// Blob key.
        key: String,
        /// Opaque blob bytes.
        data: Bytes,
    },
    Fetch {
        /// Blob key.
        key: String,
    },
    Drop {
        /// Blob key.
        key: String,
    },
    /// Control plane: presence of a key (no airtime accounting).
    Contains {
        /// Blob key.
        key: String,
    },
    /// Control plane: sorted list of held keys.
    Keys,
    /// Control plane: blob bytes without the transfer verbs' semantics.
    Data {
        /// Blob key.
        key: String,
    },
    /// Control plane: bytes currently charged against the quota.
    Used,
    /// Stop the actor thread.
    Shutdown,
}

/// What an actor sends back.
pub(crate) enum Reply {
    Unit,
    Blob(Bytes),
    Flag(bool),
    Keys(Vec<String>),
    MaybeBlob(Option<Bytes>),
    Size(usize),
}

pub(crate) struct Envelope {
    pub(crate) op: Op,
    pub(crate) reply: mpsc::SyncSender<Result<Reply>>,
}

/// A running device actor: its inbox plus the join handle.
pub(crate) struct Actor {
    inbox: mpsc::Sender<Envelope>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Actor {
    /// Spawn an actor owning `store`.
    pub(crate) fn spawn(store: Box<dyn BlobStore + Send>) -> Actor {
        let (inbox, rx) = mpsc::channel::<Envelope>();
        let thread = std::thread::spawn(move || actor_main(store, &rx));
        Actor {
            inbox,
            thread: Some(thread),
        }
    }

    /// Ship `op` to the actor and wait for its reply. A dead actor or a
    /// reply that does not arrive within `timeout` maps to
    /// [`NetError::Departed`] — the same signal the core's failover
    /// machinery already handles for devices that walked away.
    pub(crate) fn call(
        &self,
        device: obiwan_net::DeviceId,
        op: Op,
        timeout: Duration,
    ) -> Result<Reply> {
        let (reply, rx) = mpsc::sync_channel(1);
        let departed = NetError::Departed { device };
        self.inbox
            .send(Envelope { op, reply })
            .map_err(|_| departed.clone())?;
        match rx.recv_timeout(timeout) {
            Ok(result) => result,
            Err(_) => Err(departed),
        }
    }
}

impl Drop for Actor {
    fn drop(&mut self) {
        let (reply, _rx) = mpsc::sync_channel(1);
        let _ = self.inbox.send(Envelope {
            op: Op::Shutdown,
            reply,
        });
        if let Some(handle) = self.thread.take() {
            let _ = handle.join();
        }
    }
}

/// The actor loop: drain the inbox in order until shutdown.
fn actor_main(mut store: Box<dyn BlobStore + Send>, rx: &mpsc::Receiver<Envelope>) {
    // `BlobStore` cannot enumerate keys, so the actor mirrors them:
    // updated only on verbs that succeeded against the store, the mirror
    // stays exact for local stores and eventually-exact for remote ones.
    let mut keys: BTreeSet<String> = BTreeSet::new();
    while let Ok(Envelope { op, reply }) = rx.recv() {
        let result = match op {
            Op::Store { key, data } => {
                let r = store.store(&key, data);
                if r.is_ok() {
                    keys.insert(key);
                }
                r.map(|()| Reply::Unit)
            }
            Op::Fetch { key } => store.fetch(&key).map(Reply::Blob),
            Op::Drop { key } => {
                let r = store.drop_blob(&key);
                if r.is_ok() {
                    keys.remove(&key);
                }
                r.map(|()| Reply::Unit)
            }
            Op::Contains { key } => Ok(Reply::Flag(store.contains(&key))),
            Op::Keys => Ok(Reply::Keys(keys.iter().cloned().collect())),
            Op::Data { key } => Ok(Reply::MaybeBlob(store.fetch(&key).ok())),
            Op::Used => Ok(Reply::Size(store.used_bytes())),
            Op::Shutdown => {
                let _ = reply.try_send(Ok(Reply::Unit));
                return;
            }
        };
        // A caller that timed out and went away is not an actor error.
        let _ = reply.try_send(result);
    }
}
