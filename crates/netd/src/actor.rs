//! One device, one actor: an inbox thread owning a blob store.
//!
//! Each device in an [`crate::ActorNet`] world is a thread draining an
//! `mpsc` inbox. Because an inbox is a FIFO channel and the actor applies
//! envelopes strictly in arrival order against a store only it touches,
//! delivery is *mailbox-ordered*: two operations sent to the same device
//! are applied in send order, the fleet-of-replicas shape of the
//! ic-kit-style runtimes named in the roadmap.
//!
//! The store behind an actor is either the simulation's own
//! [`obiwan_net::MemStore`] or a [`obiwan_blobd::RemoteStore`] fronting a
//! live `obiwan-blobd` process — the actor neither knows nor cares.

use obiwan_net::{BlobStore, Bytes, LinkSpec, NetError, Result, SimDuration};
use std::collections::BTreeSet;
use std::sync::mpsc;
use std::time::Duration;

/// Latency injection that rides inside a transfer op and is paid on the
/// actor's own thread — the fabric caller never sleeps, so a core thread
/// holding the world lock is never parked on modelled airtime.
pub(crate) enum Pace {
    /// No pacing: control-plane op, or latency injection disabled.
    None,
    /// Sleep a precomputed number of microseconds. The store path knows
    /// the payload size — and therefore the modelled cost — up front.
    Micros(u64),
    /// Sleep the route's modelled transfer time for the blob the store
    /// actually returns, scaled down by `divisor`. The fetch path cannot
    /// price the transfer until the store answers with the bytes.
    PerByte {
        /// The route's links, in hop order.
        hops: Vec<LinkSpec>,
        /// Wall time is `modelled_cost / divisor`; zero disables.
        divisor: u64,
    },
}

impl Pace {
    /// Sleep this pace out for a transfer of `len` bytes.
    fn apply(&self, len: usize) {
        let us = match self {
            Pace::None => return,
            Pace::Micros(us) => *us,
            Pace::PerByte { hops, divisor } => {
                let mut total = SimDuration::ZERO;
                for hop in hops {
                    total += hop.transfer_time(len);
                }
                match total.as_micros().checked_div(*divisor) {
                    Some(us) => us,
                    None => return,
                }
            }
        };
        if us > 0 {
            std::thread::sleep(Duration::from_micros(us));
        }
    }
}

/// An operation shipped to a device actor.
pub(crate) enum Op {
    Store {
        /// Blob key.
        key: String,
        /// Opaque blob bytes.
        data: Bytes,
        /// Modelled transfer time to sleep before applying the store.
        pace: Pace,
    },
    Fetch {
        /// Blob key.
        key: String,
        /// Modelled transfer time to sleep once the blob size is known.
        pace: Pace,
    },
    Drop {
        /// Blob key.
        key: String,
    },
    /// Control plane: presence of a key (no airtime accounting).
    Contains {
        /// Blob key.
        key: String,
    },
    /// Control plane: sorted list of held keys.
    Keys,
    /// Control plane: blob bytes without the transfer verbs' semantics.
    Data {
        /// Blob key.
        key: String,
    },
    /// Control plane: bytes currently charged against the quota.
    Used,
    /// Stop the actor thread.
    Shutdown,
}

/// What an actor sends back.
pub(crate) enum Reply {
    Unit,
    Blob(Bytes),
    Flag(bool),
    Keys(Vec<String>),
    MaybeBlob(Option<Bytes>),
    Size(usize),
}

pub(crate) struct Envelope {
    pub(crate) op: Op,
    pub(crate) reply: mpsc::SyncSender<Result<Reply>>,
}

/// A running device actor: its inbox plus the join handle.
pub(crate) struct Actor {
    inbox: mpsc::Sender<Envelope>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Actor {
    /// Spawn an actor owning `store`.
    pub(crate) fn spawn(store: Box<dyn BlobStore + Send>) -> Actor {
        let (inbox, rx) = mpsc::channel::<Envelope>();
        let thread = std::thread::spawn(move || actor_main(store, &rx));
        Actor {
            inbox,
            thread: Some(thread),
        }
    }

    /// Ship `op` to the actor and wait for its reply. A dead actor or a
    /// reply that does not arrive within `timeout` maps to
    /// [`NetError::Departed`] — the same signal the core's failover
    /// machinery already handles for devices that walked away.
    pub(crate) fn call(
        &self,
        device: obiwan_net::DeviceId,
        op: Op,
        timeout: Duration,
    ) -> Result<Reply> {
        let (reply, rx) = mpsc::sync_channel(1);
        let departed = NetError::Departed { device };
        self.inbox
            .send(Envelope { op, reply })
            .map_err(|_| departed.clone())?;
        match rx.recv_timeout(timeout) {
            Ok(result) => result,
            Err(_) => Err(departed),
        }
    }
}

impl Drop for Actor {
    fn drop(&mut self) {
        let (reply, _rx) = mpsc::sync_channel(1);
        let _ = self.inbox.send(Envelope {
            op: Op::Shutdown,
            reply,
        });
        if let Some(handle) = self.thread.take() {
            let _ = handle.join();
        }
    }
}

/// The actor loop: drain the inbox in order until shutdown.
fn actor_main(mut store: Box<dyn BlobStore + Send>, rx: &mpsc::Receiver<Envelope>) {
    // `BlobStore` cannot enumerate keys, so the actor mirrors them:
    // updated only on verbs that succeeded against the store, the mirror
    // stays exact for local stores and eventually-exact for remote ones.
    let mut keys: BTreeSet<String> = BTreeSet::new();
    while let Ok(Envelope { op, reply }) = rx.recv() {
        let result = match op {
            Op::Store { key, data, pace } => {
                // Airtime was charged by the fabric before the op shipped
                // (spent whether or not the store accepts); the modelled
                // transfer time is slept here, off the caller's locks.
                pace.apply(data.len());
                let r = store.store(&key, data);
                if r.is_ok() {
                    keys.insert(key);
                }
                r.map(|()| Reply::Unit)
            }
            Op::Fetch { key, pace } => {
                let r = store.fetch(&key);
                if let Ok(data) = &r {
                    pace.apply(data.len());
                }
                r.map(Reply::Blob)
            }
            Op::Drop { key } => {
                let r = store.drop_blob(&key);
                if r.is_ok() {
                    keys.remove(&key);
                }
                r.map(|()| Reply::Unit)
            }
            Op::Contains { key } => Ok(Reply::Flag(store.contains(&key))),
            Op::Keys => Ok(Reply::Keys(keys.iter().cloned().collect())),
            Op::Data { key } => Ok(Reply::MaybeBlob(store.fetch(&key).ok())),
            Op::Used => Ok(Reply::Size(store.used_bytes())),
            Op::Shutdown => {
                let _ = reply.try_send(Ok(Reply::Unit));
                return;
            }
        };
        // A caller that timed out and went away is not an actor error.
        let _ = reply.try_send(result);
    }
}
