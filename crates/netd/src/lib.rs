//! `obiwan-netd`: the live transport runtime behind `TransportKind::Tcp`.
//!
//! Where `obiwan-net`'s `SimNet` *models* a room full of devices under a
//! scripted clock, this crate *runs* one: each device is an actor — a
//! thread draining a FIFO inbox, owning its blob store exclusively — and
//! [`ActorNet`] is the world that routes the middleware's transport verbs
//! into those inboxes. Stores are either in-memory ([`obiwan_net::MemStore`],
//! for devices hosted inside this process) or remote
//! ([`obiwan_blobd::RemoteStore`], fronting an `obiwan-blobd` daemon over
//! TCP), and the actor neither knows nor cares which.
//!
//! What carries over from the simulation, verb for verb:
//!
//! - the [`obiwan_net::NetError`] vocabulary and its ordering (unknown
//!   device before departed before not-connected before store errors),
//!   so the core's ordered failover and repair sweeps work unchanged;
//! - [`obiwan_net::LinkSpec`] transfer-cost arithmetic, charged *before*
//!   the far store accepts or refuses a blob ("errors still cost
//!   airtime");
//! - deterministic per-device [`obiwan_net::FailurePlan`] injection,
//!   evaluated at the dispatch layer;
//! - churn sequencing on connect/disconnect/depart/arrive.
//!
//! What does not: determinism itself. The clock is the sanctioned
//! [`obiwan_net::clock::real`] seam, and replies race real threads and —
//! for remote devices — real sockets. That is why `TransportKind::Sim`
//! stays the default and golden traces are only ever cut there.

mod actor;
mod fabric;

pub use fabric::ActorNet;

#[cfg(test)]
mod tests {
    use super::*;
    use obiwan_net::{Bytes, DeviceKind, LinkSpec, NetError, SimDuration, Transport};

    fn two_device_world() -> (ActorNet, obiwan_net::DeviceId, obiwan_net::DeviceId) {
        let mut net = ActorNet::new();
        let a = net.add_device("pda", DeviceKind::Pda, 1 << 20);
        let b = net.add_device("laptop", DeviceKind::Laptop, 1 << 20);
        net.connect(
            a,
            b,
            LinkSpec::new(1_000_000, SimDuration::from_micros(500)),
        )
        .unwrap();
        (net, a, b)
    }

    #[test]
    fn mailbox_orders_store_then_fetch_then_drop() {
        let (mut net, a, b) = two_device_world();
        // Same device, strict send order: a later fetch must observe the
        // earlier store, and a drop after that must leave nothing behind.
        net.send_blob(a, b, "k1", Bytes::copy_from_slice(b"payload"))
            .unwrap();
        let got = net.fetch_blob(a, b, "k1").unwrap();
        assert_eq!(&got[..], b"payload");
        net.drop_blob(a, b, "k1").unwrap();
        assert!(matches!(
            net.fetch_blob(a, b, "k1"),
            Err(NetError::UnknownBlob { .. })
        ));
        assert!(!net.holds_blob(b, "k1"));
    }

    #[test]
    fn departed_devices_keep_their_blobs() {
        let (mut net, a, b) = two_device_world();
        net.send_blob(a, b, "k", Bytes::copy_from_slice(b"x"))
            .unwrap();
        net.depart(b).unwrap();
        assert!(matches!(
            net.send_blob(a, b, "k2", Bytes::copy_from_slice(b"y")),
            Err(NetError::Departed { .. })
        ));
        // The bytes walked away with the device, not into the void.
        assert_eq!(net.holders_of_key("k"), vec![b]);
        net.arrive(b).unwrap();
        assert_eq!(&net.fetch_blob(a, b, "k").unwrap()[..], b"x");
    }

    #[test]
    fn airtime_is_charged_even_when_the_store_refuses() {
        let mut net = ActorNet::new();
        let a = net.add_device("pda", DeviceKind::Pda, 1 << 20);
        let b = net.add_device("tiny", DeviceKind::Mote, 4);
        net.connect(
            a,
            b,
            LinkSpec::new(1_000_000, SimDuration::from_micros(100)),
        )
        .unwrap();
        let err = net.send_blob(a, b, "big", Bytes::copy_from_slice(&[0u8; 64]));
        assert!(matches!(err, Err(NetError::QuotaExceeded { .. })));
        let (sent, _) = net.traffic();
        assert_eq!(sent, 64, "refused transfers still cost airtime");
    }

    #[test]
    fn failure_plans_inject_at_dispatch() {
        let (mut net, a, b) = two_device_world();
        net.set_failure_plan(b, obiwan_net::FailurePlan::fail_once_at(0))
            .unwrap();
        assert!(matches!(
            net.send_blob(a, b, "k", Bytes::copy_from_slice(b"x")),
            Err(NetError::InjectedFailure { .. })
        ));
        // The plan consumed its shot; the retry lands.
        net.send_blob(a, b, "k", Bytes::copy_from_slice(b"x"))
            .unwrap();
    }

    #[test]
    fn routing_relays_across_a_middle_device() {
        let mut net = ActorNet::new();
        let a = net.add_device("a", DeviceKind::Pda, 1 << 20);
        let m = net.add_device("m", DeviceKind::Laptop, 1 << 20);
        let c = net.add_device("c", DeviceKind::Desktop, 1 << 20);
        let link = LinkSpec::new(1_000_000, SimDuration::from_micros(200));
        net.connect(a, m, link).unwrap();
        net.connect(m, c, link).unwrap();
        let (route, _cost) = net
            .send_blob_routed(a, c, "k", Bytes::copy_from_slice(b"hop"))
            .unwrap();
        assert_eq!(route.relays, vec![m]);
        let (route_back, data) = net.fetch_blob_routed(a, c, "k").unwrap();
        assert_eq!(route_back.relays, vec![m]);
        assert_eq!(&data[..], b"hop");
    }
}
