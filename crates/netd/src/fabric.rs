//! [`ActorNet`]: a live world of device actors implementing
//! [`obiwan_net::Transport`].
//!
//! The control tables (profiles, links, presence, traffic, churn) live in
//! the `ActorNet` itself and are serialized by the `Arc<Mutex<NetFabric>>`
//! the core already locks; the *data plane* — every blob byte — flows
//! through per-device actor inboxes, each actor owning its store (local
//! memory or a remote `obiwan-blobd` process). Semantics mirror the
//! simulation verb for verb: errors use the same [`NetError`] vocabulary
//! in the same order (unknown device, departed, not connected, store
//! errors), transfer costs use the same [`LinkSpec`] arithmetic, and
//! airtime is charged even when the far store refuses the blob.
//!
//! What is *not* preserved: determinism. The clock is the sanctioned
//! [`obiwan_net::clock::real`] seam, replies race real threads and real
//! sockets, and traces are not replayable — which is exactly why
//! `TransportKind::Sim` remains the default everywhere.

use crate::actor::{Actor, Op, Pace, Reply};
use obiwan_blobd::RemoteStore;
use obiwan_net::clock::RealClock;
use obiwan_net::{
    BlobStore, Bytes, DeviceId, DeviceKind, DeviceProfile, FailurePlan, LinkSpec, MemStore,
    NetError, Result, Route, SimDuration, SimTime, Transport,
};
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::time::Duration;

/// How long a blob verb waits for an actor's reply before declaring the
/// device departed. Local actors answer in microseconds; remote ones are
/// bounded by the blobd client's own connect/read timeouts and retry
/// budget, which this comfortably exceeds.
const ACTOR_TIMEOUT: Duration = Duration::from_secs(10);

/// Per-device deterministic failure injection evaluated at dispatch.
struct PlanState {
    plan: FailurePlan,
    ops: u64,
}

struct DeviceSlot {
    profile: DeviceProfile,
    present: bool,
    actor: Actor,
    plan: PlanState,
}

/// A live transport world: one actor per device, mailbox-ordered
/// delivery, per-link latency pacing and per-device failure injection.
pub struct ActorNet {
    clock: RealClock,
    devices: Vec<DeviceSlot>,
    links: BTreeMap<(u32, u32), LinkSpec>,
    churn: u64,
    bytes_sent: u64,
    bytes_fetched: u64,
    /// When nonzero, every transfer really sleeps `modelled_cost / divisor`
    /// — latency injection scaled down so tests stay fast.
    latency_divisor: u64,
}

fn norm(a: DeviceId, b: DeviceId) -> (u32, u32) {
    let (x, y) = (a.index(), b.index());
    if x <= y {
        (x, y)
    } else {
        (y, x)
    }
}

impl ActorNet {
    /// An empty live world.
    pub fn new() -> ActorNet {
        ActorNet {
            clock: obiwan_net::clock::real(),
            devices: Vec::new(),
            links: BTreeMap::new(),
            churn: 0,
            bytes_sent: 0,
            bytes_fetched: 0,
            latency_divisor: 0,
        }
    }

    /// Add a device whose blobs live in local memory (a [`MemStore`] with
    /// `quota`), hosted by its own actor thread.
    pub fn add_device(
        &mut self,
        name: impl Into<String>,
        kind: DeviceKind,
        quota: usize,
    ) -> DeviceId {
        let id = DeviceId::from_index(self.devices.len() as u32);
        self.push_slot(
            DeviceProfile::new(name, kind, quota),
            Box::new(MemStore::new(id, quota)),
        );
        id
    }

    /// Add a device whose blobs live in a remote `obiwan-blobd` process at
    /// `addr`. `quota` must match the daemon's configured quota — the
    /// profile advertises it for placement ranking, while enforcement
    /// happens in the daemon itself.
    pub fn add_remote_device(
        &mut self,
        name: impl Into<String>,
        kind: DeviceKind,
        quota: usize,
        addr: SocketAddr,
    ) -> DeviceId {
        let id = DeviceId::from_index(self.devices.len() as u32);
        self.push_slot(
            DeviceProfile::new(name, kind, quota),
            Box::new(RemoteStore::connect(id, addr)),
        );
        id
    }

    fn push_slot(&mut self, profile: DeviceProfile, store: Box<dyn BlobStore + Send>) {
        self.devices.push(DeviceSlot {
            profile,
            present: true,
            actor: Actor::spawn(store),
            plan: PlanState {
                plan: FailurePlan::none(),
                ops: 0,
            },
        });
    }

    /// Scale real latency injection: every transfer sleeps
    /// `modelled_cost / divisor` of wall time. Zero (the default)
    /// disables sleeping entirely.
    pub fn set_latency_divisor(&mut self, divisor: u64) {
        self.latency_divisor = divisor;
    }

    fn slot(&self, device: DeviceId) -> Result<&DeviceSlot> {
        self.devices
            .get(device.index() as usize)
            .ok_or(NetError::UnknownDevice { device })
    }

    fn slot_mut(&mut self, device: DeviceId) -> Result<&mut DeviceSlot> {
        self.devices
            .get_mut(device.index() as usize)
            .ok_or(NetError::UnknownDevice { device })
    }

    /// Mirror of the simulation's reachability check, same error order.
    fn require_link(&self, from: DeviceId, to: DeviceId) -> Result<LinkSpec> {
        self.slot(from)?;
        self.slot(to)?;
        if !self.is_present(from) {
            return Err(NetError::Departed { device: from });
        }
        if !self.is_present(to) {
            return Err(NetError::Departed { device: to });
        }
        self.links
            .get(&norm(from, to))
            .copied()
            .ok_or(NetError::NotConnected { from, to })
    }

    /// Deterministic per-device failure injection, evaluated at dispatch
    /// (the live analogue of the simulation's store-level plans).
    fn check_plan(&mut self, device: DeviceId, op: &'static str) -> Result<()> {
        let slot = self.slot_mut(device)?;
        let n = slot.plan.ops;
        slot.plan.ops += 1;
        if slot.plan.plan.should_fail(n) {
            return Err(NetError::InjectedFailure { device, op });
        }
        Ok(())
    }

    /// The store-path pace: the payload size (and thus the modelled cost)
    /// is known up front, so the sleep ships to the actor precomputed.
    fn pace_micros(&self, cost: SimDuration) -> Pace {
        match cost.as_micros().checked_div(self.latency_divisor) {
            Some(us) => Pace::Micros(us),
            None => Pace::None,
        }
    }

    /// The fetch-path pace: the blob size is unknown until the far store
    /// answers, so the actor prices the route itself from its links.
    fn pace_per_byte(&self, hops: Vec<LinkSpec>) -> Pace {
        if self.latency_divisor == 0 {
            Pace::None
        } else {
            Pace::PerByte {
                hops,
                divisor: self.latency_divisor,
            }
        }
    }

    fn actor_call(&self, device: DeviceId, op: Op) -> Result<Reply> {
        self.slot(device)?.actor.call(device, op, ACTOR_TIMEOUT)
    }

    /// The link specs along `route`, in hop order.
    fn route_links(&self, route: &Route) -> Result<Vec<LinkSpec>> {
        let mut hops = Vec::new();
        let mut cur = route.from;
        for &next in route.relays.iter().chain(std::iter::once(&route.to)) {
            let link = self
                .links
                .get(&norm(cur, next))
                .copied()
                .ok_or(NetError::NotConnected {
                    from: cur,
                    to: next,
                })?;
            hops.push(link);
            cur = next;
        }
        Ok(hops)
    }

    /// Hop-by-hop modelled cost of moving `bytes` along `route`.
    fn route_cost(&self, route: &Route, bytes: usize) -> Result<SimDuration> {
        let mut total = SimDuration::ZERO;
        for hop in self.route_links(route)? {
            total += hop.transfer_time(bytes);
        }
        Ok(total)
    }
}

impl Default for ActorNet {
    fn default() -> Self {
        ActorNet::new()
    }
}

impl std::fmt::Debug for ActorNet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActorNet")
            .field("devices", &self.devices.len())
            .field("links", &self.links.len())
            .field("churn", &self.churn)
            .finish_non_exhaustive()
    }
}

impl Transport for ActorNet {
    fn now(&self) -> SimTime {
        self.clock.now()
    }

    fn advance(&mut self, _d: SimDuration) -> SimTime {
        // Real time cannot be scripted forward; reads are the clock.
        self.clock.now()
    }

    fn profile(&self, device: DeviceId) -> Result<&DeviceProfile> {
        self.slot(device).map(|s| &s.profile)
    }

    fn set_failure_plan(&mut self, device: DeviceId, plan: FailurePlan) -> Result<()> {
        let slot = self.slot_mut(device)?;
        slot.plan = PlanState { plan, ops: 0 };
        Ok(())
    }

    fn connect(&mut self, a: DeviceId, b: DeviceId, link: LinkSpec) -> Result<()> {
        self.slot(a)?;
        self.slot(b)?;
        self.links.insert(norm(a, b), link);
        self.churn += 1;
        Ok(())
    }

    fn disconnect(&mut self, a: DeviceId, b: DeviceId) {
        if self.links.remove(&norm(a, b)).is_some() {
            self.churn += 1;
        }
    }

    fn link(&self, a: DeviceId, b: DeviceId) -> Option<LinkSpec> {
        if self.is_present(a) && self.is_present(b) {
            self.links.get(&norm(a, b)).copied()
        } else {
            None
        }
    }

    fn nearby(&self, of: DeviceId) -> Vec<DeviceId> {
        let mut out: Vec<DeviceId> = self
            .links
            .keys()
            .filter_map(|&(a, b)| {
                if a == of.index() {
                    Some(DeviceId::from_index(b))
                } else if b == of.index() {
                    Some(DeviceId::from_index(a))
                } else {
                    None
                }
            })
            .filter(|&id| self.link(of, id).is_some())
            .collect();
        out.sort();
        out.dedup();
        out
    }

    fn reachable(&self, of: DeviceId) -> Vec<(DeviceId, usize)> {
        // Breadth-first over present devices, ascending id inside each
        // ring — the same deterministic order the simulation's router uses.
        let mut out = Vec::new();
        if !self.is_present(of) {
            return out;
        }
        let mut seen = vec![false; self.devices.len()];
        if let Some(flag) = seen.get_mut(of.index() as usize) {
            *flag = true;
        }
        let mut frontier = vec![of];
        let mut hops = 0;
        while !frontier.is_empty() {
            hops += 1;
            let mut next = Vec::new();
            for &cur in &frontier {
                for n in self.nearby(cur) {
                    let idx = n.index() as usize;
                    if seen.get(idx).copied().unwrap_or(true) {
                        continue;
                    }
                    if let Some(flag) = seen.get_mut(idx) {
                        *flag = true;
                    }
                    next.push(n);
                }
            }
            next.sort();
            out.extend(next.iter().map(|&d| (d, hops)));
            frontier = next;
        }
        out
    }

    fn route(&self, from: DeviceId, to: DeviceId) -> Option<Route> {
        if !self.is_present(from) || !self.is_present(to) {
            return None;
        }
        // BFS with parent pointers; neighbour order is ascending id, so
        // tie-breaks match the simulation's router.
        let mut parent: Vec<Option<DeviceId>> = vec![None; self.devices.len()];
        let mut seen = vec![false; self.devices.len()];
        if let Some(flag) = seen.get_mut(from.index() as usize) {
            *flag = true;
        }
        let mut frontier = vec![from];
        while !frontier.is_empty() && !seen.get(to.index() as usize).copied().unwrap_or(false) {
            let mut next = Vec::new();
            for &cur in &frontier {
                for n in self.nearby(cur) {
                    let idx = n.index() as usize;
                    if seen.get(idx).copied().unwrap_or(true) {
                        continue;
                    }
                    if let Some(flag) = seen.get_mut(idx) {
                        *flag = true;
                    }
                    if let Some(p) = parent.get_mut(idx) {
                        *p = Some(cur);
                    }
                    next.push(n);
                }
            }
            next.sort();
            frontier = next;
        }
        if !seen.get(to.index() as usize).copied().unwrap_or(false) {
            return None;
        }
        let mut relays = Vec::new();
        let mut cur = to;
        while let Some(p) = parent.get(cur.index() as usize).copied().flatten() {
            if p == from {
                break;
            }
            relays.push(p);
            cur = p;
        }
        relays.reverse();
        Some(Route { from, to, relays })
    }

    fn free_storage(&self, device: DeviceId) -> Result<usize> {
        let quota = self.slot(device)?.profile.storage_quota;
        match self.actor_call(device, Op::Used)? {
            Reply::Size(used) => Ok(quota.saturating_sub(used)),
            _ => Err(NetError::Protocol {
                device,
                detail: "actor returned a mismatched reply for Used".into(),
            }),
        }
    }

    fn depart(&mut self, device: DeviceId) -> Result<()> {
        self.slot_mut(device)?.present = false;
        self.churn += 1;
        Ok(())
    }

    fn arrive(&mut self, device: DeviceId) -> Result<()> {
        self.slot_mut(device)?.present = true;
        self.churn += 1;
        Ok(())
    }

    fn churn_seq(&self) -> u64 {
        self.churn
    }

    fn is_present(&self, device: DeviceId) -> bool {
        self.devices
            .get(device.index() as usize)
            .map(|s| s.present)
            .unwrap_or(false)
    }

    fn send_blob(
        &mut self,
        from: DeviceId,
        to: DeviceId,
        key: &str,
        data: Bytes,
    ) -> Result<SimDuration> {
        let link = self.require_link(from, to)?;
        self.check_plan(to, "store")?;
        let bytes = data.len();
        let cost = link.transfer_time(bytes);
        // Airtime is spent before the far store accepts or refuses — the
        // same accounting the simulation uses. The sleep itself rides in
        // the op and is paid on the actor thread.
        self.bytes_sent = self.bytes_sent.saturating_add(bytes as u64);
        self.actor_call(
            to,
            Op::Store {
                key: key.to_owned(),
                data,
                pace: self.pace_micros(cost),
            },
        )?;
        Ok(cost)
    }

    fn fetch_blob(&mut self, from: DeviceId, to: DeviceId, key: &str) -> Result<Bytes> {
        let link = self.require_link(from, to)?;
        self.check_plan(to, "fetch")?;
        let reply = self.actor_call(
            to,
            Op::Fetch {
                key: key.to_owned(),
                pace: self.pace_per_byte(vec![link]),
            },
        )?;
        let Reply::Blob(data) = reply else {
            return Err(NetError::Protocol {
                device: to,
                detail: "actor returned a mismatched reply for Fetch".into(),
            });
        };
        self.bytes_fetched = self.bytes_fetched.saturating_add(data.len() as u64);
        Ok(data)
    }

    fn drop_blob(&mut self, from: DeviceId, to: DeviceId, key: &str) -> Result<()> {
        self.require_link(from, to)?;
        self.check_plan(to, "drop")?;
        self.actor_call(
            to,
            Op::Drop {
                key: key.to_owned(),
            },
        )?;
        Ok(())
    }

    fn send_blob_routed(
        &mut self,
        from: DeviceId,
        to: DeviceId,
        key: &str,
        data: Bytes,
    ) -> Result<(Route, SimDuration)> {
        let route = self
            .route(from, to)
            .ok_or(NetError::NotConnected { from, to })?;
        if route.relays.is_empty() {
            let cost = self.send_blob(from, to, key, data)?;
            return Ok((route, cost));
        }
        let total = self.route_cost(&route, data.len())?;
        self.check_plan(to, "store")?;
        self.bytes_sent = self.bytes_sent.saturating_add(data.len() as u64);
        self.actor_call(
            to,
            Op::Store {
                key: key.to_owned(),
                data,
                pace: self.pace_micros(total),
            },
        )?;
        Ok((route, total))
    }

    fn fetch_blob_routed(
        &mut self,
        from: DeviceId,
        to: DeviceId,
        key: &str,
    ) -> Result<(Route, Bytes)> {
        let route = self
            .route(from, to)
            .ok_or(NetError::NotConnected { from, to })?;
        if route.relays.is_empty() {
            let data = self.fetch_blob(from, to, key)?;
            return Ok((route, data));
        }
        self.check_plan(to, "fetch")?;
        let reply = self.actor_call(
            to,
            Op::Fetch {
                key: key.to_owned(),
                pace: self.pace_per_byte(self.route_links(&route)?),
            },
        )?;
        let Reply::Blob(data) = reply else {
            return Err(NetError::Protocol {
                device: to,
                detail: "actor returned a mismatched reply for Fetch".into(),
            });
        };
        self.bytes_fetched = self.bytes_fetched.saturating_add(data.len() as u64);
        Ok((route, data))
    }

    fn drop_blob_routed(&mut self, from: DeviceId, to: DeviceId, key: &str) -> Result<()> {
        let route = self
            .route(from, to)
            .ok_or(NetError::NotConnected { from, to })?;
        if route.relays.is_empty() {
            return self.drop_blob(from, to, key);
        }
        self.check_plan(to, "drop")?;
        self.actor_call(
            to,
            Op::Drop {
                key: key.to_owned(),
            },
        )?;
        Ok(())
    }

    fn holds_blob(&self, to: DeviceId, key: &str) -> bool {
        matches!(
            self.actor_call(
                to,
                Op::Contains {
                    key: key.to_owned()
                }
            ),
            Ok(Reply::Flag(true))
        )
    }

    fn holders_of_key(&self, key: &str) -> Vec<DeviceId> {
        // Departed devices keep their blobs (and their actors), exactly
        // like the simulation's "walked away with the bytes" semantics.
        (0..self.devices.len() as u32)
            .map(DeviceId::from_index)
            .filter(|&d| self.holds_blob(d, key))
            .collect()
    }

    fn blob_keys(&self, device: DeviceId) -> Vec<String> {
        match self.actor_call(device, Op::Keys) {
            Ok(Reply::Keys(keys)) => keys,
            _ => Vec::new(),
        }
    }

    fn blob_data(&self, device: DeviceId, key: &str) -> Option<Bytes> {
        match self.actor_call(
            device,
            Op::Data {
                key: key.to_owned(),
            },
        ) {
            Ok(Reply::MaybeBlob(data)) => data,
            _ => None,
        }
    }

    fn stored_bytes(&self, device: DeviceId) -> Result<usize> {
        match self.actor_call(device, Op::Used)? {
            Reply::Size(used) => Ok(used),
            _ => Err(NetError::Protocol {
                device,
                detail: "actor returned a mismatched reply for Used".into(),
            }),
        }
    }

    fn device_ids(&self) -> Vec<DeviceId> {
        (0..self.devices.len() as u32)
            .map(DeviceId::from_index)
            .collect()
    }

    fn traffic(&self) -> (u64, u64) {
        (self.bytes_sent, self.bytes_fetched)
    }
}
