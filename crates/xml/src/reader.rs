//! Pull parser for the XML subset.

use crate::{unescape, Error, Result};

/// A parsing event produced by [`Reader::next_event`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// `<name attr="v" ...>` or the `<name .../>` form (see `self_closing`).
    Start {
        /// Element name.
        name: String,
        /// Attributes in document order, values already unescaped.
        attrs: Vec<(String, String)>,
        /// True for `<name/>`; a matching [`Event::End`] is still emitted so
        /// consumers see a uniform begin/end stream.
        self_closing: bool,
    },
    /// `</name>` (also synthesized after a self-closing start).
    End {
        /// Element name.
        name: String,
    },
    /// Character data between tags, unescaped; contiguous text and CDATA are
    /// merged into one event. Whitespace-only text between elements is
    /// dropped.
    Text(String),
    /// End of the document.
    Eof,
}

/// A pull parser over a complete in-memory document.
///
/// # Examples
///
/// ```
/// use obiwan_xml::{Reader, Event};
///
/// # fn main() -> Result<(), obiwan_xml::Error> {
/// let mut r = Reader::new("<a x=\"1\"><b/>hi</a>");
/// assert!(matches!(r.next_event()?, Event::Start { name, .. } if name == "a"));
/// assert!(matches!(r.next_event()?, Event::Start { self_closing: true, .. }));
/// assert!(matches!(r.next_event()?, Event::End { .. }));     // </b>
/// assert!(matches!(r.next_event()?, Event::Text(t) if t == "hi"));
/// assert!(matches!(r.next_event()?, Event::End { .. }));     // </a>
/// assert!(matches!(r.next_event()?, Event::Eof));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    input: &'a str,
    pos: usize,
    /// Stack of open element names, used to validate close tags.
    open: Vec<String>,
    /// A pending synthetic End event (after a self-closing tag).
    pending_end: Option<String>,
    seen_eof: bool,
}

impl<'a> Reader<'a> {
    /// Create a reader over `input`. Parsing is lazy; errors surface from
    /// [`next_event`](Reader::next_event).
    pub fn new(input: &'a str) -> Self {
        Reader {
            input,
            pos: 0,
            open: Vec::new(),
            pending_end: None,
            seen_eof: false,
        }
    }

    /// Current byte offset into the input, for error reporting by callers.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Pull the next event.
    ///
    /// # Errors
    ///
    /// Any well-formedness violation in the subset: mismatched or unclosed
    /// tags, malformed attributes, unknown entities, trailing garbage.
    pub fn next_event(&mut self) -> Result<Event> {
        if let Some(name) = self.pending_end.take() {
            return Ok(Event::End { name });
        }
        loop {
            if self.pos >= self.input.len() {
                if let Some(unclosed) = self.open.last() {
                    return Err(Error::UnexpectedEof {
                        context: Box::leak(format!("element <{unclosed}>").into_boxed_str()),
                    });
                }
                if self.seen_eof {
                    return Ok(Event::Eof);
                }
                self.seen_eof = true;
                return Ok(Event::Eof);
            }
            let rest = &self.input[self.pos..];
            if let Some(stripped) = rest.strip_prefix("<?") {
                // XML declaration / processing instruction: skip.
                let end = stripped.find("?>").ok_or(Error::UnexpectedEof {
                    context: "processing instruction",
                })?;
                self.pos += 2 + end + 2;
                continue;
            }
            if let Some(stripped) = rest.strip_prefix("<!--") {
                let end = stripped
                    .find("-->")
                    .ok_or(Error::UnexpectedEof { context: "comment" })?;
                self.pos += 4 + end + 3;
                continue;
            }
            if rest.starts_with("<![CDATA[") {
                return self.read_text();
            }
            if rest.starts_with("</") {
                return self.read_close_tag();
            }
            if rest.starts_with('<') {
                return self.read_open_tag();
            }
            return self.read_text();
        }
    }

    /// Convenience: pull events until (and including) `Eof`, collecting them.
    ///
    /// # Errors
    ///
    /// Propagates the first parse error.
    pub fn into_events(mut self) -> Result<Vec<Event>> {
        let mut events = Vec::new();
        loop {
            let e = self.next_event()?;
            let done = e == Event::Eof;
            events.push(e);
            if done {
                return Ok(events);
            }
        }
    }

    fn read_open_tag(&mut self) -> Result<Event> {
        let start = self.pos;
        self.pos += 1; // '<'
        let name = self.read_name()?;
        let mut attrs = Vec::new();
        loop {
            self.skip_ws();
            let rest = &self.input[self.pos..];
            if rest.starts_with("/>") {
                self.pos += 2;
                self.pending_end = Some(name.clone());
                return Ok(Event::Start {
                    name,
                    attrs,
                    self_closing: true,
                });
            }
            if rest.starts_with('>') {
                self.pos += 1;
                self.open.push(name.clone());
                return Ok(Event::Start {
                    name,
                    attrs,
                    self_closing: false,
                });
            }
            if rest.is_empty() {
                return Err(Error::UnexpectedEof {
                    context: "start tag",
                });
            }
            let attr_name = self.read_name().map_err(|_| Error::Unexpected {
                at: self.pos,
                message: format!("malformed attribute in <{name}> starting at byte {start}"),
            })?;
            self.skip_ws();
            if !self.input[self.pos..].starts_with('=') {
                return Err(Error::Unexpected {
                    at: self.pos,
                    message: format!("attribute `{attr_name}` missing `=`"),
                });
            }
            self.pos += 1;
            self.skip_ws();
            let quote = self.input[self.pos..]
                .chars()
                .next()
                .ok_or(Error::UnexpectedEof {
                    context: "attribute value",
                })?;
            if quote != '"' && quote != '\'' {
                return Err(Error::Unexpected {
                    at: self.pos,
                    message: format!("attribute `{attr_name}` value must be quoted"),
                });
            }
            self.pos += 1;
            let val_start = self.pos;
            let end = self.input[self.pos..]
                .find(quote)
                .ok_or(Error::UnexpectedEof {
                    context: "attribute value",
                })?
                + self.pos;
            let raw = &self.input[val_start..end];
            self.pos = end + 1;
            attrs.push((attr_name, unescape(raw)?));
        }
    }

    fn read_close_tag(&mut self) -> Result<Event> {
        let at = self.pos;
        self.pos += 2; // "</"
        let name = self.read_name()?;
        self.skip_ws();
        if !self.input[self.pos..].starts_with('>') {
            return Err(Error::Unexpected {
                at: self.pos,
                message: format!("malformed close tag </{name}"),
            });
        }
        self.pos += 1;
        match self.open.pop() {
            Some(expected) if expected == name => Ok(Event::End { name }),
            Some(expected) => Err(Error::MismatchedTag {
                at,
                expected,
                found: name,
            }),
            None => Err(Error::Unexpected {
                at,
                message: format!("close tag </{name}> with no open element"),
            }),
        }
    }

    fn read_text(&mut self) -> Result<Event> {
        let mut text = String::new();
        loop {
            let rest = &self.input[self.pos..];
            if rest.is_empty() {
                break;
            }
            if let Some(stripped) = rest.strip_prefix("<![CDATA[") {
                let end = stripped.find("]]>").ok_or(Error::UnexpectedEof {
                    context: "CDATA section",
                })?;
                text.push_str(&stripped[..end]);
                self.pos += 9 + end + 3;
                continue;
            }
            if rest.starts_with('<') {
                break;
            }
            let chunk_end = rest.find('<').unwrap_or(rest.len());
            text.push_str(&unescape(&rest[..chunk_end]).map_err(|e| shift_error(e, self.pos))?);
            self.pos += chunk_end;
        }
        if text.trim().is_empty() && !text.is_empty() {
            // Inter-element whitespace: skip and continue pulling.
            return self.next_event();
        }
        if text.is_empty() {
            return self.next_event();
        }
        Ok(Event::Text(text))
    }

    fn read_name(&mut self) -> Result<String> {
        let rest = &self.input[self.pos..];
        let len = rest
            .char_indices()
            .take_while(|(i, c)| {
                if *i == 0 {
                    c.is_ascii_alphabetic() || *c == '_'
                } else {
                    c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.' | ':')
                }
            })
            .count();
        if len == 0 {
            return Err(Error::Unexpected {
                at: self.pos,
                message: "expected a name".into(),
            });
        }
        let name = rest[..len].to_string();
        self.pos += len;
        Ok(name)
    }

    fn skip_ws(&mut self) {
        let rest = &self.input[self.pos..];
        let n = rest.len() - rest.trim_start().len();
        self.pos += n;
    }
}

fn shift_error(e: Error, base: usize) -> Error {
    match e {
        Error::Unexpected { at, message } => Error::Unexpected {
            at: at + base,
            message,
        },
        Error::UnknownEntity { at, name } => Error::UnknownEntity {
            at: at + base,
            name,
        },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    // Tests assert on known-good setups; panicking on failure is the point.
    #![allow(clippy::disallowed_methods)]
    use super::*;

    fn events(doc: &str) -> Vec<Event> {
        Reader::new(doc).into_events().unwrap()
    }

    #[test]
    fn parses_nested_elements() {
        let evs = events("<a><b><c/></b></a>");
        let starts = evs
            .iter()
            .filter(|e| matches!(e, Event::Start { .. }))
            .count();
        let ends = evs
            .iter()
            .filter(|e| matches!(e, Event::End { .. }))
            .count();
        assert_eq!(starts, 3);
        assert_eq!(ends, 3);
    }

    #[test]
    fn declaration_and_comments_are_skipped() {
        let evs = events("<?xml version=\"1.0\"?><!-- hi --><a/><!-- bye -->");
        assert!(matches!(&evs[0], Event::Start { name, .. } if name == "a"));
    }

    #[test]
    fn attributes_parse_with_both_quote_styles() {
        let evs = events("<a x=\"1\" y='2'/>");
        match &evs[0] {
            Event::Start { attrs, .. } => {
                assert_eq!(attrs[0], ("x".into(), "1".into()));
                assert_eq!(attrs[1], ("y".into(), "2".into()));
            }
            other => panic!("expected start, got {other:?}"),
        }
    }

    #[test]
    fn attribute_values_are_unescaped() {
        let evs = events("<a v=\"&lt;x&gt;\"/>");
        match &evs[0] {
            Event::Start { attrs, .. } => assert_eq!(attrs[0].1, "<x>"),
            other => panic!("expected start, got {other:?}"),
        }
    }

    #[test]
    fn text_is_unescaped_and_merged_with_cdata() {
        let evs = events("<a>one &amp; <![CDATA[<two>]]> three</a>");
        assert!(matches!(&evs[1], Event::Text(t) if t == "one & <two> three"));
    }

    #[test]
    fn whitespace_between_elements_is_dropped() {
        let evs = events("<a>\n  <b/>\n</a>");
        assert!(!evs.iter().any(|e| matches!(e, Event::Text(_))));
    }

    #[test]
    fn mismatched_tags_error() {
        let err = Reader::new("<a></b>").into_events().unwrap_err();
        assert!(matches!(err, Error::MismatchedTag { expected, found, .. }
            if expected == "a" && found == "b"));
    }

    #[test]
    fn unclosed_element_errors_at_eof() {
        let err = Reader::new("<a><b></b>").into_events().unwrap_err();
        assert!(matches!(err, Error::UnexpectedEof { .. }));
    }

    #[test]
    fn stray_close_tag_errors() {
        let err = Reader::new("</a>").into_events().unwrap_err();
        assert!(matches!(err, Error::Unexpected { .. }));
    }

    #[test]
    fn unquoted_attribute_errors() {
        let err = Reader::new("<a x=1/>").into_events().unwrap_err();
        assert!(matches!(err, Error::Unexpected { .. }));
    }

    #[test]
    fn self_closing_emits_synthetic_end() {
        let evs = events("<a/>");
        assert!(matches!(
            &evs[0],
            Event::Start {
                self_closing: true,
                ..
            }
        ));
        assert!(matches!(&evs[1], Event::End { name } if name == "a"));
    }

    #[test]
    fn eof_is_idempotent() {
        let mut r = Reader::new("<a/>");
        r.next_event().unwrap();
        r.next_event().unwrap();
        assert_eq!(r.next_event().unwrap(), Event::Eof);
        assert_eq!(r.next_event().unwrap(), Event::Eof);
    }

    #[test]
    fn unknown_entity_in_text_reports_offset() {
        let err = Reader::new("<a>xx&bogus;</a>").into_events().unwrap_err();
        match err {
            Error::UnknownEntity { at, name } => {
                assert_eq!(name, "bogus");
                assert_eq!(at, 5);
            }
            other => panic!("expected UnknownEntity, got {other:?}"),
        }
    }
}
