//! Error type for XML reading and writing.

use std::fmt;

/// Error produced while parsing or emitting XML.
///
/// Parse errors carry the byte offset into the input at which the problem was
/// detected, which is invaluable when debugging a corrupted swap blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The input ended in the middle of a construct.
    UnexpectedEof {
        /// What the parser was in the middle of reading.
        context: &'static str,
    },
    /// A character that is not legal at this position.
    Unexpected {
        /// Byte offset into the input.
        at: usize,
        /// Description of what was found / expected.
        message: String,
    },
    /// `&name;` entity that this subset does not define.
    UnknownEntity {
        /// Byte offset of the `&`.
        at: usize,
        /// The entity name, without `&` and `;`.
        name: String,
    },
    /// Close tag did not match the open element.
    MismatchedTag {
        /// Byte offset of the close tag.
        at: usize,
        /// Name the parser expected to be closed.
        expected: String,
        /// Name that was actually closed.
        found: String,
    },
    /// Writer misuse: `end` without a matching `begin`, attributes after
    /// content, or `finish` with open elements.
    WriterMisuse {
        /// Description of the misuse.
        message: String,
    },
    /// A name (element or attribute) is empty or contains illegal characters.
    BadName {
        /// The offending name.
        name: String,
    },
    /// Structure error raised by [`crate::Element`] accessors, e.g. a
    /// required attribute or child is missing.
    Structure {
        /// Description of what was missing or malformed.
        message: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnexpectedEof { context } => {
                write!(f, "unexpected end of input while reading {context}")
            }
            Error::Unexpected { at, message } => {
                write!(f, "unexpected input at byte {at}: {message}")
            }
            Error::UnknownEntity { at, name } => {
                write!(f, "unknown entity `&{name};` at byte {at}")
            }
            Error::MismatchedTag {
                at,
                expected,
                found,
            } => write!(
                f,
                "mismatched close tag at byte {at}: expected </{expected}>, found </{found}>"
            ),
            Error::WriterMisuse { message } => write!(f, "writer misuse: {message}"),
            Error::BadName { name } => write!(f, "invalid XML name {name:?}"),
            Error::Structure { message } => write!(f, "malformed document: {message}"),
        }
    }
}

impl std::error::Error for Error {}

impl Error {
    /// Construct a [`Error::Structure`] from anything displayable.
    pub fn structure(message: impl fmt::Display) -> Self {
        Error::Structure {
            message: message.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = Error::UnknownEntity {
            at: 7,
            name: "nbsp".into(),
        };
        let s = e.to_string();
        assert!(s.contains("nbsp"));
        assert!(s.contains('7'));
        assert_eq!(s, s.trim_end_matches('.'));
    }

    #[test]
    fn mismatched_tag_names_both_sides() {
        let e = Error::MismatchedTag {
            at: 0,
            expected: "a".into(),
            found: "b".into(),
        };
        let s = e.to_string();
        assert!(s.contains("</a>") && s.contains("</b>"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
