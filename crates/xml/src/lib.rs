//! Minimal, dependency-free XML for the OBIWAN Object-Swapping reproduction.
//!
//! The paper's central portability claim is that swapped-out object clusters
//! travel as *plain XML text*, so that the devices storing them need no
//! virtual machine or middleware — they only store, return, or drop keyed
//! text. This crate provides exactly the XML machinery that artifact needs:
//!
//! * [`escape`] / [`unescape`] — entity handling for text and attributes,
//! * [`Writer`] — an event-style writer with automatic element nesting,
//! * [`Reader`] — a pull parser emitting [`Event`]s,
//! * [`Element`] — a DOM-lite tree built on top of the reader for the
//!   consumers that prefer random access (the policy engine, the codec).
//!
//! The dialect is deliberately a subset of XML 1.0: elements, attributes,
//! text, comments, CDATA and the XML declaration. No namespaces, DTDs or
//! processing instructions — the OBIWAN wire format uses none of them.
//!
//! # Examples
//!
//! ```
//! use obiwan_xml::{Writer, Element};
//!
//! # fn main() -> Result<(), obiwan_xml::Error> {
//! let mut w = Writer::new();
//! w.begin("swap-cluster")?.attr("id", "sc-2")?;
//! w.begin("object")?.attr("oid", "42")?;
//! w.text("payload & more")?;
//! w.end()?; // object
//! w.end()?; // swap-cluster
//! let xml = w.finish()?;
//!
//! let root = Element::parse(&xml)?;
//! assert_eq!(root.name(), "swap-cluster");
//! assert_eq!(root.attr("id"), Some("sc-2"));
//! assert_eq!(root.children()[0].text(), "payload & more");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod escape;
mod reader;
mod tree;
mod writer;

pub use error::Error;
pub use escape::{escape, unescape};
pub use reader::{Event, Reader};
pub use tree::Element;
pub use writer::Writer;

/// Convenience result alias used across this crate.
pub type Result<T> = std::result::Result<T, Error>;
