//! Event-style XML writer.

use crate::{escape, Error, Result};

/// Streaming XML writer with automatic nesting and escaping.
///
/// `Writer` enforces well-formedness dynamically: attributes may only be
/// added while the current element's start tag is still open, every
/// [`begin`](Writer::begin) must be matched by an [`end`](Writer::end), and
/// [`finish`](Writer::finish) refuses to produce a document with unclosed
/// elements.
///
/// The output is indented two spaces per depth level by default because the
/// blobs are meant to be human-inspectable on the storing device; call
/// [`compact`](Writer::compact) for wire-compact output.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), obiwan_xml::Error> {
/// let mut w = obiwan_xml::Writer::new();
/// w.begin("list")?;
/// for i in 0..2 {
///     w.begin("item")?.attr("n", i.to_string())?;
///     w.end()?;
/// }
/// w.end()?;
/// let doc = w.finish()?;
/// assert!(doc.contains("<item n=\"0\"/>"));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Writer {
    out: String,
    stack: Vec<String>,
    /// Start tag of the innermost element is still open (`<name ...`).
    tag_open: bool,
    /// Per open element: whether it has child elements / comments, and
    /// whether it has text (text suppresses indentation so character data is
    /// never polluted with pretty-printing whitespace).
    content: Vec<ContentFlags>,
    pretty: bool,
}

#[derive(Debug, Clone, Copy, Default)]
struct ContentFlags {
    elements: bool,
    text: bool,
}

impl Default for Writer {
    fn default() -> Self {
        Self::new()
    }
}

impl Writer {
    /// Create a writer that emits an XML declaration and pretty-prints.
    pub fn new() -> Self {
        Writer {
            out: String::from("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"),
            stack: Vec::new(),
            tag_open: false,
            content: Vec::new(),
            pretty: true,
        }
    }

    /// Switch to compact (no indentation, no newlines) output.
    ///
    /// Compact form is what the bandwidth model in `obiwan-net` should see;
    /// pretty form is for humans and tests.
    pub fn compact(mut self) -> Self {
        self.pretty = false;
        self
    }

    /// Open a child element.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadName`] if `name` is not a valid element name, and
    /// [`Error::WriterMisuse`] if a previous document was already finished.
    pub fn begin(&mut self, name: &str) -> Result<&mut Self> {
        validate_name(name)?;
        self.close_pending_tag(false);
        let parent_has_text = self
            .content
            .last_mut()
            .map(|flags| {
                flags.elements = true;
                flags.text
            })
            .unwrap_or(false);
        if self.pretty && !parent_has_text {
            self.indent();
        }
        self.out.push('<');
        self.out.push_str(name);
        self.stack.push(name.to_string());
        self.tag_open = true;
        self.content.push(ContentFlags::default());
        Ok(self)
    }

    /// Add an attribute to the element opened by the latest `begin`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::WriterMisuse`] if the start tag was already closed
    /// (i.e. content was written since `begin`), and [`Error::BadName`] for an
    /// invalid attribute name.
    pub fn attr(&mut self, name: &str, value: impl AsRef<str>) -> Result<&mut Self> {
        validate_name(name)?;
        if !self.tag_open {
            return Err(Error::WriterMisuse {
                message: format!("attribute `{name}` added after element content"),
            });
        }
        self.out.push(' ');
        self.out.push_str(name);
        self.out.push_str("=\"");
        self.out.push_str(&escape(value.as_ref()));
        self.out.push('"');
        Ok(self)
    }

    /// Write escaped character data inside the current element.
    ///
    /// # Errors
    ///
    /// Returns [`Error::WriterMisuse`] when no element is open.
    pub fn text(&mut self, text: &str) -> Result<&mut Self> {
        if self.stack.is_empty() {
            return Err(Error::WriterMisuse {
                message: "text outside of any element".into(),
            });
        }
        self.close_pending_tag(true);
        // The emptiness check above makes `last_mut` infallible.
        #[allow(clippy::disallowed_methods)]
        {
            self.content.last_mut().expect("stack nonempty").text = true;
        }
        self.out.push_str(&escape(text));
        Ok(self)
    }

    /// Write a `name="value"` style leaf element: `<name>value</name>`.
    ///
    /// Shorthand for `begin`/`text`/`end`; used pervasively by the codec.
    ///
    /// # Errors
    ///
    /// Same conditions as [`begin`](Writer::begin).
    pub fn leaf(&mut self, name: &str, value: impl AsRef<str>) -> Result<&mut Self> {
        self.begin(name)?;
        // Keep leaf text on one line even in pretty mode.
        self.close_pending_tag(true);
        // `begin` above pushed onto both stacks, so neither pop can miss.
        #[allow(clippy::disallowed_methods)]
        {
            self.content.last_mut().expect("just pushed").text = true;
        }
        self.out.push_str(&escape(value.as_ref()));
        #[allow(clippy::disallowed_methods)]
        let name = self.stack.pop().expect("just pushed");
        self.content.pop();
        self.out.push_str("</");
        self.out.push_str(&name);
        self.out.push('>');
        Ok(self)
    }

    /// Write an XML comment. Any `--` inside the text is replaced by `- -`
    /// to keep the document well-formed.
    ///
    /// # Errors
    ///
    /// Currently infallible but returns `Result` for signature uniformity.
    pub fn comment(&mut self, text: &str) -> Result<&mut Self> {
        self.close_pending_tag(false);
        let parent_has_text = self
            .content
            .last_mut()
            .map(|flags| {
                flags.elements = true;
                flags.text
            })
            .unwrap_or(false);
        if self.pretty && !parent_has_text {
            self.indent();
        }
        self.out.push_str("<!-- ");
        self.out.push_str(&text.replace("--", "- -"));
        self.out.push_str(" -->");
        Ok(self)
    }

    /// Close the most recently opened element.
    ///
    /// Elements with no content are emitted as self-closing tags.
    ///
    /// # Errors
    ///
    /// Returns [`Error::WriterMisuse`] when there is nothing to close.
    pub fn end(&mut self) -> Result<&mut Self> {
        let name = self.stack.pop().ok_or(Error::WriterMisuse {
            message: "end() without matching begin()".into(),
        })?;
        // `stack` and `content` grow and shrink together; the successful
        // pop above guarantees this one succeeds too.
        #[allow(clippy::disallowed_methods)]
        let flags = self.content.pop().expect("stacks in sync");
        if self.tag_open {
            self.out.push_str("/>");
            self.tag_open = false;
        } else {
            if self.pretty && flags.elements && !flags.text {
                self.indent();
            }
            self.out.push_str("</");
            self.out.push_str(&name);
            self.out.push('>');
        }
        Ok(self)
    }

    /// Finish the document and return the XML text.
    ///
    /// # Errors
    ///
    /// Returns [`Error::WriterMisuse`] if any element is still open.
    pub fn finish(mut self) -> Result<String> {
        if !self.stack.is_empty() {
            return Err(Error::WriterMisuse {
                message: format!("{} element(s) left open", self.stack.len()),
            });
        }
        if self.pretty {
            self.out.push('\n');
        }
        Ok(self.out)
    }

    /// Number of currently open elements. Useful for writer-driven codecs
    /// that need to assert balance at checkpoints.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    fn close_pending_tag(&mut self, _for_text: bool) {
        if self.tag_open {
            self.out.push('>');
            self.tag_open = false;
        }
    }

    fn indent(&mut self) {
        self.out.push('\n');
        for _ in 0..self.stack.len() {
            self.out.push_str("  ");
        }
    }
}

fn validate_name(name: &str) -> Result<()> {
    let mut chars = name.chars();
    let ok_first = matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_');
    let ok_rest = chars.all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.' | ':'));
    if ok_first && ok_rest {
        Ok(())
    } else {
        Err(Error::BadName { name: name.into() })
    }
}

#[cfg(test)]
mod tests {
    // Tests assert on known-good setups; panicking on failure is the point.
    #![allow(clippy::disallowed_methods)]
    use super::*;
    use crate::Element;

    #[test]
    fn empty_element_is_self_closing() {
        let mut w = Writer::new();
        w.begin("a").unwrap();
        w.end().unwrap();
        assert!(w.finish().unwrap().contains("<a/>"));
    }

    #[test]
    fn attributes_are_escaped() {
        let mut w = Writer::new();
        w.begin("a").unwrap().attr("v", "x\"<y>").unwrap();
        w.end().unwrap();
        let doc = w.finish().unwrap();
        assert!(doc.contains("v=\"x&quot;&lt;y&gt;\""));
    }

    #[test]
    fn attr_after_content_is_misuse() {
        let mut w = Writer::new();
        w.begin("a").unwrap();
        w.text("hi").unwrap();
        assert!(matches!(w.attr("k", "v"), Err(Error::WriterMisuse { .. })));
    }

    #[test]
    fn end_without_begin_is_misuse() {
        let mut w = Writer::new();
        assert!(matches!(w.end(), Err(Error::WriterMisuse { .. })));
    }

    #[test]
    fn finish_with_open_element_is_misuse() {
        let mut w = Writer::new();
        w.begin("a").unwrap();
        assert!(matches!(w.finish(), Err(Error::WriterMisuse { .. })));
    }

    #[test]
    fn text_outside_element_is_misuse() {
        let mut w = Writer::new();
        assert!(matches!(w.text("x"), Err(Error::WriterMisuse { .. })));
    }

    #[test]
    fn bad_element_name_is_rejected() {
        let mut w = Writer::new();
        assert!(matches!(w.begin("1bad"), Err(Error::BadName { .. })));
        assert!(matches!(w.begin("sp ace"), Err(Error::BadName { .. })));
        assert!(matches!(w.begin(""), Err(Error::BadName { .. })));
    }

    #[test]
    fn leaf_produces_single_line_element() {
        let mut w = Writer::new();
        w.begin("root").unwrap();
        w.leaf("k", "v").unwrap();
        w.end().unwrap();
        assert!(w.finish().unwrap().contains("<k>v</k>"));
    }

    #[test]
    fn comment_dashes_are_neutralized() {
        let mut w = Writer::new();
        w.begin("r").unwrap();
        w.comment("a--b").unwrap();
        w.end().unwrap();
        let doc = w.finish().unwrap();
        assert!(doc.contains("<!-- a- -b -->"));
    }

    #[test]
    fn compact_mode_has_no_newlines_after_declaration() {
        let mut w = Writer::new().compact();
        w.begin("a").unwrap();
        w.begin("b").unwrap();
        w.end().unwrap();
        w.end().unwrap();
        let doc = w.finish().unwrap();
        let body = doc.split_once('\n').unwrap().1;
        assert!(!body.contains('\n'));
    }

    #[test]
    fn written_document_parses_back() {
        let mut w = Writer::new();
        w.begin("root").unwrap().attr("a", "1").unwrap();
        w.begin("child").unwrap();
        w.text("hello & goodbye").unwrap();
        w.end().unwrap();
        w.comment("meta").unwrap();
        w.leaf("leafy", "<raw>").unwrap();
        w.end().unwrap();
        let doc = w.finish().unwrap();
        let root = Element::parse(&doc).unwrap();
        assert_eq!(root.attr("a"), Some("1"));
        assert_eq!(root.children().len(), 2);
        assert_eq!(root.children()[0].text(), "hello & goodbye");
        assert_eq!(root.children()[1].text(), "<raw>");
    }

    #[test]
    fn depth_tracks_nesting() {
        let mut w = Writer::new();
        assert_eq!(w.depth(), 0);
        w.begin("a").unwrap();
        w.begin("b").unwrap();
        assert_eq!(w.depth(), 2);
        w.end().unwrap();
        assert_eq!(w.depth(), 1);
    }
}
