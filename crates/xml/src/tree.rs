//! DOM-lite element tree built on the pull parser.

use crate::{Error, Event, Reader, Result, Writer};

/// An in-memory XML element: name, attributes, child elements and text.
///
/// Mixed content is simplified: all text chunks directly inside the element
/// are concatenated into one string, which matches every document the OBIWAN
/// wire format produces (elements carry either text or children, never an
/// interleaving that matters).
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), obiwan_xml::Error> {
/// let root = obiwan_xml::Element::parse(
///     "<cluster id=\"7\"><object oid=\"1\"/><object oid=\"2\"/></cluster>",
/// )?;
/// assert_eq!(root.require_attr("id")?, "7");
/// assert_eq!(root.children_named("object").count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Element {
    name: String,
    attrs: Vec<(String, String)>,
    children: Vec<Element>,
    text: String,
}

impl Element {
    /// Create an element with the given name and nothing else.
    pub fn new(name: impl Into<String>) -> Self {
        Element {
            name: name.into(),
            attrs: Vec::new(),
            children: Vec::new(),
            text: String::new(),
        }
    }

    /// Parse a document and return its root element.
    ///
    /// # Errors
    ///
    /// Any parse error from [`Reader`], plus [`Error::Structure`] when the
    /// document has no root element or trailing content after it.
    pub fn parse(doc: &str) -> Result<Element> {
        let mut reader = Reader::new(doc);
        let root = match reader.next_event()? {
            Event::Start {
                name,
                attrs,
                self_closing,
            } => build(&mut reader, name, attrs, self_closing)?,
            Event::Eof => return Err(Error::structure("document contains no root element")),
            other => {
                return Err(Error::structure(format!(
                    "expected root element, found {other:?}"
                )))
            }
        };
        match reader.next_event()? {
            Event::Eof => Ok(root),
            other => Err(Error::structure(format!(
                "trailing content after root element: {other:?}"
            ))),
        }
    }

    /// Element name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Attribute value by name, if present.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Attribute value by name.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Structure`] naming the element and attribute if it is
    /// absent — this is the workhorse of the swap-blob codec's validation.
    pub fn require_attr(&self, name: &str) -> Result<&str> {
        self.attr(name).ok_or_else(|| {
            Error::structure(format!(
                "element <{}> missing required attribute `{name}`",
                self.name
            ))
        })
    }

    /// Parse an attribute into any `FromStr` type.
    ///
    /// # Errors
    ///
    /// [`Error::Structure`] if the attribute is missing or fails to parse.
    pub fn parse_attr<T>(&self, name: &str) -> Result<T>
    where
        T: std::str::FromStr,
        T::Err: std::fmt::Display,
    {
        let raw = self.require_attr(name)?;
        raw.parse().map_err(|e| {
            Error::structure(format!(
                "element <{}> attribute `{name}`={raw:?}: {e}",
                self.name
            ))
        })
    }

    /// All attributes in document order.
    pub fn attrs(&self) -> &[(String, String)] {
        &self.attrs
    }

    /// Child elements in document order.
    pub fn children(&self) -> &[Element] {
        &self.children
    }

    /// Iterator over child elements with a given name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.children.iter().filter(move |c| c.name == name)
    }

    /// First child with the given name, if any.
    pub fn child(&self, name: &str) -> Option<&Element> {
        self.children.iter().find(|c| c.name == name)
    }

    /// First child with the given name.
    ///
    /// # Errors
    ///
    /// [`Error::Structure`] naming both elements when absent.
    pub fn require_child(&self, name: &str) -> Result<&Element> {
        self.child(name).ok_or_else(|| {
            Error::structure(format!(
                "element <{}> missing required child <{name}>",
                self.name
            ))
        })
    }

    /// Concatenated text content directly inside this element.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// Builder-style: set an attribute (replacing an existing one).
    pub fn with_attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.set_attr(name, value);
        self
    }

    /// Set an attribute, replacing any existing value.
    pub fn set_attr(&mut self, name: impl Into<String>, value: impl Into<String>) {
        let name = name.into();
        let value = value.into();
        if let Some(slot) = self.attrs.iter_mut().find(|(k, _)| *k == name) {
            slot.1 = value;
        } else {
            self.attrs.push((name, value));
        }
    }

    /// Builder-style: append a child element.
    pub fn with_child(mut self, child: Element) -> Self {
        self.children.push(child);
        self
    }

    /// Append a child element.
    pub fn push_child(&mut self, child: Element) {
        self.children.push(child);
    }

    /// Builder-style: set the text content.
    pub fn with_text(mut self, text: impl Into<String>) -> Self {
        self.text = text.into();
        self
    }

    /// Serialize this element (and subtree) to an XML document string.
    ///
    /// The output always parses back to an equal tree; see the property test.
    // A parsed tree always re-serializes: every `begin` is matched by an
    // `end`, so neither call can fail and `String` stays the right return
    // type for this infallible round-trip.
    #[allow(clippy::disallowed_methods)]
    pub fn to_xml(&self) -> String {
        let mut w = Writer::new();
        self.write_into(&mut w)
            .expect("tree is well-formed by construction");
        w.finish().expect("balanced by construction")
    }

    fn write_into(&self, w: &mut Writer) -> Result<()> {
        w.begin(&self.name)?;
        for (k, v) in &self.attrs {
            w.attr(k, v)?;
        }
        if !self.text.is_empty() {
            w.text(&self.text)?;
        }
        for c in &self.children {
            c.write_into(w)?;
        }
        w.end()?;
        Ok(())
    }
}

fn build(
    reader: &mut Reader<'_>,
    name: String,
    attrs: Vec<(String, String)>,
    self_closing: bool,
) -> Result<Element> {
    let mut el = Element {
        name,
        attrs,
        children: Vec::new(),
        text: String::new(),
    };
    if self_closing {
        // Consume the synthetic End.
        match reader.next_event()? {
            Event::End { .. } => return Ok(el),
            other => return Err(Error::structure(format!("expected end, got {other:?}"))),
        }
    }
    loop {
        match reader.next_event()? {
            Event::Start {
                name,
                attrs,
                self_closing,
            } => {
                el.children.push(build(reader, name, attrs, self_closing)?);
            }
            Event::Text(t) => el.text.push_str(&t),
            Event::End { .. } => return Ok(el),
            Event::Eof => {
                return Err(Error::UnexpectedEof {
                    context: "element tree",
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    // Tests assert on known-good setups; panicking on failure is the point.
    #![allow(clippy::disallowed_methods)]
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parse_and_navigate() {
        let root = Element::parse("<a k=\"v\"><b/><c n=\"2\">txt</c><b/></a>").unwrap();
        assert_eq!(root.name(), "a");
        assert_eq!(root.attr("k"), Some("v"));
        assert_eq!(root.children().len(), 3);
        assert_eq!(root.children_named("b").count(), 2);
        assert_eq!(root.child("c").unwrap().text(), "txt");
    }

    #[test]
    fn require_attr_reports_element_and_attribute() {
        let root = Element::parse("<thing/>").unwrap();
        let err = root.require_attr("oid").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("thing") && msg.contains("oid"));
    }

    #[test]
    fn parse_attr_converts_numbers() {
        let root = Element::parse("<a n=\"42\" f=\"2.5\"/>").unwrap();
        assert_eq!(root.parse_attr::<u64>("n").unwrap(), 42);
        assert_eq!(root.parse_attr::<f64>("f").unwrap(), 2.5);
        assert!(root.parse_attr::<u64>("f").is_err());
    }

    #[test]
    fn require_child_reports_both_names() {
        let root = Element::parse("<a/>").unwrap();
        let msg = root.require_child("b").unwrap_err().to_string();
        assert!(msg.contains("<a>") && msg.contains("<b>"));
    }

    #[test]
    fn empty_document_is_structure_error() {
        assert!(matches!(Element::parse(""), Err(Error::Structure { .. })));
        assert!(matches!(
            Element::parse("<?xml version=\"1.0\"?>"),
            Err(Error::Structure { .. })
        ));
    }

    #[test]
    fn trailing_root_sibling_is_structure_error() {
        assert!(matches!(
            Element::parse("<a/><b/>"),
            Err(Error::Structure { .. })
        ));
    }

    #[test]
    fn builder_roundtrip() {
        let el = Element::new("swap-cluster")
            .with_attr("id", "sc-9")
            .with_child(
                Element::new("object")
                    .with_attr("oid", "1")
                    .with_text("x&y"),
            );
        let doc = el.to_xml();
        let back = Element::parse(&doc).unwrap();
        assert_eq!(back, el);
    }

    #[test]
    fn set_attr_replaces_existing() {
        let mut el = Element::new("a").with_attr("k", "1");
        el.set_attr("k", "2");
        assert_eq!(el.attr("k"), Some("2"));
        assert_eq!(el.attrs().len(), 1);
    }

    fn arb_element(depth: u32) -> impl Strategy<Value = Element> {
        let name = "[a-z][a-z0-9]{0,6}";
        let attr = ("[a-z]{1,5}", "\\PC{0,12}");
        let leaf = (name, proptest::collection::vec(attr, 0..3), "\\PC{0,16}").prop_map(
            |(n, attrs, text)| {
                let mut el = Element::new(n).with_text(text);
                // Dedup attr names to keep equality semantics simple.
                for (k, v) in attrs {
                    el.set_attr(k, v);
                }
                el
            },
        );
        leaf.prop_recursive(depth, 24, 3, |inner| {
            ("[a-z][a-z0-9]{0,6}", proptest::collection::vec(inner, 0..3)).prop_map(
                |(n, children)| {
                    let mut el = Element::new(n);
                    for c in children {
                        el.push_child(c);
                    }
                    el
                },
            )
        })
    }

    proptest! {
        #[test]
        fn to_xml_parse_roundtrip(el in arb_element(3)) {
            let doc = el.to_xml();
            let back = Element::parse(&doc).unwrap();
            // Whitespace-only text is dropped by the reader; normalize.
            fn norm(e: &Element) -> Element {
                let mut c = e.clone();
                if c.text.trim().is_empty() { c.text.clear(); }
                c.children = c.children.iter().map(norm).collect();
                c
            }
            prop_assert_eq!(norm(&back), norm(&el));
        }
    }
}
