//! Entity escaping and unescaping for the XML subset.

use crate::{Error, Result};

/// Escape a string for inclusion in XML text or attribute content.
///
/// The five predefined XML entities are produced: `&amp;`, `&lt;`, `&gt;`,
/// `&quot;` and `&apos;`. Control characters that are illegal even when
/// escaped (everything below `0x20` except tab, LF and CR) are emitted as
/// numeric character references so binary-ish payload never corrupts a swap
/// blob.
///
/// # Examples
///
/// ```
/// assert_eq!(obiwan_xml::escape("a<b & c"), "a&lt;b &amp; c");
/// ```
pub fn escape(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    for ch in input.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            c if (c as u32) < 0x20 && c != '\t' && c != '\n' && c != '\r' => {
                out.push_str(&format!("&#{};", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Reverse of [`escape`]: resolve entities back to characters.
///
/// Supports the five predefined entities plus decimal (`&#65;`) and
/// hexadecimal (`&#x41;`) character references.
///
/// # Errors
///
/// Returns [`Error::UnknownEntity`] for any other `&name;` sequence, and
/// [`Error::Unexpected`] for a bare `&` that never closes with `;` or a
/// numeric reference that does not denote a valid scalar value.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), obiwan_xml::Error> {
/// assert_eq!(obiwan_xml::unescape("a&lt;b &amp; c")?, "a<b & c");
/// assert_eq!(obiwan_xml::unescape("&#x41;&#66;")?, "AB");
/// # Ok(())
/// # }
/// ```
pub fn unescape(input: &str) -> Result<String> {
    let mut out = String::with_capacity(input.len());
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'&' {
            // Advance over a full UTF-8 character.
            let ch_len = utf8_len(bytes[i]);
            out.push_str(&input[i..i + ch_len]);
            i += ch_len;
            continue;
        }
        let semi = input[i..].find(';').ok_or(Error::Unexpected {
            at: i,
            message: "entity beginning with `&` never terminated by `;`".into(),
        })? + i;
        let name = &input[i + 1..semi];
        match name {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ if name.starts_with('#') => {
                let code = parse_char_ref(name, i)?;
                out.push(code);
            }
            _ => {
                return Err(Error::UnknownEntity {
                    at: i,
                    name: name.to_string(),
                })
            }
        }
        i = semi + 1;
    }
    Ok(out)
}

fn parse_char_ref(name: &str, at: usize) -> Result<char> {
    let digits = &name[1..];
    let value = if let Some(hex) = digits
        .strip_prefix('x')
        .or_else(|| digits.strip_prefix('X'))
    {
        u32::from_str_radix(hex, 16)
    } else {
        digits.parse::<u32>()
    }
    .map_err(|_| Error::Unexpected {
        at,
        message: format!("malformed character reference `&{name};`"),
    })?;
    char::from_u32(value).ok_or(Error::Unexpected {
        at,
        message: format!("character reference &{name}; is not a unicode scalar"),
    })
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    // Tests assert on known-good setups; panicking on failure is the point.
    #![allow(clippy::disallowed_methods)]
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn escapes_all_five_entities() {
        assert_eq!(escape(r#"<>&"'"#), "&lt;&gt;&amp;&quot;&apos;");
    }

    #[test]
    fn escape_leaves_plain_text_alone() {
        assert_eq!(escape("hello world"), "hello world");
    }

    #[test]
    fn escape_control_characters_as_numeric_refs() {
        assert_eq!(escape("\u{1}"), "&#1;");
        // Tab, LF and CR are legal raw.
        assert_eq!(escape("\t\n\r"), "\t\n\r");
    }

    #[test]
    fn unescape_roundtrips_entities() {
        assert_eq!(unescape("&lt;&gt;&amp;&quot;&apos;").unwrap(), "<>&\"'");
    }

    #[test]
    fn unescape_decimal_and_hex_refs() {
        assert_eq!(unescape("&#65;").unwrap(), "A");
        assert_eq!(unescape("&#x41;").unwrap(), "A");
        assert_eq!(unescape("&#X41;").unwrap(), "A");
    }

    #[test]
    fn unescape_rejects_unknown_entity() {
        assert!(matches!(
            unescape("&nbsp;"),
            Err(Error::UnknownEntity { name, .. }) if name == "nbsp"
        ));
    }

    #[test]
    fn unescape_rejects_unterminated_entity() {
        assert!(matches!(unescape("a&amp"), Err(Error::Unexpected { .. })));
    }

    #[test]
    fn unescape_rejects_surrogate_char_ref() {
        assert!(unescape("&#xD800;").is_err());
    }

    #[test]
    fn unescape_handles_multibyte_passthrough() {
        assert_eq!(unescape("héllo — ωorld").unwrap(), "héllo — ωorld");
    }

    proptest! {
        #[test]
        fn escape_then_unescape_is_identity(s in "\\PC*") {
            let escaped = escape(&s);
            prop_assert_eq!(unescape(&escaped).unwrap(), s);
        }

        #[test]
        fn escaped_text_contains_no_markup(s in "\\PC*") {
            let escaped = escape(&s);
            prop_assert!(!escaped.contains('<'));
            prop_assert!(!escaped.contains('"'));
        }
    }
}
