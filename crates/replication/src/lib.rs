//! OBIWAN incremental object replication (paper §2).
//!
//! This crate reproduces the replication half of the OBIWAN middleware that
//! Object-Swapping builds upon:
//!
//! * a [`Server`] holding the master object graph, handing out **clusters**
//!   of adaptable size computed by a [`ClusterStrategy`] (BFS from the
//!   faulted object, the paper's "chained via references" shape);
//! * a device-side [`Process`] with **object-fault handling**: references to
//!   not-yet-replicated objects are [`obiwan_heap::ObjectKind::FaultProxy`]
//!   objects, transparent to application code — invoking one triggers
//!   replication of another cluster and **proxy replacement** (the proxy is
//!   unlinked from the graph so the application runs at full speed);
//! * the **invocation machinery** ([`Process::invoke`]): methods are Rust
//!   closures registered in a [`MethodTable`], dispatched by object kind —
//!   the uniform stand-in for the interception code `obicomp` generates;
//! * an [`Interceptor`] hook through which `obiwan-core` layers the
//!   swap-cluster behaviour (swap-proxy creation/reuse/dismantling, swap-in
//!   on replacement-object access) *without* this crate knowing anything
//!   about swapping — mirroring how Object-Swapping was "incorporated" into
//!   the existing middleware;
//! * [`ReplicationEvent`]s consumed by the policy engine.
//!
//! # Examples
//!
//! ```
//! use obiwan_replication::{standard_classes, Process, ReplConfig, Server};
//!
//! # fn main() -> Result<(), obiwan_replication::ReplError> {
//! let std = standard_classes();
//! let mut server = Server::new(std.clone());
//! let head = server.build_list("Node", 50, 16)?;
//!
//! let mut p = Process::new(std, server.into_shared(), 1 << 20, ReplConfig::with_cluster_size(10));
//! let root = p.replicate_root(head)?;        // first cluster of 10 arrives
//! assert_eq!(p.replicated_objects(), 10);
//!
//! // Traversing past the cluster edge faults the next clusters in.
//! let len = p.invoke(root, "length", vec![])?.expect_int()?;
//! assert_eq!(len, 50);
//! assert_eq!(p.replicated_objects(), 50);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod events;
mod methods;
mod process;
mod server;

pub use error::ReplError;
pub use events::ReplicationEvent;
pub use methods::{
    standard_classes, MethodFn, MethodTable, MiddlewareClasses, Universe, UniverseBuilder,
};
pub use process::{
    ClusterInfo, Frame, Interceptor, Process, ReplConfig, Resolved, FAULT_PROXY_CLASS,
    REPLACEMENT_CLASS, SWAP_PROXY_CLASS,
};
pub use server::{ClusterStrategy, Server, SharedServer, WireObject, WireValue};

/// Convenience result alias used across this crate.
pub type Result<T> = std::result::Result<T, ReplError>;
