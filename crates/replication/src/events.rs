//! Replication events consumed by the policy engine and the swap layer.

use obiwan_heap::Oid;

/// Something the replication runtime did, reported asynchronously (the
/// paper's SwappingManager "is registered as a listener of all events
/// regarding replication of clusters of objects").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplicationEvent {
    /// An object fault occurred (a fault proxy was invoked).
    ObjectFault {
        /// Identity that faulted.
        oid: Oid,
    },
    /// A cluster of objects was replicated onto the device.
    ClusterReplicated {
        /// Device-local cluster index.
        repl_cluster: u32,
        /// Identity the fault that caused it targeted.
        root: Oid,
        /// Number of objects materialized.
        objects: usize,
        /// Bytes those objects occupy on the device.
        bytes: usize,
    },
    /// A replication attempt failed because the device ran out of memory.
    ReplicationFailed {
        /// Identity that was being replicated.
        root: Oid,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_comparable_for_test_assertions() {
        let a = ReplicationEvent::ObjectFault { oid: Oid(1) };
        let b = ReplicationEvent::ObjectFault { oid: Oid(1) };
        assert_eq!(a, b);
    }
}
