//! The replication server: master object graph + cluster computation.

use crate::methods::Universe;
use crate::{ReplError, Result};
use bytes::Bytes;
use obiwan_heap::{ClassId, Heap, ObjRef, ObjectKind, Oid, Value};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// How the server groups objects into replication clusters when a device
/// faults on an object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClusterStrategy {
    /// Breadth-first traversal from the faulted object — the paper's
    /// "chained (via references) object clusters".
    #[default]
    Bfs,
    /// Depth-first traversal from the faulted object; fills a cluster along
    /// one chain before widening (better for list-shaped data, identical to
    /// BFS on a list).
    Dfs,
}

/// A field value on the wire between server and device: plain scalars and
/// *identities*, never device-local handles.
#[derive(Debug, Clone, PartialEq)]
pub enum WireValue {
    /// Null / uninitialized.
    Null,
    /// A non-reference scalar ([`Value::Ref`] is forbidden here).
    Scalar(Value),
    /// A reference carried as a global identity.
    Ref(Oid),
}

/// One object on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireObject {
    /// Global identity.
    pub oid: Oid,
    /// Its class.
    pub class: ClassId,
    /// Field values in layout order.
    pub fields: Vec<WireValue>,
}

/// A server shared between the devices that replicate from it.
pub type SharedServer = Arc<Mutex<Server>>;

/// The master-graph holder. Applications (or test harnesses) build the
/// object graph here; devices replicate clusters of it on demand.
///
/// The server's own heap is effectively unbounded — the paper's asymmetry is
/// precisely that the *device* is memory-constrained while the surrounding
/// infrastructure is not.
#[derive(Debug)]
pub struct Server {
    heap: Heap,
    classes: Universe,
    oid_map: HashMap<Oid, ObjRef>,
    next_oid: u64,
    strategy: ClusterStrategy,
    /// Clusters served so far (diagnostics).
    clusters_served: u64,
    /// Objects served so far (diagnostics).
    objects_served: u64,
    /// Device updates applied (diagnostics).
    updates_applied: u64,
}

impl Server {
    /// Create a server for the given class universe.
    pub fn new(classes: Universe) -> Self {
        Server {
            heap: Heap::new(classes.registry.clone(), usize::MAX / 2),
            classes,
            oid_map: HashMap::new(),
            next_oid: 1,
            strategy: ClusterStrategy::default(),
            clusters_served: 0,
            objects_served: 0,
            updates_applied: 0,
        }
    }

    /// Wrap the server for sharing with devices.
    pub fn into_shared(self) -> SharedServer {
        Arc::new(Mutex::new(self))
    }

    /// Change the clustering strategy.
    pub fn set_strategy(&mut self, strategy: ClusterStrategy) {
        self.strategy = strategy;
    }

    /// The class universe this server serves.
    pub fn classes(&self) -> &Universe {
        &self.classes
    }

    /// Create a master object of the named class. All fields start `Null`.
    ///
    /// # Errors
    ///
    /// [`ReplError::Heap`] for an unknown class name.
    pub fn create(&mut self, class_name: &str) -> Result<Oid> {
        let class = self.classes.registry.class_id(class_name)?;
        let r = self.heap.alloc(class, ObjectKind::App)?;
        let oid = Oid(self.next_oid);
        self.next_oid += 1;
        self.heap.get_mut(r)?.header_mut().oid = oid;
        self.heap.get_mut(r)?.header_mut().pinned = true; // masters never die
        self.oid_map.insert(oid, r);
        Ok(oid)
    }

    /// Set a scalar field on a master object.
    ///
    /// # Errors
    ///
    /// [`ReplError::UnknownOid`] or field errors from the heap; passing a
    /// [`Value::Ref`] here is a type error — use [`Server::set_ref`].
    pub fn set_scalar(&mut self, oid: Oid, field: &str, value: Value) -> Result<()> {
        if matches!(value, Value::Ref(_)) {
            return Err(ReplError::corrupt(
                "set_scalar called with a Ref; use set_ref with an Oid",
            ));
        }
        let r = self.resolve(oid)?;
        self.heap.set_field_by_name(r, field, value)?;
        Ok(())
    }

    /// Link one master object to another by field.
    ///
    /// # Errors
    ///
    /// [`ReplError::UnknownOid`] for either identity, or heap field errors.
    pub fn set_ref(&mut self, oid: Oid, field: &str, target: Option<Oid>) -> Result<()> {
        let r = self.resolve(oid)?;
        let value = match target {
            Some(t) => Value::Ref(self.resolve(t)?),
            None => Value::Null,
        };
        self.heap.set_field_by_name(r, field, value)?;
        Ok(())
    }

    /// Read a field of a master object (refs come back as identities).
    ///
    /// # Errors
    ///
    /// [`ReplError::UnknownOid`] or heap field errors.
    pub fn get_field(&self, oid: Oid, field: &str) -> Result<WireValue> {
        let r = self.resolve(oid)?;
        Ok(self.to_wire(self.heap.field_by_name(r, field)?))
    }

    /// Number of master objects.
    pub fn object_count(&self) -> usize {
        self.oid_map.len()
    }

    /// `(clusters_served, objects_served)` counters.
    pub fn served(&self) -> (u64, u64) {
        (self.clusters_served, self.objects_served)
    }

    /// Build a singly linked list of `n` objects of `class_name` (which must
    /// have a `next` ref field and a `payload` bytes field), each carrying
    /// `payload_bytes` of payload. Returns the head. This is the exact shape
    /// of the paper's Figure 5 workload (10 000 × 64-byte objects).
    ///
    /// # Errors
    ///
    /// Unknown class or missing fields.
    pub fn build_list(&mut self, class_name: &str, n: usize, payload_bytes: usize) -> Result<Oid> {
        assert!(n > 0, "a list needs at least one node");
        let mut oids = Vec::with_capacity(n);
        for i in 0..n {
            let oid = self.create(class_name)?;
            self.set_scalar(
                oid,
                "payload",
                Value::Bytes(Bytes::from(vec![(i % 251) as u8; payload_bytes])),
            )?;
            oids.push(oid);
        }
        for w in oids.windows(2) {
            self.set_ref(w[0], "next", Some(w[1]))?;
        }
        Ok(oids[0])
    }

    /// Build a complete binary tree of `TreeNode`s of the given `depth`
    /// (so `2^depth − 1` nodes), with distinct `tag`s assigned in BFS
    /// order and `payload_bytes` of payload each. Returns the root.
    ///
    /// # Errors
    ///
    /// Unknown class or missing fields.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero or would overflow the node count.
    pub fn build_tree(&mut self, depth: u32, payload_bytes: usize) -> Result<Oid> {
        assert!((1..=24).contains(&depth), "tree depth must be in 1..=24");
        let count = (1u64 << depth) - 1;
        let mut oids = Vec::with_capacity(count as usize);
        for i in 0..count {
            let oid = self.create("TreeNode")?;
            self.set_scalar(oid, "tag", Value::Int(i as i64 + 1))?;
            self.set_scalar(
                oid,
                "payload",
                Value::Bytes(Bytes::from(vec![(i % 251) as u8; payload_bytes])),
            )?;
            oids.push(oid);
        }
        for i in 0..count as usize {
            let left = 2 * i + 1;
            let right = 2 * i + 2;
            if left < count as usize {
                self.set_ref(oids[i], "left", Some(oids[left]))?;
            }
            if right < count as usize {
                self.set_ref(oids[i], "right", Some(oids[right]))?;
            }
        }
        Ok(oids[0])
    }

    /// Compute and serve the cluster of up to `size` objects containing
    /// `root`, excluding identities for which `already_replicated` returns
    /// true. The traversal follows the configured [`ClusterStrategy`].
    ///
    /// # Errors
    ///
    /// [`ReplError::UnknownOid`] if `root` is unknown.
    pub fn fetch_cluster(
        &mut self,
        root: Oid,
        size: usize,
        already_replicated: &dyn Fn(Oid) -> bool,
    ) -> Result<Vec<WireObject>> {
        let root_ref = self.resolve(root)?;
        let size = size.max(1);
        let mut picked: Vec<ObjRef> = Vec::with_capacity(size);
        let mut seen: HashMap<u32, ()> = HashMap::new();
        let mut queue: VecDeque<ObjRef> = VecDeque::new();
        queue.push_back(root_ref);
        while picked.len() < size {
            let Some(r) = (match self.strategy {
                ClusterStrategy::Bfs => queue.pop_front(),
                ClusterStrategy::Dfs => queue.pop_back(),
            }) else {
                break;
            };
            if seen.insert(r.index(), ()).is_some() {
                continue;
            }
            let obj = self.heap.get(r)?;
            let oid = obj.header().oid;
            if already_replicated(oid) && oid != root {
                continue;
            }
            if !already_replicated(oid) {
                picked.push(r);
            }
            for v in obj.fields() {
                if let Value::Ref(next) = v {
                    queue.push_back(*next);
                }
            }
        }
        self.clusters_served += 1;
        self.objects_served += picked.len() as u64;
        picked.iter().map(|r| self.wire_object(*r)).collect()
    }

    /// Apply a device's committed update to the master object: scalar
    /// fields are overwritten, reference fields are re-linked by identity.
    ///
    /// This is the write-back half of OBIWAN's "creation and update of
    /// object replicas" (paper §2); conflict resolution between concurrent
    /// writers is last-write-wins, as the transactional layer the paper
    /// references (\[13\]) is out of scope.
    ///
    /// # Errors
    ///
    /// [`ReplError::UnknownOid`] for the object or any referenced identity,
    /// heap errors for layout mismatches.
    pub fn apply_update(&mut self, update: &WireObject) -> Result<()> {
        let r = self.resolve(update.oid)?;
        if self.heap.get(r)?.class() != update.class {
            return Err(ReplError::corrupt(format!(
                "update for {} carries class {:?}, master has {:?}",
                update.oid,
                update.class,
                self.heap.get(r)?.class()
            )));
        }
        for (idx, fv) in update.fields.iter().enumerate() {
            let value = match fv {
                WireValue::Null => Value::Null,
                WireValue::Scalar(v) => v.clone(),
                WireValue::Ref(oid) => Value::Ref(self.resolve(*oid)?),
            };
            self.heap.set_any_field(r, idx, value)?;
        }
        self.updates_applied += 1;
        Ok(())
    }

    /// Number of device updates applied so far.
    pub fn updates_applied(&self) -> u64 {
        self.updates_applied
    }

    /// Serve a single object by identity (used by per-object baselines).
    ///
    /// # Errors
    ///
    /// [`ReplError::UnknownOid`].
    pub fn fetch_object(&mut self, oid: Oid) -> Result<WireObject> {
        let r = self.resolve(oid)?;
        self.objects_served += 1;
        self.wire_object(r)
    }

    fn wire_object(&self, r: ObjRef) -> Result<WireObject> {
        let obj = self.heap.get(r)?;
        let fields = obj.fields().iter().map(|v| self.to_wire(v)).collect();
        Ok(WireObject {
            oid: obj.header().oid,
            class: obj.class(),
            fields,
        })
    }

    fn to_wire(&self, v: &Value) -> WireValue {
        match v {
            Value::Null => WireValue::Null,
            Value::Ref(r) => {
                let oid = self
                    .heap
                    .get(*r)
                    .map(|o| o.header().oid)
                    .unwrap_or_default();
                WireValue::Ref(oid)
            }
            scalar => WireValue::Scalar(scalar.clone()),
        }
    }

    fn resolve(&self, oid: Oid) -> Result<ObjRef> {
        self.oid_map
            .get(&oid)
            .copied()
            .ok_or(ReplError::UnknownOid { oid })
    }
}

#[cfg(test)]
mod tests {
    // Tests assert on known-good setups; panicking on failure is the point.
    #![allow(clippy::disallowed_methods)]
    use super::*;
    use crate::methods::standard_classes;

    fn server() -> Server {
        Server::new(standard_classes())
    }

    #[test]
    fn create_and_link_masters() {
        let mut s = server();
        let a = s.create("Node").unwrap();
        let b = s.create("Node").unwrap();
        s.set_ref(a, "next", Some(b)).unwrap();
        assert_eq!(s.get_field(a, "next").unwrap(), WireValue::Ref(b));
        s.set_ref(a, "next", None).unwrap();
        assert_eq!(s.get_field(a, "next").unwrap(), WireValue::Null);
        assert_eq!(s.object_count(), 2);
    }

    #[test]
    fn set_scalar_rejects_refs() {
        let mut s = server();
        let a = s.create("Node").unwrap();
        let err = s
            .set_scalar(a, "next", Value::Ref(ObjRef::test_dummy(0)))
            .unwrap_err();
        assert!(matches!(err, ReplError::Corrupt { .. }));
    }

    #[test]
    fn unknown_oid_is_reported() {
        let s = server();
        assert!(matches!(
            s.get_field(Oid(99), "next"),
            Err(ReplError::UnknownOid { .. })
        ));
    }

    #[test]
    fn build_list_links_in_order() {
        let mut s = server();
        let head = s.build_list("Node", 5, 8).unwrap();
        let mut cur = head;
        let mut count = 1;
        while let WireValue::Ref(next) = s.get_field(cur, "next").unwrap() {
            cur = next;
            count += 1;
        }
        assert_eq!(count, 5);
    }

    #[test]
    fn fetch_cluster_returns_bfs_prefix() {
        let mut s = server();
        let head = s.build_list("Node", 10, 4).unwrap();
        let cluster = s.fetch_cluster(head, 4, &|_| false).unwrap();
        assert_eq!(cluster.len(), 4);
        // The list is chained, so BFS from head gives consecutive oids.
        let oids: Vec<u64> = cluster.iter().map(|w| w.oid.0).collect();
        assert_eq!(oids, vec![head.0, head.0 + 1, head.0 + 2, head.0 + 3]);
    }

    #[test]
    fn fetch_cluster_skips_already_replicated() {
        let mut s = server();
        let head = s.build_list("Node", 10, 4).unwrap();
        let have: std::collections::HashSet<u64> = (1..=4).collect();
        let cluster = s
            .fetch_cluster(Oid(5), 4, &|oid| have.contains(&oid.0))
            .unwrap();
        let oids: Vec<u64> = cluster.iter().map(|w| w.oid.0).collect();
        assert_eq!(oids, vec![5, 6, 7, 8]);
        let _ = head;
    }

    #[test]
    fn fetch_cluster_stops_at_graph_edge() {
        let mut s = server();
        let head = s.build_list("Node", 3, 4).unwrap();
        let cluster = s.fetch_cluster(head, 100, &|_| false).unwrap();
        assert_eq!(cluster.len(), 3);
    }

    #[test]
    fn wire_objects_carry_oids_not_handles() {
        let mut s = server();
        let head = s.build_list("Node", 2, 4).unwrap();
        let cluster = s.fetch_cluster(head, 2, &|_| false).unwrap();
        for w in &cluster {
            for f in &w.fields {
                assert!(!matches!(f, WireValue::Scalar(Value::Ref(_))));
            }
        }
        // head.next is a Ref wire value.
        assert!(matches!(cluster[0].fields[0], WireValue::Ref(_)));
    }

    #[test]
    fn served_counters_accumulate() {
        let mut s = server();
        let head = s.build_list("Node", 6, 4).unwrap();
        s.fetch_cluster(head, 3, &|_| false).unwrap();
        let (clusters, objects) = s.served();
        assert_eq!((clusters, objects), (1, 3));
    }

    #[test]
    fn dfs_strategy_on_a_list_matches_bfs() {
        let mut s = server();
        s.set_strategy(ClusterStrategy::Dfs);
        let head = s.build_list("Node", 6, 4).unwrap();
        let cluster = s.fetch_cluster(head, 3, &|_| false).unwrap();
        let oids: Vec<u64> = cluster.iter().map(|w| w.oid.0).collect();
        assert_eq!(oids, vec![head.0, head.0 + 1, head.0 + 2]);
    }
}
