//! Error type for replication and invocation.

use obiwan_heap::{HeapError, ObjRef, ObjectKind, Oid};
use std::fmt;

/// Error produced by the replication runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplError {
    /// An underlying heap operation failed.
    Heap(HeapError),
    /// The server does not know this object identity.
    UnknownOid {
        /// The identity that failed to resolve.
        oid: Oid,
    },
    /// A method name does not exist on the receiver's class.
    NoSuchMethod {
        /// Class name.
        class: String,
        /// Method name.
        method: String,
    },
    /// An object of this kind was invoked but no [`crate::Interceptor`] is
    /// installed to resolve it (i.e. swapping machinery is absent).
    NoInterceptor {
        /// The kind that needed an interceptor.
        kind: ObjectKind,
    },
    /// The interceptor returned an object that still cannot be invoked.
    Unresolvable {
        /// The object that could not be resolved to an application object.
        obj: ObjRef,
        /// Its kind after resolution.
        kind: ObjectKind,
    },
    /// A malformed middleware structure was encountered (internal bug or
    /// corrupted blob reloaded into the graph).
    Corrupt {
        /// Description.
        message: String,
    },
    /// Error raised by a swap layer beneath an interceptor callback
    /// (carried through uninterpreted).
    Swap {
        /// Description from the swap layer.
        message: String,
    },
}

impl fmt::Display for ReplError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplError::Heap(e) => write!(f, "heap: {e}"),
            ReplError::UnknownOid { oid } => write!(f, "server knows no object {oid}"),
            ReplError::NoSuchMethod { class, method } => {
                write!(f, "class `{class}` has no method `{method}`")
            }
            ReplError::NoInterceptor { kind } => {
                write!(f, "invoked a {kind} object but no interceptor is installed")
            }
            ReplError::Unresolvable { obj, kind } => {
                write!(f, "object {obj} did not resolve to an invocable ({kind})")
            }
            ReplError::Corrupt { message } => write!(f, "corrupt structure: {message}"),
            ReplError::Swap { message } => write!(f, "swap layer: {message}"),
        }
    }
}

impl std::error::Error for ReplError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReplError::Heap(e) => Some(e),
            _ => None,
        }
    }
}

impl From<HeapError> for ReplError {
    fn from(e: HeapError) -> Self {
        ReplError::Heap(e)
    }
}

impl ReplError {
    /// Construct a [`ReplError::Corrupt`] from anything displayable.
    pub fn corrupt(message: impl fmt::Display) -> Self {
        ReplError::Corrupt {
            message: message.to_string(),
        }
    }

    /// Construct a [`ReplError::Swap`] from anything displayable.
    pub fn swap(message: impl fmt::Display) -> Self {
        ReplError::Swap {
            message: message.to_string(),
        }
    }

    /// Whether this is an out-of-memory heap error — the condition the
    /// middleware reacts to by swapping out a victim and retrying.
    pub fn is_out_of_memory(&self) -> bool {
        matches!(self, ReplError::Heap(HeapError::OutOfMemory { .. }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_errors_convert_and_chain() {
        let e: ReplError = HeapError::OutOfMemory {
            requested: 1,
            used: 2,
            capacity: 3,
        }
        .into();
        assert!(e.is_out_of_memory());
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn messages_name_the_parties() {
        let e = ReplError::NoSuchMethod {
            class: "Node".into(),
            method: "jump".into(),
        };
        let s = e.to_string();
        assert!(s.contains("Node") && s.contains("jump"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Send + Sync + 'static>() {}
        assert_bounds::<ReplError>();
    }
}
