//! The class universe: layouts + method bodies + middleware classes.
//!
//! In OBIWAN, `obicomp` augments application classes with generated
//! middleware code. Here the equivalent artifact is a [`Universe`]: the
//! shared [`ClassRegistry`] (layouts), a [`MethodTable`] (method bodies as
//! Rust closures dispatched by the [`crate::Process`]), and the three
//! middleware classes (fault proxy, swap-cluster-proxy, replacement object)
//! with their resolved field ids.

use crate::{Process, ReplError, Result};
use obiwan_heap::{ClassBuilder, ClassId, ClassRegistry, FieldId, ObjRef, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// Name of the object-fault proxy class.
pub(crate) const FAULT_PROXY_CLASS_NAME: &str = "__fault_proxy";
/// Name of the swap-cluster-proxy class.
pub(crate) const SWAP_PROXY_CLASS_NAME: &str = "__swap_proxy";
/// Name of the replacement-object class.
pub(crate) const REPLACEMENT_CLASS_NAME: &str = "__replacement";

/// A method body: receives the process, the receiver (`this`, always an
/// application object) and the already-transferred arguments.
pub type MethodFn = Arc<dyn Fn(&mut Process, ObjRef, &[Value]) -> Result<Value> + Send + Sync>;

/// Method bodies keyed by class, then method name.
#[derive(Default, Clone)]
pub struct MethodTable {
    map: HashMap<ClassId, HashMap<String, MethodFn>>,
}

impl std::fmt::Debug for MethodTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MethodTable")
            .field("methods", &self.len())
            .finish()
    }
}

impl MethodTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a method body.
    pub fn register<F>(&mut self, class: ClassId, name: impl Into<String>, body: F)
    where
        F: Fn(&mut Process, ObjRef, &[Value]) -> Result<Value> + Send + Sync + 'static,
    {
        self.map
            .entry(class)
            .or_default()
            .insert(name.into(), Arc::new(body));
    }

    /// Look up a method body (no allocation; this is the dispatch hot path).
    pub fn get(&self, class: ClassId, name: &str) -> Option<&MethodFn> {
        self.map.get(&class)?.get(name)
    }

    /// Number of registered methods.
    pub fn len(&self) -> usize {
        self.map.values().map(HashMap::len).sum()
    }

    /// True when no methods are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Resolved ids of the middleware classes and their fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MiddlewareClasses {
    /// Class of object-fault proxies.
    pub fault_proxy: ClassId,
    /// `oid` field of the fault proxy (Int: the target identity).
    pub fp_oid: FieldId,
    /// Class of swap-cluster-proxies.
    pub swap_proxy: ClassId,
    /// `target` field (Ref: the replica, or the replacement object after
    /// swap-out).
    pub sp_target: FieldId,
    /// `oid` field (Int: the target's identity, survives swap-out).
    pub sp_oid: FieldId,
    /// `source` field (Int: the swap-cluster the reference comes *from*).
    pub sp_source: FieldId,
    /// `assign` field (Bool: the iteration-optimization mark, paper §4).
    pub sp_assign: FieldId,
    /// Class of replacement objects (variadic: extras are the victim's
    /// outbound proxies).
    pub replacement: ClassId,
}

/// The complete class universe shared by server and devices: registry,
/// method table, and middleware class ids.
///
/// Build one with [`standard_classes`] or [`UniverseBuilder`] and clone it
/// freely (cloning is cheap).
#[derive(Debug, Clone)]
pub struct Universe {
    /// Field layouts.
    pub registry: ClassRegistry,
    /// Method bodies.
    pub methods: Arc<MethodTable>,
    /// Middleware class/field ids.
    pub middleware: MiddlewareClasses,
}

impl Universe {
    /// Look up a method body for an object's class.
    ///
    /// # Errors
    ///
    /// [`ReplError::NoSuchMethod`] naming the class.
    pub fn method(&self, class: ClassId, name: &str) -> Result<MethodFn> {
        self.methods
            .get(class, name)
            .cloned()
            .ok_or_else(|| ReplError::NoSuchMethod {
                class: self
                    .registry
                    .class(class)
                    .map(|c| c.name().to_string())
                    .unwrap_or_else(|_| format!("{class}")),
                method: name.to_string(),
            })
    }
}

/// Builder for a custom [`Universe`] (application classes + methods), used
/// by the examples. The middleware classes are appended automatically.
///
/// # Examples
///
/// ```
/// use obiwan_heap::{ClassBuilder, Value};
/// use obiwan_replication::UniverseBuilder;
///
/// let mut b = UniverseBuilder::new();
/// let counter = b.class(ClassBuilder::new("Counter").int_field("n"));
/// b.method(counter, "bump", |p, this, _args| {
///     let n = p.field_value(this, "n")?.expect_int()?;
///     p.set_field_value(this, "n", Value::Int(n + 1))?;
///     Ok(Value::Int(n + 1))
/// });
/// let universe = b.build();
/// assert!(universe.methods.get(counter, "bump").is_some());
/// ```
#[derive(Debug, Default)]
pub struct UniverseBuilder {
    registry: ClassRegistry,
    methods: MethodTable,
}

impl UniverseBuilder {
    /// Start an empty universe.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an application class.
    pub fn class(&mut self, builder: ClassBuilder) -> ClassId {
        self.registry.register(builder)
    }

    /// Register a method body on a class.
    pub fn method<F>(&mut self, class: ClassId, name: impl Into<String>, body: F)
    where
        F: Fn(&mut Process, ObjRef, &[Value]) -> Result<Value> + Send + Sync + 'static,
    {
        self.methods.register(class, name, body);
    }

    /// Append the middleware classes and seal the universe.
    pub fn build(mut self) -> Universe {
        let fault_proxy = self
            .registry
            .register(ClassBuilder::new(FAULT_PROXY_CLASS_NAME).int_field("oid"));
        let swap_proxy = self.registry.register(
            ClassBuilder::new(SWAP_PROXY_CLASS_NAME)
                .ref_field("target")
                .int_field("oid")
                .int_field("source")
                .bool_field("assign"),
        );
        let replacement = self
            .registry
            .register(ClassBuilder::new(REPLACEMENT_CLASS_NAME).variadic());
        // Both lookups resolve ids minted a few lines up in this same
        // function, so a miss is unreachable.
        #[allow(clippy::disallowed_methods)]
        let resolve = |class: ClassId, name: &str| {
            self.registry
                .class(class)
                .expect("just registered")
                .field_id(name)
                .expect("field just declared")
        };
        let middleware = MiddlewareClasses {
            fault_proxy,
            fp_oid: resolve(fault_proxy, "oid"),
            swap_proxy,
            sp_target: resolve(swap_proxy, "target"),
            sp_oid: resolve(swap_proxy, "oid"),
            sp_source: resolve(swap_proxy, "source"),
            sp_assign: resolve(swap_proxy, "assign"),
            replacement,
        };
        Universe {
            registry: self.registry,
            methods: Arc::new(self.methods),
            middleware,
        }
    }
}

/// The standard universe used by the benchmarks and most tests: the
/// Figure 5 `Node` class (a 64-byte list node) and its traversal methods.
///
/// Methods on `Node` (`next` ref + `payload` bytes):
///
/// * `ping()` — quasi-empty method (the paper's "simple (quasi-empty)
///   methods, in order not to mask the overhead being measured").
/// * `visit(depth)` — **Test A1**: recursive traversal passing an integer,
///   returns the final recursion depth.
/// * `probe_step(k)` — **Test A2 inner recursion**: walks up to `k` further
///   nodes and returns a *reference* to the node reached.
/// * `deep_visit(depth)` — **Test A2 outer recursion**: per node, runs
///   `probe_step(10)` then recurses to `next`.
/// * `next()` — **Test B1/B2 step**: returns the reference stored in `next`.
/// * `length()` — recursive list length.
/// * `payload_len()` — length of the payload in bytes.
///
/// Plus a `TreeNode` class (`left` / `right` refs, an integer `tag`, a
/// payload) with `sum_tags`, `depth`, `count`, `find_max_tag` and `tag_of`
/// — a branching workload that gives the BFS clustering non-trivial
/// boundaries.
pub fn standard_classes() -> Universe {
    let mut b = UniverseBuilder::new();
    let node = b.class(
        ClassBuilder::new("Node")
            .ref_field("next")
            .bytes_field("payload"),
    );

    b.method(node, "ping", |_p, _this, _args| Ok(Value::Int(0)));

    b.method(node, "visit", |p, this, args| {
        let depth = args
            .first()
            .map(Value::expect_int)
            .transpose()?
            .unwrap_or(0);
        match p.field_value(this, "next")?.expect_ref_or_null()? {
            Some(next) => p.invoke(next, "visit", vec![Value::Int(depth + 1)]),
            None => Ok(Value::Int(depth)),
        }
    });

    b.method(node, "probe_step", |p, this, args| {
        let remaining = args
            .first()
            .map(Value::expect_int)
            .transpose()?
            .unwrap_or(0);
        if remaining <= 0 {
            return Ok(Value::Ref(this));
        }
        match p.field_value(this, "next")?.expect_ref_or_null()? {
            Some(next) => p.invoke(next, "probe_step", vec![Value::Int(remaining - 1)]),
            None => Ok(Value::Ref(this)),
        }
    });

    b.method(node, "deep_visit", |p, this, args| {
        let depth = args
            .first()
            .map(Value::expect_int)
            .transpose()?
            .unwrap_or(0);
        // Inner recursion: reach ~10 nodes ahead, returning a reference that
        // crosses swap-cluster boundaries (creating transient proxies).
        let _probe = p.invoke(this, "probe_step", vec![Value::Int(10)])?;
        match p.field_value(this, "next")?.expect_ref_or_null()? {
            Some(next) => p.invoke(next, "deep_visit", vec![Value::Int(depth + 1)]),
            None => Ok(Value::Int(depth)),
        }
    });

    b.method(node, "next", |p, this, _args| p.field_value(this, "next"));

    b.method(node, "length", |p, this, _args| {
        match p.field_value(this, "next")?.expect_ref_or_null()? {
            Some(next) => {
                let rest = p.invoke(next, "length", vec![])?.expect_int()?;
                Ok(Value::Int(rest + 1))
            }
            None => Ok(Value::Int(1)),
        }
    });

    b.method(node, "is_next", |p, this, args| {
        // Raw reference comparison against the own `next` field. Works
        // across swap-cluster boundaries *only because* of dismantling
        // rule (iii): an argument denoting an object of this cluster
        // arrives as the direct replica reference, never as a proxy —
        // "references to object replicas are never compared against
        // references to swap-cluster-proxies" (paper §4).
        let arg = args
            .first()
            .map(Value::expect_ref_or_null)
            .transpose()?
            .flatten();
        let next = p.field_value(this, "next")?.expect_ref_or_null()?;
        Ok(Value::Bool(arg.is_some() && arg == next))
    });

    b.method(node, "payload_len", |p, this, _args| {
        let len = match p.field_value(this, "payload")? {
            Value::Bytes(b) => b.len() as i64,
            _ => 0,
        };
        Ok(Value::Int(len))
    });

    let tree = b.class(
        ClassBuilder::new("TreeNode")
            .ref_field("left")
            .ref_field("right")
            .int_field("tag")
            .bytes_field("payload"),
    );

    b.method(tree, "sum_tags", |p, this, _args| {
        let mut total = p.field_value(this, "tag")?.expect_int()?;
        for side in ["left", "right"] {
            if let Some(child) = p.field_value(this, side)?.expect_ref_or_null()? {
                total += p.invoke(child, "sum_tags", vec![])?.expect_int()?;
            }
        }
        Ok(Value::Int(total))
    });

    b.method(tree, "depth", |p, this, _args| {
        let mut deepest = 0;
        for side in ["left", "right"] {
            if let Some(child) = p.field_value(this, side)?.expect_ref_or_null()? {
                deepest = deepest.max(p.invoke(child, "depth", vec![])?.expect_int()?);
            }
        }
        Ok(Value::Int(deepest + 1))
    });

    b.method(tree, "count", |p, this, _args| {
        let mut count = 1;
        for side in ["left", "right"] {
            if let Some(child) = p.field_value(this, side)?.expect_ref_or_null()? {
                count += p.invoke(child, "count", vec![])?.expect_int()?;
            }
        }
        Ok(Value::Int(count))
    });

    b.method(tree, "find_max_tag", |p, this, _args| {
        // Returns a *reference* to the node with the largest tag — like
        // Test A2's inner recursion, references flow back across
        // swap-cluster boundaries.
        let mut best = this;
        let mut best_tag = p.field_value(this, "tag")?.expect_int()?;
        for side in ["left", "right"] {
            if let Some(child) = p.field_value(this, side)?.expect_ref_or_null()? {
                let candidate = p.invoke(child, "find_max_tag", vec![])?.expect_ref()?;
                let tag = p.invoke(candidate, "tag_of", vec![])?.expect_int()?;
                if tag > best_tag {
                    best = candidate;
                    best_tag = tag;
                }
            }
        }
        Ok(Value::Ref(best))
    });

    b.method(tree, "tag_of", |p, this, _args| p.field_value(this, "tag"));

    b.build()
}

#[cfg(test)]
mod tests {
    // Tests assert on known-good setups; panicking on failure is the point.
    #![allow(clippy::disallowed_methods)]
    use super::*;

    #[test]
    fn standard_universe_has_node_and_middleware_classes() {
        let u = standard_classes();
        assert!(u.registry.class_id("Node").is_ok());
        assert!(u.registry.class_id(FAULT_PROXY_CLASS_NAME).is_ok());
        assert!(u.registry.class_id(SWAP_PROXY_CLASS_NAME).is_ok());
        assert!(u.registry.class_id(REPLACEMENT_CLASS_NAME).is_ok());
        assert!(u
            .registry
            .class(u.middleware.replacement)
            .unwrap()
            .is_variadic());
    }

    #[test]
    fn middleware_field_ids_resolve_to_declared_layout() {
        let u = standard_classes();
        let sp = u.registry.class(u.middleware.swap_proxy).unwrap();
        assert_eq!(sp.field(u.middleware.sp_target).unwrap().name(), "target");
        assert_eq!(sp.field(u.middleware.sp_oid).unwrap().name(), "oid");
        assert_eq!(sp.field(u.middleware.sp_source).unwrap().name(), "source");
        assert_eq!(sp.field(u.middleware.sp_assign).unwrap().name(), "assign");
    }

    #[test]
    fn method_lookup_errors_name_class_and_method() {
        let u = standard_classes();
        let node = u.registry.class_id("Node").unwrap();
        assert!(u.method(node, "visit").is_ok());
        let err = match u.method(node, "teleport") {
            Err(e) => e,
            Ok(_) => panic!("lookup of a missing method must fail"),
        };
        assert!(matches!(err, ReplError::NoSuchMethod { .. }));
        assert!(err.to_string().contains("Node"));
    }

    #[test]
    fn universe_clone_shares_methods() {
        let u = standard_classes();
        let v = u.clone();
        assert_eq!(u.methods.len(), v.methods.len());
        assert!(Arc::ptr_eq(&u.methods, &v.methods));
    }
}
