//! The device-side replication runtime: heap + invocation + fault handling.

use crate::methods::{
    Universe, FAULT_PROXY_CLASS_NAME, REPLACEMENT_CLASS_NAME, SWAP_PROXY_CLASS_NAME,
};
use crate::{ReplError, ReplicationEvent, Result, SharedServer, WireValue};
use obiwan_heap::{FieldId, Heap, ObjRef, ObjectKind, Oid, Value};
use std::collections::HashMap;

/// Public name of the object-fault proxy class (see [`crate::Universe`]).
pub const FAULT_PROXY_CLASS: &str = FAULT_PROXY_CLASS_NAME;
/// Public name of the swap-cluster-proxy class.
pub const SWAP_PROXY_CLASS: &str = SWAP_PROXY_CLASS_NAME;
/// Public name of the replacement-object class.
pub const REPLACEMENT_CLASS: &str = REPLACEMENT_CLASS_NAME;

/// Configuration of the replication runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplConfig {
    /// Objects per replication cluster (the paper's "adaptable size").
    pub cluster_size: usize,
}

impl ReplConfig {
    /// Config with the given cluster size.
    pub fn with_cluster_size(cluster_size: usize) -> Self {
        ReplConfig {
            cluster_size: cluster_size.max(1),
        }
    }
}

impl Default for ReplConfig {
    fn default() -> Self {
        ReplConfig { cluster_size: 50 }
    }
}

/// One invocation frame: the swap-cluster the executing method's receiver
/// belongs to. An empty stack means application code, i.e. the paper's
/// *swap-cluster-0*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frame {
    /// Receiver's swap-cluster.
    pub swap_cluster: u32,
}

/// Everything the swap layer needs to know about a freshly replicated
/// cluster (handed to [`Interceptor::cluster_replicated`]).
#[derive(Debug, Clone)]
pub struct ClusterInfo {
    /// Device-local replication cluster index.
    pub repl_cluster: u32,
    /// The materialized replicas.
    pub members: Vec<ObjRef>,
    /// Non-member `(holder, field index)` slots whose fault-proxy reference
    /// was just replaced by a direct reference to a member (the paper's
    /// *proxy replacement* step — the swap layer re-mediates the
    /// cross-swap-cluster ones).
    pub patched_fields: Vec<(ObjRef, usize)>,
    /// Global variables whose fault-proxy reference was just replaced.
    pub patched_globals: Vec<String>,
}

/// Result of [`Interceptor::resolve_invocable`].
#[derive(Debug, Clone, Copy)]
pub struct Resolved {
    /// The application object to actually invoke.
    pub target: ObjRef,
    /// The swap-cluster-proxy the invocation entered through, if any (used
    /// by the iteration optimization to patch the proxy on return).
    pub entry_proxy: Option<ObjRef>,
}

/// Hook through which the Object-Swapping layer participates in
/// replication and invocation without this crate depending on it.
///
/// All methods receive the [`Process`] re-borrowed, so implementations can
/// freely allocate proxies, patch fields, and trigger swap-ins.
///
/// `Send` is required so a whole device stack can move across threads
/// (benchmarks run deep-recursion workloads on big-stack threads).
pub trait Interceptor: Send {
    /// A cluster was replicated; assign its members to swap-clusters and
    /// re-mediate cross-swap-cluster references with swap-cluster-proxies.
    ///
    /// # Errors
    ///
    /// Propagated to the faulting invocation.
    fn cluster_replicated(&mut self, p: &mut Process, info: &ClusterInfo) -> Result<()>;

    /// An object of kind `SwapProxy` or `Replacement` is being invoked;
    /// resolve it to the application object (swapping the victim cluster
    /// back in if needed) and report the entry proxy.
    ///
    /// # Errors
    ///
    /// Propagated to the invocation (e.g. swap-in failed because the
    /// storing device departed).
    fn resolve_invocable(&mut self, p: &mut Process, obj: ObjRef) -> Result<Resolved>;

    /// A reference is being handed across contexts (argument passing or
    /// return) into swap-cluster `to_sc`; return the reference to actually
    /// deliver (creating, reusing, patching or dismantling a
    /// swap-cluster-proxy per the paper's rules i–iii).
    ///
    /// # Errors
    ///
    /// Propagated to the invocation.
    fn transfer_ref(
        &mut self,
        p: &mut Process,
        r: ObjRef,
        to_sc: u32,
        entry_proxy: Option<ObjRef>,
    ) -> Result<ObjRef>;

    /// A fault proxy was invoked for an identity whose cluster is swapped
    /// out (the proxy predates the swap and lingered in a variable).
    /// Reload the cluster and return the replica; `Ok(None)` declines,
    /// turning the fault into an error.
    ///
    /// # Errors
    ///
    /// Propagated to the invocation (e.g. the storing device is gone).
    fn resolve_swapped(&mut self, p: &mut Process, oid: Oid) -> Result<Option<ObjRef>> {
        let _ = (p, oid);
        Ok(None)
    }
}

/// The device-side runtime: a managed heap plus the replication and
/// invocation machinery.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
pub struct Process {
    heap: Heap,
    universe: Universe,
    server: SharedServer,
    config: ReplConfig,
    /// Live application replicas by identity.
    oid_map: HashMap<Oid, ObjRef>,
    /// Outstanding fault proxies by target identity.
    fault_proxies: HashMap<Oid, ObjRef>,
    /// Identities whose replicas are currently swapped out, mapped to the
    /// replacement object standing in for their cluster.
    swapped: HashMap<Oid, ObjRef>,
    interceptor: Option<Box<dyn Interceptor>>,
    stack: Vec<Frame>,
    next_repl_cluster: u32,
    events: Vec<ReplicationEvent>,
    invocations: u64,
    faults: u64,
}

impl std::fmt::Debug for Process {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Process")
            .field("replicas", &self.oid_map.len())
            .field("fault_proxies", &self.fault_proxies.len())
            .field("swapped", &self.swapped.len())
            .field("invocations", &self.invocations)
            .field("heap_bytes", &self.heap.bytes_used())
            .finish()
    }
}

impl Process {
    /// Create a process with `capacity` bytes of device memory.
    pub fn new(
        universe: Universe,
        server: SharedServer,
        capacity: usize,
        config: ReplConfig,
    ) -> Self {
        Process {
            heap: Heap::new(universe.registry.clone(), capacity),
            universe,
            server,
            config,
            oid_map: HashMap::new(),
            fault_proxies: HashMap::new(),
            swapped: HashMap::new(),
            interceptor: None,
            stack: Vec::new(),
            next_repl_cluster: 0,
            events: Vec::new(),
            invocations: 0,
            faults: 0,
        }
    }

    /// The class universe.
    pub fn universe(&self) -> &Universe {
        &self.universe
    }

    /// The managed heap.
    pub fn heap(&self) -> &Heap {
        &self.heap
    }

    /// Mutable access to the managed heap (middleware surgery).
    pub fn heap_mut(&mut self) -> &mut Heap {
        &mut self.heap
    }

    /// The shared server connection.
    pub fn server(&self) -> &SharedServer {
        &self.server
    }

    /// The replication configuration.
    pub fn config(&self) -> ReplConfig {
        self.config
    }

    /// Adapt the replication cluster size at runtime (the paper's
    /// "adaptable size", steered by policies).
    pub fn set_cluster_size(&mut self, n: usize) {
        self.config.cluster_size = n.max(1);
    }

    /// Get or create the fault proxy for an identity (exposed for the swap
    /// layer's reload path, which may reconstruct references to objects
    /// that were never replicated).
    ///
    /// # Errors
    ///
    /// Heap errors (notably out-of-memory).
    pub fn ensure_fault_proxy(&mut self, oid: Oid) -> Result<ObjRef> {
        self.fault_proxy_for(oid)
    }

    /// Install the swap layer.
    pub fn set_interceptor(&mut self, interceptor: Box<dyn Interceptor>) {
        self.interceptor = Some(interceptor);
    }

    /// Whether a swap layer is installed.
    pub fn has_interceptor(&self) -> bool {
        self.interceptor.is_some()
    }

    /// Number of live application replicas.
    pub fn replicated_objects(&self) -> usize {
        self.oid_map.len()
    }

    /// Cumulative `(invocations, object faults)`.
    pub fn counters(&self) -> (u64, u64) {
        (self.invocations, self.faults)
    }

    /// The swap-cluster of the currently executing method's receiver, or
    /// `0` (swap-cluster-0) in application code.
    pub fn current_swap_cluster(&self) -> u32 {
        self.stack.last().map(|f| f.swap_cluster).unwrap_or(0)
    }

    /// Drain the replication events produced since the last call.
    pub fn take_events(&mut self) -> Vec<ReplicationEvent> {
        std::mem::take(&mut self.events)
    }

    /// Whether replication events are pending (cheap check for event-driven
    /// policy pumping).
    pub fn has_events(&self) -> bool {
        !self.events.is_empty()
    }

    /// Run a collection and prune the runtime tables (object table, fault
    /// proxy registry) of entries whose objects died — the equivalent of a
    /// VM object table holding its entries weakly. Prefer this over
    /// collecting the raw heap.
    pub fn collect(&mut self) -> obiwan_heap::CollectStats {
        let stats = self.heap.collect();
        let heap = &self.heap;
        self.oid_map.retain(|_, r| heap.is_live(*r));
        self.fault_proxies.retain(|_, r| heap.is_live(*r));
        stats
    }

    // --- Identity bookkeeping shared with the swap layer -------------------

    /// Look up the live replica of an identity.
    ///
    /// Entries whose replica has been garbage-collected are invisible (a
    /// VM's object table holds its entries weakly); they are physically
    /// pruned by [`Process::collect`].
    pub fn lookup_replica(&self, oid: Oid) -> Option<ObjRef> {
        self.oid_map
            .get(&oid)
            .copied()
            .filter(|r| self.heap.is_live(*r))
    }

    /// Register a replica (used by swap-in when replicas rematerialize).
    pub fn register_replica(&mut self, oid: Oid, r: ObjRef) {
        self.oid_map.insert(oid, r);
    }

    /// Forget a replica (used by swap-out when replicas are detached).
    pub fn forget_replica(&mut self, oid: Oid) -> Option<ObjRef> {
        self.oid_map.remove(&oid)
    }

    /// Record that `oid`'s cluster is swapped out behind `replacement`.
    pub fn note_swapped(&mut self, oid: Oid, replacement: ObjRef) {
        self.swapped.insert(oid, replacement);
    }

    /// Clear the swapped-out note for `oid` (on reload or drop).
    pub fn clear_swapped(&mut self, oid: Oid) {
        self.swapped.remove(&oid);
    }

    /// The replacement object standing in for `oid`, if swapped out and
    /// the replacement is still live (a dead replacement means the cluster
    /// is unreachable and its identities may be replicated afresh).
    pub fn swapped_replacement(&self, oid: Oid) -> Option<ObjRef> {
        self.swapped
            .get(&oid)
            .copied()
            .filter(|r| self.heap.is_live(*r))
    }

    /// Number of identities currently swapped out.
    pub fn swapped_objects(&self) -> usize {
        self.swapped.len()
    }

    // --- Field and global access -------------------------------------------

    /// Read a field by name (cloned). Methods use this for *their own*
    /// state; cross-cluster access goes through [`Process::invoke`].
    ///
    /// # Errors
    ///
    /// Heap errors (invalid ref, unknown field).
    pub fn field_value(&self, obj: ObjRef, name: &str) -> Result<Value> {
        Ok(self.heap.field_by_name(obj, name)?.clone())
    }

    /// Write a field by name.
    ///
    /// # Errors
    ///
    /// Heap errors (invalid ref, unknown field, type mismatch, OOM).
    pub fn set_field_value(&mut self, obj: ObjRef, name: &str, value: Value) -> Result<()> {
        self.heap.set_field_by_name(obj, name, value)?;
        Ok(())
    }

    /// Read a global variable.
    ///
    /// # Errors
    ///
    /// [`obiwan_heap::HeapError::NoSuchGlobal`].
    pub fn global(&self, name: &str) -> Result<Value> {
        Ok(self.heap.global(name)?.clone())
    }

    /// Set a global variable (a swap-cluster-0 root).
    pub fn set_global(&mut self, name: impl Into<String>, value: Value) {
        self.heap.set_global(name, value);
    }

    // --- Invocation ---------------------------------------------------------

    /// Invoke `method` on `target` with `args`.
    ///
    /// `target` may be an application object, a fault proxy (replication is
    /// triggered transparently), a swap-cluster-proxy, or — indirectly — a
    /// replacement object (the swap layer reloads the cluster). Reference
    /// arguments and the returned reference are *transferred* between the
    /// caller's and callee's swap-cluster contexts via the interceptor,
    /// which is where the paper's proxy rules live.
    ///
    /// # Errors
    ///
    /// Method resolution, heap, replication and swap errors; notably
    /// out-of-memory during a triggered replication, which the middleware
    /// handles by swapping out a victim and retrying the operation.
    pub fn invoke(&mut self, target: ObjRef, method: &str, args: Vec<Value>) -> Result<Value> {
        let (this, entry_proxy) = self.resolve_target(target)?;
        let callee_sc = self.heap.get(this)?.header().swap_cluster;
        let caller_sc = self.current_swap_cluster();
        // Transfer argument references into the callee's context.
        let args = self.transfer_values(args, callee_sc, None)?;
        let class = self.heap.get(this)?.class();
        let body = self.universe.method(class, method)?;
        self.stack.push(Frame {
            swap_cluster: callee_sc,
        });
        self.invocations += 1;
        let out = body(self, this, &args);
        self.stack.pop();
        let out = out?;
        // Transfer the returned reference back into the caller's context.
        match out {
            Value::Ref(r) => {
                let r = self.transfer(r, caller_sc, entry_proxy)?;
                Ok(Value::Ref(r))
            }
            other => Ok(other),
        }
    }

    /// Invoke and expect an integer result.
    ///
    /// # Errors
    ///
    /// As [`Process::invoke`], plus a type mismatch on the result.
    pub fn invoke_i64(&mut self, target: ObjRef, method: &str, args: Vec<Value>) -> Result<i64> {
        Ok(self.invoke(target, method, args)?.expect_int()?)
    }

    /// Invoke and expect a reference result.
    ///
    /// # Errors
    ///
    /// As [`Process::invoke`], plus a type mismatch on the result.
    pub fn invoke_ref(&mut self, target: ObjRef, method: &str, args: Vec<Value>) -> Result<ObjRef> {
        Ok(self.invoke(target, method, args)?.expect_ref()?)
    }

    fn resolve_target(&mut self, target: ObjRef) -> Result<(ObjRef, Option<ObjRef>)> {
        let mut t = target;
        let mut entry_proxy = None;
        for _ in 0..8 {
            match self.heap.get(t)?.kind() {
                ObjectKind::App => return Ok((t, entry_proxy)),
                ObjectKind::FaultProxy => {
                    t = self.fault(t)?;
                }
                ObjectKind::SwapProxy | ObjectKind::Replacement => {
                    let kind = self.heap.get(t)?.kind();
                    let resolved = match self.interceptor.take() {
                        Some(mut ic) => {
                            let out = ic.resolve_invocable(self, t);
                            self.interceptor = Some(ic);
                            out?
                        }
                        None => return Err(ReplError::NoInterceptor { kind }),
                    };
                    entry_proxy = resolved.entry_proxy.or(entry_proxy);
                    t = resolved.target;
                }
            }
        }
        Err(ReplError::Unresolvable {
            obj: t,
            kind: self.heap.get(t)?.kind(),
        })
    }

    fn transfer_values(
        &mut self,
        values: Vec<Value>,
        to_sc: u32,
        entry_proxy: Option<ObjRef>,
    ) -> Result<Vec<Value>> {
        values
            .into_iter()
            .map(|v| match v {
                Value::Ref(r) => Ok(Value::Ref(self.transfer(r, to_sc, entry_proxy)?)),
                other => Ok(other),
            })
            .collect()
    }

    fn transfer(&mut self, r: ObjRef, to_sc: u32, entry_proxy: Option<ObjRef>) -> Result<ObjRef> {
        match self.interceptor.take() {
            Some(mut ic) => {
                let out = ic.transfer_ref(self, r, to_sc, entry_proxy);
                self.interceptor = Some(ic);
                out
            }
            None => Ok(r),
        }
    }

    // --- Write-back -----------------------------------------------------------

    /// Commit a replica's current state back to the server (the update
    /// half of OBIWAN replication). Reference fields are translated to
    /// identities — looking *through* swap-cluster-proxies and fault
    /// proxies, so a replica whose neighbours are swapped out or
    /// unreplicated commits cleanly.
    ///
    /// # Errors
    ///
    /// [`ReplError::UnknownOid`] if `oid` has no live replica here (a
    /// swapped-out object's state lives in its blob; reload it first), or
    /// server-side errors.
    pub fn commit_replica(&mut self, oid: Oid) -> Result<()> {
        let r = self
            .lookup_replica(oid)
            .ok_or(ReplError::UnknownOid { oid })?;
        let (class, fields) = {
            let obj = self.heap.get(r)?;
            (obj.class(), obj.fields().to_vec())
        };
        let mut wire_fields = Vec::with_capacity(fields.len());
        for v in fields {
            wire_fields.push(match v {
                Value::Null => WireValue::Null,
                Value::Ref(t) => {
                    let target_oid = self.heap.get(t)?.header().oid;
                    if target_oid.0 == 0 {
                        return Err(ReplError::corrupt(format!(
                            "replica {oid} references a purely local object; \
                             locally allocated objects cannot be committed"
                        )));
                    }
                    WireValue::Ref(target_oid)
                }
                scalar => WireValue::Scalar(scalar),
            });
        }
        let update = crate::WireObject {
            oid,
            class,
            fields: wire_fields,
        };
        // Single-threaded use in this repo: the server mutex cannot be
        // poisoned because no other thread can panic while holding it.
        #[allow(clippy::disallowed_methods)]
        let mut server = self.server.lock().expect("server mutex poisoned");
        server.apply_update(&update)
    }

    /// Commit every live replica (a "sync" before the device leaves the
    /// network). Returns how many objects were pushed.
    ///
    /// # Errors
    ///
    /// First server-side failure aborts the sync.
    pub fn commit_all(&mut self) -> Result<usize> {
        let oids: Vec<Oid> = self
            .oid_map
            .iter()
            .filter(|(_, r)| self.heap.is_live(**r))
            .map(|(oid, _)| *oid)
            .collect();
        let mut committed = 0;
        for oid in oids {
            self.commit_replica(oid)?;
            committed += 1;
        }
        Ok(committed)
    }

    // --- Replication ---------------------------------------------------------

    /// Replicate the cluster containing `root` (if not already present) and
    /// return a reference suitable for application code (i.e. transferred
    /// into swap-cluster-0 context: mediated by a swap-cluster-proxy when
    /// swapping is active).
    ///
    /// # Errors
    ///
    /// [`ReplError::UnknownOid`], out-of-memory, or interceptor errors.
    pub fn replicate_root(&mut self, root: Oid) -> Result<ObjRef> {
        if self.lookup_replica(root).is_none() {
            self.replicate_cluster(root)?;
        }
        let r = self
            .lookup_replica(root)
            .ok_or(ReplError::UnknownOid { oid: root })?;
        self.transfer(r, 0, None)
    }

    /// Resolve `r` to an application object, faulting in the replica when
    /// `r` is a fault-proxy placeholder (the handle of a faulted-in object
    /// differs from the proxy's). Non-fault-proxy handles come back
    /// unchanged.
    ///
    /// # Errors
    ///
    /// Fault failures: unknown identity, server unreachable, or a zombie
    /// proxy whose swapped-out cluster cannot be reloaded.
    pub fn ensure_replica(&mut self, r: ObjRef) -> Result<ObjRef> {
        if self.heap.get(r)?.kind() == ObjectKind::FaultProxy {
            self.fault(r)
        } else {
            Ok(r)
        }
    }

    /// Handle an object fault: replicate the cluster containing the proxy's
    /// target and return the replica.
    fn fault(&mut self, proxy: ObjRef) -> Result<ObjRef> {
        let mw = self.universe.middleware;
        let oid = Oid(self.heap.field(proxy, mw.fp_oid)?.expect_int()? as u64);
        self.faults += 1;
        self.events.push(ReplicationEvent::ObjectFault { oid });
        if let Some(r) = self.oid_map.get(&oid) {
            return Ok(*r);
        }
        if self.swapped_replacement(oid).is_some() {
            // A zombie fault proxy: it was minted before the identity's
            // cluster was replicated and survived (in a variable) past the
            // cluster's swap-out. Let the swap layer reload the cluster.
            // (If the replacement object has died, the cluster is garbage
            // and we fall through to a fresh replication instead.)
            if let Some(mut ic) = self.interceptor.take() {
                let out = ic.resolve_swapped(self, oid);
                self.interceptor = Some(ic);
                if let Some(r) = out? {
                    return Ok(r);
                }
            }
            return Err(ReplError::corrupt(format!(
                "fault proxy targets swapped-out identity {oid} and no swap \
                 layer could reload it"
            )));
        }
        self.replicate_cluster(oid)?;
        self.oid_map
            .get(&oid)
            .copied()
            .ok_or(ReplError::UnknownOid { oid })
    }

    fn replicate_cluster(&mut self, root: Oid) -> Result<()> {
        let wire = {
            let oid_map = &self.oid_map;
            let swapped = &self.swapped;
            let heap = &self.heap;
            let alive = |r: &ObjRef| heap.is_live(*r);
            // See `push_update`: the mutex cannot be poisoned here.
            #[allow(clippy::disallowed_methods)]
            let mut server = self.server.lock().expect("server mutex poisoned");
            server.fetch_cluster(root, self.config.cluster_size, &|oid| {
                oid_map.get(&oid).filter(|r| alive(r)).is_some()
                    || swapped.get(&oid).filter(|r| alive(r)).is_some()
            })?
        };
        if wire.is_empty() {
            if self.oid_map.contains_key(&root) {
                return Ok(());
            }
            return Err(ReplError::UnknownOid { oid: root });
        }
        let repl_cluster = self.next_repl_cluster;
        // Pass 1: allocate replicas and register identities.
        let mut members: Vec<ObjRef> = Vec::with_capacity(wire.len());
        for w in &wire {
            match self.heap.alloc(w.class, ObjectKind::App) {
                Ok(r) => {
                    let h = self.heap.get_mut(r)?.header_mut();
                    h.oid = w.oid;
                    h.repl_cluster = repl_cluster;
                    self.oid_map.insert(w.oid, r);
                    members.push(r);
                }
                Err(e) => {
                    self.rollback(&wire, &members);
                    self.events
                        .push(ReplicationEvent::ReplicationFailed { root });
                    return Err(e.into());
                }
            }
        }
        self.next_repl_cluster += 1;
        // Pass 2: fill fields; cross-cluster references become fault
        // proxies (or point at existing replicas / replacement objects).
        for (w, &r) in wire.iter().zip(&members) {
            for (idx, fv) in w.fields.iter().enumerate() {
                let value = match fv {
                    WireValue::Null => continue,
                    WireValue::Scalar(v) => v.clone(),
                    WireValue::Ref(oid) => {
                        if let Some(t) = self.lookup_replica(*oid) {
                            Value::Ref(t)
                        } else if let Some(rep) = self.swapped_replacement(*oid) {
                            Value::Ref(rep)
                        } else {
                            Value::Ref(self.fault_proxy_for(*oid)?)
                        }
                    }
                };
                if let Err(e) = self.heap.set_field(r, FieldId::from_index(idx), value) {
                    self.rollback(&wire, &members);
                    self.events
                        .push(ReplicationEvent::ReplicationFailed { root });
                    return Err(e.into());
                }
            }
        }
        // Pass 3: proxy replacement — every slot in the existing graph that
        // held a fault proxy for a member now gets the replica directly.
        // (The swap layer then re-mediates cross-swap-cluster slots.)
        let mut replaced: HashMap<ObjRef, ObjRef> = HashMap::new();
        for (w, &r) in wire.iter().zip(&members) {
            if let Some(old_proxy) = self.fault_proxies.remove(&w.oid) {
                replaced.insert(old_proxy, r);
            }
        }
        let mut patched_fields = Vec::new();
        let mut patched_globals = Vec::new();
        if !replaced.is_empty() {
            let holders: Vec<ObjRef> = self.heap.iter_live().collect();
            for holder in holders {
                if replaced.contains_key(&holder) {
                    continue; // the doomed proxies themselves
                }
                let field_count = self.heap.get(holder)?.fields().len();
                for idx in 0..field_count {
                    let current = self.heap.get(holder)?.fields()[idx].clone();
                    if let Value::Ref(t) = current {
                        if let Some(&replica) = replaced.get(&t) {
                            self.heap.set_any_field(holder, idx, Value::Ref(replica))?;
                            if !members.contains(&holder) {
                                patched_fields.push((holder, idx));
                            }
                        }
                    }
                }
            }
            let global_patches: Vec<(String, ObjRef)> = self
                .heap
                .globals()
                .filter_map(|(name, v)| match v {
                    Value::Ref(t) => replaced.get(t).map(|rep| (name.to_string(), *rep)),
                    _ => None,
                })
                .collect();
            for (name, replica) in global_patches {
                self.heap.set_global(name.clone(), Value::Ref(replica));
                patched_globals.push(name);
            }
        }
        let bytes: usize = members
            .iter()
            .map(|&r| self.heap.get(r).map(|o| o.size()).unwrap_or(0))
            .sum();
        self.events.push(ReplicationEvent::ClusterReplicated {
            repl_cluster,
            root,
            objects: members.len(),
            bytes,
        });
        let info = ClusterInfo {
            repl_cluster,
            members,
            patched_fields,
            patched_globals,
        };
        if let Some(mut ic) = self.interceptor.take() {
            let out = ic.cluster_replicated(self, &info);
            self.interceptor = Some(ic);
            if let Err(e) = out {
                // The swap layer failed midway (typically out of memory
                // while allocating a mediation proxy): some holders may be
                // left with unmediated direct references. Undo the proxy
                // replacement so the graph returns to its pre-replication
                // shape (fault proxies in place, cluster unregistered); the
                // orphaned replicas are reclaimed by the next collection.
                self.undo_replication(&wire, &info, &replaced)?;
                self.events
                    .push(ReplicationEvent::ReplicationFailed { root });
                return Err(e);
            }
        }
        Ok(())
    }

    /// Restore the graph after a failed swap-layer integration: re-point
    /// every patched holder slot and global back at the original fault
    /// proxy and deregister the members.
    fn undo_replication(
        &mut self,
        wire: &[crate::WireObject],
        info: &ClusterInfo,
        replaced: &HashMap<ObjRef, ObjRef>,
    ) -> Result<()> {
        // Invert proxy → replica into replica → proxy.
        let back: HashMap<ObjRef, ObjRef> = replaced.iter().map(|(p, r)| (*r, *p)).collect();
        for &(holder, idx) in &info.patched_fields {
            if !self.heap.is_live(holder) {
                continue;
            }
            let current = self.heap.get(holder)?.fields()[idx].clone();
            if let Value::Ref(t) = current {
                if let Some(&proxy) = back.get(&t) {
                    self.heap.set_any_field(holder, idx, Value::Ref(proxy))?;
                }
            }
        }
        let global_restores: Vec<(String, ObjRef)> = info
            .patched_globals
            .iter()
            .filter_map(|name| {
                let v = self.heap.global(name).ok()?;
                match v {
                    Value::Ref(t) => back.get(t).map(|p| (name.clone(), *p)),
                    _ => None,
                }
            })
            .collect();
        for (name, proxy) in global_restores {
            self.heap.set_global(name, Value::Ref(proxy));
        }
        // Re-register the fault proxies and deregister the replicas.
        for (proxy, replica) in replaced {
            if let Ok(o) = self.heap.get(*replica) {
                self.fault_proxies.insert(o.header().oid, *proxy);
            }
        }
        for w in wire {
            self.oid_map.remove(&w.oid);
        }
        Ok(())
    }

    fn rollback(&mut self, wire: &[crate::WireObject], members: &[ObjRef]) {
        // Deregister the identities; the half-built replicas are
        // unreachable and will be reclaimed by the next collection.
        for w in wire.iter().take(members.len()) {
            self.oid_map.remove(&w.oid);
        }
    }

    /// Get or create the fault proxy standing in for `oid`.
    fn fault_proxy_for(&mut self, oid: Oid) -> Result<ObjRef> {
        // A registered proxy may have been collected (e.g. its only holders
        // were replicas rolled back after an OOM); prune lazily.
        if let Some(p) = self.fault_proxies.get(&oid) {
            if self.heap.is_live(*p) {
                return Ok(*p);
            }
            self.fault_proxies.remove(&oid);
        }
        let mw = self.universe.middleware;
        let p = self.heap.alloc(mw.fault_proxy, ObjectKind::FaultProxy)?;
        self.heap
            .set_field(p, mw.fp_oid, Value::Int(oid.0 as i64))?;
        self.heap.get_mut(p)?.header_mut().oid = oid;
        self.fault_proxies.insert(oid, p);
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    // Tests assert on known-good setups; panicking on failure is the point.
    #![allow(clippy::disallowed_methods)]
    use super::*;
    use crate::methods::standard_classes;
    use crate::Server;

    fn list_process(n: usize, cluster: usize, capacity: usize) -> (Process, Oid) {
        let u = standard_classes();
        let mut server = Server::new(u.clone());
        let head = server.build_list("Node", n, 8).unwrap();
        let p = Process::new(
            u,
            server.into_shared(),
            capacity,
            ReplConfig::with_cluster_size(cluster),
        );
        (p, head)
    }

    #[test]
    fn replicate_root_brings_first_cluster() {
        let (mut p, head) = list_process(50, 10, 1 << 20);
        let root = p.replicate_root(head).unwrap();
        assert_eq!(p.replicated_objects(), 10);
        assert!(p.heap().is_live(root));
        // 9 in-cluster links are direct; the 10th node's `next` is a fault
        // proxy.
        assert_eq!(
            p.heap()
                .iter_live()
                .filter(|&r| p.heap().get(r).unwrap().kind() == ObjectKind::FaultProxy)
                .count(),
            1
        );
    }

    #[test]
    fn traversal_faults_in_the_whole_list() {
        let (mut p, head) = list_process(50, 10, 1 << 20);
        let root = p.replicate_root(head).unwrap();
        let len = p.invoke_i64(root, "length", vec![]).unwrap();
        assert_eq!(len, 50);
        assert_eq!(p.replicated_objects(), 50);
        let (_invocations, faults) = p.counters();
        assert_eq!(faults, 4, "four cluster-edge faults for 50/10 after root");
    }

    #[test]
    fn visit_counts_recursion_depth() {
        let (mut p, head) = list_process(30, 10, 1 << 20);
        let root = p.replicate_root(head).unwrap();
        let depth = p.invoke_i64(root, "visit", vec![Value::Int(0)]).unwrap();
        assert_eq!(depth, 29);
    }

    #[test]
    fn probe_step_returns_reference_ahead() {
        let (mut p, head) = list_process(30, 30, 1 << 20);
        let root = p.replicate_root(head).unwrap();
        let r = p
            .invoke_ref(root, "probe_step", vec![Value::Int(5)])
            .unwrap();
        let oid = p.heap().get(r).unwrap().header().oid;
        assert_eq!(oid.0, head.0 + 5);
    }

    #[test]
    fn deep_visit_traverses_all() {
        let (mut p, head) = list_process(40, 10, 1 << 20);
        let root = p.replicate_root(head).unwrap();
        let depth = p
            .invoke_i64(root, "deep_visit", vec![Value::Int(0)])
            .unwrap();
        assert_eq!(depth, 39);
    }

    #[test]
    fn b1_style_iteration_with_global_cursor() {
        let (mut p, head) = list_process(25, 10, 1 << 20);
        let root = p.replicate_root(head).unwrap();
        p.set_global("cursor", Value::Ref(root));
        let mut steps = 0;
        loop {
            let cur = p.global("cursor").unwrap().expect_ref().unwrap();
            match p.invoke(cur, "next", vec![]).unwrap() {
                Value::Ref(next) => {
                    p.set_global("cursor", Value::Ref(next));
                    steps += 1;
                }
                Value::Null => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(steps, 24);
        assert_eq!(p.replicated_objects(), 25);
    }

    #[test]
    fn proxy_replacement_patches_holder_fields_and_globals() {
        let (mut p, head) = list_process(20, 10, 1 << 20);
        let root = p.replicate_root(head).unwrap();
        // Stash the 10th node's fault proxy in a global.
        let mut cur = root;
        for _ in 0..9 {
            cur = p.invoke_ref(cur, "next", vec![]).unwrap();
        }
        let proxy = p.invoke_ref(cur, "next", vec![]).unwrap();
        assert_eq!(p.heap().get(proxy).unwrap().kind(), ObjectKind::FaultProxy);
        p.set_global("stash", Value::Ref(proxy));
        // Fault it: the global must now point at the replica, not the proxy.
        p.invoke(proxy, "ping", vec![]).unwrap();
        let stashed = p.global("stash").unwrap().expect_ref().unwrap();
        assert_eq!(p.heap().get(stashed).unwrap().kind(), ObjectKind::App);
        assert_eq!(p.heap().get(stashed).unwrap().header().oid.0, head.0 + 10);
        // And the 10th node's `next` field too.
        let next = p.field_value(cur, "next").unwrap().expect_ref().unwrap();
        assert_eq!(next, stashed);
    }

    #[test]
    fn fault_proxies_are_reused_per_identity() {
        let u = standard_classes();
        let mut server = Server::new(u.clone());
        // Two nodes both pointing at a third.
        let a = server.create("Node").unwrap();
        let b = server.create("Node").unwrap();
        let c = server.create("Node").unwrap();
        server.set_ref(a, "next", Some(c)).unwrap();
        server.set_ref(b, "next", Some(c)).unwrap();
        let mut p = Process::new(
            u,
            server.into_shared(),
            1 << 20,
            ReplConfig::with_cluster_size(1),
        );
        let ra = p.replicate_root(a).unwrap();
        let rb = p.replicate_root(b).unwrap();
        let pa = p.field_value(ra, "next").unwrap().expect_ref().unwrap();
        let pb = p.field_value(rb, "next").unwrap().expect_ref().unwrap();
        assert_eq!(pa, pb, "one fault proxy per identity");
    }

    #[test]
    fn oom_during_replication_rolls_back_registration() {
        // Capacity fits the first cluster but not the second.
        let (mut p, head) = list_process(40, 10, 1_100);
        let root = p.replicate_root(head).unwrap();
        p.set_global("head", Value::Ref(root));
        assert_eq!(p.replicated_objects(), 10);
        let err = p.invoke_i64(root, "length", vec![]).unwrap_err();
        assert!(err.is_out_of_memory());
        // No half-registered identities: every registered oid is live.
        for r in p.heap().iter_live() {
            let o = p.heap().get(r).unwrap();
            if o.kind() == ObjectKind::App && p.lookup_replica(o.header().oid).is_some() {
                assert_eq!(p.lookup_replica(o.header().oid), Some(r));
            }
        }
        let events = p.take_events();
        assert!(events
            .iter()
            .any(|e| matches!(e, ReplicationEvent::ReplicationFailed { .. })));
        // After freeing memory (collect reclaims the rolled-back replicas),
        // the retry makes progress until it hits the wall again.
        p.heap_mut().collect();
        let bytes_after_collect = p.heap().bytes_used();
        let err2 = p.invoke_i64(root, "length", vec![]).unwrap_err();
        assert!(err2.is_out_of_memory(), "got {err2:?}");
        assert!(p.heap().bytes_used() >= bytes_after_collect);
    }

    #[test]
    fn invoking_swap_proxy_without_interceptor_errors() {
        let (mut p, head) = list_process(5, 5, 1 << 20);
        let _root = p.replicate_root(head).unwrap();
        let mw = p.universe().middleware;
        let sp = p
            .heap_mut()
            .alloc(mw.swap_proxy, ObjectKind::SwapProxy)
            .unwrap();
        let err = p.invoke(sp, "ping", vec![]).unwrap_err();
        assert!(matches!(err, ReplError::NoInterceptor { .. }));
    }

    #[test]
    fn unknown_method_is_reported_with_class() {
        let (mut p, head) = list_process(5, 5, 1 << 20);
        let root = p.replicate_root(head).unwrap();
        let err = p.invoke(root, "fly", vec![]).unwrap_err();
        assert!(matches!(err, ReplError::NoSuchMethod { .. }));
    }

    #[test]
    fn events_report_cluster_sizes() {
        let (mut p, head) = list_process(20, 10, 1 << 20);
        let root = p.replicate_root(head).unwrap();
        p.invoke_i64(root, "length", vec![]).unwrap();
        let events = p.take_events();
        let clusters: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                ReplicationEvent::ClusterReplicated { objects, .. } => Some(*objects),
                _ => None,
            })
            .collect();
        assert_eq!(clusters, vec![10, 10]);
    }

    #[test]
    fn replicate_root_is_idempotent() {
        let (mut p, head) = list_process(10, 5, 1 << 20);
        let r1 = p.replicate_root(head).unwrap();
        let r2 = p.replicate_root(head).unwrap();
        assert_eq!(r1, r2);
        assert_eq!(p.replicated_objects(), 5);
    }
}
