//! Violation-injection tests: corrupt a live graph through the public
//! middleware API and assert the auditor pinpoints each rule class.
//!
//! Every test starts from a clean, audited world, injects exactly one
//! class of corruption, and asserts (a) the expected rule fires and (b)
//! for error-severity rules the report flips `has_errors()`.

// Tests assert on known-good setups; panicking on failure is the point.
#![allow(clippy::disallowed_methods)]

use obiwan_auditor::{Rule, Severity};
use obiwan_core::{Middleware, StoreSpec, SwapClusterState, SwapConfig};
use obiwan_heap::{ObjRef, ObjectKind, Value};
use obiwan_net::DeviceKind;
use obiwan_replication::{standard_classes, Server};

/// A middleware over an `n`-node list with `per_cluster` objects per
/// cluster and a heap big enough to hold everything (no surprise
/// evictions), fully replicated by a warm-up traversal.
fn warm_middleware(n: usize, per_cluster: usize) -> (Middleware, ObjRef) {
    let mut server = Server::new(standard_classes());
    let head = server.build_list("Node", n, 16).expect("build list");
    let mut mw = Middleware::builder()
        .cluster_size(per_cluster)
        .device_memory(1 << 20)
        .no_builtin_policies()
        .swap_config(SwapConfig::default().collect_after_swap_out(false))
        .build(server);
    let root = mw.replicate_root(head).expect("replicate root");
    mw.set_global("head", Value::Ref(root));
    mw.invoke_i64(root, "length", vec![]).expect("warm-up");
    assert!(
        !mw.audit().has_errors(),
        "baseline must be clean:\n{}",
        mw.audit()
    );
    (mw, root)
}

/// Like [`warm_middleware`], but with `stores` explicit storage devices
/// in the room and `k`-way blob placement.
fn warm_k_middleware(stores: usize, k: usize) -> (Middleware, ObjRef) {
    let mut server = Server::new(standard_classes());
    let head = server.build_list("Node", 40, 16).expect("build list");
    let mut mw = Middleware::builder()
        .cluster_size(10)
        .device_memory(1 << 20)
        .no_builtin_policies()
        .stores(
            (0..stores)
                .map(|i| StoreSpec::new(format!("store-{i}"), DeviceKind::Laptop, 1 << 20))
                .collect(),
        )
        .swap_config(
            SwapConfig::default()
                .collect_after_swap_out(false)
                .replication_factor(k),
        )
        .build(server);
    let root = mw.replicate_root(head).expect("replicate root");
    mw.set_global("head", Value::Ref(root));
    mw.invoke_i64(root, "length", vec![]).expect("warm-up");
    assert!(
        !mw.audit().has_errors(),
        "baseline must be clean:\n{}",
        mw.audit()
    );
    (mw, root)
}

/// The active `(key, holders)` of a swapped-out cluster.
fn holders_of(mw: &Middleware, sc: u32) -> (String, Vec<obiwan_net::DeviceId>) {
    let manager = mw.manager();
    let (_, key, holders) = manager.holders_of(sc).expect("cluster is swapped out");
    (key, holders)
}

/// The live member handles of swap-cluster `sc`.
fn members_of(mw: &Middleware, sc: u32) -> Vec<ObjRef> {
    mw.manager()
        .cluster(sc)
        .expect("cluster exists")
        .members
        .iter()
        .map(|&(_, r)| r)
        .collect()
}

/// Ids of the rules the report flags.
fn fired(mw: &Middleware) -> Vec<&'static str> {
    mw.audit().violations.iter().map(|v| v.rule.id()).collect()
}

/// Live *edge* proxies (source ≠ 0) with their source clusters, sorted by
/// handle. Source-0 proxies (roots, cursors) are created unindexed by
/// design, so reuse-table rules would not fire for them.
fn edge_proxies(mw: &Middleware) -> Vec<(ObjRef, u32)> {
    let p = mw.process();
    let sp_source = p.universe().middleware.sp_source;
    let mut found: Vec<(ObjRef, u32)> = p
        .heap()
        .iter_live()
        .filter(|&r| {
            p.heap()
                .get(r)
                .map(|o| o.kind() == ObjectKind::SwapProxy)
                .unwrap_or(false)
        })
        .map(|r| {
            let src = p.heap().field(r, sp_source).expect("source field");
            (r, src.expect_int().expect("int") as u32)
        })
        .filter(|&(_, src)| src != 0)
        .collect();
    found.sort();
    found
}

/// One live edge proxy and its source cluster.
fn find_proxy(mw: &Middleware) -> (ObjRef, u32) {
    edge_proxies(mw)
        .first()
        .copied()
        .expect("no live edge proxy in the warmed world")
}

#[test]
fn b1_direct_cross_cluster_reference_is_detected() {
    let (mut mw, _root) = warm_middleware(40, 10);
    let in_sc1 = members_of(&mw, 1)[0];
    let in_sc2 = members_of(&mw, 2)[0];
    // Smuggle a raw cross-cluster edge past the transfer interception.
    mw.process_mut()
        .heap_mut()
        .set_any_field(in_sc1, 0, Value::Ref(in_sc2))
        .expect("set field");
    let report = mw.audit();
    assert!(report.has_errors());
    assert!(fired(&mw).contains(&"B1"), "got {:?}", fired(&mw));
}

#[test]
fn b2_proxy_source_mismatch_is_detected() {
    let (mut mw, _root) = warm_middleware(40, 10);
    let (proxy, src) = find_proxy(&mw);
    let sp_source = mw.process().universe().middleware.sp_source;
    mw.process_mut()
        .heap_mut()
        .set_field(proxy, sp_source, Value::Int(i64::from(src) + 17))
        .expect("flip source");
    // The holder's cluster no longer matches the proxy's source (B2), and
    // the reuse table resolves to a proxy disagreeing with its key (B5).
    let ids = fired(&mw);
    assert!(mw.audit().has_errors());
    assert!(ids.contains(&"B2"), "got {ids:?}");
    assert!(ids.contains(&"B5"), "got {ids:?}");
}

#[test]
fn b3_bad_proxy_target_is_detected() {
    let (mut mw, _root) = warm_middleware(40, 10);
    let (proxy, _) = find_proxy(&mw);
    let sp_target = mw.process().universe().middleware.sp_target;
    // A proxy must never target another proxy.
    mw.process_mut()
        .heap_mut()
        .set_field(proxy, sp_target, Value::Ref(proxy))
        .expect("retarget");
    assert!(mw.audit().has_errors());
    assert!(fired(&mw).contains(&"B3"), "got {:?}", fired(&mw));
}

#[test]
fn b4_duplicate_proxy_pair_is_detected() {
    let (mut mw, _root) = warm_middleware(60, 10);
    // Two distinct indexed proxies exist in a warmed multi-cluster list
    // (one per boundary). Rewrite the second to carry the first's
    // (source, oid) pair: transfer rule ii now has two proxies for one
    // pair.
    let proxies = edge_proxies(&mw);
    assert!(
        proxies.len() >= 2,
        "need two edge proxies, got {}",
        proxies.len()
    );
    let (a, b) = (proxies[0].0, proxies[1].0);
    let p = mw.process();
    let mwc = p.universe().middleware;
    let src_a = p.heap().field(a, mwc.sp_source).expect("src").clone();
    let oid_a = p.heap().field(a, mwc.sp_oid).expect("oid").clone();
    let heap = mw.process_mut().heap_mut();
    heap.set_field(b, mwc.sp_source, src_a)
        .expect("clone source");
    heap.set_field(b, mwc.sp_oid, oid_a).expect("clone oid");
    let ids = fired(&mw);
    assert!(mw.audit().has_errors());
    assert!(ids.contains(&"B4"), "got {ids:?}");
    // The rewritten proxy also disagrees with its own table key.
    assert!(ids.contains(&"B5"), "got {ids:?}");
}

#[test]
fn d1_unpatched_inbound_proxy_is_detected() {
    let (mut mw, _root) = warm_middleware(40, 10);
    mw.swap_out(2).expect("swap out sc2");
    // With collect_after_swap_out(false) the detached members are still on
    // the heap; point an inbound proxy back at one, undoing the patch.
    let victim_member = members_of(&mw, 2)[0];
    let p = mw.process();
    let mwc = p.universe().middleware;
    let inbound = p
        .heap()
        .iter_live()
        .find(|&r| {
            let Ok(obj) = p.heap().get(r) else {
                return false;
            };
            obj.kind() == ObjectKind::SwapProxy
                && p.heap()
                    .field(r, mwc.sp_target)
                    .ok()
                    .and_then(Value::as_ref_value)
                    .and_then(|t| p.heap().get(t).ok())
                    .map(|t| t.kind() == ObjectKind::Replacement)
                    .unwrap_or(false)
        })
        .expect("an inbound proxy targets the replacement");
    mw.process_mut()
        .heap_mut()
        .set_field(inbound, mwc.sp_target, Value::Ref(victim_member))
        .expect("unpatch");
    assert!(mw.audit().has_errors());
    assert!(fired(&mw).contains(&"D1"), "got {:?}", fired(&mw));
}

#[test]
fn d2_corrupted_replacement_is_detected() {
    let (mut mw, _root) = warm_middleware(40, 10);
    mw.swap_out(2).expect("swap out sc2");
    let replacement = match mw.manager().cluster(2).expect("entry").state {
        SwapClusterState::SwappedOut { replacement, .. } => replacement,
        ref other => panic!("expected swapped-out, got {other:?}"),
    };
    // Retag the replacement-object as belonging to another cluster.
    mw.process_mut()
        .heap_mut()
        .get_mut(replacement)
        .expect("live replacement")
        .header_mut()
        .swap_cluster = 9;
    assert!(mw.audit().has_errors());
    assert!(fired(&mw).contains(&"D2"), "got {:?}", fired(&mw));
}

#[test]
fn d3_replacement_outbound_mismatch_is_detected() {
    let (mut mw, _root) = warm_middleware(40, 10);
    mw.swap_out(2).expect("swap out sc2");
    let replacement = match mw.manager().cluster(2).expect("entry").state {
        SwapClusterState::SwappedOut { replacement, .. } => replacement,
        ref other => panic!("expected swapped-out, got {other:?}"),
    };
    // Sneak a non-proxy reference into the replacement's outbound set.
    let stray = members_of(&mw, 1)[0];
    mw.process_mut()
        .heap_mut()
        .push_extra(replacement, Value::Ref(stray))
        .expect("push extra");
    assert!(mw.audit().has_errors());
    assert!(fired(&mw).contains(&"D3"), "got {:?}", fired(&mw));
}

#[test]
fn d4_missing_blob_is_detected() {
    let (mut mw, _root) = warm_middleware(40, 10);
    mw.swap_out(2).expect("swap out sc2");
    let (device, key) = match mw.manager().cluster(2).expect("entry").state {
        SwapClusterState::SwappedOut {
            device, ref key, ..
        } => (device, key.clone()),
        ref other => panic!("expected swapped-out, got {other:?}"),
    };
    let home = mw.home_device();
    mw.net()
        .lock()
        .expect("net")
        .drop_blob(home, device, &key)
        .expect("drop blob behind the manager's back");
    assert!(mw.audit().has_errors());
    assert!(fired(&mw).contains(&"D4"), "got {:?}", fired(&mw));
}

#[test]
fn d5_departed_store_is_a_warning_not_an_error() {
    let (mut mw, _root) = warm_middleware(40, 10);
    mw.swap_out(2).expect("swap out sc2");
    let device = match mw.manager().cluster(2).expect("entry").state {
        SwapClusterState::SwappedOut { device, .. } => device,
        ref other => panic!("expected swapped-out, got {other:?}"),
    };
    mw.net()
        .lock()
        .expect("net")
        .depart(device)
        .expect("depart");
    let report = mw.audit();
    assert!(
        !report.has_errors(),
        "a departed device is a legal (if unfortunate) state:\n{report}"
    );
    let d5 = report
        .warnings()
        .find(|v| v.rule == Rule::StoreUnreachable)
        .expect("D5 warning present");
    assert_eq!(d5.severity(), Severity::Warning);
    assert_eq!(d5.swap_cluster, Some(2));
}

#[test]
fn d7_lost_holder_is_a_warning_not_an_error() {
    let (mut mw, _root) = warm_k_middleware(2, 2);
    mw.swap_out(2).expect("swap out sc2");
    let (_, held) = holders_of(&mw, 2);
    assert_eq!(held.len(), 2, "two copies placed");
    mw.net()
        .lock()
        .expect("net")
        .depart(held[0])
        .expect("depart");
    let report = mw.audit();
    assert!(
        !report.has_errors(),
        "one copy still reachable — degraded, not lost:\n{report}"
    );
    let d7 = report
        .warnings()
        .find(|v| v.rule == Rule::UnderReplicated)
        .expect("D7 warning present");
    assert_eq!(d7.severity(), Severity::Warning);
    assert_eq!(d7.swap_cluster, Some(2));
}

#[test]
fn d8_all_holders_blobless_is_an_error() {
    let (mut mw, _root) = warm_k_middleware(3, 2);
    mw.swap_out(2).expect("swap out sc2");
    let (key, held) = holders_of(&mw, 2);
    let home = mw.home_device();
    // Every holder is still in the room, but each lost its copy behind
    // the manager's back: no reload can ever succeed.
    {
        let net = mw.net();
        let mut net = net.lock().expect("net");
        for &device in &held {
            net.drop_blob(home, device, &key)
                .expect("drop blob behind the manager's back");
        }
    }
    let report = mw.audit();
    assert!(report.has_errors());
    assert!(fired(&mw).contains(&"D8"), "got {:?}", fired(&mw));
}

#[test]
fn g1_orphan_blob_is_a_warning() {
    let (mw, _root) = warm_middleware(20, 10);
    let home = mw.home_device();
    {
        let net = mw.net();
        let mut net = net.lock().expect("net");
        let laptop = net.nearby(home)[0];
        // A blob keyed like ours that no swapped-out cluster backs.
        net.send_blob(
            home,
            laptop,
            &format!("dev{}-sc99-e0", home.index()),
            "<x/>".into(),
        )
        .expect("plant orphan");
    }
    let report = mw.audit();
    assert!(!report.has_errors(), "orphans are tolerated:\n{report}");
    assert!(
        report.warnings().any(|v| v.rule == Rule::OrphanBlob),
        "G1 expected:\n{report}"
    );
    // Another PDA's blob on the shared store is not ours to flag.
    {
        let net = mw.net();
        let mut net = net.lock().expect("net");
        let laptop = net.nearby(home)[0];
        net.send_blob(home, laptop, "dev42-sc1-e0", "<y/>".into())
            .expect("foreign blob");
    }
    assert_eq!(mw.audit().warnings().count(), 1, "foreign keys are ignored");
}

#[test]
fn l1_member_record_mismatch_is_detected() {
    let (mut mw, _root) = warm_middleware(40, 10);
    let member = members_of(&mw, 1)[0];
    // Retag a live member: the loaded cluster's roster now disagrees.
    mw.process_mut()
        .heap_mut()
        .get_mut(member)
        .expect("live member")
        .header_mut()
        .swap_cluster = 3;
    assert!(mw.audit().has_errors());
    assert!(fired(&mw).contains(&"L1"), "got {:?}", fired(&mw));
}

#[test]
fn w1_unmediated_global_is_a_warning() {
    let (mut mw, _root) = warm_middleware(40, 10);
    let member = members_of(&mw, 2)[0];
    mw.set_global("leak", Value::Ref(member));
    let report = mw.audit();
    assert!(
        !report.has_errors(),
        "set_global with a raw handle is legal:\n{report}"
    );
    let w1 = report
        .warnings()
        .find(|v| v.rule == Rule::UnmediatedGlobal)
        .expect("W1 warning present");
    assert_eq!(w1.path, vec![0, 2]);
}

#[test]
fn audit_trace_replay_stays_clean() {
    use obiwan_auditor::scenario::{replay, TraceConfig};
    let outcome = replay(&TraceConfig {
        nodes: 120,
        steps: 150,
        device_memory: 20 * 1024,
        ..TraceConfig::default()
    })
    .expect("replay");
    assert!(
        !outcome.has_errors(),
        "replay must be violation-free:\n{}",
        outcome.final_report
    );
    assert!(outcome.swap_outs > 0, "the trace must exercise swapping");
    assert!(outcome.swap_ins > 0, "the trace must exercise reloads");
}

#[test]
fn audit_trace_churn_replay_stays_clean() {
    use obiwan_auditor::scenario::{replay, TraceConfig, CHURN_PERIOD};
    let steps = 6 * CHURN_PERIOD;
    let outcome = replay(&TraceConfig {
        nodes: 120,
        steps,
        device_memory: 20 * 1024,
        replication_factor: 2,
        churn: true,
        ..TraceConfig::default()
    })
    .expect("churn replay");
    assert!(
        !outcome.has_errors(),
        "scripted churn under k = 2 must never corrupt the graph:\n{}",
        outcome.final_report
    );
    assert!(outcome.swap_outs > 0, "the trace must exercise swapping");
    assert!(outcome.swap_ins > 0, "the trace must exercise reloads");
}

#[test]
fn report_renders_counts_and_rule_ids() {
    let (mut mw, _root) = warm_middleware(40, 10);
    let in_sc1 = members_of(&mw, 1)[0];
    let in_sc2 = members_of(&mw, 2)[0];
    mw.process_mut()
        .heap_mut()
        .set_any_field(in_sc1, 0, Value::Ref(in_sc2))
        .expect("set field");
    let text = mw.audit().render();
    assert!(text.contains("error(s)"), "{text}");
    assert!(text.contains("[B1/error]"), "{text}");
    assert!(text.contains("sc1"), "{text}");
}
