//! Golden-trace test: the replay's exported lifecycle trace is
//! byte-identical run over run, and the committed fixture pins it down so
//! an accidental change to event emission, stamp derivation or the JSON
//! exporter shows up as a diff, not as silent drift.
//!
//! Regenerate the fixture after an *intentional* change with
//!
//! ```text
//! GOLDEN_BLESS=1 cargo test -p obiwan-auditor --test golden_trace
//! ```
//!
//! The file also exercises the two CLI ends of the pipeline: the fixture
//! passes `trace-verify`, and deliberately corrupted variants make it exit
//! nonzero (violation → 1, parse failure → 2).

#![allow(clippy::disallowed_methods)] // tests may panic on impossible states

use obiwan_auditor::scenario::{replay, TraceConfig};
use std::path::PathBuf;
use std::process::Command;

/// The pinned workload: small enough to replay in milliseconds, rich
/// enough to exercise detach, reload, failover (k = 2 under churn),
/// repair sweeps, GC cooperation and the proxy rules.
fn golden_config() -> TraceConfig {
    TraceConfig {
        nodes: 120,
        payload: 64,
        cluster_size: 12,
        device_memory: 16 * 1024,
        steps: 150,
        seed: 11,
        wire_format: obiwan_core::WireFormatKind::Xml,
        replication_factor: 2,
        churn: true,
        // Pinned: the fixture's event order depends on the shard map, so
        // the golden workload names its shard count instead of inheriting
        // the default.
        shards: 8,
        // Pinned too: byte-identical traces are a simulator property.
        transport: obiwan_net::TransportKind::Sim,
    }
}

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("golden_trace.json")
}

/// Export the golden workload's trace as deterministic JSON.
fn export_golden() -> String {
    let outcome = replay(&golden_config()).expect("golden replay must succeed");
    assert!(
        !outcome.has_errors(),
        "golden workload must pass the graph audit"
    );
    outcome.trace.to_json()
}

#[test]
fn golden_trace_matches_committed_fixture() {
    let json = export_golden();
    let path = fixture_path();
    if std::env::var_os("GOLDEN_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("mkdir fixtures");
        std::fs::write(&path, &json).expect("bless fixture");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); regenerate with GOLDEN_BLESS=1",
            path.display()
        )
    });
    assert_eq!(
        json, want,
        "exported trace diverged from the committed fixture; if the change \
         is intentional, regenerate with GOLDEN_BLESS=1"
    );
}

#[test]
fn golden_trace_is_deterministic_across_runs() {
    assert_eq!(export_golden(), export_golden());
}

#[test]
fn golden_trace_round_trips_and_conforms() {
    let json = export_golden();
    let trace = obiwan_trace::Trace::from_json(&json).expect("exported trace must re-import");
    assert_eq!(trace.to_json(), json, "re-export must be byte-identical");
    let report = obiwan_trace::conformance::check(&trace);
    assert!(
        report.is_clean(),
        "golden trace must conform: {}",
        report
            .violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("; ")
    );
}

#[test]
fn golden_trace_is_byte_identical_at_shard_extremes() {
    // The slab-arena heap must not leak allocation nondeterminism into the
    // trace at either extreme of the lock table: the collapsed single-lock
    // shape (`--shards 1`) and a spread wider than the golden 8
    // (`--shards 16`). Each shape replays byte-identically run over run
    // and passes the conformance rules; the shards-8 shape is additionally
    // pinned against the committed fixture above.
    for shards in [1usize, 16] {
        let cfg = TraceConfig {
            shards,
            ..golden_config()
        };
        let export = |cfg: &TraceConfig| {
            let outcome = replay(cfg).expect("shard-extreme replay must succeed");
            assert!(!outcome.has_errors(), "shards={shards}: graph audit");
            let report = obiwan_trace::conformance::check(&outcome.trace);
            assert!(report.is_clean(), "shards={shards}: {report}");
            outcome.trace.to_json()
        };
        assert_eq!(
            export(&cfg),
            export(&cfg),
            "shards={shards}: trace must be byte-identical run over run"
        );
    }
}

#[test]
fn every_format_and_replication_factor_exports_a_conforming_trace() {
    for wire_format in obiwan_core::WireFormatKind::ALL {
        for k in [1usize, 2] {
            let cfg = TraceConfig {
                wire_format,
                replication_factor: k,
                ..golden_config()
            };
            let outcome = replay(&cfg).expect("replay");
            assert_eq!(outcome.trace.meta.wire_format, wire_format.name());
            assert_eq!(outcome.trace.meta.replication_factor, k as u32);
            let report = obiwan_trace::conformance::check(&outcome.trace);
            assert!(report.is_clean(), "{wire_format} k={k}: {report}");
            // And the exporter/importer agree for every variant.
            let round =
                obiwan_trace::Trace::from_json(&outcome.trace.to_json()).expect("trace re-imports");
            assert_eq!(round, outcome.trace);
        }
    }
}

/// Run the `trace-verify` binary on a trace document; returns its exit
/// code.
fn verify_exit(json: &str, name: &str) -> i32 {
    let dir = std::env::temp_dir().join("obiwan-golden-trace");
    std::fs::create_dir_all(&dir).expect("mkdir temp");
    let path = dir.join(name);
    std::fs::write(&path, json).expect("write temp trace");
    let status = Command::new(env!("CARGO_BIN_EXE_trace-verify"))
        .arg("--quiet")
        .arg(&path)
        .status()
        .expect("spawn trace-verify");
    status.code().expect("trace-verify exit code")
}

#[test]
fn trace_verify_accepts_clean_trace() {
    assert_eq!(verify_exit(&export_golden(), "clean.json"), 0);
}

#[test]
fn trace_verify_rejects_semantic_corruption() {
    // Claim a cluster is still swapped out that the events say reloaded:
    // valid JSON, conformance violation (exit 1).
    let json = export_golden();
    let corrupted = if json.contains("\"swapped\":[]") {
        json.replacen("\"swapped\":[]", "\"swapped\":[4294967295]", 1)
    } else {
        json.replacen("\"swapped\":[", "\"swapped\":[4294967295,", 1)
    };
    assert_ne!(corrupted, json, "corruption must hit the meta line");
    assert_eq!(verify_exit(&corrupted, "semantic.json"), 1);
}

#[test]
fn trace_verify_rejects_unparseable_trace() {
    // Rename an event: strict importer refuses unknown names (exit 2).
    let json = export_golden();
    let corrupted = json.replacen("\"detach-start\"", "\"detach-begin\"", 1);
    assert_ne!(corrupted, json, "golden workload must contain a detach");
    assert_eq!(verify_exit(&corrupted, "unparseable.json"), 2);

    // A truncated file must not verify either.
    let cut = &json[..json.len() / 2];
    assert_eq!(verify_exit(cut, "truncated.json"), 2);
}
