//! Check an exported swap-lifecycle trace against the conformance state
//! machine.
//!
//! ```text
//! cargo run -p obiwan-auditor --bin audit-trace -- --trace-out run.json
//! cargo run -p obiwan-auditor --bin trace-verify -- run.json
//! ```
//!
//! Exits 0 when the trace parses and every event is a legal lifecycle
//! transition, 1 when the checker found violations, 2 on usage errors or
//! a trace that does not parse (truncated file, corrupted JSON, schema
//! drift).

use std::process::ExitCode;

const USAGE: &str = "\
trace-verify: replay an exported swap-lifecycle trace through the conformance checker

USAGE:
    trace-verify [--quiet] <TRACE.json> [<TRACE.json> ...]

Each trace must be the deterministic JSON written by `audit-trace --trace-out`
(or any `obiwan_trace::json` exporter). Exit code: 0 all traces conform,
1 violations found, 2 usage/parse failure.
";

fn main() -> ExitCode {
    let mut quiet = false;
    let mut paths = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("trace-verify: unknown option `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
            path => paths.push(path.to_string()),
        }
    }
    if paths.is_empty() {
        eprintln!("trace-verify: no trace file given\n\n{USAGE}");
        return ExitCode::from(2);
    }

    let mut violations = 0usize;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("trace-verify: reading `{path}`: {e}");
                return ExitCode::from(2);
            }
        };
        let trace = match obiwan_trace::Trace::from_json(&text) {
            Ok(trace) => trace,
            Err(e) => {
                eprintln!("trace-verify: `{path}` does not parse: {e}");
                return ExitCode::from(2);
            }
        };
        let report = obiwan_trace::conformance::check(&trace);
        violations += report.violations.len();
        if !quiet {
            println!(
                "{path}: {} event(s), {} cluster(s), wire format {}, k = {}",
                trace.events.len(),
                trace.meta.clusters.len(),
                trace.meta.wire_format,
                trace.meta.replication_factor
            );
            if report.is_clean() {
                println!("{report}");
            } else {
                print!("{report}");
            }
        }
    }

    if violations > 0 {
        println!("RESULT: trace conformance VIOLATED ({violations} violation(s))");
        ExitCode::FAILURE
    } else {
        println!("RESULT: all traces conform to the swap lifecycle");
        ExitCode::SUCCESS
    }
}
