//! Replay a bench-style workload and audit swap-cluster invariants after
//! every operation.
//!
//! ```text
//! cargo run -p obiwan-auditor --bin audit-trace -- --nodes 300 --steps 400
//! ```
//!
//! Exits 0 when no error-severity violation was found (warnings — departed
//! devices, raw globals — are reported but tolerated), 1 when the graph
//! was corrupted, 2 on usage or setup failure.

use obiwan_auditor::scenario::{replay, TraceConfig};
use std::process::ExitCode;

const USAGE: &str = "\
audit-trace: replay a swapping workload, auditing graph invariants after every step

USAGE:
    audit-trace [OPTIONS]

OPTIONS:
    --nodes <N>         list length to build                 [default: 200]
    --payload <BYTES>   payload bytes per node               [default: 64]
    --cluster-size <N>  objects per replication cluster      [default: 20]
    --memory <BYTES>    device heap capacity                 [default: 24576]
    --steps <N>         operations to replay                 [default: 300]
    --seed <N>          schedule seed                        [default: 7]
    --wire-format <F>   blob wire format: xml | binary | lz-binary
                                                             [default: xml]
    --replication-factor <K>
                        holder devices per swap-out blob     [default: 1]
    --shards <N>        shards in the manager's lock table; 1 replays the
                        single-lock shape, larger values spread clusters
                        across shards                        [default: 8]
    --transport <T>     swap fabric to replay over: sim (deterministic
                        simulation) | tcp (in-process obiwan-blobd daemons
                        behind the actor runtime, real sockets)
                                                             [default: sim]
    --churn             scripted churn: every 25 steps a storage device
                        departs and the previous absentee returns,
                        exercising holder-loss repair under audit
    --trace-out <PATH>  write the run's lifecycle trace as deterministic
                        JSON (feed it to `trace-verify`)
    --verbose           print every step, not just violating ones
    --help              show this message
";

struct Options {
    cfg: TraceConfig,
    verbose: bool,
    trace_out: Option<String>,
}

fn parse_args() -> Result<Option<Options>, String> {
    let mut cfg = TraceConfig::default();
    let mut verbose = false;
    let mut trace_out = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut numeric = |name: &str| -> Result<u64, String> {
            args.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse::<u64>()
                .map_err(|e| format!("{name}: {e}"))
        };
        match arg.as_str() {
            "--nodes" => cfg.nodes = numeric("--nodes")? as usize,
            "--payload" => cfg.payload = numeric("--payload")? as usize,
            "--cluster-size" => cfg.cluster_size = numeric("--cluster-size")? as usize,
            "--memory" => cfg.device_memory = numeric("--memory")? as usize,
            "--steps" => cfg.steps = numeric("--steps")? as usize,
            "--seed" => cfg.seed = numeric("--seed")?,
            "--wire-format" => {
                cfg.wire_format = args
                    .next()
                    .ok_or_else(|| "--wire-format needs a value".to_string())?
                    .parse()?
            }
            "--replication-factor" => {
                cfg.replication_factor = numeric("--replication-factor")?.max(1) as usize
            }
            "--shards" => cfg.shards = numeric("--shards")?.max(1) as usize,
            "--transport" => {
                cfg.transport = match args
                    .next()
                    .ok_or_else(|| "--transport needs a value".to_string())?
                    .as_str()
                {
                    "sim" => obiwan_net::TransportKind::Sim,
                    "tcp" => obiwan_net::TransportKind::Tcp,
                    other => return Err(format!("--transport: `{other}` is not sim | tcp")),
                }
            }
            "--churn" => cfg.churn = true,
            "--trace-out" => {
                trace_out = Some(
                    args.next()
                        .ok_or_else(|| "--trace-out needs a path".to_string())?,
                )
            }
            "--verbose" => verbose = true,
            "--help" | "-h" => return Ok(None),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(Some(Options {
        cfg,
        verbose,
        trace_out,
    }))
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(Some(opts)) => opts,
        Ok(None) => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("audit-trace: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    println!(
        "replaying {} steps over a {}-node list ({} B payload, {} objects/cluster, {} B heap, seed {}, {} blobs, k = {}, {} shard(s){}, transport {})",
        opts.cfg.steps,
        opts.cfg.nodes,
        opts.cfg.payload,
        opts.cfg.cluster_size,
        opts.cfg.device_memory,
        opts.cfg.seed,
        opts.cfg.wire_format,
        opts.cfg.replication_factor,
        opts.cfg.shards,
        if opts.cfg.churn { ", churn on" } else { "" },
        match opts.cfg.transport {
            obiwan_net::TransportKind::Sim => "sim",
            obiwan_net::TransportKind::Tcp => "tcp",
        },
    );

    let outcome = match replay(&opts.cfg) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("audit-trace: replay failed: {e}");
            return ExitCode::from(2);
        }
    };

    for s in &outcome.steps {
        if opts.verbose || s.errors > 0 {
            println!(
                "step {:>4}: {:<40} {} error(s), {} warning(s)",
                s.step, s.op, s.errors, s.warnings
            );
        }
    }

    println!(
        "\n{} swap-out(s), {} reload(s) during the trace",
        outcome.swap_outs, outcome.swap_ins
    );
    print!("{}", outcome.final_report);

    if let Some(path) = &opts.trace_out {
        if let Err(e) = std::fs::write(path, outcome.trace.to_json()) {
            eprintln!("audit-trace: writing trace to `{path}`: {e}");
            return ExitCode::from(2);
        }
        println!(
            "trace: {} event(s) written to {path} ({} dropped by the ring)",
            outcome.trace.events.len(),
            outcome.trace.meta.dropped
        );
    }

    if outcome.has_errors() {
        println!("RESULT: graph invariants VIOLATED");
        ExitCode::FAILURE
    } else {
        println!("RESULT: all invariants hold at every step");
        ExitCode::SUCCESS
    }
}
