//! Scripted workload replay with a whole-graph audit after every step.
//!
//! The trace is the paper's Test B1 shape — a PDA walking a linked
//! structure through a swap-cluster-0 cursor under memory pressure —
//! interleaved with explicit swap-outs, reloads and collections chosen by
//! a deterministic pseudo-random schedule. After *every* operation the
//! auditor checks boundary soundness, detach integrity and blob
//! accounting, so a single corrupting operation is caught at the step
//! that introduced it, not at the end of the run.

use obiwan_core::audit::AuditReport;
use obiwan_core::{Middleware, SwapError};
use obiwan_heap::Value;
use obiwan_net::Transport as _;
use obiwan_replication::{standard_classes, Server};

/// Parameters of a replayed trace.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// List length (the paper's element count knob).
    pub nodes: usize,
    /// Payload bytes per node.
    pub payload: usize,
    /// Objects per replication cluster (= swap-cluster granularity).
    pub cluster_size: usize,
    /// Device heap capacity in bytes; small values force evictions.
    pub device_memory: usize,
    /// Operations to replay.
    pub steps: usize,
    /// Seed of the deterministic schedule.
    pub seed: u64,
    /// Wire format for swapped-out blobs.
    pub wire_format: obiwan_core::WireFormatKind,
    /// Holder devices per swap-out blob (1 = the paper's single copy).
    pub replication_factor: usize,
    /// Scripted churn: every [`CHURN_PERIOD`] steps one storage device
    /// departs (round-robin) and the previously departed one returns, so
    /// the policy pump's `HolderLost` → repair path runs under audit.
    pub churn: bool,
    /// Shards in the manager's lock table. `1` collapses the table to the
    /// pre-shard single-lock shape; larger values spread the same
    /// workload's clusters across shards so per-step audits cover the
    /// cross-shard paths.
    pub shards: usize,
    /// Which transport the replay runs over. `Sim` (the default) is the
    /// deterministic simulation; `Tcp` spawns one in-process
    /// `obiwan-blobd` daemon per storage device and drives the identical
    /// workload through the actor runtime over real sockets. Step
    /// schedules stay deterministic either way (the schedule is seeded);
    /// wall-clock timestamps in the exported trace do not.
    pub transport: obiwan_net::TransportKind,
}

/// Steps between scripted depart/arrive pairs when [`TraceConfig::churn`]
/// is on.
pub const CHURN_PERIOD: usize = 25;

/// Storage devices in the room under churn: one may be away at any time,
/// leaving two candidates so `replication_factor = 2` stays repairable.
const CHURN_STORES: usize = 3;

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            nodes: 200,
            payload: 64,
            cluster_size: 20,
            device_memory: 24 * 1024,
            steps: 300,
            seed: 7,
            wire_format: obiwan_core::WireFormatKind::default(),
            replication_factor: 1,
            churn: false,
            shards: obiwan_core::SwapConfig::default().shard_count,
            transport: obiwan_net::TransportKind::Sim,
        }
    }
}

/// The audit outcome of one replayed operation.
#[derive(Debug, Clone)]
pub struct StepRecord {
    /// Step index (0-based).
    pub step: usize,
    /// What was replayed (`"invoke next"`, `"swap_out sc3"`, …).
    pub op: String,
    /// Error-severity violations found right after the operation.
    pub errors: usize,
    /// Warning-severity violations found right after the operation.
    pub warnings: usize,
}

/// The result of a full trace replay.
#[derive(Debug)]
pub struct TraceOutcome {
    /// Per-step audit summaries, in replay order.
    pub steps: Vec<StepRecord>,
    /// The full report of the final audit pass.
    pub final_report: AuditReport,
    /// Swap-outs the workload triggered (explicit + memory pressure).
    pub swap_outs: u64,
    /// Reloads the workload triggered (explicit + transparent faults).
    pub swap_ins: u64,
    /// The lifecycle trace the run recorded, already exported.
    pub trace: obiwan_trace::Trace,
}

impl TraceOutcome {
    /// Whether any step (or the final pass) found an error-severity
    /// violation.
    pub fn has_errors(&self) -> bool {
        self.final_report.has_errors() || self.steps.iter().any(|s| s.errors > 0)
    }
}

/// Splitmix-style step for the deterministic schedule.
fn next_rand(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Replay a trace, auditing after every operation.
///
/// # Errors
///
/// Setup failures (replication of the root) and unexpected operation
/// failures; expected per-operation outcomes (bad state, retired victim,
/// data loss after an explicit drop) are tolerated and recorded in the
/// step's `op` string instead.
pub fn replay(cfg: &TraceConfig) -> Result<TraceOutcome, SwapError> {
    let mut server = Server::new(standard_classes());
    let head = server
        .build_list("Node", cfg.nodes, cfg.payload)
        .map_err(SwapError::Repl)?;
    let mut builder = Middleware::builder()
        .cluster_size(cfg.cluster_size)
        .device_memory(cfg.device_memory)
        .wire_format(cfg.wire_format)
        .replication_factor(cfg.replication_factor)
        .shard_count(cfg.shards)
        .transport(cfg.transport);
    // Enough storage devices that one can be away while k = 2 copies
    // still have somewhere to live (and be repaired to).
    let store_count = if cfg.churn || cfg.replication_factor > 1 {
        CHURN_STORES
    } else {
        1
    };
    if cfg.transport == obiwan_net::TransportKind::Sim {
        builder = builder.stores(
            (0..store_count)
                .map(|i| {
                    obiwan_core::StoreSpec::new(
                        format!("store-{i}"),
                        obiwan_net::DeviceKind::Laptop,
                        16 << 20,
                    )
                })
                .collect(),
        );
    }
    // Over TCP the room is assembled externally: one in-process
    // `obiwan-blobd` daemon per storage device, fronted by the actor
    // runtime. The daemon handles keep the processes alive for the whole
    // replay and shut them down at the end.
    let mut daemons: Vec<obiwan_blobd::BlobdHandle> = Vec::new();
    let mut mw = match cfg.transport {
        obiwan_net::TransportKind::Sim => builder.build(server),
        obiwan_net::TransportKind::Tcp => {
            let universe = server.classes().clone();
            let mut net = obiwan_netd::ActorNet::new();
            let home = net.add_device("pda", obiwan_net::DeviceKind::Pda, 0);
            for i in 0..store_count {
                let handle = obiwan_blobd::Blobd::spawn_local(16 << 20).map_err(|e| {
                    SwapError::Net(obiwan_net::NetError::Protocol {
                        device: home,
                        detail: format!("spawning loopback obiwan-blobd: {e}"),
                    })
                })?;
                let d = net.add_remote_device(
                    format!("store-{i}"),
                    obiwan_net::DeviceKind::Laptop,
                    16 << 20,
                    handle.addr(),
                );
                net.connect(home, d, obiwan_net::LinkSpec::bluetooth())?;
                daemons.push(handle);
            }
            let shared = std::sync::Arc::new(std::sync::Mutex::new(
                obiwan_net::NetFabric::backend(Box::new(net)),
            ));
            builder.build_in_world(universe, server.into_shared(), shared, home)
        }
    };
    let storage: Vec<obiwan_net::DeviceId> = {
        let net = mw.net();
        let nearby = net
            .lock()
            .map_err(|_| SwapError::LockPoisoned {
                what: "net",
                shard: None,
            })?
            .nearby(mw.home_device());
        nearby
    };
    let root = mw.replicate_root(head)?;
    mw.set_global("cursor", Value::Ref(root));
    mw.set_global("root", Value::Ref(root));

    let mut rng = cfg.seed;
    let mut steps = Vec::with_capacity(cfg.steps);
    let mut away: Option<obiwan_net::DeviceId> = None;
    let mut churn_cursor = 0usize;
    for step in 0..cfg.steps {
        // Scripted churn: one device is out of the room at a time; every
        // period the absentee returns and the next one (round-robin)
        // leaves. The pump right after lets `HolderLost` fire and the
        // builtin repair rule re-replicate while the audit watches.
        if cfg.churn && step > 0 && step % CHURN_PERIOD == 0 {
            {
                let net = mw.net();
                let mut net = net.lock().map_err(|_| SwapError::LockPoisoned {
                    what: "net",
                    shard: None,
                })?;
                if let Some(back) = away.take() {
                    net.arrive(back)?;
                }
                // `storage` is empty only when the builder added no
                // stores; then there is nobody to churn.
                if let Some(&leaver) = storage.get(churn_cursor % storage.len().max(1)) {
                    churn_cursor += 1;
                    net.depart(leaver)?;
                    away = Some(leaver);
                }
            }
            mw.pump()?;
        }
        let op = match next_rand(&mut rng) % 10 {
            0..=5 => match traverse_step(&mut mw) {
                Ok(s) => s,
                // A brutally small heap can fail to fit even one reloaded
                // cluster plus the cursor proxy; that is memory exhaustion,
                // not graph corruption — park the cursor back at the root
                // and keep replaying (the audit below still runs).
                Err(e) if e.is_out_of_memory() => {
                    let root = mw.global("root")?.expect_ref()?;
                    mw.set_global("cursor", Value::Ref(root));
                    format!("invoke next (tolerated heap exhaustion: {e})")
                }
                // Under churn every holder of the next cluster may be out
                // of the room at once; the cluster stays swapped out and
                // becomes reachable again when a holder returns. The
                // transparent-fault path reports the same condition
                // wrapped in `Repl`, hence the string fallback.
                Err(e)
                    if matches!(e, SwapError::BlobUnavailable { .. })
                        || e.to_string().contains("unavailable") =>
                {
                    let root = mw.global("root")?.expect_ref()?;
                    mw.set_global("cursor", Value::Ref(root));
                    format!("invoke next (tolerated unavailability: {e})")
                }
                Err(e) => return Err(e),
            },
            6 => match mw.swap_out_victim() {
                Ok(Some(sc)) => format!("swap_out_victim -> sc{sc}"),
                Ok(None) => "swap_out_victim -> none evictable".into(),
                // Detaching mints a replacement-object; on a tiny heap even
                // that allocation can fail.
                Err(e) if e.is_out_of_memory() => {
                    format!("swap_out_victim (tolerated heap exhaustion: {e})")
                }
                Err(e) => return Err(e),
            },
            7 => {
                let collected = mw.run_gc()?;
                format!("run_gc ({} objects freed)", collected.freed_objects)
            }
            8 => swap_one(&mut mw, &mut rng, true)?,
            _ => swap_one(&mut mw, &mut rng, false)?,
        };
        let report = mw.audit();
        steps.push(StepRecord {
            step,
            op,
            errors: report.errors().count(),
            warnings: report.warnings().count(),
        });
    }

    let stats = mw.swap_stats();
    let outcome = TraceOutcome {
        steps,
        final_report: mw.audit(),
        swap_outs: stats.swap_outs,
        swap_ins: stats.swap_ins,
        trace: mw.export_trace(),
    };
    // Stop the loopback daemons a TCP replay spawned (no-op for sim).
    for handle in &daemons {
        handle.shutdown();
    }
    Ok(outcome)
}

/// Advance the cursor one hop (reloading transparently under the hood);
/// wrap back to the root at the end of the list.
///
/// The hop is re-mediated through [`Middleware::make_cursor`] — a raw
/// member handle parked in a global would dangle when its cluster is
/// swapped out (the auditor's W1 hazard); the cursor proxy instead gets
/// patched onto the replacement-object and reloads transparently.
fn traverse_step(mw: &mut Middleware) -> Result<String, SwapError> {
    let cur = mw.global("cursor")?.expect_ref()?;
    match mw.invoke_resilient(cur, "next", vec![], 1_000)? {
        Value::Ref(next) => {
            let cursor = mw.make_cursor(next)?;
            mw.set_global("cursor", Value::Ref(cursor));
            Ok("invoke next".into())
        }
        _ => {
            let root = mw.global("root")?.expect_ref()?;
            mw.set_global("cursor", Value::Ref(root));
            Ok("invoke next (end of list, cursor reset)".into())
        }
    }
}

/// Explicitly swap one cluster in or out, picked from the respective
/// registry snapshot; tolerate the expected state races.
fn swap_one(mw: &mut Middleware, rng: &mut u64, reload: bool) -> Result<String, SwapError> {
    let candidates: Vec<u32> = {
        let manager = mw.manager();
        if reload {
            manager.swapped_clusters()
        } else {
            manager.loaded_clusters()
        }
    };
    if candidates.is_empty() {
        return Ok(if reload {
            "swap_in (nothing swapped out)".into()
        } else {
            "swap_out (nothing loaded)".into()
        });
    }
    let pick = (next_rand(rng) % candidates.len() as u64) as usize;
    let Some(&sc) = candidates.get(pick) else {
        return Ok("skip (no candidates)".into());
    };
    let outcome = if reload {
        mw.swap_in(sc).map(|b| format!("swap_in sc{sc} ({b} B)"))
    } else {
        mw.swap_out(sc).map(|b| format!("swap_out sc{sc} ({b} B)"))
    };
    match outcome {
        Ok(s) => Ok(s),
        Err(
            SwapError::BadState { .. }
            | SwapError::UnknownSwapCluster { .. }
            | SwapError::NothingToSwap { .. }
            | SwapError::NoStorageDevice { .. }
            | SwapError::DataLost { .. }
            | SwapError::BlobUnavailable { .. },
        ) => Ok(format!(
            "{} sc{sc} (tolerated state race)",
            if reload { "swap_in" } else { "swap_out" }
        )),
        // Reloading a cluster (or minting its replacement on the way out)
        // allocates; a tiny heap may simply not fit it.
        Err(e) if e.is_out_of_memory() => Ok(format!(
            "{} sc{sc} (tolerated heap exhaustion: {e})",
            if reload { "swap_in" } else { "swap_out" }
        )),
        Err(e) => Err(e),
    }
}
