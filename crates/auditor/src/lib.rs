//! Standalone packaging of the swap-cluster invariant auditor.
//!
//! The analyzer itself lives in [`obiwan_core::audit`] (it needs the
//! manager's internal tables, and the middleware's debug self-audit hooks
//! call it after every swap operation). This crate re-exports the audit
//! API, adds a scripted workload replayer ([`scenario`]) that audits the
//! whole graph after every step, and ships the `audit-trace` CLI:
//!
//! ```text
//! cargo run -p obiwan-auditor --bin audit-trace -- --nodes 300 --steps 400
//! ```
//!
//! The crate's integration tests deliberately corrupt a live graph through
//! the public middleware API and assert the auditor pinpoints each rule
//! class (see `tests/injection.rs`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use obiwan_core::audit::{AuditReport, Rule, Severity, Violation};

pub mod scenario;
