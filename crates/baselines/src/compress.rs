//! The heap-compression baseline (\[2\] Chen et al., \[3\] Chihaia &
//! Gross, \[14\] Wilson).
//!
//! Instead of shipping a swapped-out cluster to a nearby device, the text
//! is compressed into an in-memory **compressed pool** reserved out of the
//! device's own memory. The trade-offs the paper highlights:
//!
//! * compression is CPU-intensive (energy, latency on a handheld);
//! * "the compressed-memory pool actually reduces the memory available to
//!   applications", and sizing it is delicate — "devoting too much memory
//!   to the compressed-memory pool hurts performance as much as not
//!   reserving enough";
//! * capacity is bounded by the device itself, unlike the room's devices.
//!
//! [`CompressedPool`] implements the same three-verb interface as the
//! remote stores ([`obiwan_net::BlobStore`]) so benches can swap it in for
//! the network path one-for-one.

use crate::lz;
use obiwan_net::{BlobStore, Bytes, DeviceId, NetError};
use std::collections::HashMap;

/// Statistics of a [`CompressedPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Compression operations.
    pub compressions: u64,
    /// Decompression operations.
    pub decompressions: u64,
    /// Uncompressed bytes accepted.
    pub bytes_in: u64,
    /// Compressed bytes currently resident.
    pub bytes_resident: u64,
}

/// An in-memory compressed blob pool with a byte budget.
///
/// # Examples
///
/// ```
/// use obiwan_baselines::compress::CompressedPool;
/// use obiwan_net::BlobStore;
///
/// # fn main() -> Result<(), obiwan_net::NetError> {
/// let mut pool = CompressedPool::new(4096);
/// let text = "<object oid=\"1\"/>".repeat(40);
/// pool.store("sc-1", text.clone().into())?;
/// assert!(pool.used_bytes() < text.len(), "compression shrank it");
/// assert_eq!(&pool.fetch("sc-1")?[..], text.as_bytes());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct CompressedPool {
    blobs: HashMap<String, Vec<u8>>,
    budget: usize,
    used: usize,
    stats: PoolStats,
}

impl CompressedPool {
    /// A pool with the given byte budget (memory reserved away from the
    /// application heap).
    pub fn new(budget: usize) -> Self {
        CompressedPool {
            blobs: HashMap::new(),
            budget,
            used: 0,
            stats: PoolStats::default(),
        }
    }

    /// The byte budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Achieved compression ratio so far (compressed / uncompressed).
    pub fn ratio(&self) -> f64 {
        if self.stats.bytes_in == 0 {
            return 1.0;
        }
        self.stats.bytes_resident as f64 / self.stats.bytes_in as f64
    }
}

impl BlobStore for CompressedPool {
    fn store(&mut self, key: &str, data: Bytes) -> obiwan_net::Result<()> {
        if self.blobs.contains_key(key) {
            return Err(NetError::DuplicateBlob {
                device: DeviceId::default(),
                key: key.to_string(),
            });
        }
        let compressed = lz::compress(&data);
        if self.used + compressed.len() > self.budget {
            return Err(NetError::QuotaExceeded {
                device: DeviceId::default(),
                requested: compressed.len(),
                used: self.used,
                quota: self.budget,
            });
        }
        self.used += compressed.len();
        self.stats.compressions += 1;
        self.stats.bytes_in += data.len() as u64;
        self.stats.bytes_resident += compressed.len() as u64;
        self.blobs.insert(key.to_string(), compressed);
        Ok(())
    }

    fn fetch(&mut self, key: &str) -> obiwan_net::Result<Bytes> {
        let compressed = self.blobs.get(key).ok_or_else(|| NetError::UnknownBlob {
            device: DeviceId::default(),
            key: key.to_string(),
        })?;
        self.stats.decompressions += 1;
        let raw = lz::decompress(compressed).map_err(|_| NetError::UnknownBlob {
            device: DeviceId::default(),
            key: key.to_string(),
        })?;
        Ok(Bytes::from(raw))
    }

    fn drop_blob(&mut self, key: &str) -> obiwan_net::Result<()> {
        match self.blobs.remove(key) {
            Some(compressed) => {
                self.used -= compressed.len();
                self.stats.bytes_resident -= compressed.len() as u64;
                Ok(())
            }
            None => Err(NetError::UnknownBlob {
                device: DeviceId::default(),
                key: key.to_string(),
            }),
        }
    }

    fn contains(&self, key: &str) -> bool {
        self.blobs.contains_key(key)
    }

    fn used_bytes(&self) -> usize {
        self.used
    }

    fn blob_count(&self) -> usize {
        self.blobs.len()
    }
}

#[cfg(test)]
mod tests {
    // Tests assert on known-good setups; panicking on failure is the point.
    #![allow(clippy::disallowed_methods)]
    use super::*;

    fn xmlish(n: usize) -> String {
        (0..n)
            .map(|i| format!("<object oid=\"{i}\" class=\"Node\"><field i=\"0\"/></object>"))
            .collect()
    }

    #[test]
    fn store_fetch_drop_roundtrip() {
        let mut pool = CompressedPool::new(1 << 16);
        let text = xmlish(50);
        pool.store("k", text.clone().into()).unwrap();
        assert_eq!(&pool.fetch("k").unwrap()[..], text.as_bytes());
        assert_eq!(pool.blob_count(), 1);
        pool.drop_blob("k").unwrap();
        assert_eq!(pool.used_bytes(), 0);
        assert_eq!(pool.blob_count(), 0);
    }

    #[test]
    fn budget_is_enforced_on_compressed_size() {
        let mut pool = CompressedPool::new(256);
        // Highly compressible 10 KB fits in 256 compressed bytes…
        let compressible = "a".repeat(10_000);
        pool.store("a", compressible.into()).unwrap();
        // …but nearly-random data of the same raw size does not.
        let mut pool2 = CompressedPool::new(256);
        let noisy: String = (0..10_000u32)
            .map(|i| (33 + ((i.wrapping_mul(2654435761) >> 16) % 90) as u8) as char)
            .collect();
        assert!(matches!(
            pool2.store("n", noisy.into()),
            Err(NetError::QuotaExceeded { .. })
        ));
    }

    #[test]
    fn duplicate_keys_rejected() {
        let mut pool = CompressedPool::new(1 << 16);
        pool.store("k", "x".into()).unwrap();
        assert!(matches!(
            pool.store("k", "y".into()),
            Err(NetError::DuplicateBlob { .. })
        ));
    }

    #[test]
    fn ratio_reflects_compressibility() {
        let mut pool = CompressedPool::new(1 << 20);
        pool.store("k", xmlish(200).into()).unwrap();
        assert!(pool.ratio() < 0.5, "ratio {}", pool.ratio());
    }

    #[test]
    fn missing_keys_error() {
        let mut pool = CompressedPool::new(64);
        assert!(pool.fetch("nope").is_err());
        assert!(pool.drop_blob("nope").is_err());
    }
}
