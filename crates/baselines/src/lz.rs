//! Re-export shim for the LZ codec, which moved to the shared
//! [`obiwan_lz`] crate so `obiwan-core`'s compressed wire format can use
//! it without depending on the baselines (baselines depend on core).
//!
//! Kept as a module so existing `baselines::lz::{compress, decompress}`
//! call sites and doc references stay valid.

pub use obiwan_lz::{compress, decompress};
