//! Per-object offloading with surrogates — the approach of \[6, 1\]
//! (Messer et al., Chen et al.), reproduced as a baseline.
//!
//! There, individual objects migrate to a nearby *middleware-running*
//! server; a surrogate replaces each migrated object, the VM's object
//! table tracks remote residency, and a distributed GC exchanges liveness
//! information per object. The paper's §6 criticizes exactly these costs:
//! VM modification, per-object bookkeeping, and DGC traffic between the
//! device and the offload target. This module implements the mechanism at
//! user level so the benches can count its messages and bytes against
//! Object-Swapping's cluster-granularity protocol.

use obiwan_heap::{ObjRef, ObjectKind, Oid, Value};
use obiwan_net::{DeviceId, SimNet};
use obiwan_replication::Process;
use obiwan_xml::{Element, Writer};
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};

/// Errors of the offload baseline.
#[derive(Debug, Clone, PartialEq)]
pub enum OffloadError {
    /// Heap failure.
    Heap(obiwan_heap::HeapError),
    /// Network / store failure.
    Net(obiwan_net::NetError),
    /// XML failure.
    Xml(obiwan_xml::Error),
    /// The object cannot be offloaded (not an application replica, or it
    /// has no global identity).
    NotOffloadable {
        /// The offending reference.
        obj: ObjRef,
    },
    /// The identity is not currently offloaded.
    NotRemote {
        /// The identity.
        oid: Oid,
    },
    /// The shared network mutex was poisoned by a panicking holder.
    NetLockPoisoned,
}

impl fmt::Display for OffloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OffloadError::Heap(e) => write!(f, "heap: {e}"),
            OffloadError::Net(e) => write!(f, "net: {e}"),
            OffloadError::Xml(e) => write!(f, "xml: {e}"),
            OffloadError::NotOffloadable { obj } => {
                write!(f, "object {obj} cannot be offloaded")
            }
            OffloadError::NotRemote { oid } => write!(f, "{oid} is not offloaded"),
            OffloadError::NetLockPoisoned => write!(f, "net mutex poisoned"),
        }
    }
}

impl std::error::Error for OffloadError {}

impl From<obiwan_heap::HeapError> for OffloadError {
    fn from(e: obiwan_heap::HeapError) -> Self {
        OffloadError::Heap(e)
    }
}

impl From<obiwan_net::NetError> for OffloadError {
    fn from(e: obiwan_net::NetError) -> Self {
        OffloadError::Net(e)
    }
}

impl From<obiwan_xml::Error> for OffloadError {
    fn from(e: obiwan_xml::Error) -> Self {
        OffloadError::Xml(e)
    }
}

/// Result alias for this module.
pub type Result<T> = std::result::Result<T, OffloadError>;

/// Cumulative cost counters of the offload protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OffloadStats {
    /// Objects shipped out.
    pub offloads: u64,
    /// Objects fetched back.
    pub fetches: u64,
    /// Control messages exchanged by the per-object DGC.
    pub dgc_messages: u64,
    /// Remote objects reclaimed by the DGC.
    pub dgc_reclaimed: u64,
    /// Reclamation instructions the server could not honour (the remote
    /// copy lingers until a later epoch retries).
    pub dgc_drop_failures: u64,
    /// Payload bytes shipped out.
    pub bytes_out: u64,
    /// Payload bytes fetched back.
    pub bytes_in: u64,
}

/// The device-side half of the per-object offload protocol.
pub struct Offloader {
    net: Arc<Mutex<SimNet>>,
    home: DeviceId,
    /// The offload server (which, unlike the paper's dumb XML stores, must
    /// run the object middleware — modelled here by it storing structured
    /// per-object records).
    target: DeviceId,
    /// Object table: identity → its local stand-in and the *scions* (the
    /// local objects the remote object references, which the DGC must keep
    /// alive on the remote object's behalf — the per-object bookkeeping
    /// the paper's design avoids).
    remote: HashMap<Oid, RemoteEntry>,
    stats: OffloadStats,
}

#[derive(Debug, Clone)]
struct RemoteEntry {
    surrogate: ObjRef,
    scions: Vec<ObjRef>,
    /// Identities the remote object references (remote-to-remote edges are
    /// traced by the DGC fixpoint).
    outgoing: Vec<Oid>,
}

impl fmt::Debug for Offloader {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Offloader")
            .field("remote_objects", &self.remote.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Offloader {
    /// Create an offloader shipping to `target`.
    pub fn new(net: Arc<Mutex<SimNet>>, home: DeviceId, target: DeviceId) -> Self {
        Offloader {
            net,
            home,
            target,
            remote: HashMap::new(),
            stats: OffloadStats::default(),
        }
    }

    /// Lock the shared network, mapping poisoning to a structured error.
    fn net_guard(&self) -> Result<std::sync::MutexGuard<'_, SimNet>> {
        self.net.lock().map_err(|_| OffloadError::NetLockPoisoned)
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> OffloadStats {
        self.stats
    }

    /// Number of objects currently remote.
    pub fn remote_objects(&self) -> usize {
        self.remote.len()
    }

    /// Offload one application object: serialize it, ship it, replace it
    /// with a surrogate (all holders patched), and detach the replica.
    /// Returns the shipped byte count.
    ///
    /// # Errors
    ///
    /// [`OffloadError::NotOffloadable`] for proxies / identity-less
    /// objects, plus network and heap errors.
    pub fn offload(&mut self, p: &mut Process, obj: ObjRef) -> Result<usize> {
        let (oid, class_name) = {
            let o = p.heap().get(obj)?;
            if o.kind() != ObjectKind::App || o.header().oid.0 == 0 {
                return Err(OffloadError::NotOffloadable { obj });
            }
            let class_name = p
                .universe()
                .registry
                .class(o.class())
                .map_err(OffloadError::from)?
                .name()
                .to_string();
            (o.header().oid, class_name)
        };
        // Record the outgoing references as DGC scions: the remote copy
        // still references these local objects, so they must stay alive.
        let scions: Vec<ObjRef> = p
            .heap()
            .get(obj)?
            .fields()
            .iter()
            .filter_map(|v| v.as_ref_value())
            .collect();
        let outgoing: Vec<Oid> = scions
            .iter()
            .filter_map(|&r| p.heap().get(r).ok().map(|o| o.header().oid))
            .filter(|oid| oid.0 != 0)
            .collect();
        for &scion in &scions {
            p.heap_mut().add_root(scion);
        }
        // Any scion pin another remote object held on *this* object becomes
        // a remote-to-remote edge: release the local pin.
        for entry in self.remote.values_mut() {
            if entry.scions.contains(&obj) {
                entry.scions.retain(|&r| r != obj);
                p.heap_mut().remove_root(obj);
            }
        }
        let xml = encode_object(p, obj, &class_name)?;
        let bytes = xml.len();
        {
            let mut net = self.net_guard()?;
            net.send_blob(
                self.home,
                self.target,
                &format!("obj-{}", oid.0),
                xml.into(),
            )?;
        }
        // Build the surrogate and patch every holder (object table update).
        let surrogate = p.ensure_fault_proxy(oid).map_err(|e| match e {
            obiwan_replication::ReplError::Heap(h) => OffloadError::Heap(h),
            other => OffloadError::NotOffloadable {
                obj: {
                    let _ = other;
                    obj
                },
            },
        })?;
        let holders: Vec<ObjRef> = p.heap().iter_live().collect();
        for holder in holders {
            if holder == surrogate {
                continue;
            }
            let n = p.heap().get(holder)?.fields().len();
            for idx in 0..n {
                if p.heap().get(holder)?.fields().get(idx) == Some(&Value::Ref(obj)) {
                    p.heap_mut()
                        .set_any_field(holder, idx, Value::Ref(surrogate))?;
                }
            }
        }
        let globals: Vec<String> = p
            .heap()
            .globals()
            .filter(|(_, v)| **v == Value::Ref(obj))
            .map(|(k, _)| k.to_string())
            .collect();
        for name in globals {
            p.set_global(name, Value::Ref(surrogate));
        }
        p.forget_replica(oid);
        self.remote.insert(
            oid,
            RemoteEntry {
                surrogate,
                scions,
                outgoing,
            },
        );
        self.stats.offloads += 1;
        self.stats.bytes_out += bytes as u64;
        p.collect();
        Ok(bytes)
    }

    /// Fetch a remote object back, rebuilding the replica and patching the
    /// surrogate's holders. Returns the fetched byte count.
    ///
    /// # Errors
    ///
    /// [`OffloadError::NotRemote`], network and heap errors.
    pub fn fetch_back(&mut self, p: &mut Process, oid: Oid) -> Result<usize> {
        let entry = self
            .remote
            .get(&oid)
            .cloned()
            .ok_or(OffloadError::NotRemote { oid })?;
        let surrogate = entry.surrogate;
        let key = format!("obj-{}", oid.0);
        let xml = {
            let mut net = self.net_guard()?;
            let xml = net.fetch_blob(self.home, self.target, &key)?;
            net.drop_blob(self.home, self.target, &key)?;
            xml
        };
        let bytes = xml.len();
        let xml = std::str::from_utf8(&xml)
            .map_err(|_| OffloadError::Xml(obiwan_xml::Error::structure("blob is not utf-8")))?;
        let replica = decode_object(p, xml)?;
        // Patch holders of the surrogate back to the replica.
        let holders: Vec<ObjRef> = p.heap().iter_live().collect();
        for holder in holders {
            if holder == replica {
                continue;
            }
            let n = p.heap().get(holder)?.fields().len();
            for idx in 0..n {
                if p.heap().get(holder)?.fields().get(idx) == Some(&Value::Ref(surrogate)) {
                    p.heap_mut()
                        .set_any_field(holder, idx, Value::Ref(replica))?;
                }
            }
        }
        let globals: Vec<String> = p
            .heap()
            .globals()
            .filter(|(_, v)| **v == Value::Ref(surrogate))
            .map(|(k, _)| k.to_string())
            .collect();
        for name in globals {
            p.set_global(name, Value::Ref(replica));
        }
        p.register_replica(oid, replica);
        // The object is local again: its references are ordinary heap
        // references, the scions are released.
        for scion in entry.scions {
            p.heap_mut().remove_root(scion);
        }
        self.remote.remove(&oid);
        self.stats.fetches += 1;
        self.stats.bytes_in += bytes as u64;
        Ok(bytes)
    }

    /// Run one DGC epoch: for every remote object, the device reports
    /// whether its surrogate is still reachable (one control message each —
    /// the per-object cost the paper's design avoids); unreachable remote
    /// objects are reclaimed on the offload server (one more message).
    /// Returns the number of messages exchanged.
    ///
    /// # Errors
    ///
    /// Network errors talking to the offload server.
    pub fn run_dgc_epoch(&mut self, p: &mut Process) -> Result<u64> {
        // Reachability of surrogates from globals, computed device-side.
        let mut reachable: std::collections::HashSet<ObjRef> = Default::default();
        let mut stack: Vec<ObjRef> = p
            .heap()
            .globals()
            .filter_map(|(_, v)| v.as_ref_value())
            .collect();
        while let Some(r) = stack.pop() {
            if !p.heap().is_live(r) || !reachable.insert(r) {
                continue;
            }
            if let Ok(o) = p.heap().get(r) {
                for v in o.fields() {
                    if let Value::Ref(n) = v {
                        stack.push(*n);
                    }
                }
            }
        }
        let mut messages = 0;
        // One liveness report per remote object, then a fixpoint over
        // remote-to-remote edges: a remote object is live if its surrogate
        // is locally reachable, or a live remote object references it.
        let mut live: std::collections::HashSet<Oid> = self
            .remote
            .iter()
            .filter(|(_, e)| p.heap().is_live(e.surrogate) && reachable.contains(&e.surrogate))
            .map(|(oid, _)| *oid)
            .collect();
        messages += self.remote.len() as u64;
        loop {
            let grown: Vec<Oid> = self
                .remote
                .iter()
                .filter(|(oid, _)| live.contains(oid))
                .flat_map(|(_, e)| e.outgoing.iter().copied())
                .filter(|oid| self.remote.contains_key(oid) && !live.contains(oid))
                .collect();
            if grown.is_empty() {
                break;
            }
            live.extend(grown);
        }
        let mut dead: Vec<Oid> = self
            .remote
            .keys()
            .filter(|oid| !live.contains(oid))
            .copied()
            .collect();
        dead.sort_unstable();
        for oid in &dead {
            // One reclamation instruction per dead remote object. A failed
            // drop is counted, not fatal: the per-object protocol has no
            // retry channel, so the copy lingers server-side until a later
            // epoch re-issues the instruction.
            messages += 1;
            let failed = {
                let mut net = self.net_guard()?;
                net.drop_blob(self.home, self.target, &format!("obj-{}", oid.0))
                    .is_err()
            };
            if failed {
                self.stats.dgc_drop_failures += 1;
            }
        }
        for oid in &dead {
            if let Some(entry) = self.remote.remove(oid) {
                // The remote object died: its scions are released.
                for scion in entry.scions {
                    p.heap_mut().remove_root(scion);
                }
            }
            self.stats.dgc_reclaimed += 1;
        }
        self.stats.dgc_messages += messages;
        Ok(messages)
    }
}

/// Serialize a single object (refs as identities — the object-table style
/// of \[6\], which requires every party to understand object structure).
fn encode_object(p: &Process, obj: ObjRef, class_name: &str) -> Result<String> {
    let o = p.heap().get(obj)?;
    let mut w = Writer::new().compact();
    w.begin("offloaded")?
        .attr("oid", o.header().oid.0.to_string())?
        .attr("class", class_name)?;
    for (i, v) in o.fields().iter().enumerate() {
        match v {
            Value::Null => continue,
            Value::Ref(r) => {
                let target_oid = p.heap().get(*r)?.header().oid;
                w.begin("field")?
                    .attr("i", i.to_string())?
                    .attr("kind", "oid")?
                    .attr("v", target_oid.0.to_string())?;
                w.end()?;
            }
            Value::Int(x) => {
                w.begin("field")?
                    .attr("i", i.to_string())?
                    .attr("kind", "int")?
                    .attr("v", x.to_string())?;
                w.end()?;
            }
            Value::Bytes(b) => {
                let hex: String = b.iter().map(|x| format!("{x:02x}")).collect();
                w.begin("field")?
                    .attr("i", i.to_string())?
                    .attr("kind", "bytes")?;
                w.text(&hex)?;
                w.end()?;
            }
            other => {
                w.begin("field")?
                    .attr("i", i.to_string())?
                    .attr("kind", "str")?;
                w.text(&other.to_string())?;
                w.end()?;
            }
        }
    }
    w.end()?;
    Ok(w.finish()?)
}

/// Rebuild a replica from [`encode_object`] output. References come back
/// as fault proxies / existing replicas resolved through the object table.
fn decode_object(p: &mut Process, xml: &str) -> Result<ObjRef> {
    let root = Element::parse(xml)?;
    let oid = Oid(root.parse_attr("oid")?);
    let class = p
        .universe()
        .registry
        .class_id(root.require_attr("class")?)?;
    let r = p.heap_mut().alloc(class, ObjectKind::App)?;
    p.heap_mut().get_mut(r)?.header_mut().oid = oid;
    for field in root.children_named("field") {
        let i: usize = field.parse_attr("i")?;
        let kind = field.require_attr("kind")?;
        let value =
            match kind {
                "oid" => {
                    let target = Oid(field.parse_attr("v")?);
                    match p.lookup_replica(target) {
                        Some(t) => Value::Ref(t),
                        None => Value::Ref(p.ensure_fault_proxy(target).map_err(|e| match e {
                            obiwan_replication::ReplError::Heap(h) => OffloadError::Heap(h),
                            _ => OffloadError::NotRemote { oid: target },
                        })?),
                    }
                }
                "int" => Value::Int(field.parse_attr("v")?),
                "bytes" => {
                    let text = field.text().trim();
                    let mut bytes = Vec::with_capacity(text.len() / 2);
                    for i in (0..text.len()).step_by(2) {
                        let pair = text.get(i..i + 2).ok_or_else(|| {
                            OffloadError::Xml(obiwan_xml::Error::structure("odd hex length"))
                        })?;
                        bytes.push(u8::from_str_radix(pair, 16).map_err(|_| {
                            OffloadError::Xml(obiwan_xml::Error::structure("bad hex"))
                        })?);
                    }
                    Value::Bytes(bytes.into())
                }
                _ => Value::from(field.text()),
            };
        p.heap_mut().set_any_field(r, i, value)?;
    }
    Ok(r)
}

#[cfg(test)]
mod tests {
    // Tests assert on known-good setups; panicking on failure is the point.
    #![allow(clippy::disallowed_methods)]
    use super::*;
    use obiwan_net::{DeviceKind, LinkSpec};
    use obiwan_replication::{standard_classes, ReplConfig, Server};

    fn setup(n: usize) -> (Process, Offloader, ObjRef) {
        let u = standard_classes();
        let mut server = Server::new(u.clone());
        let head = server.build_list("Node", n, 16).unwrap();
        let mut p = Process::new(
            u,
            server.into_shared(),
            1 << 22,
            ReplConfig::with_cluster_size(n),
        );
        let root = p.replicate_root(head).unwrap();
        p.set_global("head", Value::Ref(root));
        let mut net = SimNet::new();
        let pda = net.add_device("pda", DeviceKind::Pda, 0);
        let server_dev = net.add_device("offload-server", DeviceKind::Desktop, 1 << 20);
        net.connect(pda, server_dev, LinkSpec::bluetooth()).unwrap();
        let off = Offloader::new(Arc::new(Mutex::new(net)), pda, server_dev);
        (p, off, root)
    }

    #[test]
    fn offload_and_fetch_back_roundtrip() {
        let (mut p, mut off, root) = setup(5);
        let second = p.field_value(root, "next").unwrap().expect_ref().unwrap();
        let oid = p.heap().get(second).unwrap().header().oid;
        let shipped = off.offload(&mut p, second).unwrap();
        assert!(shipped > 0);
        assert_eq!(off.remote_objects(), 1);
        // The holder (root) now points at a surrogate.
        let via = p.field_value(root, "next").unwrap().expect_ref().unwrap();
        assert_eq!(p.heap().get(via).unwrap().kind(), ObjectKind::FaultProxy);
        // Fetch back; the chain is whole again.
        off.fetch_back(&mut p, oid).unwrap();
        let back = p.field_value(root, "next").unwrap().expect_ref().unwrap();
        assert_eq!(p.heap().get(back).unwrap().kind(), ObjectKind::App);
        assert_eq!(p.heap().get(back).unwrap().header().oid, oid);
        assert_eq!(p.invoke_i64(root, "length", vec![]).unwrap(), 5);
    }

    #[test]
    fn offload_rejects_proxies() {
        let (mut p, mut off, root) = setup(3);
        let mw = p.universe().middleware;
        let fp = p
            .heap_mut()
            .alloc(mw.fault_proxy, ObjectKind::FaultProxy)
            .unwrap();
        assert!(matches!(
            off.offload(&mut p, fp),
            Err(OffloadError::NotOffloadable { .. })
        ));
        let _ = root;
    }

    #[test]
    fn dgc_costs_one_message_per_remote_object() {
        let (mut p, mut off, root) = setup(6);
        // Offload nodes 3..6 (walk the chain first to get handles).
        let mut handles = vec![root];
        for _ in 0..5 {
            let next = p
                .field_value(*handles.last().unwrap(), "next")
                .unwrap()
                .expect_ref()
                .unwrap();
            handles.push(next);
        }
        for &h in &handles[3..6] {
            off.offload(&mut p, h).unwrap();
        }
        assert_eq!(off.remote_objects(), 3);
        let messages = off.run_dgc_epoch(&mut p).unwrap();
        assert_eq!(messages, 3, "one liveness report per remote object");
        // Sever the chain before the offloaded tail: surrogates die.
        let cut = handles[2];
        p.set_field_value(cut, "next", Value::Null).unwrap();
        p.collect();
        let messages = off.run_dgc_epoch(&mut p).unwrap();
        // 3 liveness reports; at least the directly-referenced surrogate is
        // unreachable now and costs a reclamation message.
        assert!(messages > 3, "got {messages}");
        assert!(off.stats().dgc_reclaimed >= 1);
    }

    #[test]
    fn stats_accumulate_bytes() {
        let (mut p, mut off, root) = setup(4);
        let second = p.field_value(root, "next").unwrap().expect_ref().unwrap();
        let oid = p.heap().get(second).unwrap().header().oid;
        off.offload(&mut p, second).unwrap();
        off.fetch_back(&mut p, oid).unwrap();
        let s = off.stats();
        assert_eq!(s.offloads, 1);
        assert_eq!(s.fetches, 1);
        assert!(s.bytes_out > 0 && s.bytes_in > 0);
    }
}
