//! Related-work baselines the paper argues against (§5 and §6),
//! implemented so the benchmarks can quantify the claimed trade-offs:
//!
//! * [`naive`] — the *naive* design the paper contrasts in §5: **one proxy
//!   per object**, every reference mediated. "Common application objects
//!   are small. So, this could potentially double memory occupation when
//!   fully-loaded … even when all objects were swapped, the proxies would
//!   still remain."
//! * [`offload`] — the surrogate-based per-object offloading of
//!   Messer et al. / Chen et al. (\[6, 1\]): objects migrate individually
//!   to a nearby *server that must run the middleware*, object tables
//!   track remote residency, and a DGC protocol exchanges liveness
//!   messages per object — the infrastructure cost the paper avoids.
//! * [`compress`] — the heap-compression approach (\[2, 3, 14\]): swapped
//!   clusters are compressed with [`lz`] into an in-memory pool instead of
//!   leaving the device, trading CPU for memory and shrinking the heap
//!   available to the application by the pool size.
//!
//! All baselines reuse the same substrates (`obiwan-heap`, `obiwan-net`,
//! the codec) so the comparison isolates the *policy*, not incidental
//! implementation differences.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compress;
pub mod lz;
pub mod naive;
pub mod offload;
