//! The naive one-proxy-per-object baseline (paper §5).
//!
//! "Our proposed solution also has several benefits over a *naive* one that
//! would have one proxy per each object and all references mediated by
//! them. Common application objects are small. So, this could potentially
//! double memory occupation when fully-loaded … This approach would also
//! inevitably impose a higher performance penalty, due to indirections.
//! Furthermore, even when all objects were swapped, the proxies would still
//! remain."
//!
//! Observation: the naive design is exactly the degenerate point of the
//! swap-cluster mechanism — **a swap-cluster of one object**. With
//! `cluster_size = 1` every object forms its own swap-cluster, every
//! reference crosses a boundary (one proxy per referenced object, every
//! invocation indirected), and swapping any object leaves its proxy (plus a
//! replacement-object) behind. [`naive_middleware`] builds that
//! configuration on the unchanged machinery so benchmarks compare policies,
//! not implementations; [`heap_breakdown`] reports the memory split the
//! paper's argument is about.

use obiwan_core::Middleware;
use obiwan_heap::ObjectKind;
use obiwan_replication::Server;

/// Build a middleware in the naive per-object-proxy configuration.
///
/// # Examples
///
/// ```
/// use obiwan_baselines::naive::{heap_breakdown, naive_middleware};
/// use obiwan_replication::{standard_classes, Server};
///
/// # fn main() -> Result<(), obiwan_core::SwapError> {
/// let mut server = Server::new(standard_classes());
/// let head = server.build_list("Node", 50, 16)?;
/// let mut mw = naive_middleware(server, 1 << 20);
/// let root = mw.replicate_root(head)?;
/// mw.set_global("head", obiwan_heap::Value::Ref(root));
/// mw.invoke_i64(root, "length", vec![])?;
/// let b = heap_breakdown(&mw);
/// assert_eq!(b.app_objects, 50);
/// assert!(b.proxies >= 49, "one proxy per referenced object");
/// # Ok(())
/// # }
/// ```
pub fn naive_middleware(server: Server, device_memory: usize) -> Middleware {
    Middleware::builder()
        .cluster_size(1)
        .clusters_per_swap_cluster(1)
        .device_memory(device_memory)
        .no_builtin_policies()
        .build(server)
}

/// Memory composition of a device heap, for the §5 memory argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HeapBreakdown {
    /// Live application replicas.
    pub app_objects: usize,
    /// Bytes they occupy.
    pub app_bytes: usize,
    /// Live swap-cluster-proxies.
    pub proxies: usize,
    /// Bytes they occupy.
    pub proxy_bytes: usize,
    /// Live replacement objects.
    pub replacements: usize,
    /// Bytes they occupy.
    pub replacement_bytes: usize,
    /// Live fault proxies.
    pub fault_proxies: usize,
    /// Bytes they occupy.
    pub fault_proxy_bytes: usize,
}

impl HeapBreakdown {
    /// Middleware bytes (proxies + replacements + fault proxies) as a
    /// fraction of application bytes; the paper's "could potentially double
    /// memory occupation" is `overhead_ratio ≈ 1.0` for the naive design.
    pub fn overhead_ratio(&self) -> f64 {
        if self.app_bytes == 0 {
            return 0.0;
        }
        (self.proxy_bytes + self.replacement_bytes + self.fault_proxy_bytes) as f64
            / self.app_bytes as f64
    }
}

/// Walk the live heap and classify every object.
pub fn heap_breakdown(mw: &Middleware) -> HeapBreakdown {
    let heap = mw.process().heap();
    let mut b = HeapBreakdown::default();
    // `iter_live` only yields live refs, so the lookup cannot miss;
    // tolerate a miss anyway rather than panic inside a measurement.
    for o in heap.iter_live().filter_map(|r| heap.get(r).ok()) {
        let size = o.size();
        match o.kind() {
            ObjectKind::App => {
                b.app_objects += 1;
                b.app_bytes += size;
            }
            ObjectKind::SwapProxy => {
                b.proxies += 1;
                b.proxy_bytes += size;
            }
            ObjectKind::Replacement => {
                b.replacements += 1;
                b.replacement_bytes += size;
            }
            ObjectKind::FaultProxy => {
                b.fault_proxies += 1;
                b.fault_proxy_bytes += size;
            }
        }
    }
    b
}

#[cfg(test)]
mod tests {
    // Tests assert on known-good setups; panicking on failure is the point.
    #![allow(clippy::disallowed_methods)]
    use super::*;
    use obiwan_heap::Value;
    use obiwan_replication::standard_classes;

    fn warmed(n: usize) -> Middleware {
        let mut server = Server::new(standard_classes());
        let head = server.build_list("Node", n, 16).unwrap();
        let mut mw = naive_middleware(server, 1 << 22);
        let root = mw.replicate_root(head).unwrap();
        mw.set_global("head", Value::Ref(root));
        assert_eq!(mw.invoke_i64(root, "length", vec![]).unwrap(), n as i64);
        mw
    }

    #[test]
    fn every_object_is_its_own_swap_cluster() {
        let mw = warmed(20);
        let m = mw.manager();
        assert_eq!(m.loaded_clusters().len(), 20);
        for sc in m.loaded_clusters() {
            assert_eq!(m.cluster(sc).unwrap().member_count(), 1);
        }
    }

    #[test]
    fn proxy_population_matches_paper_argument() {
        let mw = warmed(40);
        let b = heap_breakdown(&mw);
        assert_eq!(b.app_objects, 40);
        // Every list edge plus the root reference is mediated.
        assert!(b.proxies >= 40, "got {}", b.proxies);
        // 64-byte app objects vs ~88-byte proxies: overhead comparable to
        // (or worse than) the objects themselves — "could potentially
        // double memory occupation".
        assert!(
            b.overhead_ratio() > 0.8,
            "overhead ratio {}",
            b.overhead_ratio()
        );
    }

    #[test]
    fn proxies_remain_after_swapping_everything() {
        let mut mw = warmed(20);
        let all: Vec<u32> = mw.manager().loaded_clusters();
        for sc in all {
            mw.swap_out(sc).unwrap();
        }
        mw.run_gc().unwrap();
        let b = heap_breakdown(&mw);
        assert_eq!(b.app_objects, 0, "all replicas detached");
        assert!(
            b.proxies + b.replacements >= 20,
            "the mediation structures remain: {} proxies, {} replacements",
            b.proxies,
            b.replacements
        );
    }

    #[test]
    fn traversal_still_works_in_naive_mode() {
        let mut mw = warmed(30);
        let root = mw.global("head").unwrap().expect_ref().unwrap();
        mw.swap_out(3).unwrap();
        assert_eq!(mw.invoke_i64(root, "length", vec![]).unwrap(), 30);
    }
}
