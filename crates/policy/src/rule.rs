//! Rules: conditions over event attributes, actions, categories.

use crate::PolicyEvent;
use std::fmt;

/// Where a policy comes from — the paper's "policies are stored and
/// categorized by nature" (user, machine, application, domain). Categories
/// impose precedence: machine policies (device health) outrank user wishes,
/// which outrank application and then domain defaults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PolicyCategory {
    /// Device-integrity policies (highest precedence).
    Machine,
    /// User-stated preferences.
    User,
    /// Application-provided policies.
    Application,
    /// Organization/domain-wide defaults (lowest precedence).
    Domain,
}

impl PolicyCategory {
    /// Parse from the XML dialect's attribute value.
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "machine" => PolicyCategory::Machine,
            "user" => PolicyCategory::User,
            "application" => PolicyCategory::Application,
            "domain" => PolicyCategory::Domain,
            _ => return None,
        })
    }

    /// Dialect name.
    pub fn name(self) -> &'static str {
        match self {
            PolicyCategory::Machine => "machine",
            PolicyCategory::User => "user",
            PolicyCategory::Application => "application",
            PolicyCategory::Domain => "domain",
        }
    }
}

impl fmt::Display for PolicyCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A boolean predicate over an event's named attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Condition {
    /// Always true.
    Always,
    /// `attr >= value`; false when the attribute is absent.
    AttrGe(String, i64),
    /// `attr <= value`; false when the attribute is absent.
    AttrLe(String, i64),
    /// `attr == value`; false when the attribute is absent.
    AttrEq(String, i64),
    /// Negation.
    Not(Box<Condition>),
    /// Conjunction (true when empty).
    All(Vec<Condition>),
    /// Disjunction (false when empty).
    Any(Vec<Condition>),
}

impl Condition {
    /// Evaluate against an event.
    pub fn matches(&self, event: &PolicyEvent) -> bool {
        match self {
            Condition::Always => true,
            Condition::AttrGe(a, v) => event.attr(a).map(|x| x >= *v).unwrap_or(false),
            Condition::AttrLe(a, v) => event.attr(a).map(|x| x <= *v).unwrap_or(false),
            Condition::AttrEq(a, v) => event.attr(a).map(|x| x == *v).unwrap_or(false),
            Condition::Not(c) => !c.matches(event),
            Condition::All(cs) => cs.iter().all(|c| c.matches(event)),
            Condition::Any(cs) => cs.iter().any(|c| c.matches(event)),
        }
    }
}

/// An action a fired rule requests from the middleware.
///
/// The engine does not execute actions itself — the middleware interprets
/// them, keeping the policy layer free of dependencies on the swap layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Swap out `count` victim swap-clusters (selection is the swapping
    /// manager's business).
    SwapOutVictims {
        /// How many victims to evict.
        count: u32,
    },
    /// Run a local garbage collection.
    RunGc,
    /// Adjust the replication cluster size by `delta` objects (runtime
    /// adaptability of the paper's "adaptable size").
    AdjustClusterSize {
        /// Signed change in objects-per-cluster.
        delta: i64,
    },
    /// Prefer the named device kind when choosing a swap target.
    PreferDeviceKind {
        /// Device kind name (e.g. "laptop").
        kind: String,
    },
    /// Run the placement repair sweep: re-replicate every under-held
    /// swapped-out blob from a surviving holder back up to the configured
    /// replication factor.
    RepairPlacements,
    /// Emit a log line (examples and tests).
    Log {
        /// The message.
        message: String,
    },
}

impl Action {
    /// The stable kebab-case name of the action kind — the vocabulary the
    /// swap-lifecycle trace records pump decisions under.
    pub fn name(&self) -> &'static str {
        match self {
            Action::SwapOutVictims { .. } => "swap-out-victims",
            Action::RunGc => "run-gc",
            Action::AdjustClusterSize { .. } => "adjust-cluster-size",
            Action::PreferDeviceKind { .. } => "prefer-device-kind",
            Action::RepairPlacements => "repair-placements",
            Action::Log { .. } => "log",
        }
    }
}

/// A complete policy rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// Unique rule id.
    pub id: String,
    /// Category (precedence class).
    pub category: PolicyCategory,
    /// Priority within the category (higher fires first).
    pub priority: i32,
    /// Event name this rule listens to.
    pub on: String,
    /// Guard condition.
    pub when: Condition,
    /// Actions fired when the guard passes.
    pub then: Vec<Action>,
}

impl Rule {
    /// Whether this rule fires for the event.
    pub fn fires(&self, event: &PolicyEvent) -> bool {
        self.on == event.name() && self.when.matches(event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pressure(pct: i64) -> PolicyEvent {
        PolicyEvent::MemoryPressure {
            occupancy_pct: pct,
            bytes_used: pct * 10,
            capacity: 1000,
        }
    }

    #[test]
    fn conditions_compose() {
        let c = Condition::All(vec![
            Condition::AttrGe("occupancy-pct".into(), 80),
            Condition::Not(Box::new(Condition::AttrGe("occupancy-pct".into(), 95))),
        ]);
        assert!(!c.matches(&pressure(70)));
        assert!(c.matches(&pressure(85)));
        assert!(!c.matches(&pressure(99)));
    }

    #[test]
    fn absent_attribute_fails_comparisons() {
        let c = Condition::AttrGe("no-such".into(), 0);
        assert!(!c.matches(&pressure(50)));
        // ...but Not() of an absent attr is true.
        assert!(Condition::Not(Box::new(c)).matches(&pressure(50)));
    }

    #[test]
    fn empty_all_and_any() {
        assert!(Condition::All(vec![]).matches(&pressure(1)));
        assert!(!Condition::Any(vec![]).matches(&pressure(1)));
    }

    #[test]
    fn rule_fires_on_matching_event_name_only() {
        let r = Rule {
            id: "r".into(),
            category: PolicyCategory::Machine,
            priority: 0,
            on: "memory-pressure".into(),
            when: Condition::Always,
            then: vec![Action::RunGc],
        };
        assert!(r.fires(&pressure(1)));
        assert!(!r.fires(&PolicyEvent::SwappedIn { swap_cluster: 1 }));
    }

    #[test]
    fn category_precedence_order() {
        assert!(PolicyCategory::Machine < PolicyCategory::User);
        assert!(PolicyCategory::User < PolicyCategory::Application);
        assert!(PolicyCategory::Application < PolicyCategory::Domain);
    }

    #[test]
    fn category_names_roundtrip() {
        for c in [
            PolicyCategory::Machine,
            PolicyCategory::User,
            PolicyCategory::Application,
            PolicyCategory::Domain,
        ] {
            assert_eq!(PolicyCategory::from_name(c.name()), Some(c));
        }
        assert_eq!(PolicyCategory::from_name("galaxy"), None);
    }
}
