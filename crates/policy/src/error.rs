//! Error type for policy parsing and evaluation.

use std::fmt;

/// Error produced while loading or evaluating policies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyError {
    /// The XML document failed to parse.
    Xml(obiwan_xml::Error),
    /// The document parsed but does not follow the policy dialect.
    Dialect {
        /// Description of the violation.
        message: String,
    },
    /// A rule id appears more than once.
    DuplicateRule {
        /// The duplicated id.
        id: String,
    },
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyError::Xml(e) => write!(f, "policy XML: {e}"),
            PolicyError::Dialect { message } => write!(f, "policy dialect: {message}"),
            PolicyError::DuplicateRule { id } => write!(f, "duplicate policy id `{id}`"),
        }
    }
}

impl std::error::Error for PolicyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PolicyError::Xml(e) => Some(e),
            _ => None,
        }
    }
}

impl From<obiwan_xml::Error> for PolicyError {
    fn from(e: obiwan_xml::Error) -> Self {
        PolicyError::Xml(e)
    }
}

impl PolicyError {
    /// Construct a dialect error from anything displayable.
    pub fn dialect(message: impl fmt::Display) -> Self {
        PolicyError::Dialect {
            message: message.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xml_errors_chain_as_source() {
        let e = PolicyError::from(obiwan_xml::Error::structure("boom"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("boom"));
    }
}
