//! The policy engine: rule storage and evaluation.

use crate::rule::Action;
use crate::{PolicyError, PolicyEvent, Result, Rule};

/// Holds the loaded rules and evaluates events against them.
///
/// Rules fire in deterministic order: by [`crate::PolicyCategory`]
/// precedence (machine first), then descending priority, then rule id.
/// All matching rules contribute their actions (the middleware deduplicates
/// semantically where needed).
///
/// See the [crate-level documentation](crate) for an example.
#[derive(Debug, Default)]
pub struct PolicyEngine {
    rules: Vec<Rule>,
    evaluations: u64,
    fired: u64,
}

impl PolicyEngine {
    /// An engine with no rules.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one rule.
    ///
    /// # Errors
    ///
    /// [`PolicyError::DuplicateRule`] when the id is already present.
    pub fn add_rule(&mut self, rule: Rule) -> Result<()> {
        if self.rules.iter().any(|r| r.id == rule.id) {
            return Err(PolicyError::DuplicateRule { id: rule.id });
        }
        self.rules.push(rule);
        self.sort();
        Ok(())
    }

    /// Load rules from the XML dialect (see the crate-level documentation
    /// for the grammar) and add them.
    ///
    /// # Errors
    ///
    /// XML parse errors, dialect violations, duplicate ids.
    pub fn load_xml(&mut self, xml: &str) -> Result<()> {
        for rule in crate::xml_rules::parse_policies(xml)? {
            self.add_rule(rule)?;
        }
        Ok(())
    }

    /// Remove a rule by id, returning whether it existed.
    pub fn remove_rule(&mut self, id: &str) -> bool {
        let before = self.rules.len();
        self.rules.retain(|r| r.id != id);
        self.rules.len() != before
    }

    /// The loaded rules in evaluation order.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Evaluate an event: all firing rules' actions, in rule order.
    pub fn evaluate(&mut self, event: &PolicyEvent) -> Vec<Action> {
        self.evaluations += 1;
        let mut actions = Vec::new();
        for rule in &self.rules {
            if rule.fires(event) {
                self.fired += 1;
                actions.extend(rule.then.iter().cloned());
            }
        }
        actions
    }

    /// `(events evaluated, rules fired)` counters.
    pub fn counters(&self) -> (u64, u64) {
        (self.evaluations, self.fired)
    }

    fn sort(&mut self) {
        self.rules.sort_by(|a, b| {
            a.category
                .cmp(&b.category)
                .then(b.priority.cmp(&a.priority))
                .then(a.id.cmp(&b.id))
        });
    }
}

#[cfg(test)]
mod tests {
    // Tests assert on known-good setups; panicking on failure is the point.
    #![allow(clippy::disallowed_methods)]
    use super::*;
    use crate::{Condition, PolicyCategory};

    fn rule(id: &str, cat: PolicyCategory, prio: i32, action: Action) -> Rule {
        Rule {
            id: id.into(),
            category: cat,
            priority: prio,
            on: "memory-pressure".into(),
            when: Condition::Always,
            then: vec![action],
        }
    }

    fn pressure() -> PolicyEvent {
        PolicyEvent::MemoryPressure {
            occupancy_pct: 90,
            bytes_used: 900,
            capacity: 1000,
        }
    }

    #[test]
    fn actions_fire_in_category_then_priority_order() {
        let mut e = PolicyEngine::new();
        e.add_rule(rule("app", PolicyCategory::Application, 99, Action::RunGc))
            .unwrap();
        e.add_rule(rule(
            "mach",
            PolicyCategory::Machine,
            0,
            Action::SwapOutVictims { count: 1 },
        ))
        .unwrap();
        e.add_rule(rule(
            "user-hi",
            PolicyCategory::User,
            5,
            Action::AdjustClusterSize { delta: -10 },
        ))
        .unwrap();
        e.add_rule(rule(
            "user-lo",
            PolicyCategory::User,
            1,
            Action::AdjustClusterSize { delta: 10 },
        ))
        .unwrap();
        let actions = e.evaluate(&pressure());
        assert_eq!(
            actions,
            vec![
                Action::SwapOutVictims { count: 1 },
                Action::AdjustClusterSize { delta: -10 },
                Action::AdjustClusterSize { delta: 10 },
                Action::RunGc,
            ]
        );
    }

    #[test]
    fn duplicate_ids_are_rejected() {
        let mut e = PolicyEngine::new();
        e.add_rule(rule("x", PolicyCategory::User, 0, Action::RunGc))
            .unwrap();
        assert!(matches!(
            e.add_rule(rule("x", PolicyCategory::Machine, 0, Action::RunGc)),
            Err(PolicyError::DuplicateRule { .. })
        ));
    }

    #[test]
    fn remove_rule_by_id() {
        let mut e = PolicyEngine::new();
        e.add_rule(rule("x", PolicyCategory::User, 0, Action::RunGc))
            .unwrap();
        assert!(e.remove_rule("x"));
        assert!(!e.remove_rule("x"));
        assert!(e.evaluate(&pressure()).is_empty());
    }

    #[test]
    fn counters_track_evaluations_and_firings() {
        let mut e = PolicyEngine::new();
        e.add_rule(rule("x", PolicyCategory::User, 0, Action::RunGc))
            .unwrap();
        e.evaluate(&pressure());
        e.evaluate(&PolicyEvent::SwappedIn { swap_cluster: 1 }); // no match
        assert_eq!(e.counters(), (2, 1));
    }
}
