//! Built-in policy sets.

use crate::rule::Action;
use crate::{Condition, PolicyCategory, Rule};

/// The default machine policies reproducing the paper's prototypical
/// scenario: "From time to time, the memory occupied ... reaches a
/// threshold value ... At those moments, the OBIWAN middleware, evaluating
/// the policies loaded, decides to swap-out a set of objects to nearby
/// devices, if there are any."
///
/// * at `high_pct` occupancy: collect garbage, then swap out one victim;
/// * on outright allocation failure: swap out two victims and collect;
/// * when a blob holder departs, or a device (re)appears while blobs may
///   be under-held: run the placement repair sweep (a no-op whenever every
///   swapped-out blob already has its full complement of holders).
pub fn default_swap_policies(high_pct: u8) -> Vec<Rule> {
    vec![
        Rule {
            id: "builtin-memory-pressure".into(),
            category: PolicyCategory::Machine,
            priority: 10,
            on: "memory-pressure".into(),
            when: Condition::AttrGe("occupancy-pct".into(), high_pct as i64),
            then: vec![Action::RunGc, Action::SwapOutVictims { count: 1 }],
        },
        Rule {
            id: "builtin-allocation-failed".into(),
            category: PolicyCategory::Machine,
            priority: 20,
            on: "allocation-failed".into(),
            when: Condition::Always,
            then: vec![Action::SwapOutVictims { count: 2 }, Action::RunGc],
        },
        Rule {
            id: "builtin-holder-lost".into(),
            category: PolicyCategory::Machine,
            priority: 15,
            on: "holder-lost".into(),
            when: Condition::Always,
            then: vec![Action::RepairPlacements],
        },
        Rule {
            id: "builtin-holder-returned".into(),
            category: PolicyCategory::Machine,
            priority: 5,
            on: "device-discovered".into(),
            when: Condition::Always,
            then: vec![Action::RepairPlacements],
        },
    ]
}

#[cfg(test)]
mod tests {
    // Tests assert on known-good setups; panicking on failure is the point.
    #![allow(clippy::disallowed_methods)]
    use super::*;
    use crate::{PolicyEngine, PolicyEvent};

    #[test]
    fn builtin_policies_fire_on_pressure_and_oom() {
        let mut engine = PolicyEngine::new();
        for rule in default_swap_policies(85) {
            engine.add_rule(rule).unwrap();
        }
        let pressure = PolicyEvent::MemoryPressure {
            occupancy_pct: 90,
            bytes_used: 0,
            capacity: 0,
        };
        assert_eq!(
            engine.evaluate(&pressure),
            vec![Action::RunGc, Action::SwapOutVictims { count: 1 }]
        );
        let oom = PolicyEvent::AllocationFailed { requested: 64 };
        assert_eq!(
            engine.evaluate(&oom),
            vec![Action::SwapOutVictims { count: 2 }, Action::RunGc]
        );
    }

    #[test]
    fn pressure_below_threshold_is_ignored() {
        let mut engine = PolicyEngine::new();
        for rule in default_swap_policies(85) {
            engine.add_rule(rule).unwrap();
        }
        let mild = PolicyEvent::MemoryPressure {
            occupancy_pct: 60,
            bytes_used: 0,
            capacity: 0,
        };
        assert!(engine.evaluate(&mild).is_empty());
    }

    #[test]
    fn holder_churn_triggers_the_repair_sweep() {
        let mut engine = PolicyEngine::new();
        for rule in default_swap_policies(85) {
            engine.add_rule(rule).unwrap();
        }
        let lost = PolicyEvent::HolderLost {
            swap_cluster: 2,
            device: 3,
            holders_left: 1,
        };
        assert_eq!(engine.evaluate(&lost), vec![Action::RepairPlacements]);
        let back = PolicyEvent::DeviceDiscovered {
            device: 3,
            free_storage: 1024,
        };
        assert_eq!(engine.evaluate(&back), vec![Action::RepairPlacements]);
    }
}
