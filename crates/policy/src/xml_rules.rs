//! The XML policy dialect (the paper: "Policies that deploy the various
//! modules are coded in XML").
//!
//! Grammar:
//!
//! ```xml
//! <policies>
//!   <policy id="low-memory" category="machine" priority="10">
//!     <on event="memory-pressure"/>
//!     <when attr="occupancy-pct" ge="85"/>        <!-- optional; may repeat (AND) -->
//!     <then>
//!       <swap-out victims="2"/>
//!       <gc/>
//!       <adjust-cluster-size delta="-10"/>
//!       <prefer-device kind="laptop"/>
//!       <log message="pressure handled"/>
//!     </then>
//!   </policy>
//! </policies>
//! ```
//!
//! `<when>` supports exactly one of `ge` / `le` / `eq` per element; multiple
//! `<when>` elements conjoin. `<any>` wraps alternatives:
//!
//! ```xml
//! <any>
//!   <when attr="occupancy-pct" ge="95"/>
//!   <when attr="free-storage" le="1024"/>
//! </any>
//! ```

use crate::rule::Action;
use crate::{Condition, PolicyCategory, PolicyError, Result, Rule};
use obiwan_xml::Element;

/// Parse a `<policies>` document into rules.
pub(crate) fn parse_policies(xml: &str) -> Result<Vec<Rule>> {
    let root = Element::parse(xml)?;
    if root.name() != "policies" {
        return Err(PolicyError::dialect(format!(
            "root element must be <policies>, found <{}>",
            root.name()
        )));
    }
    root.children_named("policy").map(parse_policy).collect()
}

fn parse_policy(el: &Element) -> Result<Rule> {
    let id = el
        .require_attr("id")
        .map_err(PolicyError::from)?
        .to_string();
    let category = match el.attr("category") {
        Some(c) => PolicyCategory::from_name(c)
            .ok_or_else(|| PolicyError::dialect(format!("unknown category `{c}` in `{id}`")))?,
        None => PolicyCategory::Application,
    };
    let priority = match el.attr("priority") {
        Some(p) => p
            .parse()
            .map_err(|e| PolicyError::dialect(format!("priority in `{id}`: {e}")))?,
        None => 0,
    };
    let on = el
        .require_child("on")
        .and_then(|on| on.require_attr("event"))
        .map_err(PolicyError::from)?
        .to_string();
    let mut conjuncts = Vec::new();
    for child in el.children() {
        match child.name() {
            "when" => conjuncts.push(parse_when(child, &id)?),
            "any" => {
                let alternatives: Vec<Condition> = child
                    .children_named("when")
                    .map(|w| parse_when(w, &id))
                    .collect::<Result<_>>()?;
                conjuncts.push(Condition::Any(alternatives));
            }
            _ => {}
        }
    }
    let when = match (conjuncts.pop(), conjuncts.is_empty()) {
        (None, _) => Condition::Always,
        (Some(only), true) => only,
        (Some(last), false) => {
            conjuncts.push(last);
            Condition::All(conjuncts)
        }
    };
    let then_el = el.require_child("then").map_err(PolicyError::from)?;
    let then: Vec<Action> = then_el
        .children()
        .iter()
        .map(|a| parse_action(a, &id))
        .collect::<Result<_>>()?;
    if then.is_empty() {
        return Err(PolicyError::dialect(format!(
            "policy `{id}` has an empty <then>"
        )));
    }
    Ok(Rule {
        id,
        category,
        priority,
        on,
        when,
        then,
    })
}

fn parse_when(el: &Element, rule_id: &str) -> Result<Condition> {
    let attr = el
        .require_attr("attr")
        .map_err(PolicyError::from)?
        .to_string();
    let comparisons: Vec<(&str, &str)> = ["ge", "le", "eq"]
        .iter()
        .filter_map(|op| el.attr(op).map(|v| (*op, v)))
        .collect();
    let [(op, raw)] = comparisons.as_slice() else {
        return Err(PolicyError::dialect(format!(
            "<when> in `{rule_id}` must carry exactly one of ge/le/eq"
        )));
    };
    let value: i64 = raw
        .parse()
        .map_err(|e| PolicyError::dialect(format!("<when {op}=\"{raw}\"> in `{rule_id}`: {e}")))?;
    Ok(match *op {
        "ge" => Condition::AttrGe(attr, value),
        "le" => Condition::AttrLe(attr, value),
        _ => Condition::AttrEq(attr, value),
    })
}

fn parse_action(el: &Element, rule_id: &str) -> Result<Action> {
    Ok(match el.name() {
        "swap-out" => Action::SwapOutVictims {
            count: el.parse_attr("victims").map_err(PolicyError::from)?,
        },
        "gc" => Action::RunGc,
        "adjust-cluster-size" => Action::AdjustClusterSize {
            delta: el.parse_attr("delta").map_err(PolicyError::from)?,
        },
        "prefer-device" => Action::PreferDeviceKind {
            kind: el
                .require_attr("kind")
                .map_err(PolicyError::from)?
                .to_string(),
        },
        "repair-placements" => Action::RepairPlacements,
        "log" => Action::Log {
            message: el
                .require_attr("message")
                .map_err(PolicyError::from)?
                .to_string(),
        },
        other => {
            return Err(PolicyError::dialect(format!(
                "unknown action <{other}> in `{rule_id}`"
            )))
        }
    })
}

#[cfg(test)]
mod tests {
    // Tests assert on known-good setups; panicking on failure is the point.
    #![allow(clippy::disallowed_methods)]
    use super::*;
    use crate::PolicyEvent;

    #[test]
    fn full_dialect_parses() {
        let rules = parse_policies(
            r#"<policies>
                 <policy id="p1" category="machine" priority="7">
                   <on event="memory-pressure"/>
                   <when attr="occupancy-pct" ge="85"/>
                   <when attr="occupancy-pct" le="99"/>
                   <then>
                     <swap-out victims="2"/>
                     <gc/>
                     <adjust-cluster-size delta="-10"/>
                     <prefer-device kind="laptop"/>
                     <repair-placements/>
                     <log message="hi"/>
                   </then>
                 </policy>
               </policies>"#,
        )
        .unwrap();
        assert_eq!(rules.len(), 1);
        let r = &rules[0];
        assert_eq!(r.id, "p1");
        assert_eq!(r.category, PolicyCategory::Machine);
        assert_eq!(r.priority, 7);
        assert_eq!(r.then.len(), 6);
        assert!(r.fires(&PolicyEvent::MemoryPressure {
            occupancy_pct: 90,
            bytes_used: 0,
            capacity: 0
        }));
        assert!(!r.fires(&PolicyEvent::MemoryPressure {
            occupancy_pct: 100,
            bytes_used: 0,
            capacity: 0
        }));
    }

    #[test]
    fn any_block_is_disjunction() {
        let rules = parse_policies(
            r#"<policies>
                 <policy id="p">
                   <on event="memory-pressure"/>
                   <any>
                     <when attr="occupancy-pct" ge="95"/>
                     <when attr="bytes-used" ge="100000"/>
                   </any>
                   <then><gc/></then>
                 </policy>
               </policies>"#,
        )
        .unwrap();
        let r = &rules[0];
        let hit = PolicyEvent::MemoryPressure {
            occupancy_pct: 10,
            bytes_used: 200_000,
            capacity: 0,
        };
        let miss = PolicyEvent::MemoryPressure {
            occupancy_pct: 10,
            bytes_used: 10,
            capacity: 0,
        };
        assert!(r.fires(&hit));
        assert!(!r.fires(&miss));
    }

    #[test]
    fn defaults_apply_when_attributes_omitted() {
        let rules = parse_policies(
            r#"<policies>
                 <policy id="p"><on event="x"/><then><gc/></then></policy>
               </policies>"#,
        )
        .unwrap();
        assert_eq!(rules[0].category, PolicyCategory::Application);
        assert_eq!(rules[0].priority, 0);
        assert_eq!(rules[0].when, Condition::Always);
    }

    #[test]
    fn dialect_violations_are_reported() {
        // wrong root
        assert!(matches!(
            parse_policies("<rules/>"),
            Err(PolicyError::Dialect { .. })
        ));
        // missing <on>
        assert!(parse_policies(
            r#"<policies><policy id="p"><then><gc/></then></policy></policies>"#
        )
        .is_err());
        // empty <then>
        assert!(matches!(
            parse_policies(
                r#"<policies><policy id="p"><on event="x"/><then></then></policy></policies>"#
            ),
            Err(PolicyError::Dialect { .. })
        ));
        // two comparison ops on one <when>
        assert!(matches!(
            parse_policies(
                r#"<policies><policy id="p"><on event="x"/>
                   <when attr="a" ge="1" le="2"/><then><gc/></then></policy></policies>"#
            ),
            Err(PolicyError::Dialect { .. })
        ));
        // unknown action
        assert!(matches!(
            parse_policies(
                r#"<policies><policy id="p"><on event="x"/><then><fly/></then></policy></policies>"#
            ),
            Err(PolicyError::Dialect { .. })
        ));
        // unknown category
        assert!(matches!(
            parse_policies(
                r#"<policies><policy id="p" category="galaxy"><on event="x"/><then><gc/></then></policy></policies>"#
            ),
            Err(PolicyError::Dialect { .. })
        ));
    }
}
