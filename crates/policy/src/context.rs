//! Context management: resource monitors that turn raw readings into
//! policy events (paper §2: "responsible for monitoring available memory
//! and network connectivity").

use crate::PolicyEvent;
use std::collections::HashSet;

/// Memory watermarks with hysteresis.
///
/// Crossing `high_pct` upward emits [`PolicyEvent::MemoryPressure`]; the
/// pressure state clears only when occupancy falls below `low_pct`,
/// preventing oscillation right at the threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Watermarks {
    /// Occupancy percentage that raises pressure.
    pub high_pct: u8,
    /// Occupancy percentage that clears pressure.
    pub low_pct: u8,
}

impl Watermarks {
    /// Watermarks with validation.
    ///
    /// # Panics
    ///
    /// Panics unless `low_pct < high_pct <= 100`.
    pub fn new(low_pct: u8, high_pct: u8) -> Self {
        assert!(
            low_pct < high_pct && high_pct <= 100,
            "watermarks must satisfy low < high <= 100"
        );
        Watermarks { high_pct, low_pct }
    }
}

impl Default for Watermarks {
    /// 70 % low, 85 % high.
    fn default() -> Self {
        Watermarks {
            high_pct: 85,
            low_pct: 70,
        }
    }
}

/// The context manager: stateful monitors for memory and connectivity.
///
/// # Examples
///
/// ```
/// use obiwan_policy::{ContextManager, PolicyEvent, Watermarks};
///
/// let mut cm = ContextManager::new(Watermarks::new(70, 85));
/// assert!(cm.observe_memory(860, 1000).is_some()); // crossed 85 %
/// assert!(cm.observe_memory(900, 1000).is_none()); // still pressed, no re-fire
/// assert!(matches!(
///     cm.observe_memory(500, 1000),
///     Some(PolicyEvent::MemoryRelaxed { .. })       // fell below 70 %
/// ));
/// ```
#[derive(Debug, Default)]
pub struct ContextManager {
    watermarks: Watermarks,
    pressured: bool,
    known_devices: HashSet<i64>,
}

impl ContextManager {
    /// Create with the given watermarks.
    pub fn new(watermarks: Watermarks) -> Self {
        ContextManager {
            watermarks,
            pressured: false,
            known_devices: HashSet::new(),
        }
    }

    /// The configured watermarks.
    pub fn watermarks(&self) -> Watermarks {
        self.watermarks
    }

    /// Whether the memory monitor is currently in the pressured state.
    pub fn is_pressured(&self) -> bool {
        self.pressured
    }

    /// Feed a memory reading; returns an event on watermark crossings
    /// (edge-triggered with hysteresis).
    pub fn observe_memory(&mut self, bytes_used: usize, capacity: usize) -> Option<PolicyEvent> {
        let pct = if capacity == 0 {
            0
        } else {
            (bytes_used as u128 * 100 / capacity as u128) as i64
        };
        if !self.pressured && pct >= self.watermarks.high_pct as i64 {
            self.pressured = true;
            return Some(PolicyEvent::MemoryPressure {
                occupancy_pct: pct,
                bytes_used: bytes_used as i64,
                capacity: capacity as i64,
            });
        }
        if self.pressured && pct < self.watermarks.low_pct as i64 {
            self.pressured = false;
            return Some(PolicyEvent::MemoryRelaxed { occupancy_pct: pct });
        }
        None
    }

    /// Feed the current set of reachable storage devices (with free bytes);
    /// returns discovery / loss events for the delta.
    pub fn observe_devices(&mut self, present: &[(i64, i64)]) -> Vec<PolicyEvent> {
        let now: HashSet<i64> = present.iter().map(|(d, _)| *d).collect();
        let mut events = Vec::new();
        for &(device, free_storage) in present {
            if !self.known_devices.contains(&device) {
                events.push(PolicyEvent::DeviceDiscovered {
                    device,
                    free_storage,
                });
            }
        }
        let mut lost: Vec<i64> = self.known_devices.difference(&now).copied().collect();
        lost.sort_unstable();
        for device in lost {
            events.push(PolicyEvent::DeviceLost {
                device,
                blobs_held: 0,
            });
        }
        self.known_devices = now;
        events
    }
}

#[cfg(test)]
mod tests {
    // Tests assert on known-good setups; panicking on failure is the point.
    #![allow(clippy::disallowed_methods)]
    use super::*;

    #[test]
    fn hysteresis_prevents_refiring() {
        let mut cm = ContextManager::new(Watermarks::new(50, 80));
        assert!(cm.observe_memory(10, 100).is_none());
        let e = cm.observe_memory(80, 100).unwrap();
        assert!(matches!(
            e,
            PolicyEvent::MemoryPressure {
                occupancy_pct: 80,
                ..
            }
        ));
        // Between low and high while pressured: silence.
        assert!(cm.observe_memory(79, 100).is_none());
        assert!(cm.observe_memory(60, 100).is_none());
        // Below low: relax fires once.
        assert!(matches!(
            cm.observe_memory(49, 100),
            Some(PolicyEvent::MemoryRelaxed { occupancy_pct: 49 })
        ));
        assert!(cm.observe_memory(48, 100).is_none());
        // And pressure can fire again.
        assert!(cm.observe_memory(90, 100).is_some());
    }

    #[test]
    fn zero_capacity_reads_as_zero_occupancy() {
        let mut cm = ContextManager::new(Watermarks::default());
        assert!(cm.observe_memory(100, 0).is_none());
    }

    #[test]
    fn device_deltas_produce_discovery_and_loss() {
        let mut cm = ContextManager::new(Watermarks::default());
        let evs = cm.observe_devices(&[(1, 100), (2, 200)]);
        assert_eq!(evs.len(), 2);
        assert!(evs
            .iter()
            .all(|e| matches!(e, PolicyEvent::DeviceDiscovered { .. })));
        // No change → no events.
        assert!(cm.observe_devices(&[(1, 100), (2, 200)]).is_empty());
        // 2 leaves, 3 arrives.
        let evs = cm.observe_devices(&[(1, 100), (3, 50)]);
        assert_eq!(evs.len(), 2);
        assert!(evs
            .iter()
            .any(|e| matches!(e, PolicyEvent::DeviceDiscovered { device: 3, .. })));
        assert!(evs
            .iter()
            .any(|e| matches!(e, PolicyEvent::DeviceLost { device: 2, .. })));
    }

    #[test]
    #[should_panic(expected = "watermarks")]
    fn inverted_watermarks_panic() {
        let _ = Watermarks::new(90, 80);
    }
}
