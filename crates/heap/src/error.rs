//! Error type for heap operations.

use crate::{ClassId, ObjRef};
use std::fmt;

/// Error produced by heap operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HeapError {
    /// Allocation would exceed the device's memory capacity.
    ///
    /// The middleware reacts to this by swapping out a victim swap-cluster
    /// and retrying, which is the paper's core scenario.
    OutOfMemory {
        /// Bytes the failed allocation needed.
        requested: usize,
        /// Bytes currently in use.
        used: usize,
        /// Hard capacity of the heap.
        capacity: usize,
    },
    /// The handle does not refer to a live object (freed, stale generation,
    /// or out of bounds).
    InvalidRef {
        /// The offending handle.
        obj: ObjRef,
    },
    /// Class id not present in the registry.
    NoSuchClass {
        /// The offending class id.
        class: ClassId,
    },
    /// Class name not present in the registry.
    NoSuchClassName {
        /// The name that failed to resolve.
        name: String,
    },
    /// Field name not defined by the object's class.
    NoSuchField {
        /// Class the lookup ran against.
        class: String,
        /// Field name that failed to resolve.
        field: String,
    },
    /// Field index out of bounds for the object's class.
    FieldIndex {
        /// Class the lookup ran against.
        class: String,
        /// Offending index.
        index: u16,
    },
    /// A [`crate::Value`] of the wrong variant was supplied or found.
    TypeMismatch {
        /// What the caller expected.
        expected: &'static str,
        /// What was actually there.
        found: &'static str,
    },
    /// Global variable name not defined.
    NoSuchGlobal {
        /// The name that failed to resolve.
        name: String,
    },
}

impl fmt::Display for HeapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeapError::OutOfMemory {
                requested,
                used,
                capacity,
            } => write!(
                f,
                "out of memory: allocation of {requested} B with {used}/{capacity} B in use"
            ),
            HeapError::InvalidRef { obj } => write!(f, "invalid object reference {obj}"),
            HeapError::NoSuchClass { class } => write!(f, "unknown class id {class:?}"),
            HeapError::NoSuchClassName { name } => write!(f, "unknown class `{name}`"),
            HeapError::NoSuchField { class, field } => {
                write!(f, "class `{class}` has no field `{field}`")
            }
            HeapError::FieldIndex { class, index } => {
                write!(f, "field index {index} out of bounds for class `{class}`")
            }
            HeapError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            HeapError::NoSuchGlobal { name } => write!(f, "unknown global variable `{name}`"),
        }
    }
}

impl std::error::Error for HeapError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oom_message_has_all_three_numbers() {
        let e = HeapError::OutOfMemory {
            requested: 128,
            used: 900,
            capacity: 1024,
        };
        let s = e.to_string();
        assert!(s.contains("128") && s.contains("900") && s.contains("1024"));
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: Send + Sync + 'static>() {}
        assert_bounds::<HeapError>();
    }
}
