//! Weak reference table.
//!
//! The paper's SwappingManager stores its per-swap-cluster proxy entries
//! behind *weak references* so that the tables never keep a proxy alive; when
//! a proxy becomes unreachable its finalizer prunes the entries. This module
//! provides the weak half; finalization is in [`crate::gc`].
//!
//! Entries are generational: a slot cleared by a sweep is recycled for new
//! weak references, and any stale [`WeakRef`] still held by a table keeps
//! resolving to `None` instead of aliasing the new occupant. Without
//! recycling, the table would grow by one slot per proxy ever created —
//! a real leak under sustained load (the Criterion benches caught it).

use crate::ObjRef;

/// Handle to a weak table entry. Obtained from [`crate::Heap::weak_ref`],
/// resolved with [`crate::Heap::weak_get`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WeakRef {
    pub(crate) index: u32,
    pub(crate) generation: u32,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    generation: u32,
    target: Option<ObjRef>,
}

/// The table of weak entries. Sweeps clear entries whose targets died and
/// recycle their slots.
#[derive(Debug, Default)]
pub(crate) struct WeakTable {
    entries: Vec<Entry>,
    free: Vec<u32>,
}

impl WeakTable {
    pub(crate) fn create(&mut self, target: ObjRef) -> WeakRef {
        match self.free.pop() {
            Some(index) => {
                let entry = &mut self.entries[index as usize];
                entry.target = Some(target);
                WeakRef {
                    index,
                    generation: entry.generation,
                }
            }
            None => {
                self.entries.push(Entry {
                    generation: 0,
                    target: Some(target),
                });
                WeakRef {
                    index: self.entries.len() as u32 - 1,
                    generation: 0,
                }
            }
        }
    }

    pub(crate) fn get(&self, weak: WeakRef) -> Option<ObjRef> {
        let entry = self.entries.get(weak.index as usize)?;
        (entry.generation == weak.generation)
            .then_some(entry.target)
            .flatten()
    }

    pub(crate) fn drop_ref(&mut self, weak: WeakRef) {
        if let Some(entry) = self.entries.get_mut(weak.index as usize) {
            if entry.generation == weak.generation && entry.target.take().is_some() {
                entry.generation = entry.generation.wrapping_add(1);
                self.free.push(weak.index);
            }
        }
    }

    /// Clear (and recycle) every entry whose target satisfies `dead`.
    pub(crate) fn clear_dead(&mut self, mut dead: impl FnMut(ObjRef) -> bool) {
        for (index, entry) in self.entries.iter_mut().enumerate() {
            if let Some(target) = entry.target {
                if dead(target) {
                    entry.target = None;
                    entry.generation = entry.generation.wrapping_add(1);
                    self.free.push(index as u32);
                }
            }
        }
    }

    /// Number of live (occupied) entries.
    #[cfg(test)]
    pub(crate) fn len_live(&self) -> usize {
        self.entries.iter().filter(|e| e.target.is_some()).count()
    }

    /// Total slots allocated (capacity diagnostics).
    #[cfg(test)]
    pub(crate) fn len_slots(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u32) -> ObjRef {
        ObjRef {
            index: i,
            generation: 0,
        }
    }

    #[test]
    fn create_and_get() {
        let mut t = WeakTable::default();
        let w = t.create(r(5));
        assert_eq!(t.get(w), Some(r(5)));
    }

    #[test]
    fn drop_recycles_slot_without_aliasing() {
        let mut t = WeakTable::default();
        let w1 = t.create(r(1));
        t.drop_ref(w1);
        assert_eq!(t.get(w1), None);
        let w2 = t.create(r(2));
        assert_eq!(w2.index, w1.index, "slot recycled");
        assert_ne!(w2.generation, w1.generation, "generation bumped");
        assert_eq!(t.get(w1), None, "stale handle stays dead");
        assert_eq!(t.get(w2), Some(r(2)));
    }

    #[test]
    fn clear_dead_recycles_and_keeps_stale_handles_dead() {
        let mut t = WeakTable::default();
        let w = t.create(r(1));
        t.clear_dead(|target| target == r(1));
        assert_eq!(t.get(w), None);
        let w2 = t.create(r(2));
        assert_eq!(w2.index, w.index, "cleared slot is reused");
        assert_eq!(t.get(w), None, "old handle cannot see the new target");
        assert_eq!(t.get(w2), Some(r(2)));
    }

    #[test]
    fn sustained_churn_does_not_grow_the_table() {
        let mut t = WeakTable::default();
        for round in 0..1_000u32 {
            let w = t.create(r(round));
            assert_eq!(t.get(w), Some(r(round)));
            t.clear_dead(|_| true);
        }
        assert!(
            t.len_slots() <= 2,
            "slots must be recycled, got {}",
            t.len_slots()
        );
        assert_eq!(t.len_live(), 0);
    }

    #[test]
    fn double_drop_is_harmless() {
        let mut t = WeakTable::default();
        let w = t.create(r(1));
        t.drop_ref(w);
        t.drop_ref(w);
        assert_eq!(t.len_live(), 0);
        // Free list must not contain the slot twice.
        let a = t.create(r(2));
        let b = t.create(r(3));
        assert_ne!(a, b);
    }
}
