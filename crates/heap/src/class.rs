//! Class descriptors: field layouts shared by server and device.
//!
//! In OBIWAN, application classes are distributed as class/assembly files and
//! the `obicomp` compiler augments them. Here a [`ClassRegistry`] plays the
//! role of the class files: it is built once and shared (cheaply, via
//! [`ClassRegistry::clone`]) by every process in the simulation. Method
//! *bodies* live in `obiwan-replication`'s method table, keeping this crate
//! purely about data layout.

use crate::{FieldKind::*, HeapError, Result, Value};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Identifier of a class inside a [`ClassRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassId(pub(crate) u32);

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "class#{}", self.0)
    }
}

/// Identifier of a field within its class (an index into the layout).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FieldId(pub(crate) u16);

impl FieldId {
    /// The raw layout index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a raw layout index (middleware codecs iterate wire
    /// fields positionally).
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u16::MAX`.
    pub fn from_index(index: usize) -> Self {
        assert!(index <= u16::MAX as usize, "field index out of range");
        FieldId(index as u16)
    }
}

/// Static type of a field, used to validate stores and to drive the XML
/// codec's encoding choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FieldKind {
    /// Reference to another object (or null).
    Ref,
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Double,
    /// Boolean.
    Bool,
    /// Immutable string.
    Str,
    /// Opaque byte payload.
    Bytes,
}

impl FieldKind {
    /// Whether `value` is an acceptable store for this field kind.
    /// `Null` is acceptable everywhere (uninitialized field).
    pub fn accepts(self, value: &Value) -> bool {
        matches!(
            (self, value),
            (_, Value::Null)
                | (Ref, Value::Ref(_))
                | (Int, Value::Int(_))
                | (Double, Value::Double(_))
                | (Bool, Value::Bool(_))
                | (Str, Value::Str(_))
                | (Bytes, Value::Bytes(_))
        )
    }

    /// Wire name used by the XML codec (`kind="ref"` etc.).
    pub fn wire_name(self) -> &'static str {
        match self {
            Ref => "ref",
            Int => "int",
            Double => "double",
            Bool => "bool",
            Str => "str",
            Bytes => "bytes",
        }
    }

    /// Parse a wire name back into a kind.
    ///
    /// # Errors
    ///
    /// [`HeapError::TypeMismatch`] for unknown names.
    pub fn from_wire_name(name: &str) -> Result<Self> {
        Ok(match name {
            "ref" => Ref,
            "int" => Int,
            "double" => Double,
            "bool" => Bool,
            "str" => Str,
            "bytes" => Bytes,
            _ => {
                return Err(HeapError::TypeMismatch {
                    expected: "a field kind name",
                    found: "unknown",
                })
            }
        })
    }
}

/// One field in a class layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDescriptor {
    name: String,
    kind: FieldKind,
}

impl FieldDescriptor {
    /// Field name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Field kind.
    pub fn kind(&self) -> FieldKind {
        self.kind
    }
}

/// A class: a name plus an ordered field layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassDescriptor {
    name: String,
    fields: Vec<FieldDescriptor>,
    by_name: HashMap<String, FieldId>,
    variadic: bool,
}

impl ClassDescriptor {
    /// Class name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Ordered field layout.
    pub fn fields(&self) -> &[FieldDescriptor] {
        &self.fields
    }

    /// Number of fields.
    pub fn field_count(&self) -> usize {
        self.fields.len()
    }

    /// Whether objects of this class may grow extra untyped fields beyond
    /// the declared layout (used by the replacement-object, which the paper
    /// describes as "simply an array of references").
    pub fn is_variadic(&self) -> bool {
        self.variadic
    }

    /// Resolve a field name to its id.
    ///
    /// # Errors
    ///
    /// [`HeapError::NoSuchField`] naming class and field.
    pub fn field_id(&self, name: &str) -> Result<FieldId> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| HeapError::NoSuchField {
                class: self.name.clone(),
                field: name.to_string(),
            })
    }

    /// Descriptor of the field with the given id.
    ///
    /// # Errors
    ///
    /// [`HeapError::FieldIndex`] if out of bounds.
    pub fn field(&self, id: FieldId) -> Result<&FieldDescriptor> {
        self.fields.get(id.index()).ok_or(HeapError::FieldIndex {
            class: self.name.clone(),
            index: id.0,
        })
    }
}

/// Fluent builder for a [`ClassDescriptor`].
///
/// # Examples
///
/// ```
/// use obiwan_heap::{ClassBuilder, ClassRegistry};
///
/// let mut reg = ClassRegistry::new();
/// let id = reg.register(
///     ClassBuilder::new("Photo")
///         .ref_field("album")
///         .str_field("title")
///         .bytes_field("pixels"),
/// );
/// assert_eq!(reg.class(id).unwrap().field_count(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct ClassBuilder {
    name: String,
    fields: Vec<FieldDescriptor>,
    variadic: bool,
}

impl ClassBuilder {
    /// Start building a class with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        ClassBuilder {
            name: name.into(),
            fields: Vec::new(),
            variadic: false,
        }
    }

    /// Allow objects of this class to grow extra untyped fields appended
    /// beyond the declared layout (see
    /// [`Heap::push_extra`](crate::Heap::push_extra)).
    pub fn variadic(mut self) -> Self {
        self.variadic = true;
        self
    }

    /// Add a field of an explicit kind.
    pub fn field(mut self, name: impl Into<String>, kind: FieldKind) -> Self {
        self.fields.push(FieldDescriptor {
            name: name.into(),
            kind,
        });
        self
    }

    /// Add a reference field.
    pub fn ref_field(self, name: impl Into<String>) -> Self {
        self.field(name, Ref)
    }

    /// Add an integer field.
    pub fn int_field(self, name: impl Into<String>) -> Self {
        self.field(name, Int)
    }

    /// Add a double field.
    pub fn double_field(self, name: impl Into<String>) -> Self {
        self.field(name, Double)
    }

    /// Add a boolean field.
    pub fn bool_field(self, name: impl Into<String>) -> Self {
        self.field(name, Bool)
    }

    /// Add a string field.
    pub fn str_field(self, name: impl Into<String>) -> Self {
        self.field(name, Str)
    }

    /// Add a bytes field.
    pub fn bytes_field(self, name: impl Into<String>) -> Self {
        self.field(name, Bytes)
    }

    fn build(self) -> ClassDescriptor {
        let by_name = self
            .fields
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.clone(), FieldId(i as u16)))
            .collect();
        ClassDescriptor {
            name: self.name,
            fields: self.fields,
            by_name,
            variadic: self.variadic,
        }
    }
}

/// A shared, append-only registry of classes.
///
/// Cloning is cheap (`Arc` inside) *after* the registry is sealed by the
/// first clone; registration happens during setup while the registry is
/// still uniquely owned.
#[derive(Debug, Clone, Default)]
pub struct ClassRegistry {
    inner: Arc<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    classes: Vec<ClassDescriptor>,
    by_name: HashMap<String, ClassId>,
}

impl ClassRegistry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a class, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if the registry has already been shared (cloned) — classes must
    /// all be registered during setup, mirroring class files being fixed
    /// before an application runs — or if the class name is already taken.
    pub fn register(&mut self, builder: ClassBuilder) -> ClassId {
        // The `# Panics` contract above is deliberate: registration after
        // sharing is a programming error, not a runtime condition.
        #[allow(clippy::disallowed_methods)]
        let inner = Arc::get_mut(&mut self.inner)
            .expect("ClassRegistry must not be modified after it has been shared");
        let desc = builder.build();
        assert!(
            !inner.by_name.contains_key(desc.name()),
            "duplicate class name `{}`",
            desc.name()
        );
        let id = ClassId(inner.classes.len() as u32);
        inner.by_name.insert(desc.name().to_string(), id);
        inner.classes.push(desc);
        id
    }

    /// Look up a class by id.
    ///
    /// # Errors
    ///
    /// [`HeapError::NoSuchClass`] if the id is unknown.
    pub fn class(&self, id: ClassId) -> Result<&ClassDescriptor> {
        self.inner
            .classes
            .get(id.0 as usize)
            .ok_or(HeapError::NoSuchClass { class: id })
    }

    /// Look up a class id by name.
    ///
    /// # Errors
    ///
    /// [`HeapError::NoSuchClassName`] if the name is unknown.
    pub fn class_id(&self, name: &str) -> Result<ClassId> {
        self.inner
            .by_name
            .get(name)
            .copied()
            .ok_or_else(|| HeapError::NoSuchClassName {
                name: name.to_string(),
            })
    }

    /// Number of registered classes.
    pub fn len(&self) -> usize {
        self.inner.classes.len()
    }

    /// True when no classes are registered.
    pub fn is_empty(&self) -> bool {
        self.inner.classes.is_empty()
    }

    /// Iterate over `(id, descriptor)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ClassId, &ClassDescriptor)> {
        self.inner
            .classes
            .iter()
            .enumerate()
            .map(|(i, c)| (ClassId(i as u32), c))
    }
}

#[cfg(test)]
mod tests {
    // Tests assert on known-good setups; panicking on failure is the point.
    #![allow(clippy::disallowed_methods)]
    use super::*;

    fn sample() -> (ClassRegistry, ClassId) {
        let mut reg = ClassRegistry::new();
        let id = reg.register(
            ClassBuilder::new("Node")
                .ref_field("next")
                .int_field("n")
                .bytes_field("payload"),
        );
        (reg, id)
    }

    #[test]
    fn register_and_lookup_by_name_and_id() {
        let (reg, id) = sample();
        assert_eq!(reg.class_id("Node").unwrap(), id);
        assert_eq!(reg.class(id).unwrap().name(), "Node");
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn field_resolution_by_name_and_index() {
        let (reg, id) = sample();
        let class = reg.class(id).unwrap();
        let next = class.field_id("next").unwrap();
        assert_eq!(next.index(), 0);
        assert_eq!(class.field(next).unwrap().kind(), Ref);
        assert!(matches!(
            class.field_id("missing"),
            Err(HeapError::NoSuchField { .. })
        ));
        assert!(matches!(
            class.field(FieldId(99)),
            Err(HeapError::FieldIndex { .. })
        ));
    }

    #[test]
    fn unknown_class_lookups_fail() {
        let (reg, _) = sample();
        assert!(matches!(
            reg.class_id("Ghost"),
            Err(HeapError::NoSuchClassName { .. })
        ));
        assert!(matches!(
            reg.class(ClassId(42)),
            Err(HeapError::NoSuchClass { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "duplicate class name")]
    fn duplicate_names_panic() {
        let mut reg = ClassRegistry::new();
        reg.register(ClassBuilder::new("A"));
        reg.register(ClassBuilder::new("A"));
    }

    #[test]
    #[should_panic(expected = "must not be modified")]
    fn registering_after_share_panics() {
        let mut reg = ClassRegistry::new();
        let _shared = reg.clone();
        reg.register(ClassBuilder::new("A"));
    }

    #[test]
    fn field_kind_accepts_matching_values_and_null() {
        assert!(Ref.accepts(&Value::Null));
        assert!(Ref.accepts(&Value::Ref(crate::ObjRef::test_dummy(1))));
        assert!(!Ref.accepts(&Value::Int(1)));
        assert!(Int.accepts(&Value::Int(1)));
        assert!(Bool.accepts(&Value::Bool(false)));
    }

    #[test]
    fn wire_names_roundtrip() {
        for kind in [Ref, Int, Double, Bool, Str, Bytes] {
            assert_eq!(FieldKind::from_wire_name(kind.wire_name()).unwrap(), kind);
        }
        assert!(FieldKind::from_wire_name("float32").is_err());
    }

    #[test]
    fn iter_yields_ids_in_registration_order() {
        let mut reg = ClassRegistry::new();
        reg.register(ClassBuilder::new("A"));
        reg.register(ClassBuilder::new("B"));
        let names: Vec<_> = reg.iter().map(|(_, c)| c.name().to_string()).collect();
        assert_eq!(names, ["A", "B"]);
    }
}
