//! Mark-sweep local garbage collector (the paper's LGC).
//!
//! Roots are: all global variables (*swap-cluster-0*), every object whose
//! header has `pinned` set, and the heap's extra root handles. Marking
//! traverses `Ref` fields only; weak table entries are deliberately *not*
//! roots. After the sweep, finalizable casualties are recorded for the
//! middleware to drain via [`crate::Heap::take_finalized`] — this is how the
//! SwappingManager learns that a replacement-object died and that the
//! storing device may be instructed to drop the corresponding XML blob
//! (paper §3, *Integration with GC Mechanisms*).

use crate::heap::{slot_at, Slot, SlotBody};
use crate::{ClassId, Heap, ObjRef, ObjectKind, Oid, Value};

/// Statistics of one collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CollectStats {
    /// Objects freed by the sweep.
    pub freed_objects: usize,
    /// Bytes released by the sweep.
    pub freed_bytes: usize,
    /// Objects that survived.
    pub live_objects: usize,
    /// Finalization records produced by this collection.
    pub finalized: usize,
}

/// Record of a finalizable object that was collected.
///
/// Carries everything the middleware's finalizer logic needs, because the
/// object itself is already gone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finalized {
    /// The (now dangling) handle the object had.
    pub obj: ObjRef,
    /// Runtime role the object had.
    pub kind: ObjectKind,
    /// Its class.
    pub class: ClassId,
    /// Its global identity tag.
    pub oid: Oid,
    /// Its swap-cluster tag.
    pub swap_cluster: u32,
}

impl Heap {
    /// Run a full mark-sweep collection and return its statistics.
    ///
    /// Typically invoked by the middleware right after detaching a
    /// swap-cluster (to realize the memory release) or when an allocation
    /// fails.
    pub fn collect(&mut self) -> CollectStats {
        self.gc_runs += 1;
        // --- Mark ---------------------------------------------------------
        let mut marked = vec![false; self.slot_count as usize];
        let mut stack: Vec<ObjRef> = Vec::new();
        for (_, v) in self.globals() {
            if let Value::Ref(r) = v {
                stack.push(*r);
            }
        }
        stack.extend(self.extra_roots.iter().copied());
        for (index, slot) in self.enumerate_slots() {
            if let SlotBody::Used(obj) = &slot.body {
                if obj.header.pinned {
                    stack.push(ObjRef {
                        index,
                        generation: slot.generation,
                    });
                }
            }
        }
        while let Some(r) = stack.pop() {
            let Some(Slot {
                generation,
                body: SlotBody::Used(obj),
            }) = self.slot(r.index)
            else {
                continue;
            };
            if *generation != r.generation || marked[r.index as usize] {
                continue;
            }
            marked[r.index as usize] = true;
            for v in obj.fields.as_slice() {
                if let Value::Ref(next) = v {
                    stack.push(*next);
                }
            }
        }
        // --- Sweep (ascending slot order, so the LIFO free list ends up in
        // --- the same reuse order the old free stack produced) ------------
        let mut stats = CollectStats::default();
        let bytes_before = self.bytes_used;
        for index in 0..self.slot_count {
            // Copy the death record out before mutating the heap.
            let dead = match self.slot(index) {
                Some(Slot {
                    generation,
                    body: SlotBody::Used(obj),
                }) if !marked[index as usize] => Some(obj.header.finalize.then_some(Finalized {
                    obj: ObjRef {
                        index,
                        generation: *generation,
                    },
                    kind: obj.header.kind,
                    class: obj.class,
                    oid: obj.header.oid,
                    swap_cluster: obj.header.swap_cluster,
                })),
                _ => None,
            };
            let Some(finalized) = dead else {
                continue;
            };
            if let Some(record) = finalized {
                self.finalized.push(record);
                stats.finalized += 1;
            }
            self.free_slot(index);
            stats.freed_objects += 1;
        }
        stats.freed_bytes = bytes_before - self.bytes_used;
        stats.live_objects = self.live_objects;
        // --- Weak table ----------------------------------------------------
        let slabs = &self.slabs;
        self.weak.clear_dead(|target| {
            !matches!(
                slot_at(slabs, target.index),
                Some(Slot { generation, body: SlotBody::Used(_) }) if *generation == target.generation
            )
        });
        stats
    }

    /// Number of collections run so far.
    pub fn gc_runs(&self) -> u64 {
        self.gc_runs
    }
}

#[cfg(test)]
mod tests {
    // Tests assert on known-good setups; panicking on failure is the point.
    #![allow(clippy::disallowed_methods)]
    use crate::{ClassBuilder, ClassRegistry, Heap, HeapError, ObjectKind, Value};

    fn setup() -> (Heap, crate::ClassId) {
        let mut reg = ClassRegistry::new();
        let node = reg.register(ClassBuilder::new("Node").ref_field("next").int_field("n"));
        (Heap::new(reg, 1 << 20), node)
    }

    #[test]
    fn unreachable_chain_is_collected() {
        let (mut heap, node) = setup();
        let a = heap.alloc(node, ObjectKind::App).unwrap();
        let b = heap.alloc(node, ObjectKind::App).unwrap();
        let c = heap.alloc(node, ObjectKind::App).unwrap();
        heap.set_field_by_name(a, "next", Value::Ref(b)).unwrap();
        heap.set_field_by_name(b, "next", Value::Ref(c)).unwrap();
        heap.set_global("head", Value::Ref(a));
        assert_eq!(heap.collect().freed_objects, 0);
        // Cut b..c off.
        heap.set_field_by_name(a, "next", Value::Null).unwrap();
        let stats = heap.collect();
        assert_eq!(stats.freed_objects, 2);
        assert!(heap.is_live(a));
        assert!(!heap.is_live(b));
        assert!(!heap.is_live(c));
    }

    #[test]
    fn cycles_are_collected_when_unreachable() {
        let (mut heap, node) = setup();
        let a = heap.alloc(node, ObjectKind::App).unwrap();
        let b = heap.alloc(node, ObjectKind::App).unwrap();
        heap.set_field_by_name(a, "next", Value::Ref(b)).unwrap();
        heap.set_field_by_name(b, "next", Value::Ref(a)).unwrap();
        let stats = heap.collect();
        assert_eq!(stats.freed_objects, 2);
    }

    #[test]
    fn pinned_objects_survive_without_roots() {
        let (mut heap, node) = setup();
        let a = heap.alloc(node, ObjectKind::App).unwrap();
        heap.get_mut(a).unwrap().header_mut().pinned = true;
        assert_eq!(heap.collect().freed_objects, 0);
        heap.get_mut(a).unwrap().header_mut().pinned = false;
        assert_eq!(heap.collect().freed_objects, 1);
    }

    #[test]
    fn extra_roots_keep_objects_alive() {
        let (mut heap, node) = setup();
        let a = heap.alloc(node, ObjectKind::App).unwrap();
        heap.add_root(a);
        assert_eq!(heap.collect().freed_objects, 0);
        heap.remove_root(a);
        assert_eq!(heap.collect().freed_objects, 1);
    }

    #[test]
    fn weak_refs_do_not_keep_objects_alive_and_are_cleared() {
        let (mut heap, node) = setup();
        let a = heap.alloc(node, ObjectKind::App).unwrap();
        let w = heap.weak_ref(a).unwrap();
        let stats = heap.collect();
        assert_eq!(stats.freed_objects, 1);
        assert_eq!(heap.weak_get(w), None);
    }

    #[test]
    fn finalizable_objects_are_reported_once() {
        let (mut heap, node) = setup();
        let a = heap.alloc(node, ObjectKind::Replacement).unwrap();
        {
            let h = heap.get_mut(a).unwrap().header_mut();
            h.finalize = true;
            h.swap_cluster = 7;
        }
        let stats = heap.collect();
        assert_eq!(stats.finalized, 1);
        let fin = heap.take_finalized();
        assert_eq!(fin.len(), 1);
        assert_eq!(fin[0].kind, ObjectKind::Replacement);
        assert_eq!(fin[0].swap_cluster, 7);
        assert!(heap.take_finalized().is_empty(), "drained");
    }

    #[test]
    fn collection_updates_accounting_and_allows_realloc() {
        let (mut heap, node) = setup();
        heap.set_capacity(200);
        // Node = 24 + 2*16 = 56 bytes → three fit in 200.
        let _a = heap.alloc(node, ObjectKind::App).unwrap();
        let _b = heap.alloc(node, ObjectKind::App).unwrap();
        let _c = heap.alloc(node, ObjectKind::App).unwrap();
        assert!(matches!(
            heap.alloc(node, ObjectKind::App),
            Err(HeapError::OutOfMemory { .. })
        ));
        let stats = heap.collect(); // nothing is rooted
        assert_eq!(stats.freed_objects, 3);
        assert_eq!(heap.bytes_used(), 0);
        assert!(heap.alloc(node, ObjectKind::App).is_ok());
    }

    #[test]
    fn global_non_ref_values_are_ignored_as_roots() {
        let (mut heap, node) = setup();
        heap.set_global("count", Value::Int(3));
        let _a = heap.alloc(node, ObjectKind::App).unwrap();
        assert_eq!(heap.collect().freed_objects, 1);
    }

    #[test]
    fn stale_root_handles_are_skipped() {
        let (mut heap, node) = setup();
        let a = heap.alloc(node, ObjectKind::App).unwrap();
        heap.add_root(a);
        // Free behind the collector's back, then collect with the stale root.
        let b = heap.alloc(node, ObjectKind::App).unwrap();
        heap.set_global("live", Value::Ref(b));
        // Simulate staleness: drop and re-allocate the slot.
        heap.remove_root(a);
        heap.collect();
        heap.add_root(a); // a is now stale
        let stats = heap.collect();
        assert_eq!(stats.live_objects, 1);
    }
}
