//! A handle-based managed object heap for the OBIWAN reproduction.
//!
//! The paper's mechanism — detaching live sub-graphs, patching proxies,
//! letting the local garbage collector reclaim the detached replicas — is
//! formulated against a managed runtime (JVM / .NET CF). Rust's ownership
//! model famously "fights" a mutable, cyclic object graph, so this crate
//! provides the same observable semantics on top of a slab of slots indexed
//! by generational handles ([`ObjRef`]):
//!
//! * objects ([`Object`]) carry a class, a kind tag (application object,
//!   fault proxy, swap-cluster-proxy, replacement object) and a vector of
//!   [`Value`] fields;
//! * a precise **mark-sweep collector** ([`Heap::collect`]) reclaims
//!   everything unreachable from the global variables (the paper's
//!   *swap-cluster-0*) and pinned middleware anchors;
//! * **weak references** ([`WeakRef`]) back the SwappingManager's proxy
//!   tables, exactly as the paper prescribes;
//! * **finalization records** ([`Finalized`]) replace C# finalizers: after a
//!   sweep the middleware drains [`Heap::take_finalized`] to learn which
//!   finalizable objects died (e.g. a replacement-object whose death must
//!   instruct the storing device to drop a blob);
//! * **byte-accurate accounting** with a hard capacity and watermarks powers
//!   the memory-pressure events that trigger swapping.
//!
//! # Examples
//!
//! ```
//! use obiwan_heap::{ClassBuilder, ClassRegistry, Heap, ObjectKind, Value};
//!
//! # fn main() -> Result<(), obiwan_heap::HeapError> {
//! let mut classes = ClassRegistry::new();
//! let node = classes.register(
//!     ClassBuilder::new("Node").ref_field("next").bytes_field("payload"),
//! );
//!
//! let mut heap = Heap::new(classes.clone(), 64 * 1024);
//! let a = heap.alloc(node, ObjectKind::App)?;
//! let b = heap.alloc(node, ObjectKind::App)?;
//! heap.set_field_by_name(a, "next", Value::Ref(b))?;
//! heap.set_global("head", Value::Ref(a));
//!
//! let collected = heap.collect();
//! assert_eq!(collected.freed_objects, 0); // both reachable from the global
//!
//! heap.set_global("head", Value::Null);
//! let collected = heap.collect();
//! assert_eq!(collected.freed_objects, 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod class;
mod error;
mod gc;
mod heap;
mod object;
mod stats;
mod value;
mod weak;

pub use class::{
    ClassBuilder, ClassDescriptor, ClassId, ClassRegistry, FieldDescriptor, FieldId, FieldKind,
};
pub use error::HeapError;
pub use gc::{CollectStats, Finalized};
pub use heap::{Heap, ObjRef};
pub use object::{Object, ObjectHeader, ObjectKind, Oid};
pub use stats::HeapStats;
pub use value::Value;
pub use weak::WeakRef;

/// Convenience result alias used across this crate.
pub type Result<T> = std::result::Result<T, HeapError>;
