//! Field values stored in heap objects.

use crate::{HeapError, ObjRef, Result};
use bytes::Bytes;
use std::fmt;
use std::sync::Arc;

/// A value stored in an object field or a global variable.
///
/// The variant set mirrors what the OBIWAN wire format can carry: scalars,
/// strings, opaque byte payloads, and references to other heap objects.
///
/// # Examples
///
/// ```
/// use obiwan_heap::Value;
///
/// let v = Value::from(42i64);
/// assert_eq!(v.expect_int().unwrap(), 42);
/// assert!(Value::Null.expect_int().is_err());
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub enum Value {
    /// Absent reference / uninitialized field.
    #[default]
    Null,
    /// 64-bit signed integer (covers the paper's `int` arguments).
    Int(i64),
    /// 64-bit float.
    Double(f64),
    /// Boolean.
    Bool(bool),
    /// Immutable string (cheap to clone).
    Str(Arc<str>),
    /// Opaque byte payload (the 64-byte bodies of the Figure 5 objects).
    Bytes(Bytes),
    /// Reference to another heap object.
    Ref(ObjRef),
}

impl Value {
    /// Human-readable variant name, used in [`HeapError::TypeMismatch`].
    pub fn kind_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Int(_) => "int",
            Value::Double(_) => "double",
            Value::Bool(_) => "bool",
            Value::Str(_) => "str",
            Value::Bytes(_) => "bytes",
            Value::Ref(_) => "ref",
        }
    }

    /// True for [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The reference inside, if this is a `Ref`.
    pub fn as_ref_value(&self) -> Option<ObjRef> {
        match self {
            Value::Ref(r) => Some(*r),
            _ => None,
        }
    }

    /// The reference inside.
    ///
    /// # Errors
    ///
    /// [`HeapError::TypeMismatch`] unless this is a `Ref`.
    pub fn expect_ref(&self) -> Result<ObjRef> {
        match self {
            Value::Ref(r) => Ok(*r),
            other => Err(mismatch("ref", other)),
        }
    }

    /// The reference inside, treating `Null` as `None`.
    ///
    /// # Errors
    ///
    /// [`HeapError::TypeMismatch`] for any non-`Ref`, non-`Null` value.
    pub fn expect_ref_or_null(&self) -> Result<Option<ObjRef>> {
        match self {
            Value::Ref(r) => Ok(Some(*r)),
            Value::Null => Ok(None),
            other => Err(mismatch("ref or null", other)),
        }
    }

    /// The integer inside.
    ///
    /// # Errors
    ///
    /// [`HeapError::TypeMismatch`] unless this is an `Int`.
    pub fn expect_int(&self) -> Result<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            other => Err(mismatch("int", other)),
        }
    }

    /// The double inside.
    ///
    /// # Errors
    ///
    /// [`HeapError::TypeMismatch`] unless this is a `Double`.
    pub fn expect_double(&self) -> Result<f64> {
        match self {
            Value::Double(d) => Ok(*d),
            other => Err(mismatch("double", other)),
        }
    }

    /// The boolean inside.
    ///
    /// # Errors
    ///
    /// [`HeapError::TypeMismatch`] unless this is a `Bool`.
    pub fn expect_bool(&self) -> Result<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(mismatch("bool", other)),
        }
    }

    /// The string inside.
    ///
    /// # Errors
    ///
    /// [`HeapError::TypeMismatch`] unless this is a `Str`.
    pub fn expect_str(&self) -> Result<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(mismatch("str", other)),
        }
    }

    /// The bytes inside.
    ///
    /// # Errors
    ///
    /// [`HeapError::TypeMismatch`] unless this is a `Bytes`.
    pub fn expect_bytes(&self) -> Result<&Bytes> {
        match self {
            Value::Bytes(b) => Ok(b),
            other => Err(mismatch("bytes", other)),
        }
    }

    /// Heap bytes attributed to this value beyond its inline 16-byte slot
    /// (string and byte payloads).
    pub fn payload_size(&self) -> usize {
        match self {
            Value::Str(s) => s.len(),
            Value::Bytes(b) => b.len(),
            _ => 0,
        }
    }
}

fn mismatch(expected: &'static str, found: &Value) -> HeapError {
    HeapError::TypeMismatch {
        expected,
        found: found.kind_name(),
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Double(d) => write!(f, "{d}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bytes(b) => write!(f, "bytes[{}]", b.len()),
            Value::Ref(r) => write!(f, "{r}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(Arc::from(v))
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

impl From<Bytes> for Value {
    fn from(v: Bytes) -> Self {
        Value::Bytes(v)
    }
}

impl From<ObjRef> for Value {
    fn from(v: ObjRef) -> Self {
        Value::Ref(v)
    }
}

impl From<Option<ObjRef>> for Value {
    fn from(v: Option<ObjRef>) -> Self {
        match v {
            Some(r) => Value::Ref(r),
            None => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    // Tests assert on known-good setups; panicking on failure is the point.
    #![allow(clippy::disallowed_methods)]
    use super::*;

    #[test]
    fn conversions_produce_expected_variants() {
        assert_eq!(Value::from(3i64).kind_name(), "int");
        assert_eq!(Value::from(1.5f64).kind_name(), "double");
        assert_eq!(Value::from(true).kind_name(), "bool");
        assert_eq!(Value::from("x").kind_name(), "str");
        assert_eq!(Value::from(Bytes::from_static(b"ab")).kind_name(), "bytes");
        assert_eq!(Value::from(None).kind_name(), "null");
    }

    #[test]
    fn expectations_succeed_on_matching_variant() {
        assert_eq!(Value::Int(7).expect_int().unwrap(), 7);
        assert!(Value::Bool(true).expect_bool().unwrap());
        assert_eq!(Value::from("hi").expect_str().unwrap(), "hi");
        assert_eq!(Value::Double(0.5).expect_double().unwrap(), 0.5);
    }

    #[test]
    fn expectations_report_both_sides_of_mismatch() {
        let err = Value::Int(7).expect_bool().unwrap_err();
        assert_eq!(
            err,
            HeapError::TypeMismatch {
                expected: "bool",
                found: "int"
            }
        );
    }

    #[test]
    fn ref_or_null_accepts_both() {
        assert_eq!(Value::Null.expect_ref_or_null().unwrap(), None);
        assert!(Value::Int(1).expect_ref_or_null().is_err());
    }

    #[test]
    fn payload_size_counts_only_heap_payloads() {
        assert_eq!(Value::Int(1).payload_size(), 0);
        assert_eq!(Value::from("abcd").payload_size(), 4);
        assert_eq!(Value::from(Bytes::from(vec![0u8; 64])).payload_size(), 64);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(
            Value::from(Bytes::from_static(b"xyz")).to_string(),
            "bytes[3]"
        );
    }
}
