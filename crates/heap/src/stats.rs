//! Aggregate heap statistics.

use crate::Heap;

/// A snapshot of heap health, consumed by the context manager (memory
/// monitor) and printed by the examples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HeapStats {
    /// Bytes currently charged to live objects.
    pub bytes_used: usize,
    /// Hard capacity.
    pub capacity: usize,
    /// High-water mark of `bytes_used`.
    pub peak_bytes: usize,
    /// Live object count.
    pub live_objects: usize,
    /// Cumulative allocations.
    pub total_allocs: u64,
    /// Cumulative frees.
    pub total_frees: u64,
    /// Collections run.
    pub gc_runs: u64,
}

impl HeapStats {
    /// Occupancy as a fraction in `[0, 1]`.
    pub fn occupancy(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.bytes_used as f64 / self.capacity as f64
        }
    }
}

impl Heap {
    /// Take a statistics snapshot.
    pub fn stats(&self) -> HeapStats {
        HeapStats {
            bytes_used: self.bytes_used,
            capacity: self.capacity(),
            peak_bytes: self.peak_bytes,
            live_objects: self.live_objects,
            total_allocs: self.total_allocs,
            total_frees: self.total_frees,
            gc_runs: self.gc_runs,
        }
    }
}

#[cfg(test)]
mod tests {
    // Tests assert on known-good setups; panicking on failure is the point.
    #![allow(clippy::disallowed_methods)]
    use super::*;
    use crate::{ClassBuilder, ClassRegistry, ObjectKind};

    #[test]
    fn stats_track_alloc_free_gc() {
        let mut reg = ClassRegistry::new();
        let node = reg.register(ClassBuilder::new("N").int_field("x"));
        let mut heap = Heap::new(reg, 4096);
        let a = heap.alloc(node, ObjectKind::App).unwrap();
        let _b = heap.alloc(node, ObjectKind::App).unwrap();
        heap.set_global("keep", crate::Value::Ref(a));
        heap.collect();
        let s = heap.stats();
        assert_eq!(s.total_allocs, 2);
        assert_eq!(s.total_frees, 1);
        assert_eq!(s.live_objects, 1);
        assert_eq!(s.gc_runs, 1);
        assert!(s.peak_bytes >= s.bytes_used);
        assert!(s.occupancy() > 0.0 && s.occupancy() < 1.0);
    }

    #[test]
    fn zero_capacity_occupancy_is_zero() {
        let s = HeapStats::default();
        assert_eq!(s.occupancy(), 0.0);
    }
}
