//! Heap objects and their headers.

use crate::{ClassId, Value};
use std::fmt;

/// Global object identity assigned by the replication server.
///
/// Replicas of the same master object on different devices share an `Oid`;
/// it is also the identity the swap codec serializes, and what the paper's
/// overloaded `==` ultimately compares across swap-cluster-proxies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Oid(pub u64);

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "oid:{}", self.0)
    }
}

/// What role an object plays in the middleware, the moral equivalent of the
/// `obicomp`-generated class a reference actually points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObjectKind {
    /// A plain application object (replica).
    App,
    /// An object-fault proxy: invoking it triggers replication of the target
    /// cluster, after which it is *replaced* and discarded (paper §2).
    FaultProxy,
    /// A swap-cluster-proxy: permanently mediates a reference that crosses a
    /// swap-cluster boundary (paper §3).
    SwapProxy,
    /// A replacement-object standing in for a swapped-out cluster: an array
    /// of references keeping the victim's outbound proxies alive (paper §3).
    Replacement,
}

impl ObjectKind {
    /// Wire name used by diagnostics and the XML codec.
    pub fn name(self) -> &'static str {
        match self {
            ObjectKind::App => "app",
            ObjectKind::FaultProxy => "fault-proxy",
            ObjectKind::SwapProxy => "swap-proxy",
            ObjectKind::Replacement => "replacement",
        }
    }
}

impl fmt::Display for ObjectKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-object header: middleware tag words, mirroring the way a real VM
/// object header carries GC and runtime bookkeeping bits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectHeader {
    /// Runtime role of the object.
    pub kind: ObjectKind,
    /// Global replication identity (0 for purely local middleware objects).
    pub oid: Oid,
    /// Replication cluster index this replica arrived in (device-local).
    pub repl_cluster: u32,
    /// Swap-cluster this object belongs to; `0` is the paper's
    /// *swap-cluster-0* (globals and middleware-local objects).
    pub swap_cluster: u32,
    /// Pinned objects are GC roots (middleware anchors).
    pub pinned: bool,
    /// When true, the object's death is reported via
    /// [`crate::Heap::take_finalized`] after the sweep that frees it.
    pub finalize: bool,
    /// Mark bit (collector-internal).
    pub(crate) marked: bool,
}

impl ObjectHeader {
    #[inline]
    pub(crate) fn new(kind: ObjectKind) -> Self {
        ObjectHeader {
            kind,
            oid: Oid(0),
            repl_cluster: 0,
            swap_cluster: 0,
            pinned: false,
            finalize: false,
            marked: false,
        }
    }
}

/// Fields stored inline in the object for the common small layouts.
///
/// Figure-5 application nodes have 3–4 fields and proxies have 3; storing
/// those in the object itself (which itself lives inline in an arena slab
/// slot) means allocating such an object touches **zero** heap allocations.
/// Larger or variadic layouts spill to a `Vec` exactly once.
const INLINE_FIELDS: usize = 4;

/// Storage for an object's field values: inline array for small layouts,
/// spilled `Vec` beyond [`INLINE_FIELDS`] slots.
#[derive(Debug, Clone)]
pub(crate) enum FieldStore {
    /// Up to [`INLINE_FIELDS`] values stored inside the object.
    Inline {
        /// Number of occupied slots (prefix of `slots`).
        len: u8,
        /// Backing array; slots at `len..` are `Null` and unobservable.
        slots: [Value; INLINE_FIELDS],
    },
    /// Layouts wider than the inline array.
    Spilled(Vec<Value>),
}

const NULL_SLOTS: [Value; INLINE_FIELDS] = [Value::Null, Value::Null, Value::Null, Value::Null];

impl FieldStore {
    /// `count` null fields.
    #[inline]
    pub(crate) fn with_nulls(count: usize) -> Self {
        if count <= INLINE_FIELDS {
            FieldStore::Inline {
                len: count as u8,
                slots: NULL_SLOTS,
            }
        } else {
            FieldStore::Spilled(vec![Value::Null; count])
        }
    }

    #[inline]
    pub(crate) fn len(&self) -> usize {
        match self {
            FieldStore::Inline { len, .. } => *len as usize,
            FieldStore::Spilled(v) => v.len(),
        }
    }

    #[inline]
    pub(crate) fn as_slice(&self) -> &[Value] {
        match self {
            FieldStore::Inline { len, slots } => &slots[..*len as usize],
            FieldStore::Spilled(v) => v,
        }
    }

    #[inline]
    pub(crate) fn get(&self, index: usize) -> Option<&Value> {
        self.as_slice().get(index)
    }

    #[inline]
    pub(crate) fn get_mut(&mut self, index: usize) -> Option<&mut Value> {
        match self {
            FieldStore::Inline { len, slots } => slots[..*len as usize].get_mut(index),
            FieldStore::Spilled(v) => v.get_mut(index),
        }
    }

    /// Append one value, spilling to a `Vec` when the inline array is full.
    pub(crate) fn push(&mut self, value: Value) {
        match self {
            FieldStore::Inline { len, slots } if (*len as usize) < INLINE_FIELDS => {
                slots[*len as usize] = value;
                *len += 1;
            }
            FieldStore::Inline { len, slots } => {
                let mut spilled = Vec::with_capacity(*len as usize + 1);
                spilled.extend(slots.iter_mut().map(std::mem::take));
                spilled.push(value);
                *self = FieldStore::Spilled(spilled);
            }
            FieldStore::Spilled(v) => v.push(value),
        }
    }
}

impl PartialEq for FieldStore {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

/// An object stored in a heap slot: header + class + field values.
#[derive(Debug, Clone, PartialEq)]
pub struct Object {
    pub(crate) header: ObjectHeader,
    pub(crate) class: ClassId,
    pub(crate) fields: FieldStore,
    /// Cached byte size currently charged to the accounting.
    pub(crate) charged_size: usize,
}

/// Fixed per-object overhead charged by the accounting (slot + header),
/// on top of 16 bytes per field and variable payload bytes.
pub(crate) const OBJECT_BASE_SIZE: usize = 24;
/// Bytes charged per field slot.
pub(crate) const FIELD_SLOT_SIZE: usize = 16;

impl Object {
    #[inline]
    pub(crate) fn new(class: ClassId, kind: ObjectKind, field_count: usize) -> Self {
        Object {
            header: ObjectHeader::new(kind),
            class,
            fields: FieldStore::with_nulls(field_count),
            charged_size: 0,
        }
    }

    /// Construct a detached object for arena materialization: the zero-copy
    /// decode path builds objects field by field *outside* any heap and
    /// hands the finished value to [`crate::Heap::adopt`], which charges the
    /// whole object against capacity in one step.
    ///
    /// All fields start `Null`; fill them with [`Object::set_raw_field`].
    #[inline]
    pub fn with_field_count(class: ClassId, kind: ObjectKind, field_count: usize) -> Self {
        Object::new(class, kind, field_count)
    }

    /// Write a raw field slot on a detached object — no layout type
    /// checking and no accounting, because the object is not charged to any
    /// heap yet ([`crate::Heap::adopt`] charges its final size). Returns
    /// `false` when `index` is out of range.
    #[inline]
    pub fn set_raw_field(&mut self, index: usize, value: Value) -> bool {
        match self.fields.get_mut(index) {
            Some(slot) => {
                *slot = value;
                true
            }
            None => false,
        }
    }

    /// The object's header (kind, oid, cluster tags, GC bits).
    #[inline]
    pub fn header(&self) -> &ObjectHeader {
        &self.header
    }

    /// Mutable access to the header tag words.
    #[inline]
    pub fn header_mut(&mut self) -> &mut ObjectHeader {
        &mut self.header
    }

    /// The object's class.
    #[inline]
    pub fn class(&self) -> ClassId {
        self.class
    }

    /// The raw field values in layout order.
    #[inline]
    pub fn fields(&self) -> &[Value] {
        self.fields.as_slice()
    }

    /// Runtime role shorthand.
    #[inline]
    pub fn kind(&self) -> ObjectKind {
        self.header.kind
    }

    /// Byte size this object should be charged: base + field slots + payloads.
    pub fn size(&self) -> usize {
        let fields = self.fields.as_slice();
        OBJECT_BASE_SIZE
            + FIELD_SLOT_SIZE * fields.len()
            + fields.iter().map(Value::payload_size).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn size_counts_base_fields_and_payload() {
        let mut o = Object::new(ClassId(0), ObjectKind::App, 3);
        assert_eq!(o.size(), OBJECT_BASE_SIZE + 3 * FIELD_SLOT_SIZE);
        assert!(o.set_raw_field(0, Value::Bytes(Bytes::from(vec![0u8; 40]))));
        assert_eq!(o.size(), OBJECT_BASE_SIZE + 3 * FIELD_SLOT_SIZE + 40);
        assert!(!o.set_raw_field(3, Value::Null), "out of range is reported");
    }

    #[test]
    fn header_defaults_are_inert() {
        let h = ObjectHeader::new(ObjectKind::SwapProxy);
        assert_eq!(h.kind, ObjectKind::SwapProxy);
        assert_eq!(h.swap_cluster, 0);
        assert!(!h.pinned && !h.finalize && !h.marked);
    }

    #[test]
    fn kind_names_are_distinct() {
        use std::collections::HashSet;
        let names: HashSet<_> = [
            ObjectKind::App,
            ObjectKind::FaultProxy,
            ObjectKind::SwapProxy,
            ObjectKind::Replacement,
        ]
        .iter()
        .map(|k| k.name())
        .collect();
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn field_store_spills_past_inline_capacity() {
        let mut s = FieldStore::with_nulls(2);
        assert!(matches!(s, FieldStore::Inline { .. }));
        assert_eq!(s.len(), 2);
        s.push(Value::Int(1));
        s.push(Value::Int(2));
        assert!(matches!(s, FieldStore::Inline { .. }), "4 fit inline");
        s.push(Value::Int(3));
        assert!(matches!(s, FieldStore::Spilled(_)), "5th spills");
        assert_eq!(
            s.as_slice(),
            &[
                Value::Null,
                Value::Null,
                Value::Int(1),
                Value::Int(2),
                Value::Int(3)
            ]
        );
        // Wide layouts spill from the start.
        let wide = FieldStore::with_nulls(9);
        assert!(matches!(wide, FieldStore::Spilled(_)));
        assert_eq!(wide.len(), 9);
        // Equality is by content, not representation.
        let mut inline = FieldStore::with_nulls(0);
        for _ in 0..3 {
            inline.push(Value::Null);
        }
        assert_eq!(inline, FieldStore::with_nulls(3));
    }
}
