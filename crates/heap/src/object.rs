//! Heap objects and their headers.

use crate::{ClassId, Value};
use std::fmt;

/// Global object identity assigned by the replication server.
///
/// Replicas of the same master object on different devices share an `Oid`;
/// it is also the identity the swap codec serializes, and what the paper's
/// overloaded `==` ultimately compares across swap-cluster-proxies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Oid(pub u64);

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "oid:{}", self.0)
    }
}

/// What role an object plays in the middleware, the moral equivalent of the
/// `obicomp`-generated class a reference actually points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObjectKind {
    /// A plain application object (replica).
    App,
    /// An object-fault proxy: invoking it triggers replication of the target
    /// cluster, after which it is *replaced* and discarded (paper §2).
    FaultProxy,
    /// A swap-cluster-proxy: permanently mediates a reference that crosses a
    /// swap-cluster boundary (paper §3).
    SwapProxy,
    /// A replacement-object standing in for a swapped-out cluster: an array
    /// of references keeping the victim's outbound proxies alive (paper §3).
    Replacement,
}

impl ObjectKind {
    /// Wire name used by diagnostics and the XML codec.
    pub fn name(self) -> &'static str {
        match self {
            ObjectKind::App => "app",
            ObjectKind::FaultProxy => "fault-proxy",
            ObjectKind::SwapProxy => "swap-proxy",
            ObjectKind::Replacement => "replacement",
        }
    }
}

impl fmt::Display for ObjectKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-object header: middleware tag words, mirroring the way a real VM
/// object header carries GC and runtime bookkeeping bits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectHeader {
    /// Runtime role of the object.
    pub kind: ObjectKind,
    /// Global replication identity (0 for purely local middleware objects).
    pub oid: Oid,
    /// Replication cluster index this replica arrived in (device-local).
    pub repl_cluster: u32,
    /// Swap-cluster this object belongs to; `0` is the paper's
    /// *swap-cluster-0* (globals and middleware-local objects).
    pub swap_cluster: u32,
    /// Pinned objects are GC roots (middleware anchors).
    pub pinned: bool,
    /// When true, the object's death is reported via
    /// [`crate::Heap::take_finalized`] after the sweep that frees it.
    pub finalize: bool,
    /// Mark bit (collector-internal).
    pub(crate) marked: bool,
}

impl ObjectHeader {
    pub(crate) fn new(kind: ObjectKind) -> Self {
        ObjectHeader {
            kind,
            oid: Oid(0),
            repl_cluster: 0,
            swap_cluster: 0,
            pinned: false,
            finalize: false,
            marked: false,
        }
    }
}

/// An object stored in a heap slot: header + class + field values.
#[derive(Debug, Clone, PartialEq)]
pub struct Object {
    pub(crate) header: ObjectHeader,
    pub(crate) class: ClassId,
    pub(crate) fields: Vec<Value>,
    /// Cached byte size currently charged to the accounting.
    pub(crate) charged_size: usize,
}

/// Fixed per-object overhead charged by the accounting (slot + header),
/// on top of 16 bytes per field and variable payload bytes.
pub(crate) const OBJECT_BASE_SIZE: usize = 24;
/// Bytes charged per field slot.
pub(crate) const FIELD_SLOT_SIZE: usize = 16;

impl Object {
    pub(crate) fn new(class: ClassId, kind: ObjectKind, field_count: usize) -> Self {
        Object {
            header: ObjectHeader::new(kind),
            class,
            fields: vec![Value::Null; field_count],
            charged_size: 0,
        }
    }

    /// The object's header (kind, oid, cluster tags, GC bits).
    pub fn header(&self) -> &ObjectHeader {
        &self.header
    }

    /// Mutable access to the header tag words.
    pub fn header_mut(&mut self) -> &mut ObjectHeader {
        &mut self.header
    }

    /// The object's class.
    pub fn class(&self) -> ClassId {
        self.class
    }

    /// The raw field values in layout order.
    pub fn fields(&self) -> &[Value] {
        &self.fields
    }

    /// Runtime role shorthand.
    pub fn kind(&self) -> ObjectKind {
        self.header.kind
    }

    /// Byte size this object should be charged: base + field slots + payloads.
    pub fn size(&self) -> usize {
        OBJECT_BASE_SIZE
            + FIELD_SLOT_SIZE * self.fields.len()
            + self.fields.iter().map(Value::payload_size).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn size_counts_base_fields_and_payload() {
        let mut o = Object::new(ClassId(0), ObjectKind::App, 3);
        assert_eq!(o.size(), OBJECT_BASE_SIZE + 3 * FIELD_SLOT_SIZE);
        o.fields[0] = Value::Bytes(Bytes::from(vec![0u8; 40]));
        assert_eq!(o.size(), OBJECT_BASE_SIZE + 3 * FIELD_SLOT_SIZE + 40);
    }

    #[test]
    fn header_defaults_are_inert() {
        let h = ObjectHeader::new(ObjectKind::SwapProxy);
        assert_eq!(h.kind, ObjectKind::SwapProxy);
        assert_eq!(h.swap_cluster, 0);
        assert!(!h.pinned && !h.finalize && !h.marked);
    }

    #[test]
    fn kind_names_are_distinct() {
        use std::collections::HashSet;
        let names: HashSet<_> = [
            ObjectKind::App,
            ObjectKind::FaultProxy,
            ObjectKind::SwapProxy,
            ObjectKind::Replacement,
        ]
        .iter()
        .map(|k| k.name())
        .collect();
        assert_eq!(names.len(), 4);
    }
}
