//! The slab of object slots and its accounting.

use crate::gc::Finalized;
use crate::object::Object;
use crate::weak::WeakTable;
use crate::{ClassId, ClassRegistry, FieldId, HeapError, ObjectKind, Result, Value, WeakRef};
use std::collections::HashMap;
use std::fmt;

/// Generational handle to a heap object.
///
/// A stale handle (its slot was freed, possibly reused) is detected by the
/// generation counter and reported as [`HeapError::InvalidRef`] instead of
/// silently aliasing a new object — the property that makes graph surgery
/// (detach / patch / reload) safe to get wrong loudly during development.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjRef {
    pub(crate) index: u32,
    pub(crate) generation: u32,
}

impl ObjRef {
    /// Slot index; stable for the object's lifetime, reused after free.
    pub fn index(self) -> u32 {
        self.index
    }

    /// Construct a dangling reference for tests.
    #[doc(hidden)]
    pub fn test_dummy(index: u32) -> Self {
        ObjRef {
            index,
            generation: u32::MAX,
        }
    }
}

impl fmt::Display for ObjRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj@{}.{}", self.index, self.generation)
    }
}

#[derive(Debug)]
pub(crate) enum Slot {
    /// Empty slot; `next_generation` is what the next occupant will get.
    Free { next_generation: u32 },
    /// Occupied slot at the given generation.
    Used { generation: u32, obj: Box<Object> },
}

/// The managed heap of one device: slots, globals, pins, weak table,
/// accounting, and the collector (in the `gc` module).
///
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Debug)]
pub struct Heap {
    pub(crate) slots: Vec<Slot>,
    pub(crate) free: Vec<u32>,
    classes: ClassRegistry,
    /// Named global variables — the paper's *swap-cluster-0* roots.
    globals: HashMap<String, Value>,
    /// Extra root handles pinned by the middleware (in addition to the
    /// per-object `pinned` header bit).
    pub(crate) extra_roots: Vec<ObjRef>,
    pub(crate) weak: WeakTable,
    pub(crate) finalized: Vec<Finalized>,
    pub(crate) bytes_used: usize,
    capacity: usize,
    pub(crate) live_objects: usize,
    pub(crate) total_allocs: u64,
    pub(crate) total_frees: u64,
    pub(crate) gc_runs: u64,
    pub(crate) peak_bytes: usize,
}

impl Heap {
    /// Create a heap with the given shared class registry and a hard byte
    /// capacity (the device's memory budget).
    pub fn new(classes: ClassRegistry, capacity: usize) -> Self {
        Heap {
            slots: Vec::new(),
            free: Vec::new(),
            classes,
            globals: HashMap::new(),
            extra_roots: Vec::new(),
            weak: WeakTable::default(),
            finalized: Vec::new(),
            bytes_used: 0,
            capacity,
            live_objects: 0,
            total_allocs: 0,
            total_frees: 0,
            gc_runs: 0,
            peak_bytes: 0,
        }
    }

    /// The shared class registry.
    pub fn classes(&self) -> &ClassRegistry {
        &self.classes
    }

    /// Hard capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Change the capacity (context management may adapt budgets at runtime).
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
    }

    /// Bytes currently charged to live objects.
    pub fn bytes_used(&self) -> usize {
        self.bytes_used
    }

    /// Number of live objects.
    pub fn live_objects(&self) -> usize {
        self.live_objects
    }

    /// Allocate an object of `class` with the given runtime `kind`, all
    /// fields `Null`.
    ///
    /// # Errors
    ///
    /// * [`HeapError::NoSuchClass`] for an unknown class.
    /// * [`HeapError::OutOfMemory`] when the allocation would exceed
    ///   capacity. The heap is left unchanged; the middleware is expected to
    ///   swap out a victim and retry.
    pub fn alloc(&mut self, class: ClassId, kind: ObjectKind) -> Result<ObjRef> {
        let field_count = self.classes.class(class)?.field_count();
        let mut obj = Object::new(class, kind, field_count);
        let size = obj.size();
        if self.bytes_used + size > self.capacity {
            return Err(HeapError::OutOfMemory {
                requested: size,
                used: self.bytes_used,
                capacity: self.capacity,
            });
        }
        obj.charged_size = size;
        self.bytes_used += size;
        self.peak_bytes = self.peak_bytes.max(self.bytes_used);
        self.live_objects += 1;
        self.total_allocs += 1;
        let r = match self.free.pop() {
            Some(index) => {
                let generation = match &self.slots[index as usize] {
                    Slot::Free { next_generation } => *next_generation,
                    Slot::Used { .. } => unreachable!("free list points at used slot"),
                };
                self.slots[index as usize] = Slot::Used {
                    generation,
                    obj: Box::new(obj),
                };
                ObjRef { index, generation }
            }
            None => {
                let index = self.slots.len() as u32;
                self.slots.push(Slot::Used {
                    generation: 0,
                    obj: Box::new(obj),
                });
                ObjRef {
                    index,
                    generation: 0,
                }
            }
        };
        Ok(r)
    }

    /// Immutable access to an object.
    ///
    /// # Errors
    ///
    /// [`HeapError::InvalidRef`] for dangling or stale handles.
    pub fn get(&self, obj: ObjRef) -> Result<&Object> {
        match self.slots.get(obj.index as usize) {
            Some(Slot::Used { generation, obj: o }) if *generation == obj.generation => Ok(o),
            _ => Err(HeapError::InvalidRef { obj }),
        }
    }

    /// Mutable access to an object.
    ///
    /// # Errors
    ///
    /// [`HeapError::InvalidRef`] for dangling or stale handles.
    pub fn get_mut(&mut self, obj: ObjRef) -> Result<&mut Object> {
        match self.slots.get_mut(obj.index as usize) {
            Some(Slot::Used { generation, obj: o }) if *generation == obj.generation => Ok(o),
            _ => Err(HeapError::InvalidRef { obj }),
        }
    }

    /// Whether the handle refers to a live object.
    pub fn is_live(&self, obj: ObjRef) -> bool {
        self.get(obj).is_ok()
    }

    /// Read a field by id.
    ///
    /// # Errors
    ///
    /// [`HeapError::InvalidRef`] or [`HeapError::FieldIndex`].
    pub fn field(&self, obj: ObjRef, field: FieldId) -> Result<&Value> {
        let o = self.get(obj)?;
        o.fields.get(field.index()).ok_or_else(|| {
            let class = self
                .classes
                .class(o.class)
                .map(|c| c.name().to_string())
                .unwrap_or_default();
            HeapError::FieldIndex {
                class,
                index: field.0,
            }
        })
    }

    /// Read a field by name.
    ///
    /// # Errors
    ///
    /// [`HeapError::InvalidRef`] or [`HeapError::NoSuchField`].
    pub fn field_by_name(&self, obj: ObjRef, name: &str) -> Result<&Value> {
        let o = self.get(obj)?;
        let id = self.classes.class(o.class)?.field_id(name)?;
        self.field(obj, id)
    }

    /// Write a field by id, with dynamic type checking against the class
    /// layout and accounting of payload size changes.
    ///
    /// # Errors
    ///
    /// [`HeapError::InvalidRef`], [`HeapError::FieldIndex`],
    /// [`HeapError::TypeMismatch`], or [`HeapError::OutOfMemory`] when a
    /// larger payload would exceed capacity.
    pub fn set_field(&mut self, obj: ObjRef, field: FieldId, value: Value) -> Result<()> {
        let capacity = self.capacity;
        let class_id = self.get(obj)?.class;
        let descriptor = self.classes.class(class_id)?;
        let kind = descriptor.field(field)?.kind();
        if !kind.accepts(&value) {
            return Err(HeapError::TypeMismatch {
                expected: kind.wire_name(),
                found: value.kind_name(),
            });
        }
        // `descriptor.field(...)` above guarantees the index is in range,
        // so no error (and no eager class-name clone) is needed here.
        let bytes_used = self.bytes_used;
        let o = self.get_mut(obj)?;
        #[allow(clippy::disallowed_methods)]
        let slot = o
            .fields
            .get_mut(field.index())
            .expect("field id validated against the class layout");
        let old_payload = slot.payload_size();
        let new_payload = value.payload_size();
        if new_payload > old_payload {
            let growth = new_payload - old_payload;
            if bytes_used + growth > capacity {
                return Err(HeapError::OutOfMemory {
                    requested: growth,
                    used: bytes_used,
                    capacity,
                });
            }
        }
        *slot = value;
        o.charged_size = o.charged_size + new_payload - old_payload;
        self.bytes_used = bytes_used + new_payload - old_payload;
        self.peak_bytes = self.peak_bytes.max(self.bytes_used);
        Ok(())
    }

    /// Write a field by name. See [`Heap::set_field`].
    ///
    /// # Errors
    ///
    /// Same as [`Heap::set_field`], plus [`HeapError::NoSuchField`].
    pub fn set_field_by_name(&mut self, obj: ObjRef, name: &str, value: Value) -> Result<()> {
        let class_id = self.get(obj)?.class;
        let id = self.classes.class(class_id)?.field_id(name)?;
        self.set_field(obj, id, value)
    }

    /// Fast path for graph surgery: overwrite a field with a payload-free
    /// value (`Null`, `Int`, `Bool`, `Double`, `Ref`) when the current
    /// value is also payload-free — no accounting can change, so the class
    /// lookup and byte bookkeeping are skipped. Falls back to
    /// [`Heap::set_any_field`] when payloads are involved.
    ///
    /// # Errors
    ///
    /// [`HeapError::InvalidRef`] or [`HeapError::FieldIndex`].
    pub fn set_slot_fast(&mut self, obj: ObjRef, index: usize, value: Value) -> Result<()> {
        if value.payload_size() != 0 {
            return self.set_any_field(obj, index, value);
        }
        let o = self.get_mut(obj)?;
        match o.fields.get_mut(index) {
            Some(slot) if slot.payload_size() == 0 => {
                *slot = value;
                Ok(())
            }
            Some(_) => self.set_any_field(obj, index, value),
            None => Err(HeapError::FieldIndex {
                class: String::new(),
                index: index.min(u16::MAX as usize) as u16,
            }),
        }
    }

    /// Write a field by raw index without layout type checking, covering
    /// both declared fields and the extras of variadic objects. This is the
    /// middleware's graph-surgery primitive (proxy replacement patches any
    /// slot that held a reference); accounting is still maintained.
    ///
    /// # Errors
    ///
    /// [`HeapError::InvalidRef`], [`HeapError::FieldIndex`] when the index
    /// is beyond the object's current fields, or [`HeapError::OutOfMemory`]
    /// when a larger payload would exceed capacity.
    pub fn set_any_field(&mut self, obj: ObjRef, index: usize, value: Value) -> Result<()> {
        let capacity = self.capacity;
        let bytes_used = self.bytes_used;
        let class_id = self.get(obj)?.class;
        let class_name = self.classes.class(class_id)?.name().to_string();
        let o = self.get_mut(obj)?;
        let slot = o.fields.get_mut(index).ok_or(HeapError::FieldIndex {
            class: class_name,
            index: index.min(u16::MAX as usize) as u16,
        })?;
        let old_payload = slot.payload_size();
        let new_payload = value.payload_size();
        if new_payload > old_payload && bytes_used + (new_payload - old_payload) > capacity {
            return Err(HeapError::OutOfMemory {
                requested: new_payload - old_payload,
                used: bytes_used,
                capacity,
            });
        }
        *slot = value;
        o.charged_size = o.charged_size + new_payload - old_payload;
        self.bytes_used = bytes_used + new_payload - old_payload;
        self.peak_bytes = self.peak_bytes.max(self.bytes_used);
        Ok(())
    }

    /// Append an extra (untyped) field to a variadic object. This backs the
    /// replacement-object, which the paper describes as "simply an array of
    /// references" holding the victim cluster's outbound proxies alive.
    ///
    /// # Errors
    ///
    /// [`HeapError::InvalidRef`], [`HeapError::TypeMismatch`] when the class
    /// is not variadic, or [`HeapError::OutOfMemory`] when the extra slot
    /// would exceed capacity.
    pub fn push_extra(&mut self, obj: ObjRef, value: Value) -> Result<()> {
        let capacity = self.capacity;
        let class_id = self.get(obj)?.class;
        if !self.classes.class(class_id)?.is_variadic() {
            return Err(HeapError::TypeMismatch {
                expected: "a variadic class",
                found: "a fixed-layout class",
            });
        }
        let growth = crate::object::FIELD_SLOT_SIZE + value.payload_size();
        if self.bytes_used + growth > capacity {
            return Err(HeapError::OutOfMemory {
                requested: growth,
                used: self.bytes_used,
                capacity,
            });
        }
        let o = self.get_mut(obj)?;
        o.fields.push(value);
        o.charged_size += growth;
        self.bytes_used += growth;
        self.peak_bytes = self.peak_bytes.max(self.bytes_used);
        Ok(())
    }

    /// The extra (beyond-layout) fields of a variadic object.
    ///
    /// # Errors
    ///
    /// [`HeapError::InvalidRef`].
    pub fn extra_fields(&self, obj: ObjRef) -> Result<&[Value]> {
        let o = self.get(obj)?;
        let layout = self.classes.class(o.class)?.field_count();
        Ok(&o.fields[layout..])
    }

    /// Read a global variable (swap-cluster-0).
    ///
    /// # Errors
    ///
    /// [`HeapError::NoSuchGlobal`] when undefined.
    pub fn global(&self, name: &str) -> Result<&Value> {
        self.globals
            .get(name)
            .ok_or_else(|| HeapError::NoSuchGlobal {
                name: name.to_string(),
            })
    }

    /// Set (or define) a global variable. Globals are GC roots.
    pub fn set_global(&mut self, name: impl Into<String>, value: Value) {
        self.globals.insert(name.into(), value);
    }

    /// Remove a global variable, returning its previous value.
    pub fn remove_global(&mut self, name: &str) -> Option<Value> {
        self.globals.remove(name)
    }

    /// Iterate over global variables.
    pub fn globals(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.globals.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Pin an extra root handle. The middleware uses this for anchors that
    /// are not reachable from any global (e.g. tables under construction).
    pub fn add_root(&mut self, obj: ObjRef) {
        self.extra_roots.push(obj);
    }

    /// Remove a previously pinned extra root (all occurrences).
    pub fn remove_root(&mut self, obj: ObjRef) {
        self.extra_roots.retain(|r| *r != obj);
    }

    /// Create a weak reference to `obj`.
    ///
    /// # Errors
    ///
    /// [`HeapError::InvalidRef`] if `obj` is not live.
    pub fn weak_ref(&mut self, obj: ObjRef) -> Result<WeakRef> {
        self.get(obj)?;
        Ok(self.weak.create(obj))
    }

    /// Resolve a weak reference, `None` once the target has been collected.
    pub fn weak_get(&self, weak: WeakRef) -> Option<ObjRef> {
        let target = self.weak.get(weak)?;
        self.is_live(target).then_some(target)
    }

    /// Release a weak reference slot.
    pub fn weak_drop(&mut self, weak: WeakRef) {
        self.weak.drop_ref(weak);
    }

    /// Drain the records of finalizable objects freed by collections since
    /// the last call. This is the C#-finalizer channel of the paper: the
    /// SwappingManager learns here that a replacement-object died and that
    /// the storing device may drop the blob.
    pub fn take_finalized(&mut self) -> Vec<Finalized> {
        std::mem::take(&mut self.finalized)
    }

    /// Iterate over the handles of all live objects (diagnostics, tests,
    /// and the victim-selection heuristics that scan the heap).
    pub fn iter_live(&self) -> impl Iterator<Item = ObjRef> + '_ {
        self.slots.iter().enumerate().filter_map(|(i, s)| match s {
            Slot::Used { generation, .. } => Some(ObjRef {
                index: i as u32,
                generation: *generation,
            }),
            Slot::Free { .. } => None,
        })
    }

    /// Free a slot immediately (collector and middleware-internal).
    pub(crate) fn free_slot(&mut self, index: u32) {
        if let Slot::Used { generation, obj } = &self.slots[index as usize] {
            let next_generation = generation.wrapping_add(1);
            self.bytes_used -= obj.charged_size;
            self.live_objects -= 1;
            self.total_frees += 1;
            self.slots[index as usize] = Slot::Free { next_generation };
            self.free.push(index);
        }
    }
}

#[cfg(test)]
mod tests {
    // Tests assert on known-good setups; panicking on failure is the point.
    #![allow(clippy::disallowed_methods)]
    use super::*;
    use crate::ClassBuilder;
    use bytes::Bytes;

    fn node_heap(capacity: usize) -> (Heap, ClassId) {
        let mut reg = ClassRegistry::new();
        let node = reg.register(
            ClassBuilder::new("Node")
                .ref_field("next")
                .int_field("n")
                .bytes_field("payload"),
        );
        (Heap::new(reg, capacity), node)
    }

    #[test]
    fn alloc_get_set_roundtrip() {
        let (mut heap, node) = node_heap(4096);
        let a = heap.alloc(node, ObjectKind::App).unwrap();
        heap.set_field_by_name(a, "n", Value::Int(9)).unwrap();
        assert_eq!(heap.field_by_name(a, "n").unwrap(), &Value::Int(9));
        assert_eq!(heap.get(a).unwrap().kind(), ObjectKind::App);
    }

    #[test]
    fn stale_handle_detected_after_free_and_reuse() {
        let (mut heap, node) = node_heap(4096);
        let a = heap.alloc(node, ObjectKind::App).unwrap();
        heap.free_slot(a.index);
        assert!(matches!(heap.get(a), Err(HeapError::InvalidRef { .. })));
        let b = heap.alloc(node, ObjectKind::App).unwrap();
        assert_eq!(b.index, a.index, "slot should be reused");
        assert_ne!(b.generation, a.generation);
        assert!(heap.get(a).is_err());
        assert!(heap.get(b).is_ok());
    }

    #[test]
    fn allocation_respects_capacity() {
        let (mut heap, node) = node_heap(100);
        // One Node is 24 + 3*16 = 72 bytes.
        assert!(heap.alloc(node, ObjectKind::App).is_ok());
        let err = heap.alloc(node, ObjectKind::App).unwrap_err();
        assert!(matches!(err, HeapError::OutOfMemory { .. }));
        assert_eq!(heap.live_objects(), 1, "failed alloc must not leak");
    }

    #[test]
    fn payload_growth_is_charged_and_capped() {
        let (mut heap, node) = node_heap(200);
        let a = heap.alloc(node, ObjectKind::App).unwrap();
        let before = heap.bytes_used();
        heap.set_field_by_name(a, "payload", Value::Bytes(Bytes::from(vec![0u8; 64])))
            .unwrap();
        assert_eq!(heap.bytes_used(), before + 64);
        // Shrink gives bytes back.
        heap.set_field_by_name(a, "payload", Value::Bytes(Bytes::from(vec![0u8; 8])))
            .unwrap();
        assert_eq!(heap.bytes_used(), before + 8);
        // Growing past capacity fails and leaves the old value in place.
        let err = heap
            .set_field_by_name(a, "payload", Value::Bytes(Bytes::from(vec![0u8; 4096])))
            .unwrap_err();
        assert!(matches!(err, HeapError::OutOfMemory { .. }));
        assert_eq!(heap.field_by_name(a, "payload").unwrap().payload_size(), 8);
    }

    #[test]
    fn field_type_checking_rejects_wrong_variant() {
        let (mut heap, node) = node_heap(4096);
        let a = heap.alloc(node, ObjectKind::App).unwrap();
        let err = heap
            .set_field_by_name(a, "next", Value::Int(1))
            .unwrap_err();
        assert!(matches!(err, HeapError::TypeMismatch { .. }));
        // Null is accepted everywhere.
        heap.set_field_by_name(a, "next", Value::Null).unwrap();
    }

    #[test]
    fn globals_define_read_remove() {
        let (mut heap, node) = node_heap(4096);
        let a = heap.alloc(node, ObjectKind::App).unwrap();
        heap.set_global("head", Value::Ref(a));
        assert_eq!(heap.global("head").unwrap(), &Value::Ref(a));
        assert!(matches!(
            heap.global("tail"),
            Err(HeapError::NoSuchGlobal { .. })
        ));
        assert_eq!(heap.remove_global("head"), Some(Value::Ref(a)));
        assert!(heap.global("head").is_err());
    }

    #[test]
    fn weak_refs_resolve_until_target_freed() {
        let (mut heap, node) = node_heap(4096);
        let a = heap.alloc(node, ObjectKind::App).unwrap();
        let w = heap.weak_ref(a).unwrap();
        assert_eq!(heap.weak_get(w), Some(a));
        heap.free_slot(a.index);
        assert_eq!(heap.weak_get(w), None);
    }

    #[test]
    fn weak_ref_to_dead_object_fails() {
        let (mut heap, node) = node_heap(4096);
        let a = heap.alloc(node, ObjectKind::App).unwrap();
        heap.free_slot(a.index);
        assert!(heap.weak_ref(a).is_err());
    }

    #[test]
    fn iter_live_reports_exactly_live_handles() {
        let (mut heap, node) = node_heap(4096);
        let a = heap.alloc(node, ObjectKind::App).unwrap();
        let b = heap.alloc(node, ObjectKind::App).unwrap();
        heap.free_slot(a.index);
        let live: Vec<_> = heap.iter_live().collect();
        assert_eq!(live, vec![b]);
    }

    #[test]
    fn variadic_push_extra_and_accounting() {
        let mut reg = ClassRegistry::new();
        let node = reg.register(ClassBuilder::new("Node").int_field("x"));
        let arr = reg.register(ClassBuilder::new("Array").variadic());
        let mut heap = Heap::new(reg, 4096);
        let n = heap.alloc(node, ObjectKind::App).unwrap();
        let a = heap.alloc(arr, ObjectKind::Replacement).unwrap();
        let before = heap.bytes_used();
        heap.push_extra(a, Value::Ref(n)).unwrap();
        heap.push_extra(a, Value::Ref(n)).unwrap();
        assert_eq!(heap.extra_fields(a).unwrap().len(), 2);
        assert!(heap.bytes_used() > before);
        // Non-variadic classes refuse extras.
        assert!(matches!(
            heap.push_extra(n, Value::Int(1)),
            Err(HeapError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn push_extra_respects_capacity() {
        let mut reg = ClassRegistry::new();
        let arr = reg.register(ClassBuilder::new("Array").variadic());
        let mut heap = Heap::new(reg, 40); // room for base (24) + one slot (16)
        let a = heap.alloc(arr, ObjectKind::Replacement).unwrap();
        heap.push_extra(a, Value::Int(1)).unwrap();
        assert!(matches!(
            heap.push_extra(a, Value::Int(2)),
            Err(HeapError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn display_formats_are_stable() {
        let r = ObjRef {
            index: 3,
            generation: 1,
        };
        assert_eq!(r.to_string(), "obj@3.1");
    }
}
