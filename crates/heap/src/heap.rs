//! The slab arena of object slots and its accounting.
//!
//! Objects live *inline* in generation-tagged slots grouped into fixed-size
//! slabs (`Vec<Vec<Slot>>`): handle→slot resolution is a shift and a mask,
//! not a map probe, growth never moves existing objects (only whole new
//! slabs are added), and a freed slot is threaded onto an intrusive
//! free list through its own `next_free` word — no side allocation at all
//! on the alloc/free path for small layouts (see
//! [`crate::object`]'s inline field store).

use crate::gc::Finalized;
use crate::object::Object;
use crate::weak::WeakTable;
use crate::{ClassId, ClassRegistry, FieldId, HeapError, ObjectKind, Result, Value, WeakRef};
use std::collections::HashMap;
use std::fmt;

/// log2 of the number of slots per slab.
const SLAB_SHIFT: u32 = 9;
/// Slots per slab (512): big enough to amortize slab growth, small enough
/// that a fresh device heap stays cheap.
const SLAB_CAPACITY: usize = 1 << SLAB_SHIFT;
const SLAB_MASK: u32 = SLAB_CAPACITY as u32 - 1;
/// Free-list terminator for the intrusive `next_free` chain.
const NO_SLOT: u32 = u32::MAX;

/// Generational handle to a heap object.
///
/// A stale handle (its slot was freed, possibly reused) is detected by the
/// generation counter and reported as [`HeapError::InvalidRef`] instead of
/// silently aliasing a new object — the property that makes graph surgery
/// (detach / patch / reload) safe to get wrong loudly during development.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjRef {
    pub(crate) index: u32,
    pub(crate) generation: u32,
}

impl ObjRef {
    /// Slot index; stable for the object's lifetime, reused after free.
    pub fn index(self) -> u32 {
        self.index
    }

    /// Construct a dangling reference for tests.
    #[doc(hidden)]
    pub fn test_dummy(index: u32) -> Self {
        ObjRef {
            index,
            generation: u32::MAX,
        }
    }
}

impl fmt::Display for ObjRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj@{}.{}", self.index, self.generation)
    }
}

/// One arena slot: the generation the slot is currently at, plus either the
/// object stored inline or the free-list link.
#[derive(Debug)]
pub(crate) struct Slot {
    /// Generation of the current occupant; bumped when the slot is freed,
    /// so handles minted before the free never match again.
    pub(crate) generation: u32,
    pub(crate) body: SlotBody,
}

#[derive(Debug)]
pub(crate) enum SlotBody {
    /// Empty slot, threaded on the intrusive free list.
    Free { next_free: u32 },
    /// Occupied slot: the object lives inline in the slab.
    Used(Object),
}

/// Resolve a slot index against a slab table (free function so the GC can
/// borrow the slabs while mutating the weak table).
pub(crate) fn slot_at(slabs: &[Vec<Slot>], index: u32) -> Option<&Slot> {
    slabs
        .get((index >> SLAB_SHIFT) as usize)?
        .get((index & SLAB_MASK) as usize)
}

/// The managed heap of one device: slab arena, globals, pins, weak table,
/// accounting, and the collector (in the `gc` module).
///
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Debug)]
pub struct Heap {
    /// Slab table. A slab never moves or shrinks once pushed, so `&Object`
    /// stability matches the old boxed-slot representation.
    pub(crate) slabs: Vec<Vec<Slot>>,
    /// Total slots ever created (fresh allocations extend the tail slab).
    pub(crate) slot_count: u32,
    /// Head of the intrusive LIFO free list ([`NO_SLOT`] when empty).
    pub(crate) free_head: u32,
    classes: ClassRegistry,
    /// Named global variables — the paper's *swap-cluster-0* roots.
    globals: HashMap<String, Value>,
    /// Extra root handles pinned by the middleware (in addition to the
    /// per-object `pinned` header bit).
    pub(crate) extra_roots: Vec<ObjRef>,
    pub(crate) weak: WeakTable,
    pub(crate) finalized: Vec<Finalized>,
    pub(crate) bytes_used: usize,
    capacity: usize,
    pub(crate) live_objects: usize,
    pub(crate) total_allocs: u64,
    pub(crate) total_frees: u64,
    pub(crate) gc_runs: u64,
    pub(crate) peak_bytes: usize,
}

impl Heap {
    /// Create a heap with the given shared class registry and a hard byte
    /// capacity (the device's memory budget).
    pub fn new(classes: ClassRegistry, capacity: usize) -> Self {
        Heap {
            slabs: Vec::new(),
            slot_count: 0,
            free_head: NO_SLOT,
            classes,
            globals: HashMap::new(),
            extra_roots: Vec::new(),
            weak: WeakTable::default(),
            finalized: Vec::new(),
            bytes_used: 0,
            capacity,
            live_objects: 0,
            total_allocs: 0,
            total_frees: 0,
            gc_runs: 0,
            peak_bytes: 0,
        }
    }

    /// The shared class registry.
    pub fn classes(&self) -> &ClassRegistry {
        &self.classes
    }

    /// Hard capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Change the capacity (context management may adapt budgets at runtime).
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
    }

    /// Bytes currently charged to live objects.
    pub fn bytes_used(&self) -> usize {
        self.bytes_used
    }

    /// Number of live objects.
    pub fn live_objects(&self) -> usize {
        self.live_objects
    }

    #[inline]
    pub(crate) fn slot(&self, index: u32) -> Option<&Slot> {
        slot_at(&self.slabs, index)
    }

    #[inline]
    fn slot_mut(&mut self, index: u32) -> Option<&mut Slot> {
        self.slabs
            .get_mut((index >> SLAB_SHIFT) as usize)?
            .get_mut((index & SLAB_MASK) as usize)
    }

    /// Enumerate every slot with its index (collector-internal).
    pub(crate) fn enumerate_slots(&self) -> impl Iterator<Item = (u32, &Slot)> + '_ {
        self.slabs.iter().enumerate().flat_map(|(si, slab)| {
            slab.iter()
                .enumerate()
                .map(move |(i, s)| (((si << SLAB_SHIFT) | i) as u32, s))
        })
    }

    /// Put a finished object into a slot: pop the free list (LIFO, so the
    /// reuse order matches the old `Vec<u32>` free stack exactly) or extend
    /// the tail slab.
    fn place(&mut self, obj: Object) -> ObjRef {
        if self.free_head != NO_SLOT {
            let index = self.free_head;
            let slab = &mut self.slabs[(index >> SLAB_SHIFT) as usize];
            let slot = &mut slab[(index & SLAB_MASK) as usize];
            self.free_head = match slot.body {
                SlotBody::Free { next_free } => next_free,
                SlotBody::Used(_) => unreachable!("free list points at a used slot"),
            };
            slot.body = SlotBody::Used(obj);
            return ObjRef {
                index,
                generation: slot.generation,
            };
        }
        let index = self.slot_count;
        let slab_index = (index >> SLAB_SHIFT) as usize;
        if slab_index == self.slabs.len() {
            self.slabs.push(Vec::with_capacity(SLAB_CAPACITY));
        }
        self.slabs[slab_index].push(Slot {
            generation: 0,
            body: SlotBody::Used(obj),
        });
        self.slot_count += 1;
        ObjRef {
            index,
            generation: 0,
        }
    }

    /// Pre-size the arena so the next `additional` fresh allocations extend
    /// existing slabs without growing the slab table mid-stream. The decode
    /// path calls this with the frame's object count before materializing a
    /// reloaded cluster.
    pub fn reserve_slots(&mut self, additional: usize) {
        let mut spare = self.slabs.len() * SLAB_CAPACITY - self.slot_count as usize;
        while spare < additional {
            self.slabs.push(Vec::with_capacity(SLAB_CAPACITY));
            spare += SLAB_CAPACITY;
        }
    }

    /// Allocate an object of `class` with the given runtime `kind`, all
    /// fields `Null`.
    ///
    /// # Errors
    ///
    /// * [`HeapError::NoSuchClass`] for an unknown class.
    /// * [`HeapError::OutOfMemory`] when the allocation would exceed
    ///   capacity. The heap is left unchanged; the middleware is expected to
    ///   swap out a victim and retry.
    pub fn alloc(&mut self, class: ClassId, kind: ObjectKind) -> Result<ObjRef> {
        let field_count = self.classes.class(class)?.field_count();
        let obj = Object::new(class, kind, field_count);
        self.adopt(obj)
    }

    /// Insert a detached object (built with [`Object::with_field_count`] and
    /// [`Object::set_raw_field`]) into the arena, charging its full size —
    /// base, field slots *and* payloads — against capacity in one step.
    ///
    /// This is the decode-into-arena entry point: the wire decoder fills an
    /// `Object` straight from the frame and adopts it, instead of allocating
    /// null fields and re-writing every slot through the accounting. Like
    /// the graph-surgery primitive [`Heap::set_any_field`], adoption does
    /// not type-check field values against the class layout; it does check
    /// that the field *count* matches (variadic classes may exceed it).
    ///
    /// # Errors
    ///
    /// * [`HeapError::NoSuchClass`] for an unknown class.
    /// * [`HeapError::TypeMismatch`] when the field count does not fit the
    ///   class layout.
    /// * [`HeapError::OutOfMemory`] when the object would exceed capacity;
    ///   the heap is left unchanged.
    pub fn adopt(&mut self, mut obj: Object) -> Result<ObjRef> {
        let descriptor = self.classes.class(obj.class)?;
        let layout = descriptor.field_count();
        let count = obj.fields.len();
        if count < layout || (count > layout && !descriptor.is_variadic()) {
            return Err(HeapError::TypeMismatch {
                expected: "a field count matching the class layout",
                found: "a mismatched field count",
            });
        }
        let size = obj.size();
        if self.bytes_used + size > self.capacity {
            return Err(HeapError::OutOfMemory {
                requested: size,
                used: self.bytes_used,
                capacity: self.capacity,
            });
        }
        obj.charged_size = size;
        self.bytes_used += size;
        self.peak_bytes = self.peak_bytes.max(self.bytes_used);
        self.live_objects += 1;
        self.total_allocs += 1;
        Ok(self.place(obj))
    }

    /// Immutable access to an object.
    ///
    /// # Errors
    ///
    /// [`HeapError::InvalidRef`] for dangling or stale handles.
    pub fn get(&self, obj: ObjRef) -> Result<&Object> {
        match self.slot(obj.index) {
            Some(Slot {
                generation,
                body: SlotBody::Used(o),
            }) if *generation == obj.generation => Ok(o),
            _ => Err(HeapError::InvalidRef { obj }),
        }
    }

    /// Mutable access to an object.
    ///
    /// # Errors
    ///
    /// [`HeapError::InvalidRef`] for dangling or stale handles.
    pub fn get_mut(&mut self, obj: ObjRef) -> Result<&mut Object> {
        match self.slot_mut(obj.index) {
            Some(Slot {
                generation,
                body: SlotBody::Used(o),
            }) if *generation == obj.generation => Ok(o),
            _ => Err(HeapError::InvalidRef { obj }),
        }
    }

    /// Whether the handle refers to a live object.
    pub fn is_live(&self, obj: ObjRef) -> bool {
        self.get(obj).is_ok()
    }

    /// Read a field by id.
    ///
    /// # Errors
    ///
    /// [`HeapError::InvalidRef`] or [`HeapError::FieldIndex`].
    pub fn field(&self, obj: ObjRef, field: FieldId) -> Result<&Value> {
        let o = self.get(obj)?;
        o.fields.get(field.index()).ok_or_else(|| {
            let class = self
                .classes
                .class(o.class)
                .map(|c| c.name().to_string())
                .unwrap_or_default();
            HeapError::FieldIndex {
                class,
                index: field.0,
            }
        })
    }

    /// Read a field by name.
    ///
    /// # Errors
    ///
    /// [`HeapError::InvalidRef`] or [`HeapError::NoSuchField`].
    pub fn field_by_name(&self, obj: ObjRef, name: &str) -> Result<&Value> {
        let o = self.get(obj)?;
        let id = self.classes.class(o.class)?.field_id(name)?;
        self.field(obj, id)
    }

    /// Write a field by id, with dynamic type checking against the class
    /// layout and accounting of payload size changes.
    ///
    /// # Errors
    ///
    /// [`HeapError::InvalidRef`], [`HeapError::FieldIndex`],
    /// [`HeapError::TypeMismatch`], or [`HeapError::OutOfMemory`] when a
    /// larger payload would exceed capacity.
    pub fn set_field(&mut self, obj: ObjRef, field: FieldId, value: Value) -> Result<()> {
        let capacity = self.capacity;
        let class_id = self.get(obj)?.class;
        let descriptor = self.classes.class(class_id)?;
        let kind = descriptor.field(field)?.kind();
        if !kind.accepts(&value) {
            return Err(HeapError::TypeMismatch {
                expected: kind.wire_name(),
                found: value.kind_name(),
            });
        }
        // `descriptor.field(...)` above guarantees the index is in range,
        // so no error (and no eager class-name clone) is needed here.
        let bytes_used = self.bytes_used;
        let o = self.get_mut(obj)?;
        #[allow(clippy::disallowed_methods)]
        let slot = o
            .fields
            .get_mut(field.index())
            .expect("field id validated against the class layout");
        let old_payload = slot.payload_size();
        let new_payload = value.payload_size();
        if new_payload > old_payload {
            let growth = new_payload - old_payload;
            if bytes_used + growth > capacity {
                return Err(HeapError::OutOfMemory {
                    requested: growth,
                    used: bytes_used,
                    capacity,
                });
            }
        }
        *slot = value;
        o.charged_size = o.charged_size + new_payload - old_payload;
        self.bytes_used = bytes_used + new_payload - old_payload;
        self.peak_bytes = self.peak_bytes.max(self.bytes_used);
        Ok(())
    }

    /// Write a field by name. See [`Heap::set_field`].
    ///
    /// # Errors
    ///
    /// Same as [`Heap::set_field`], plus [`HeapError::NoSuchField`].
    pub fn set_field_by_name(&mut self, obj: ObjRef, name: &str, value: Value) -> Result<()> {
        let class_id = self.get(obj)?.class;
        let id = self.classes.class(class_id)?.field_id(name)?;
        self.set_field(obj, id, value)
    }

    /// Fast path for graph surgery: overwrite a field with a payload-free
    /// value (`Null`, `Int`, `Bool`, `Double`, `Ref`) when the current
    /// value is also payload-free — no accounting can change, so the class
    /// lookup and byte bookkeeping are skipped. Falls back to
    /// [`Heap::set_any_field`] when payloads are involved.
    ///
    /// # Errors
    ///
    /// [`HeapError::InvalidRef`] or [`HeapError::FieldIndex`].
    pub fn set_slot_fast(&mut self, obj: ObjRef, index: usize, value: Value) -> Result<()> {
        if value.payload_size() != 0 {
            return self.set_any_field(obj, index, value);
        }
        let o = self.get_mut(obj)?;
        match o.fields.get_mut(index) {
            Some(slot) if slot.payload_size() == 0 => {
                *slot = value;
                Ok(())
            }
            Some(_) => self.set_any_field(obj, index, value),
            None => Err(HeapError::FieldIndex {
                class: String::new(),
                index: index.min(u16::MAX as usize) as u16,
            }),
        }
    }

    /// Write a field by raw index without layout type checking, covering
    /// both declared fields and the extras of variadic objects. This is the
    /// middleware's graph-surgery primitive (proxy replacement patches any
    /// slot that held a reference); accounting is still maintained.
    ///
    /// # Errors
    ///
    /// [`HeapError::InvalidRef`], [`HeapError::FieldIndex`] when the index
    /// is beyond the object's current fields, or [`HeapError::OutOfMemory`]
    /// when a larger payload would exceed capacity.
    pub fn set_any_field(&mut self, obj: ObjRef, index: usize, value: Value) -> Result<()> {
        {
            // Validate first with shared borrows so the hot path below never
            // clones the class name (the old implementation allocated it on
            // every call, live or not).
            let o = self.get(obj)?;
            if index >= o.fields.len() {
                let class = self
                    .classes
                    .class(o.class)
                    .map(|c| c.name().to_string())
                    .unwrap_or_default();
                return Err(HeapError::FieldIndex {
                    class,
                    index: index.min(u16::MAX as usize) as u16,
                });
            }
        }
        let capacity = self.capacity;
        let bytes_used = self.bytes_used;
        let o = self.get_mut(obj)?;
        #[allow(clippy::disallowed_methods)]
        let slot = o
            .fields
            .get_mut(index)
            .expect("index validated against the live object above");
        let old_payload = slot.payload_size();
        let new_payload = value.payload_size();
        if new_payload > old_payload && bytes_used + (new_payload - old_payload) > capacity {
            return Err(HeapError::OutOfMemory {
                requested: new_payload - old_payload,
                used: bytes_used,
                capacity,
            });
        }
        *slot = value;
        o.charged_size = o.charged_size + new_payload - old_payload;
        self.bytes_used = bytes_used + new_payload - old_payload;
        self.peak_bytes = self.peak_bytes.max(self.bytes_used);
        Ok(())
    }

    /// Append an extra (untyped) field to a variadic object. This backs the
    /// replacement-object, which the paper describes as "simply an array of
    /// references" holding the victim cluster's outbound proxies alive.
    ///
    /// # Errors
    ///
    /// [`HeapError::InvalidRef`], [`HeapError::TypeMismatch`] when the class
    /// is not variadic, or [`HeapError::OutOfMemory`] when the extra slot
    /// would exceed capacity.
    pub fn push_extra(&mut self, obj: ObjRef, value: Value) -> Result<()> {
        let capacity = self.capacity;
        let class_id = self.get(obj)?.class;
        if !self.classes.class(class_id)?.is_variadic() {
            return Err(HeapError::TypeMismatch {
                expected: "a variadic class",
                found: "a fixed-layout class",
            });
        }
        let growth = crate::object::FIELD_SLOT_SIZE + value.payload_size();
        if self.bytes_used + growth > capacity {
            return Err(HeapError::OutOfMemory {
                requested: growth,
                used: self.bytes_used,
                capacity,
            });
        }
        let o = self.get_mut(obj)?;
        o.fields.push(value);
        o.charged_size += growth;
        self.bytes_used += growth;
        self.peak_bytes = self.peak_bytes.max(self.bytes_used);
        Ok(())
    }

    /// The extra (beyond-layout) fields of a variadic object.
    ///
    /// # Errors
    ///
    /// [`HeapError::InvalidRef`].
    pub fn extra_fields(&self, obj: ObjRef) -> Result<&[Value]> {
        let o = self.get(obj)?;
        let layout = self.classes.class(o.class)?.field_count();
        Ok(&o.fields.as_slice()[layout..])
    }

    /// Read a global variable (swap-cluster-0).
    ///
    /// # Errors
    ///
    /// [`HeapError::NoSuchGlobal`] when undefined.
    pub fn global(&self, name: &str) -> Result<&Value> {
        self.globals
            .get(name)
            .ok_or_else(|| HeapError::NoSuchGlobal {
                name: name.to_string(),
            })
    }

    /// Set (or define) a global variable. Globals are GC roots.
    pub fn set_global(&mut self, name: impl Into<String>, value: Value) {
        self.globals.insert(name.into(), value);
    }

    /// Remove a global variable, returning its previous value.
    pub fn remove_global(&mut self, name: &str) -> Option<Value> {
        self.globals.remove(name)
    }

    /// Iterate over global variables.
    pub fn globals(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.globals.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Pin an extra root handle. The middleware uses this for anchors that
    /// are not reachable from any global (e.g. tables under construction).
    pub fn add_root(&mut self, obj: ObjRef) {
        self.extra_roots.push(obj);
    }

    /// Remove a previously pinned extra root (all occurrences).
    pub fn remove_root(&mut self, obj: ObjRef) {
        self.extra_roots.retain(|r| *r != obj);
    }

    /// Create a weak reference to `obj`.
    ///
    /// # Errors
    ///
    /// [`HeapError::InvalidRef`] if `obj` is not live.
    pub fn weak_ref(&mut self, obj: ObjRef) -> Result<WeakRef> {
        self.get(obj)?;
        Ok(self.weak.create(obj))
    }

    /// Resolve a weak reference, `None` once the target has been collected.
    pub fn weak_get(&self, weak: WeakRef) -> Option<ObjRef> {
        let target = self.weak.get(weak)?;
        self.is_live(target).then_some(target)
    }

    /// Release a weak reference slot.
    pub fn weak_drop(&mut self, weak: WeakRef) {
        self.weak.drop_ref(weak);
    }

    /// Drain the records of finalizable objects freed by collections since
    /// the last call. This is the C#-finalizer channel of the paper: the
    /// SwappingManager learns here that a replacement-object died and that
    /// the storing device may drop the blob.
    pub fn take_finalized(&mut self) -> Vec<Finalized> {
        std::mem::take(&mut self.finalized)
    }

    /// Iterate over the handles of all live objects (diagnostics, tests,
    /// and the victim-selection heuristics that scan the heap).
    pub fn iter_live(&self) -> impl Iterator<Item = ObjRef> + '_ {
        self.enumerate_slots()
            .filter_map(|(index, s)| match s.body {
                SlotBody::Used(_) => Some(ObjRef {
                    index,
                    generation: s.generation,
                }),
                SlotBody::Free { .. } => None,
            })
    }

    /// Free a slot immediately (collector and middleware-internal): bump the
    /// generation so outstanding handles go stale, drop the object in place,
    /// and push the slot on the free list.
    pub(crate) fn free_slot(&mut self, index: u32) {
        let next_free = self.free_head;
        let freed_bytes;
        {
            let Some(slot) = self.slot_mut(index) else {
                return;
            };
            match &slot.body {
                SlotBody::Used(obj) => freed_bytes = obj.charged_size,
                SlotBody::Free { .. } => return,
            }
            slot.generation = slot.generation.wrapping_add(1);
            slot.body = SlotBody::Free { next_free };
        }
        self.free_head = index;
        self.bytes_used -= freed_bytes;
        self.live_objects -= 1;
        self.total_frees += 1;
    }
}

#[cfg(test)]
mod tests {
    // Tests assert on known-good setups; panicking on failure is the point.
    #![allow(clippy::disallowed_methods)]
    use super::*;
    use crate::ClassBuilder;
    use bytes::Bytes;

    fn node_heap(capacity: usize) -> (Heap, ClassId) {
        let mut reg = ClassRegistry::new();
        let node = reg.register(
            ClassBuilder::new("Node")
                .ref_field("next")
                .int_field("n")
                .bytes_field("payload"),
        );
        (Heap::new(reg, capacity), node)
    }

    #[test]
    fn alloc_get_set_roundtrip() {
        let (mut heap, node) = node_heap(4096);
        let a = heap.alloc(node, ObjectKind::App).unwrap();
        heap.set_field_by_name(a, "n", Value::Int(9)).unwrap();
        assert_eq!(heap.field_by_name(a, "n").unwrap(), &Value::Int(9));
        assert_eq!(heap.get(a).unwrap().kind(), ObjectKind::App);
    }

    #[test]
    fn stale_handle_detected_after_free_and_reuse() {
        let (mut heap, node) = node_heap(4096);
        let a = heap.alloc(node, ObjectKind::App).unwrap();
        heap.free_slot(a.index);
        assert!(matches!(heap.get(a), Err(HeapError::InvalidRef { .. })));
        let b = heap.alloc(node, ObjectKind::App).unwrap();
        assert_eq!(b.index, a.index, "slot should be reused");
        assert_ne!(b.generation, a.generation);
        assert!(heap.get(a).is_err());
        assert!(heap.get(b).is_ok());
    }

    #[test]
    fn free_list_is_lifo_across_slots() {
        let (mut heap, node) = node_heap(1 << 20);
        let a = heap.alloc(node, ObjectKind::App).unwrap();
        let b = heap.alloc(node, ObjectKind::App).unwrap();
        let c = heap.alloc(node, ObjectKind::App).unwrap();
        heap.free_slot(a.index);
        heap.free_slot(b.index);
        heap.free_slot(c.index);
        // Last freed, first reused — the order the old Vec free stack gave.
        let r1 = heap.alloc(node, ObjectKind::App).unwrap();
        let r2 = heap.alloc(node, ObjectKind::App).unwrap();
        let r3 = heap.alloc(node, ObjectKind::App).unwrap();
        assert_eq!(
            (r1.index, r2.index, r3.index),
            (c.index, b.index, a.index),
            "intrusive free list must stay LIFO"
        );
    }

    #[test]
    fn arena_grows_past_one_slab() {
        let (mut heap, node) = node_heap(1 << 24);
        let n = SLAB_CAPACITY + 10;
        let refs: Vec<ObjRef> = (0..n)
            .map(|_| heap.alloc(node, ObjectKind::App).unwrap())
            .collect();
        assert!(heap.slabs.len() >= 2, "second slab must exist");
        assert_eq!(heap.live_objects(), n);
        for (i, r) in refs.iter().enumerate() {
            assert_eq!(r.index as usize, i, "fresh indices are sequential");
            assert!(heap.get(*r).is_ok());
        }
        assert_eq!(heap.iter_live().count(), n);
    }

    #[test]
    fn reserve_slots_presizes_without_observable_change() {
        let (mut heap, node) = node_heap(1 << 20);
        heap.reserve_slots(SLAB_CAPACITY + 3);
        assert_eq!(heap.live_objects(), 0);
        assert_eq!(heap.iter_live().count(), 0);
        let a = heap.alloc(node, ObjectKind::App).unwrap();
        assert_eq!(a.index, 0, "reservation must not shift handle assignment");
    }

    #[test]
    fn adopt_charges_whole_object_and_respects_capacity() {
        let (mut heap, node) = node_heap(200);
        let mut obj = Object::with_field_count(node, ObjectKind::App, 3);
        assert!(obj.set_raw_field(2, Value::Bytes(Bytes::from(vec![7u8; 64]))));
        let r = heap.adopt(obj).unwrap();
        // Node is 24 + 3*16 = 72 bytes, plus the 64-byte payload.
        assert_eq!(heap.bytes_used(), 72 + 64);
        assert_eq!(heap.field_by_name(r, "payload").unwrap().payload_size(), 64);
        // A second one would exceed 200 bytes: heap unchanged.
        let mut big = Object::with_field_count(node, ObjectKind::App, 3);
        assert!(big.set_raw_field(2, Value::Bytes(Bytes::from(vec![7u8; 64]))));
        assert!(matches!(
            heap.adopt(big),
            Err(HeapError::OutOfMemory { .. })
        ));
        assert_eq!(heap.live_objects(), 1);
        assert_eq!(heap.bytes_used(), 72 + 64);
    }

    #[test]
    fn adopt_rejects_mismatched_field_count() {
        let mut reg = ClassRegistry::new();
        let node = reg.register(ClassBuilder::new("Node").int_field("x"));
        let arr = reg.register(ClassBuilder::new("Array").variadic().int_field("len"));
        let mut heap = Heap::new(reg, 4096);
        // Too few fields for the layout.
        assert!(matches!(
            heap.adopt(Object::with_field_count(node, ObjectKind::App, 0)),
            Err(HeapError::TypeMismatch { .. })
        ));
        // Extras on a fixed-layout class.
        assert!(matches!(
            heap.adopt(Object::with_field_count(node, ObjectKind::App, 2)),
            Err(HeapError::TypeMismatch { .. })
        ));
        // Extras on a variadic class are fine.
        let r = heap
            .adopt(Object::with_field_count(arr, ObjectKind::Replacement, 3))
            .unwrap();
        assert_eq!(heap.extra_fields(r).unwrap().len(), 2);
    }

    #[test]
    fn allocation_respects_capacity() {
        let (mut heap, node) = node_heap(100);
        // One Node is 24 + 3*16 = 72 bytes.
        assert!(heap.alloc(node, ObjectKind::App).is_ok());
        let err = heap.alloc(node, ObjectKind::App).unwrap_err();
        assert!(matches!(err, HeapError::OutOfMemory { .. }));
        assert_eq!(heap.live_objects(), 1, "failed alloc must not leak");
    }

    #[test]
    fn payload_growth_is_charged_and_capped() {
        let (mut heap, node) = node_heap(200);
        let a = heap.alloc(node, ObjectKind::App).unwrap();
        let before = heap.bytes_used();
        heap.set_field_by_name(a, "payload", Value::Bytes(Bytes::from(vec![0u8; 64])))
            .unwrap();
        assert_eq!(heap.bytes_used(), before + 64);
        // Shrink gives bytes back.
        heap.set_field_by_name(a, "payload", Value::Bytes(Bytes::from(vec![0u8; 8])))
            .unwrap();
        assert_eq!(heap.bytes_used(), before + 8);
        // Growing past capacity fails and leaves the old value in place.
        let err = heap
            .set_field_by_name(a, "payload", Value::Bytes(Bytes::from(vec![0u8; 4096])))
            .unwrap_err();
        assert!(matches!(err, HeapError::OutOfMemory { .. }));
        assert_eq!(heap.field_by_name(a, "payload").unwrap().payload_size(), 8);
    }

    #[test]
    fn field_type_checking_rejects_wrong_variant() {
        let (mut heap, node) = node_heap(4096);
        let a = heap.alloc(node, ObjectKind::App).unwrap();
        let err = heap
            .set_field_by_name(a, "next", Value::Int(1))
            .unwrap_err();
        assert!(matches!(err, HeapError::TypeMismatch { .. }));
        // Null is accepted everywhere.
        heap.set_field_by_name(a, "next", Value::Null).unwrap();
    }

    #[test]
    fn globals_define_read_remove() {
        let (mut heap, node) = node_heap(4096);
        let a = heap.alloc(node, ObjectKind::App).unwrap();
        heap.set_global("head", Value::Ref(a));
        assert_eq!(heap.global("head").unwrap(), &Value::Ref(a));
        assert!(matches!(
            heap.global("tail"),
            Err(HeapError::NoSuchGlobal { .. })
        ));
        assert_eq!(heap.remove_global("head"), Some(Value::Ref(a)));
        assert!(heap.global("head").is_err());
    }

    #[test]
    fn weak_refs_resolve_until_target_freed() {
        let (mut heap, node) = node_heap(4096);
        let a = heap.alloc(node, ObjectKind::App).unwrap();
        let w = heap.weak_ref(a).unwrap();
        assert_eq!(heap.weak_get(w), Some(a));
        heap.free_slot(a.index);
        assert_eq!(heap.weak_get(w), None);
    }

    #[test]
    fn weak_ref_to_dead_object_fails() {
        let (mut heap, node) = node_heap(4096);
        let a = heap.alloc(node, ObjectKind::App).unwrap();
        heap.free_slot(a.index);
        assert!(heap.weak_ref(a).is_err());
    }

    #[test]
    fn iter_live_reports_exactly_live_handles() {
        let (mut heap, node) = node_heap(4096);
        let a = heap.alloc(node, ObjectKind::App).unwrap();
        let b = heap.alloc(node, ObjectKind::App).unwrap();
        heap.free_slot(a.index);
        let live: Vec<_> = heap.iter_live().collect();
        assert_eq!(live, vec![b]);
    }

    #[test]
    fn variadic_push_extra_and_accounting() {
        let mut reg = ClassRegistry::new();
        let node = reg.register(ClassBuilder::new("Node").int_field("x"));
        let arr = reg.register(ClassBuilder::new("Array").variadic());
        let mut heap = Heap::new(reg, 4096);
        let n = heap.alloc(node, ObjectKind::App).unwrap();
        let a = heap.alloc(arr, ObjectKind::Replacement).unwrap();
        let before = heap.bytes_used();
        heap.push_extra(a, Value::Ref(n)).unwrap();
        heap.push_extra(a, Value::Ref(n)).unwrap();
        assert_eq!(heap.extra_fields(a).unwrap().len(), 2);
        assert!(heap.bytes_used() > before);
        // Non-variadic classes refuse extras.
        assert!(matches!(
            heap.push_extra(n, Value::Int(1)),
            Err(HeapError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn push_extra_respects_capacity() {
        let mut reg = ClassRegistry::new();
        let arr = reg.register(ClassBuilder::new("Array").variadic());
        let mut heap = Heap::new(reg, 40); // room for base (24) + one slot (16)
        let a = heap.alloc(arr, ObjectKind::Replacement).unwrap();
        heap.push_extra(a, Value::Int(1)).unwrap();
        assert!(matches!(
            heap.push_extra(a, Value::Int(2)),
            Err(HeapError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn display_formats_are_stable() {
        let r = ObjRef {
            index: 3,
            generation: 1,
        };
        assert_eq!(r.to_string(), "obj@3.1");
    }
}
